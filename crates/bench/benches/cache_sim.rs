//! Criterion micro-benchmarks of the simulator substrate: cache-hierarchy
//! access throughput for streaming and random patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zcomp_sim::config::SimConfig;
use zcomp_sim::hierarchy::MemorySystem;

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_streaming");
    let lines = 1u64 << 14;
    group.throughput(Throughput::Elements(lines));
    group.bench_function(BenchmarkId::new("sequential_read", lines), |b| {
        b.iter_with_setup(
            || MemorySystem::new(SimConfig::table1()),
            |mut mem| {
                for i in 0..lines {
                    mem.read(0, i * 64, 64);
                }
                mem
            },
        )
    });
    group.bench_function(BenchmarkId::new("sequential_write", lines), |b| {
        b.iter_with_setup(
            || MemorySystem::new(SimConfig::table1()),
            |mut mem| {
                for i in 0..lines {
                    mem.write(0, i * 64, 64);
                }
                mem
            },
        )
    });
    group.finish();
}

fn bench_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_random");
    let accesses = 1u64 << 14;
    group.throughput(Throughput::Elements(accesses));
    let mut rng = SmallRng::seed_from_u64(3);
    let addrs: Vec<u64> = (0..accesses)
        .map(|_| rng.gen_range(0..1u64 << 28) & !63)
        .collect();
    group.bench_function("random_read", |b| {
        b.iter_with_setup(
            || MemorySystem::new(SimConfig::table1()),
            |mut mem| {
                for &a in &addrs {
                    mem.read(0, a, 64);
                }
                mem
            },
        )
    });
    group.finish();
}

/// Criterion tuned for CI-scale runs: small sample counts so the whole
/// suite finishes quickly even on a single core.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_streaming, bench_random
}
criterion_main!(benches);
