//! Criterion micro-benchmarks of the functional ZCOMP stream codec:
//! compress and expand throughput across sparsity levels and header
//! modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zcomp_dnn::sparsity::generate_activations;
use zcomp_isa::ccf::CompareCond;
use zcomp_isa::compress::{
    compress_f32, compress_f32_with, compress_f32_with_backend, expand_f32,
    expand_f32_into_with_backend,
};
use zcomp_isa::native::CodecBackend;
use zcomp_isa::stream::HeaderMode;

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_f32");
    let elements = 1 << 18; // 1 MiB of fp32
    group.throughput(Throughput::Bytes((elements * 4) as u64));
    for sparsity_pct in [10u32, 53, 90] {
        let data = generate_activations(elements, f64::from(sparsity_pct) / 100.0, 6.0, 11);
        group.bench_with_input(BenchmarkId::new("eqz", sparsity_pct), &data, |b, data| {
            b.iter(|| compress_f32(data, CompareCond::Eqz).expect("whole vectors"))
        });
    }
    group.finish();
}

fn bench_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("expand_f32");
    let elements = 1 << 18;
    group.throughput(Throughput::Bytes((elements * 4) as u64));
    for mode in [HeaderMode::Interleaved, HeaderMode::Separate] {
        let data = generate_activations(elements, 0.53, 6.0, 12);
        let stream = compress_f32_with(&data, CompareCond::Eqz, mode).expect("whole vectors");
        group.bench_with_input(
            BenchmarkId::new("mode", mode.to_string()),
            &stream,
            |b, stream| b.iter(|| expand_f32(stream).expect("valid stream")),
        );
    }
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_backend");
    let elements = 1 << 18;
    group.throughput(Throughput::Bytes((elements * 4) as u64));
    let data = generate_activations(elements, 0.53, 6.0, 13);
    let stream = compress_f32(&data, CompareCond::Eqz).expect("whole vectors");
    let mut out = vec![0.0f32; stream.elements()];
    for backend in [CodecBackend::Scalar, CodecBackend::Native] {
        group.bench_with_input(BenchmarkId::new("compress", backend), &data, |b, data| {
            b.iter(|| {
                compress_f32_with_backend(data, CompareCond::Eqz, HeaderMode::Interleaved, backend)
                    .expect("whole vectors")
            })
        });
        group.bench_with_input(BenchmarkId::new("expand", backend), &stream, |b, stream| {
            b.iter(|| {
                expand_f32_into_with_backend(stream, &mut out, backend).expect("valid stream")
            })
        });
    }
    group.finish();
}

/// Criterion tuned for CI-scale runs: small sample counts so the whole
/// suite finishes quickly even on a single core.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_compress, bench_expand, bench_backends
}
criterion_main!(benches);
