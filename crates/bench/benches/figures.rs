//! Criterion benchmarks of the experiment runners at reduced scale — a
//! regression guard on the end-to-end figure pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use zcomp::experiments::{fig01, fig03, fig15};

fn bench_figures(c: &mut Criterion) {
    c.bench_function("fig01_vgg_sparsity_batch8", |b| {
        b.iter(|| fig01::run(8, &[1, 30, 90]))
    });
    c.bench_function("fig03_footprints", |b| b.iter(fig03::run));
    c.bench_function("fig15_small_snapshots", |b| {
        b.iter(|| fig15::run(1, 16 * 1024))
    });
}

/// Criterion tuned for CI-scale runs: small sample counts so the whole
/// suite finishes quickly even on a single core.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_figures
}
criterion_main!(benches);
