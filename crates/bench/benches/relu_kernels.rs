//! Criterion benchmarks of the three ReLU kernel simulations — how fast
//! the simulator itself chews through each scheme's instruction stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::relu::{run_relu, ReluOpts, ReluScheme};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

fn bench_relu_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("relu_kernel_sim");
    let elements = 1 << 18; // 1 MiB feature map
    let nnz = nnz_synthetic(elements, 0.53, 6.0, 21);
    group.throughput(Throughput::Elements((elements / 16) as u64));
    for scheme in [
        ReluScheme::Avx512Vec,
        ReluScheme::Avx512Comp,
        ReluScheme::Zcomp,
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheme", scheme.to_string()),
            &nnz,
            |b, nnz| {
                b.iter_with_setup(
                    || Machine::new(SimConfig::table1(), UopTable::skylake_x()),
                    |mut machine| {
                        run_relu(&mut machine, scheme, nnz, &ReluOpts::default());
                        machine
                    },
                )
            },
        );
    }
    group.finish();
}

/// Criterion tuned for CI-scale runs: small sample counts so the whole
/// suite finishes quickly even on a single core.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_relu_schemes
}
criterion_main!(benches);
