//! §3.3 alignment analysis: how often compressed vectors straddle
//! cache-line boundaries, and the partial-line transfer overhead, across
//! sparsity levels and element types.

use zcomp::report::{pct, Table};
use zcomp_bench::{print_machine, print_table, FigArgs};
use zcomp_isa::alignment::analyze_interleaved;
use zcomp_isa::dtype::ElemType;
use zcomp_kernels::nnz::nnz_synthetic;

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = (4 << 20) / args.scale.max(1);
    let mut table = Table::new(
        "Ablation (3.3): compressed-stream alignment",
        &[
            "elem_type",
            "sparsity",
            "line_crossers",
            "transfer_overhead",
        ],
    );
    for ty in [ElemType::F32, ElemType::F16, ElemType::I8] {
        for sparsity in [0.25, 0.53, 0.80] {
            let nnz8 = nnz_synthetic(elements.max(64 * 1024), sparsity, 6.0, 0xA11);
            // Rescale the fp32 16-lane counts to this type's lane count.
            let lanes = ty.lanes() as u32;
            let nnz: Vec<u16> = nnz8
                .iter()
                .map(|&n| ((u32::from(n) * lanes) / 16) as u16)
                .collect();
            let stats = analyze_interleaved(&nnz, ty);
            table.row([
                ty.to_string(),
                format!("{:.0}%", sparsity * 100.0),
                pct(stats.crossing_fraction()),
                format!("{:.3}x", stats.line_transfer_overhead()),
            ]);
        }
    }
    print_table(&table);
}
