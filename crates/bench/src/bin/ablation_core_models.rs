//! Validation ablation: the bulk roofline core model vs the cycle-stepped
//! interval model on the same ReLU instruction streams, across sizes and
//! schemes. Two independent timing models agreeing on the ordering (and
//! roughly on magnitude) is the Sniper-style sanity check for the
//! simulator substrate.

use zcomp::report::Table;
use zcomp_bench::{print_machine, print_table, FigArgs};
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::relu::{run_relu, ReluOpts, ReluScheme};
use zcomp_kernels::relu_interval::run_relu_interval;
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let mut table = Table::new(
        "Ablation: roofline vs interval core model (cycles)",
        &["elements", "scheme", "roofline", "interval", "ratio"],
    );
    for shift in [16usize, 18, 20, 22] {
        let elements = ((1usize << shift) / args.scale.max(1)).max(16 * 1024);
        let nnz = nnz_synthetic(elements, 0.53, 6.0, 77);
        for scheme in [
            ReluScheme::Avx512Vec,
            ReluScheme::Avx512Comp,
            ReluScheme::Zcomp,
        ] {
            let cfg = SimConfig::table1();
            let uop_table = UopTable::skylake_x();
            let opts = ReluOpts::default();
            let mut machine = Machine::new(cfg.clone(), uop_table);
            let roofline = run_relu(&mut machine, scheme, &nnz, &opts).total_cycles();
            let interval = run_relu_interval(&cfg, uop_table, scheme, &nnz, &opts).wall_cycles;
            table.row([
                elements.to_string(),
                scheme.to_string(),
                format!("{roofline:.0}"),
                format!("{interval:.0}"),
                format!("{:.2}", interval / roofline),
            ]);
        }
    }
    print_table(&table);
}
