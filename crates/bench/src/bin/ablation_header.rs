//! §4.1 ablation: interleaved vs separate headers across input sparsity,
//! including the 3.125% metadata break-even point.

use zcomp::experiments::ablations::{self, HeaderModeResult};
use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = (4 << 20) / args.scale.max(1);
    let result = ablations::header_mode(
        elements.max(64 * 1024),
        &[0.0, 0.02, 0.03125, 0.05, 0.10, 0.25, 0.53, 0.80],
    );
    print_table(&result.table());
    println!(
        "metadata break-even compressibility (fp32/512-bit): {:.4} (paper: 3.125%)",
        HeaderModeResult::breakeven()
    );
    args.save_json(&result);
}
