//! §3.3 ablation: ZCOMP logic-pipeline latency (2 vs 3 cycles). The paper
//! reports near-identical performance because operation is
//! throughput-bound.

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = (32 << 20) / args.scale.max(1);
    let result =
        zcomp::experiments::ablations::logic_latency(elements.max(64 * 1024), &[1, 2, 3, 4, 6]);
    print_table(&result.table());
    println!(
        "runtime change from first to last point: {:+.2}% (paper: ~0% for 2 -> 3)",
        result.relative_change() * 100.0
    );
    args.save_json(&result);
}
