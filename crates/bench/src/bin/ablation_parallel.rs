//! §4.3 ablation: serialized (Fig. 7(a)) vs partitioned (Fig. 7(b))
//! parallelization, and sub-block loop unrolling.

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = (16 << 20) / args.scale.max(1);
    let result =
        zcomp::experiments::ablations::parallelization(elements.max(64 * 1024), &[1, 2, 4, 8]);
    print_table(&result.table());
    println!(
        "partitioned speedup over serialized: {:.2}x",
        result.partitioned_speedup()
    );
    args.save_json(&result);
}
