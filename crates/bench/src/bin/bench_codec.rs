//! Benchmark-gated harness for the stream codec's native SIMD backend.
//!
//! Three modes, mirroring `bench_sim`:
//!
//! * `bench_codec --smoke` — differential bit-identity gate: every
//!   native ladder rung the host supports must produce byte-identical
//!   `CompressedStream`s and expansions vs the scalar oracle, for every
//!   element type, both compare conditions, both header modes and a set
//!   of adversarial sparsity patterns. Exits non-zero on divergence.
//!   Used by CI.
//! * `bench_codec --levels` — prints the detected dispatch ladder.
//! * `bench_codec [--json BENCH_codec.json] [--mib N]` — measures
//!   scalar-vs-native compress/expand throughput (GB/s) per element
//!   type, plus the end-to-end fig15 delta (the experiment that
//!   compresses real activation snapshots through the actual codec),
//!   and writes the result record.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use zcomp_isa::buffer::{compress_bytes_with_backend, expand_bytes_into_with_backend};
use zcomp_isa::ccf::CompareCond;
use zcomp_isa::dtype::ElemType;
use zcomp_isa::native::{available_levels, compress_at_level, expand_at_level, CodecBackend};
use zcomp_isa::stream::HeaderMode;
use zcomp_isa::VECTOR_BYTES;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke(),
        Some("--levels") => levels(),
        _ => full(&args),
    }
}

fn levels() {
    println!("default backend : {}", CodecBackend::detect());
    match zcomp_isa::native_isa() {
        Some(isa) => println!("native isa      : {isa}"),
        None => println!("native isa      : (none — scalar only)"),
    }
    for l in available_levels() {
        println!("ladder rung     : {l}");
    }
}

/// A deterministic typed buffer of `vectors` vectors with roughly
/// `sparsity` of its lanes zero, zeroed lane-at-a-time so runs of every
/// length and alignment appear.
fn synthetic_buffer(ty: ElemType, vectors: usize, sparsity: f64, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let es = ty.size_bytes();
    let mut data = vec![0u8; vectors * VECTOR_BYTES];
    for lane in data.chunks_mut(es) {
        if !rng.gen_bool(sparsity) {
            for b in lane.iter_mut() {
                *b = rng.gen_range(0u8..=255) | 1; // nonzero under every dtype view
            }
        }
    }
    data
}

/// A named generator of adversarial input shapes for the smoke gate.
type SmokePattern = (&'static str, Box<dyn Fn(ElemType) -> Vec<u8>>);

/// Differential smoke gate: every rung vs the scalar oracle.
fn smoke() {
    let patterns: Vec<SmokePattern> = vec![
        ("empty", Box::new(|_| Vec::new())),
        ("all-zero", Box::new(|_| vec![0u8; 16 * VECTOR_BYTES])),
        (
            "all-kept",
            Box::new(|_| {
                (0..16 * VECTOR_BYTES)
                    .map(|i| (i % 251) as u8 | 1)
                    .collect()
            }),
        ),
        (
            "half-sparse",
            Box::new(|ty| synthetic_buffer(ty, 16, 0.5, 0xC0DEC)),
        ),
        (
            "mostly-sparse",
            Box::new(|ty| synthetic_buffer(ty, 16, 0.95, 0xC0DEC + 1)),
        ),
        (
            "ragged-tail",
            Box::new(|ty| {
                // Final vector nearly full, so its payload ends within a
                // register's width of the data region's end — the
                // tail-slack path of the native expand.
                let mut d = synthetic_buffer(ty, 5, 0.9, 0xC0DEC + 2);
                let last = d.len() - VECTOR_BYTES;
                for (i, b) in d[last..].iter_mut().enumerate() {
                    *b = (i % 97) as u8 | 1;
                }
                d
            }),
        ),
    ];
    let mut checked = 0u32;
    let mut failures = 0u32;
    for (name, make) in &patterns {
        for ty in ElemType::ALL {
            let data = make(ty);
            for cond in [CompareCond::Eqz, CompareCond::Ltez] {
                for mode in [HeaderMode::Interleaved, HeaderMode::Separate] {
                    let oracle =
                        compress_bytes_with_backend(&data, ty, cond, mode, CodecBackend::Scalar)
                            .expect("scalar compress");
                    let mut oracle_out = vec![0u8; oracle.vectors() * VECTOR_BYTES];
                    expand_bytes_into_with_backend(&oracle, &mut oracle_out, CodecBackend::Scalar)
                        .expect("scalar expand");
                    for &level in available_levels() {
                        checked += 1;
                        let native = compress_at_level(level, &data, ty, cond, mode);
                        let mut native_out = vec![0xA5u8; oracle.vectors() * VECTOR_BYTES];
                        expand_at_level(level, &oracle, &mut native_out).expect("native expand");
                        if native != oracle || native_out != oracle_out {
                            println!("FAIL {level} {ty} {cond:?} {mode} {name}");
                            failures += 1;
                        }
                    }
                }
            }
        }
    }
    if available_levels().is_empty() {
        println!(
            "bench_codec --smoke: no native rungs on this host; scalar-only (trivially identical)"
        );
        return;
    }
    if failures > 0 {
        eprintln!(
            "bench_codec --smoke: {failures}/{checked} combinations diverge from the scalar oracle"
        );
        std::process::exit(1);
    }
    println!(
        "bench_codec --smoke: {} combinations bit-identical across rungs [{}]",
        checked,
        available_levels()
            .iter()
            .map(|l| l.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

#[derive(Serialize)]
struct DtypeThroughput {
    dtype: String,
    uncompressed_mib: usize,
    compress_scalar_gb_s: f64,
    compress_native_gb_s: f64,
    compress_speedup: f64,
    expand_scalar_gb_s: f64,
    expand_native_gb_s: f64,
    expand_speedup: f64,
}

#[derive(Serialize)]
struct BenchRecord {
    benchmark: &'static str,
    native_isa: Option<&'static str>,
    ladder: Vec<&'static str>,
    sparsity: f64,
    throughput: Vec<DtypeThroughput>,
    end_to_end: EndToEnd,
    backends_bit_identical: bool,
}

#[derive(Serialize)]
struct EndToEnd {
    /// fig15 compresses real activation snapshots through the actual
    /// stream codec — the honest end-to-end consumer. (The fig12 sweep
    /// models zcomps/zcompl timing from nnz counts and never invokes
    /// the functional codec, so it is backend-independent by design.)
    experiment: &'static str,
    scalar_secs: f64,
    native_secs: f64,
    speedup: f64,
    results_identical: bool,
}

/// Best-of-N wall time for `f`, in seconds.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn full(args: &[String]) {
    let mut json_path = None;
    let mut mib = 32usize;
    let mut it = args.iter();
    let usage = |msg: String| -> ! {
        eprintln!("error: {msg} (usage: bench_codec [--smoke|--levels] [--mib N] [--json PATH])");
        std::process::exit(2)
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => usage("--json needs a path".to_string()),
            },
            "--mib" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--mib needs a value".to_string()));
                mib = v
                    .parse()
                    .unwrap_or_else(|_| usage(format!("--mib needs an integer, got `{v}`")));
            }
            other => usage(format!("unknown argument: {other}")),
        }
    }

    let sparsity = 0.53; // the paper's fig12 operating point
    let bytes = mib.max(1) << 20;
    let vectors = bytes / VECTOR_BYTES;
    let gb = |secs: f64| (vectors * VECTOR_BYTES) as f64 / secs / 1e9;
    let reps = 7;
    let mut throughput = Vec::new();
    let mut identical = true;
    for ty in [ElemType::F32, ElemType::F16, ElemType::I8] {
        let data = synthetic_buffer(ty, vectors, sparsity, 0xBE2C0DEC ^ ty.lanes() as u64);
        let mode = HeaderMode::Interleaved;
        let cond = CompareCond::Eqz;
        let compress = |backend: CodecBackend| -> f64 {
            best_of(reps, || {
                let s = compress_bytes_with_backend(&data, ty, cond, mode, backend)
                    .expect("whole vectors");
                std::hint::black_box(&s);
            })
        };
        let c_scalar = compress(CodecBackend::Scalar);
        let c_native = compress(CodecBackend::Native);
        let stream_scalar =
            compress_bytes_with_backend(&data, ty, cond, mode, CodecBackend::Scalar)
                .expect("whole");
        let stream_native =
            compress_bytes_with_backend(&data, ty, cond, mode, CodecBackend::Native)
                .expect("whole");
        identical &= stream_scalar == stream_native;
        let mut out = vec![0u8; vectors * VECTOR_BYTES];
        let expand = |backend: CodecBackend, out: &mut Vec<u8>| -> f64 {
            best_of(reps, || {
                expand_bytes_into_with_backend(&stream_scalar, out, backend).expect("expand");
                std::hint::black_box(&out);
            })
        };
        let e_scalar = expand(CodecBackend::Scalar, &mut out);
        let scalar_out = out.clone();
        let e_native = expand(CodecBackend::Native, &mut out);
        identical &= scalar_out == out && out == data;
        let row = DtypeThroughput {
            dtype: ty.to_string(),
            uncompressed_mib: mib,
            compress_scalar_gb_s: gb(c_scalar),
            compress_native_gb_s: gb(c_native),
            compress_speedup: c_scalar / c_native,
            expand_scalar_gb_s: gb(e_scalar),
            expand_native_gb_s: gb(e_native),
            expand_speedup: e_scalar / e_native,
        };
        println!(
            "{:>5}  compress {:>6.2} -> {:>6.2} GB/s ({:.2}x)   expand {:>6.2} -> {:>6.2} GB/s ({:.2}x)",
            row.dtype,
            row.compress_scalar_gb_s,
            row.compress_native_gb_s,
            row.compress_speedup,
            row.expand_scalar_gb_s,
            row.expand_native_gb_s,
            row.expand_speedup,
        );
        throughput.push(row);
    }

    // End-to-end: fig15 runs the real codec over generated activations.
    let t0 = Instant::now();
    let fig15_scalar =
        zcomp::experiments::fig15::run_with_backend(3, 256 * 1024, CodecBackend::Scalar);
    let scalar_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let fig15_native =
        zcomp::experiments::fig15::run_with_backend(3, 256 * 1024, CodecBackend::Native);
    let native_secs = t0.elapsed().as_secs_f64();
    let results_identical = fig15_scalar == fig15_native;
    identical &= results_identical;
    println!(
        "fig15  scalar {scalar_secs:.3}s -> native {native_secs:.3}s ({:.2}x), results identical: {results_identical}",
        scalar_secs / native_secs,
    );

    let record = BenchRecord {
        benchmark: "codec_native_vs_scalar",
        native_isa: zcomp_isa::native_isa(),
        ladder: available_levels().iter().map(|l| l.label()).collect(),
        sparsity,
        throughput,
        end_to_end: EndToEnd {
            experiment: "fig15",
            scalar_secs,
            native_secs,
            speedup: scalar_secs / native_secs,
            results_identical,
        },
        backends_bit_identical: identical,
    };
    if !identical {
        eprintln!("error: scalar and native backends diverged during the benchmark");
        std::process::exit(1);
    }
    let text = match serde_json::to_string_pretty(&record) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot serialize bench record: {e}");
            std::process::exit(1);
        }
    };
    println!("{text}");
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, &text) {
            eprintln!("error: cannot write {p}: {e}");
            std::process::exit(1);
        }
        println!("wrote {p}");
    }
}
