//! Benchmark-gated performance harness for the simulator hot path.
//!
//! Three modes:
//!
//! * `bench_sim --smoke` — miniature fig12-style sweep through BOTH
//!   execution paths ([`ExecPath::Batched`] and [`ExecPath::Reference`]);
//!   exits non-zero if any statistic diverges. Used by CI.
//! * `bench_sim --micro` — isolated microbenchmarks: raw hierarchy
//!   streaming, compress/expand throughput.
//! * `bench_sim [--json BENCH_sim.json]` — times the cold fig12 sweep
//!   under both paths and writes the result record.

use std::time::Instant;

use serde::Serialize;
use zcomp_isa::ccf::CompareCond;
use zcomp_isa::compress::{compress_f32, expand_f32};
use zcomp_isa::stream::HeaderMode;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::relu::{run_relu_with_path, ExecPath, ReluOpts, ReluScheme};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;
use zcomp_sim::hierarchy::MemorySystem;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
    match mode {
        Some("--smoke") => smoke(),
        Some("--micro") => micro(),
        _ => full(&args),
    }
}

/// Raw per-line demand-access cost of the memory hierarchy.
fn micro() {
    let cfg = SimConfig::table1();

    // Streaming read: every line is new (the fig12 store pass shape).
    let mut mem = MemorySystem::new(cfg.clone());
    let lines = 2_000_000u64;
    let t0 = Instant::now();
    for i in 0..lines {
        mem.read((i % 16) as usize, 0x1000_0000 + i * 64, 64);
    }
    let dt = t0.elapsed();
    println!(
        "hierarchy stream read : {:>7.1} ns/line  ({} lines, {:?}, dram {} MiB)",
        dt.as_nanos() as f64 / lines as f64,
        lines,
        dt,
        mem.traffic().dram_bytes >> 20,
    );

    // Read + write interleave (store pass: read X, write Y).
    let mut mem = MemorySystem::new(cfg.clone());
    let t0 = Instant::now();
    for i in 0..lines / 2 {
        mem.read((i % 16) as usize, 0x1000_0000 + i * 64, 64);
        mem.write((i % 16) as usize, 0x5000_0000 + i * 64, 64);
    }
    let dt = t0.elapsed();
    println!(
        "hierarchy read+write  : {:>7.1} ns/line  ({} lines, {:?})",
        dt.as_nanos() as f64 / lines as f64,
        lines,
        dt,
    );

    // exec_batch over the zcomp store program.
    let nnz = nnz_synthetic(1 << 20, 0.53, 6.0, 42);
    let mut machine = Machine::new(cfg.clone(), UopTable::skylake_x());
    let opts = ReluOpts::default();
    let t0 = Instant::now();
    run_relu_with_path(
        &mut machine,
        ReluScheme::Zcomp,
        &nnz,
        &opts,
        ExecPath::Batched,
    );
    let dt = t0.elapsed();
    let vectors = nnz.len() as f64 * 4.0; // 2 iterations x (store + load)
    println!(
        "relu zcomp batched    : {:>7.1} ns/vector ({:?})",
        dt.as_nanos() as f64 / vectors,
        dt,
    );
    let mut machine = Machine::new(cfg, UopTable::skylake_x());
    let t0 = Instant::now();
    run_relu_with_path(
        &mut machine,
        ReluScheme::Zcomp,
        &nnz,
        &opts,
        ExecPath::Reference,
    );
    let dt = t0.elapsed();
    println!(
        "relu zcomp reference  : {:>7.1} ns/vector ({:?})",
        dt.as_nanos() as f64 / vectors,
        dt,
    );

    // Functional compress/expand throughput.
    let elems = 1 << 22;
    let data: Vec<f32> = (0..elems)
        .map(|i| if i % 2 == 0 { 0.0 } else { i as f32 })
        .collect();
    let t0 = Instant::now();
    let stream = compress_f32(&data, CompareCond::Eqz).expect("compress");
    let dt = t0.elapsed();
    println!(
        "compress_f32          : {:>7.1} GiB/s   ({:?})",
        (elems * 4) as f64 / dt.as_secs_f64() / (1u64 << 30) as f64,
        dt,
    );
    let t0 = Instant::now();
    let round = expand_f32(&stream).expect("expand");
    let dt = t0.elapsed();
    assert_eq!(round.len(), data.len());
    println!(
        "expand_f32            : {:>7.1} GiB/s   ({:?})",
        (elems * 4) as f64 / dt.as_secs_f64() / (1u64 << 30) as f64,
        dt,
    );
}

/// Differential smoke sweep: both paths, every scheme, assert equality.
fn smoke() {
    let mut failures = 0u32;
    for (scheme, header_mode, threads, unroll) in [
        (ReluScheme::Avx512Vec, HeaderMode::Interleaved, 16, 1),
        (ReluScheme::Avx512Comp, HeaderMode::Interleaved, 16, 1),
        (ReluScheme::Zcomp, HeaderMode::Interleaved, 16, 1),
        (ReluScheme::Zcomp, HeaderMode::Separate, 16, 1),
        (ReluScheme::Zcomp, HeaderMode::Interleaved, 7, 4),
        (ReluScheme::Zcomp, HeaderMode::Separate, 1, 2),
    ] {
        let nnz = nnz_synthetic(64 * 1024, 0.53, 6.0, 9);
        let opts = ReluOpts {
            threads,
            header_mode,
            unroll,
            ..ReluOpts::default()
        };
        let run = |path| {
            let mut m = Machine::new(SimConfig::table1(), UopTable::skylake_x());
            let r = run_relu_with_path(&mut m, scheme, &nnz, &opts, path);
            (r, m.summary())
        };
        let (r_fast, s_fast) = run(ExecPath::Batched);
        let (r_ref, s_ref) = run(ExecPath::Reference);
        let fast_json = serde_json::to_string(&(&r_fast, &s_fast)).expect("serialize");
        let ref_json = serde_json::to_string(&(&r_ref, &s_ref)).expect("serialize");
        let tag = format!("{scheme} {header_mode:?} t{threads} u{unroll}");
        if fast_json == ref_json {
            println!("OK   {tag}");
        } else {
            println!("FAIL {tag}: batched and reference paths diverge");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("bench_sim --smoke: {failures} divergent configurations");
        std::process::exit(1);
    }
    println!("bench_sim --smoke: all configurations bit-identical");
}

/// Times the cold fig12 sweep under both paths and writes BENCH_sim.json.
fn full(args: &[String]) {
    let mut json_path = None;
    let mut scale = 64usize;
    let mut it = args.iter();
    let usage = |msg: String| -> ! {
        eprintln!("error: {msg} (usage: bench_sim [--smoke|--micro] [--scale N] [--json PATH])");
        std::process::exit(2)
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => usage("--json needs a path".to_string()),
            },
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--scale needs a value".to_string()));
                scale = v
                    .parse()
                    .unwrap_or_else(|_| usage(format!("--scale needs an integer, got `{v}`")));
            }
            other => usage(format!("unknown argument: {other}")),
        }
    }
    let time_path = |path: ExecPath| -> (f64, String) {
        let t0 = Instant::now();
        let result = zcomp::experiments::fig12::run_with_path(scale, 0.53, path);
        let dt = t0.elapsed().as_secs_f64();
        (dt, serde_json::to_string(&result).expect("serialize"))
    };
    let (ref_secs, ref_json) = time_path(ExecPath::Reference);
    let (fast_secs, fast_json) = time_path(ExecPath::Batched);
    assert_eq!(
        ref_json, fast_json,
        "batched and reference fig12 sweeps must be bit-identical"
    );
    #[derive(Serialize)]
    struct BenchRecord {
        benchmark: &'static str,
        scale: usize,
        reference_secs: f64,
        batched_secs: f64,
        speedup: f64,
        paths_bit_identical: bool,
    }
    let record = BenchRecord {
        benchmark: "fig12_cold_sweep",
        scale,
        reference_secs: ref_secs,
        batched_secs: fast_secs,
        speedup: ref_secs / fast_secs,
        paths_bit_identical: true,
    };
    let text = match serde_json::to_string_pretty(&record) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot serialize bench record: {e}");
            std::process::exit(1);
        }
    };
    println!("{text}");
    if let Some(p) = json_path {
        // The measurement is already on stdout; a failed file write is an
        // error exit with context, not a panic with a backtrace.
        if let Err(e) = std::fs::write(&p, &text) {
            eprintln!("error: cannot write {p}: {e}");
            std::process::exit(1);
        }
        println!("wrote {p}");
    }
}
