//! Captures memory traces for a sweep into the persistent trace cache.
//!
//! Runs the Fig. 12 or full-network sweep with the trace cache enabled, so
//! every cold cell leaves a `.ztrc` file behind; subsequent `replay_run`
//! invocations (or warm sweeps) replay those files instead of
//! re-simulating. With `--refresh` existing traces are discarded first.
//!
//! Cells run under the supervised runtime: completed cells are journalled
//! under the cache root, so a killed run can be continued with `--resume`
//! and still produce the identical `--json` report; cells that keep
//! panicking (or exceed `--deadline-ms`) are quarantined, reported, and
//! reflected in the exit code (3 = completed with quarantined cells).
//!
//! With `--fabric-dir` the sweep joins the crash-safe multi-process lease
//! fabric: cells are claimed via lease files, heartbeated, reclaimed from
//! dead workers, and committed through fenced per-worker journals, so any
//! number of `capture_run` processes (or `--workers N` spawned siblings)
//! cooperate on one sweep and the merged report stays byte-identical to a
//! single-worker run. A drained worker (SIGINT/SIGTERM) exits with code 4
//! and can be resumed by pointing any worker at the same fabric directory.
//!
//! ```text
//! capture_run <fig12|fullnet> [--scale N] [--traces DIR] [--threads N]
//!             [--refresh] [--resume] [--json PATH] [--attempts N]
//!             [--deadline-ms MS] [--fabric-dir DIR] [--worker-id ID]
//!             [--lease-ttl-ms MS] [--workers N] [--quiet]
//! ```

use std::time::Instant;

use zcomp::experiments::{fig12, fullnet};
use zcomp_bench::{
    print_machine, reap_fabric_workers, report_supervision, save_json, spawn_fabric_workers,
    sweep_error_exit, SweepArgs,
};
use zcomp_dnn::deepbench::all_configs;

/// Sums the cache directory's trace files; errors just mean "unknown".
fn cache_contents(dir: &str) -> Option<(usize, u64)> {
    let mut files = 0;
    let mut bytes = 0;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        if entry.path().extension().is_some_and(|e| e == "ztrc") {
            files += 1;
            bytes += entry.metadata().ok()?.len();
        }
    }
    Some((files, bytes))
}

fn main() {
    let args = SweepArgs::from_env();
    print_machine();
    let opts = args.sweep_opts();
    println!(
        "capturing {} (scale {}, {} threads) into {}{}{}",
        args.experiment,
        args.scale,
        opts.threads,
        args.traces,
        if args.refresh { " [refresh]" } else { "" },
        if args.run.resume { " [resume]" } else { "" }
    );
    let siblings = spawn_fabric_workers(&args.run);
    let t0 = Instant::now();
    let (cells, supervision) = match args.experiment.as_str() {
        "fig12" => {
            let out = match fig12::run_sweep(&all_configs(), args.scale, 0.53, &opts) {
                Ok(out) => out,
                Err(e) => {
                    reap_fabric_workers(siblings);
                    sweep_error_exit(&e);
                }
            };
            let s = out.result.summary();
            println!(
                "fig12: zcomp core cut {:.1}%, dram cut {:.1}%, speedup {:.2}x",
                s.zcomp_core_reduction * 100.0,
                s.zcomp_dram_reduction * 100.0,
                s.zcomp_speedup
            );
            // The JSON carries the scientific result only, so a resumed
            // run's file is byte-identical to an uninterrupted one.
            if let Some(path) = &args.json {
                save_json(path, &out.result);
            }
            (
                out.result.rows.len() * fig12::SCHEMES.len(),
                out.supervision,
            )
        }
        _ => {
            let out = match fullnet::run_sweep(args.scale, &opts) {
                Ok(out) => out,
                Err(e) => {
                    reap_fabric_workers(siblings);
                    sweep_error_exit(&e);
                }
            };
            let s = out.result.summary();
            println!(
                "fullnet: zcomp traffic cut {:.1}%/{:.1}% (train/infer), speedup {:.2}x/{:.2}x",
                s.zcomp_train_traffic * 100.0,
                s.zcomp_infer_traffic * 100.0,
                s.zcomp_train_speedup,
                s.zcomp_infer_speedup
            );
            if let Some(path) = &args.json {
                save_json(path, &out.result);
            }
            (
                out.result.rows.iter().map(|row| row.cells.len()).sum(),
                out.supervision,
            )
        }
    };
    reap_fabric_workers(siblings);
    let secs = t0.elapsed().as_secs_f64();
    match cache_contents(&args.traces) {
        Some((files, bytes)) => println!(
            "captured {cells} cells in {secs:.2}s; cache holds {files} traces ({:.1} MiB)",
            bytes as f64 / (1024.0 * 1024.0)
        ),
        None => println!("captured {cells} cells in {secs:.2}s"),
    }
    let code = report_supervision(&supervision);
    if code != 0 {
        std::process::exit(code);
    }
}
