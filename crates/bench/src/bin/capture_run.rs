//! Captures memory traces for a sweep into the persistent trace cache.
//!
//! Runs the Fig. 12 or full-network sweep with the trace cache enabled, so
//! every cold cell leaves a `.ztrc` file behind; subsequent `replay_run`
//! invocations (or warm sweeps) replay those files instead of
//! re-simulating. With `--refresh` existing traces are discarded first.
//!
//! ```text
//! capture_run <fig12|fullnet> [--scale N] [--traces DIR] [--threads N]
//!             [--refresh] [--quiet]
//! ```

use std::time::Instant;

use zcomp::experiments::{fig12, fullnet};
use zcomp::sweep::SweepOpts;
use zcomp_bench::{print_machine, SweepArgs};
use zcomp_dnn::deepbench::all_configs;
use zcomp_replay::CacheMode;

/// Sums the cache directory's trace files; errors just mean "unknown".
fn cache_contents(dir: &str) -> Option<(usize, u64)> {
    let mut files = 0;
    let mut bytes = 0;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        if entry.path().extension().is_some_and(|e| e == "ztrc") {
            files += 1;
            bytes += entry.metadata().ok()?.len();
        }
    }
    Some((files, bytes))
}

fn main() {
    let args = SweepArgs::from_env();
    print_machine();
    let mut opts = SweepOpts::default()
        .with_cache(&args.traces)
        .with_threads(args.effective_threads());
    if args.refresh {
        opts = opts.with_mode(CacheMode::Refresh);
    }
    println!(
        "capturing {} (scale {}, {} threads) into {}{}",
        args.experiment,
        args.scale,
        opts.threads,
        args.traces,
        if args.refresh { " [refresh]" } else { "" }
    );
    let t0 = Instant::now();
    let cells = match args.experiment.as_str() {
        "fig12" => {
            let r = fig12::run_sweep(&all_configs(), args.scale, 0.53, &opts);
            let s = r.summary();
            println!(
                "fig12: zcomp core cut {:.1}%, dram cut {:.1}%, speedup {:.2}x",
                s.zcomp_core_reduction * 100.0,
                s.zcomp_dram_reduction * 100.0,
                s.zcomp_speedup
            );
            r.rows.len() * fig12::SCHEMES.len()
        }
        _ => {
            let r = fullnet::run_sweep(args.scale, &opts);
            let s = r.summary();
            println!(
                "fullnet: zcomp traffic cut {:.1}%/{:.1}% (train/infer), speedup {:.2}x/{:.2}x",
                s.zcomp_train_traffic * 100.0,
                s.zcomp_infer_traffic * 100.0,
                s.zcomp_train_speedup,
                s.zcomp_infer_speedup
            );
            r.rows.iter().map(|row| row.cells.len()).sum()
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    match cache_contents(&args.traces) {
        Some((files, bytes)) => println!(
            "captured {cells} cells in {secs:.2}s; cache holds {files} traces ({:.1} MiB)",
            bytes as f64 / (1024.0 * 1024.0)
        ),
        None => println!("captured {cells} cells in {secs:.2}s"),
    }
}
