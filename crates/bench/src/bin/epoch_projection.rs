//! Extension: projects full training-epoch times on the §5.3 datasets
//! (Oxford Flowers; ImageNet 100k subset) per network and scheme.

use zcomp::experiments::epoch;
use zcomp_bench::{print_machine, print_table, FigArgs};
use zcomp_dnn::dataset::Dataset;
use zcomp_dnn::models::ModelId;

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    for dataset in [Dataset::oxford_flowers(), Dataset::imagenet_subset()] {
        let result = epoch::run(dataset, &ModelId::ALL, args.scale);
        print_table(&result.table());
    }
}
