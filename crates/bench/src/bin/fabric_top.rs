//! Live fleet dashboard over a sweep-fabric directory.
//!
//! Tails the per-worker event streams, journals, leases and tombstones
//! that fabric workers leave under `--fabric-dir` (see
//! [`zcomp::fleet`]) — strictly read-only, so it can run alongside the
//! workers it is watching:
//!
//! ```text
//! fabric_top <fabric-dir> [--experiment NAME] [--interval-ms MS]
//!            [--once] [--json]
//! ```
//!
//! By default the terminal view refreshes every `--interval-ms` (1000)
//! until every scanned experiment is complete. `--once` renders a single
//! snapshot and exits; with `--json` the snapshot is the raw
//! [`zcomp::fleet::FleetStatus`] document instead — the mode CI and
//! scripts consume. Workers are flagged `STALE` once their last event is
//! older than their own lease TTL (a live worker heartbeats every
//! quarter TTL) and `killed?` when their stream ends in a torn write.
//!
//! Exit codes: 0 once the fleet is complete (or on any `--once`
//! snapshot), 2 on usage errors, 1 when the fabric dir cannot be read.

use std::path::PathBuf;
use std::time::Duration;

use zcomp::fleet::{self, ExperimentStatus, FleetStatus, WorkerStatus};

struct Args {
    dir: PathBuf,
    experiment: Option<String>,
    interval: Duration,
    once: bool,
    json: bool,
}

const USAGE: &str =
    "usage: fabric_top <fabric-dir> [--experiment NAME] [--interval-ms MS] [--once] [--json]";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg} ({USAGE})");
    std::process::exit(2)
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Args {
    let mut dir = None;
    let mut experiment = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--experiment" => {
                experiment = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--experiment needs a name")),
                );
            }
            "--interval-ms" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--interval-ms needs a value"));
                let ms: u64 = v.parse().unwrap_or_else(|_| {
                    usage_exit(&format!("--interval-ms needs an integer, got `{v}`"))
                });
                interval = Duration::from_millis(ms.max(50));
            }
            "--once" => once = true,
            "--json" => json = true,
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => usage_exit(&format!("unknown argument: {other}")),
        }
    }
    Args {
        dir: dir.unwrap_or_else(|| usage_exit("missing fabric directory")),
        experiment,
        interval,
        once,
        json,
    }
}

fn scan(args: &Args) -> FleetStatus {
    let result = match &args.experiment {
        Some(name) => fleet::scan_experiment(&args.dir, name).map(|exp| FleetStatus {
            root: args.dir.display().to_string(),
            scanned_epoch_us: 0,
            experiments: vec![exp],
        }),
        None => fleet::scan(&args.dir),
    };
    match result {
        Ok(status) => status,
        Err(e) => {
            eprintln!("fabric_top: cannot scan {}: {e}", args.dir.display());
            std::process::exit(1);
        }
    }
}

fn worker_state(w: &WorkerStatus) -> String {
    if w.done {
        return if w.drained { "drained" } else { "done" }.to_string();
    }
    if w.truncated {
        return "killed?".to_string();
    }
    match w.last_event_age_ms {
        Some(age) if w.lease_ttl_ms > 0 && age > w.lease_ttl_ms => format!("STALE {age}ms"),
        Some(age) => format!("live {age}ms"),
        None => "unknown".to_string(),
    }
}

fn render_experiment(exp: &ExperimentStatus) {
    let cells = if exp.grid_known {
        format!("{}/{}", exp.done, exp.cells)
    } else {
        format!("{} journalled", exp.done)
    };
    println!(
        "experiment {}  cells {cells}  in-flight {}  quarantined {}  tombstones {}+{}",
        exp.experiment,
        exp.in_flight,
        exp.quarantined,
        exp.expired_tombstones,
        exp.released_tombstones
    );
    if let Some(latency) = &exp.latency {
        print!(
            "  cell latency p50/p95/p99 {:.1}/{:.1}/{:.1} ms",
            latency.p50 / 1e3,
            latency.p95 / 1e3,
            latency.p99 / 1e3
        );
    }
    if exp.throughput_cps > 0.0 {
        print!("  throughput {:.2} cells/s", exp.throughput_cps);
    }
    match exp.eta_s {
        Some(eta) => println!("  ETA {eta:.0}s"),
        None => println!(),
    }
    if exp.workers.is_empty() {
        println!("  (no event streams; run workers with the `events` feature for liveness)");
        return;
    }
    println!(
        "  {:<18} {:<12} {:>7} {:>8} {:>9} {:>7} {:>8} {:>11}",
        "worker", "state", "claims", "reclaims", "completed", "fenced", "retries", "quarantined"
    );
    for w in &exp.workers {
        println!(
            "  {:<18} {:<12} {:>7} {:>8} {:>9} {:>7} {:>8} {:>11}",
            w.worker,
            worker_state(w),
            w.claims,
            w.reclaims,
            w.completed,
            w.fenced,
            w.retries,
            w.quarantined
        );
    }
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    loop {
        let status = scan(&args);
        if args.json {
            match serde_json::to_string_pretty(&status) {
                Ok(json) => println!("{json}"),
                Err(e) => {
                    eprintln!("fabric_top: cannot serialize status: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            if !args.once {
                // Clear screen + home, like top(1), so the view refreshes
                // in place.
                print!("\x1B[2J\x1B[H");
            }
            println!("fabric_top — {}", status.root);
            if status.experiments.is_empty() {
                println!("(no fabric experiments found)");
            }
            for exp in &status.experiments {
                render_experiment(exp);
            }
        }
        let complete =
            !status.experiments.is_empty() && status.experiments.iter().all(|e| e.complete());
        if args.once || complete {
            break;
        }
        std::thread::sleep(args.interval);
    }
}
