//! Fault-injection campaign: detection rate, silent-corruption rate,
//! degradation overhead and desync distance, swept over fault rate ×
//! injection site, under the strong (separate headers + CRC32) and weak
//! (interleaved, no checksum) integrity policies. Campaign cells run
//! under the supervised runtime — a panicking (site, rate) cell is
//! quarantined and reported (exit 3) instead of aborting the campaign —
//! and the shared run flags apply: `--attempts`/`--deadline-ms` set the
//! supervision policy, and `--fabric-dir` (plus `--workers N`) runs the
//! campaign on the crash-safe multi-process lease fabric.

use zcomp::experiments::fault_campaign::{
    run_config_supervised, CampaignConfig, FaultCampaignResult,
};
use zcomp::report::pct;
use zcomp::sweep::SweepOutcome;
use zcomp_bench::{
    print_machine, print_table, reap_fabric_workers, report_supervision, spawn_fabric_workers,
    sweep_error_exit, SupervisedFigArgs,
};

#[derive(serde::Serialize)]
struct Output {
    strong: FaultCampaignResult,
    weak: FaultCampaignResult,
}

fn print_summary(label: &str, r: &FaultCampaignResult) {
    let s = r.summary();
    println!("== Fault campaign summary: {label} ==");
    println!(
        "stream hits {}   detection {}   silent {}   retry-recovered {}   fallbacks {}   max desync {} vectors",
        s.stream_hits,
        pct(s.detection_rate),
        s.silent_runs,
        s.recovered_runs,
        s.fallback_runs,
        s.max_desync_vectors
    );
    println!();
}

fn main() {
    let args = SupervisedFigArgs::from_env();
    print_machine();
    let cfg = CampaignConfig::default_scaled(args.fig.scale);
    let opts = args.sweep_opts();
    let siblings = spawn_fabric_workers(&args.run);
    // The two policies share the fabric directory safely: cell keys name
    // the policy and each campaign's journal fingerprint covers its
    // whole configuration.
    let run = |cfg: &CampaignConfig| -> SweepOutcome<FaultCampaignResult> {
        run_config_supervised(cfg, &opts).unwrap_or_else(|e| {
            sweep_error_exit(&e);
        })
    };
    let strong_out = run(&cfg);
    let weak_out = run(&cfg.clone().weak_policy());
    reap_fabric_workers(siblings);
    let (strong, weak) = (strong_out.result, weak_out.result);
    print_table(&strong.table());
    print_summary("separate headers + CRC32 (strong)", &strong);
    print_table(&weak.table());
    print_summary("interleaved, no checksum (weak)", &weak);
    args.fig.save_json(&Output { strong, weak });
    let code =
        report_supervision(&strong_out.supervision).max(report_supervision(&weak_out.supervision));
    if code != 0 {
        std::process::exit(code);
    }
}
