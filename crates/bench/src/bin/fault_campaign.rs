//! Fault-injection campaign: detection rate, silent-corruption rate,
//! degradation overhead and desync distance, swept over fault rate ×
//! injection site, under the strong (separate headers + CRC32) and weak
//! (interleaved, no checksum) integrity policies. Campaign cells run
//! under the supervised runtime — a panicking (site, rate) cell is
//! quarantined and reported (exit 3) instead of aborting the campaign.

use zcomp::experiments::fault_campaign::{
    run_config_supervised, CampaignConfig, FaultCampaignResult,
};
use zcomp::report::pct;
use zcomp::supervise::SuperviseOpts;
use zcomp::sweep::SupervisionReport;
use zcomp_bench::{print_machine, print_table, FigArgs};

#[derive(serde::Serialize)]
struct Output {
    strong: FaultCampaignResult,
    weak: FaultCampaignResult,
}

fn print_summary(label: &str, r: &FaultCampaignResult) {
    let s = r.summary();
    println!("== Fault campaign summary: {label} ==");
    println!(
        "stream hits {}   detection {}   silent {}   retry-recovered {}   fallbacks {}   max desync {} vectors",
        s.stream_hits,
        pct(s.detection_rate),
        s.silent_runs,
        s.recovered_runs,
        s.fallback_runs,
        s.max_desync_vectors
    );
    println!();
}

fn report_supervision(label: &str, supervision: &SupervisionReport) -> bool {
    if supervision.quarantined.is_empty() {
        return false;
    }
    eprintln!("supervision ({label}): {}", supervision.summary());
    for failure in &supervision.quarantined {
        eprintln!("quarantined: {failure}");
    }
    true
}

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let cfg = CampaignConfig::default_scaled(args.scale);
    let opts = SuperviseOpts::default();
    let strong_out = run_config_supervised(&cfg, &opts);
    let weak_out = run_config_supervised(&cfg.clone().weak_policy(), &opts);
    let (strong, weak) = (strong_out.result, weak_out.result);
    print_table(&strong.table());
    print_summary("separate headers + CRC32 (strong)", &strong);
    print_table(&weak.table());
    print_summary("interleaved, no checksum (weak)", &weak);
    args.save_json(&Output { strong, weak });
    let sick = report_supervision("strong", &strong_out.supervision)
        | report_supervision("weak", &weak_out.supervision);
    if sick {
        std::process::exit(3);
    }
}
