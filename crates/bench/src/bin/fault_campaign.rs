//! Fault-injection campaign: detection rate, silent-corruption rate,
//! degradation overhead and desync distance, swept over fault rate ×
//! injection site, under the strong (separate headers + CRC32) and weak
//! (interleaved, no checksum) integrity policies.

use zcomp::experiments::fault_campaign::{run_config, CampaignConfig, FaultCampaignResult};
use zcomp::report::pct;
use zcomp_bench::{print_machine, print_table, FigArgs};

#[derive(serde::Serialize)]
struct Output {
    strong: FaultCampaignResult,
    weak: FaultCampaignResult,
}

fn print_summary(label: &str, r: &FaultCampaignResult) {
    let s = r.summary();
    println!("== Fault campaign summary: {label} ==");
    println!(
        "stream hits {}   detection {}   silent {}   retry-recovered {}   fallbacks {}   max desync {} vectors",
        s.stream_hits,
        pct(s.detection_rate),
        s.silent_runs,
        s.recovered_runs,
        s.fallback_runs,
        s.max_desync_vectors
    );
    println!();
}

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let cfg = CampaignConfig::default_scaled(args.scale);
    let strong = run_config(&cfg);
    let weak = run_config(&cfg.clone().weak_policy());
    print_table(&strong.table());
    print_summary("separate headers + CRC32 (strong)", &strong);
    print_table(&weak.table());
    print_summary("interleaved, no checksum (weak)", &weak);
    args.save_json(&Output { strong, weak });
}
