//! Regenerates Figure 1: VGG-16 per-layer zero ratio across training
//! epochs and per-layer feature-map vs weight footprints (batch 64).

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let batch = (64 / args.scale).max(1);
    let result = zcomp::experiments::fig01::run(batch, &[1, 10, 30, 60, 90]);
    print_table(&result.table_sparsity());
    print_table(&result.table_footprint());
    args.save_json(&result);
}
