//! Regenerates Figure 2: CPU cycle breakdown (compute / memory / sync)
//! for the five DNN training benchmarks on the Table-1 machine.

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let result = zcomp::experiments::fig02::run(args.scale);
    print_table(&result.table());
    args.save_json(&result);
}
