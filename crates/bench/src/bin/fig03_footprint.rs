//! Regenerates Figure 3: memory footprint of key data structures for the
//! five DNN benchmarks at the paper's batch sizes.

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let result = zcomp::experiments::fig03::run();
    print_table(&result.table());
    args.save_json(&result);
}
