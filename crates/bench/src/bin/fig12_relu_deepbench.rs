//! Regenerates Figure 12: ReLU activation layers over the 44 DeepBench
//! shapes — core↔cache traffic (a), DRAM traffic (b) and runtime (c) for
//! avx512-vec, avx512-comp and zcomp. Also prints the §3.3 L2-prefetcher
//! effectiveness observed during the zcomp runs.

use zcomp::experiments::fig12::{self, Panel};
use zcomp::report::pct;
use zcomp_bench::{
    print_machine, print_table, reap_fabric_workers, report_supervision, spawn_fabric_workers,
    sweep_error_exit, SupervisedFigArgs,
};
use zcomp_dnn::deepbench::{all_configs, Suite};

fn main() {
    let args = SupervisedFigArgs::from_env();
    print_machine();
    // Supervised serial sweep (no cache): identical numbers to the plain
    // runner, but a panicking cell is quarantined instead of fatal. The
    // shared run flags apply — `--fabric-dir`/`--workers` put the sweep
    // on the multi-process lease fabric.
    let siblings = spawn_fabric_workers(&args.run);
    let out = fig12::run_sweep(&all_configs(), args.fig.scale, 0.53, &args.sweep_opts())
        .unwrap_or_else(|e| sweep_error_exit(&e));
    reap_fabric_workers(siblings);
    let result = out.result;
    for panel in [Panel::CoreTraffic, Panel::DramTraffic, Panel::Runtime] {
        print_table(&result.table(panel));
    }
    println!("== per-suite averages ==");
    for suite in Suite::ALL {
        let s = result.suite_summary(suite);
        println!(
            "{suite:<11} traffic cut (avx/zcomp): {} / {}   dram cut: {} / {}   zcomp speedup {:.2}x",
            pct(s.avx_core_reduction),
            pct(s.zcomp_core_reduction),
            pct(s.avx_dram_reduction),
            pct(s.zcomp_dram_reduction),
            s.zcomp_speedup
        );
    }
    println!();
    let s = result.summary();
    println!("== Figure 12 summary (paper values in parentheses) ==");
    println!(
        "core traffic reduction:  avx512-comp {} (42%)   zcomp {} (46%)",
        pct(s.avx_core_reduction),
        pct(s.zcomp_core_reduction)
    );
    println!(
        "DRAM traffic reduction:  avx512-comp {} (48%)   zcomp {} (54%)",
        pct(s.avx_dram_reduction),
        pct(s.zcomp_dram_reduction)
    );
    println!(
        "zcomp speedup vs avx512-vec:  {:.2}x (1.77x);  vs avx512-comp: {:.2}x (1.56x)",
        s.zcomp_speedup, s.zcomp_vs_avx_speedup
    );
    println!(
        "zcomp outliers slower than baseline: {} (paper: 2); max speedup {:.1}x (paper: up to 12x)",
        s.zcomp_outliers, s.max_zcomp_speedup
    );
    println!(
        "L2 prefetcher on zcomp runs: accuracy {} (98-99%), coverage {} (94-97%)",
        pct(result.zcomp_prefetch.accuracy()),
        pct(result.zcomp_prefetch.coverage())
    );
    args.fig.save_json(&result);
    let code = report_supervision(&out.supervision);
    if code != 0 {
        std::process::exit(code);
    }
}
