//! Regenerates Figure 12: ReLU activation layers over the 44 DeepBench
//! shapes — core↔cache traffic (a), DRAM traffic (b) and runtime (c) for
//! avx512-vec, avx512-comp and zcomp. Also prints the §3.3 L2-prefetcher
//! effectiveness observed during the zcomp runs.

use zcomp::experiments::fig12::{self, Panel};
use zcomp::report::pct;
use zcomp::sweep::SweepOpts;
use zcomp_bench::{print_machine, print_table, FigArgs};
use zcomp_dnn::deepbench::{all_configs, Suite};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    // Supervised serial sweep (no cache): identical numbers to the plain
    // runner, but a panicking cell is quarantined instead of fatal.
    let out = fig12::run_sweep(&all_configs(), args.scale, 0.53, &SweepOpts::serial())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let result = out.result;
    for panel in [Panel::CoreTraffic, Panel::DramTraffic, Panel::Runtime] {
        print_table(&result.table(panel));
    }
    println!("== per-suite averages ==");
    for suite in Suite::ALL {
        let s = result.suite_summary(suite);
        println!(
            "{suite:<11} traffic cut (avx/zcomp): {} / {}   dram cut: {} / {}   zcomp speedup {:.2}x",
            pct(s.avx_core_reduction),
            pct(s.zcomp_core_reduction),
            pct(s.avx_dram_reduction),
            pct(s.zcomp_dram_reduction),
            s.zcomp_speedup
        );
    }
    println!();
    let s = result.summary();
    println!("== Figure 12 summary (paper values in parentheses) ==");
    println!(
        "core traffic reduction:  avx512-comp {} (42%)   zcomp {} (46%)",
        pct(s.avx_core_reduction),
        pct(s.zcomp_core_reduction)
    );
    println!(
        "DRAM traffic reduction:  avx512-comp {} (48%)   zcomp {} (54%)",
        pct(s.avx_dram_reduction),
        pct(s.zcomp_dram_reduction)
    );
    println!(
        "zcomp speedup vs avx512-vec:  {:.2}x (1.77x);  vs avx512-comp: {:.2}x (1.56x)",
        s.zcomp_speedup, s.zcomp_vs_avx_speedup
    );
    println!(
        "zcomp outliers slower than baseline: {} (paper: 2); max speedup {:.1}x (paper: up to 12x)",
        s.zcomp_outliers, s.max_zcomp_speedup
    );
    println!(
        "L2 prefetcher on zcomp runs: accuracy {} (98-99%), coverage {} (94-97%)",
        pct(result.zcomp_prefetch.accuracy()),
        pct(result.zcomp_prefetch.coverage())
    );
    args.save_json(&result);
    if !out.supervision.quarantined.is_empty() {
        eprintln!("supervision: {}", out.supervision.summary());
        for failure in &out.supervision.quarantined {
            eprintln!("quarantined: {failure}");
        }
        std::process::exit(3);
    }
}
