//! Regenerates Figure 13: full-network data-traffic reduction for
//! training (batch 64; ResNet 128) and inference (batch 4). Cells run
//! under the supervised runtime; a sick cell is quarantined (exit 3)
//! instead of taking the figure down.

use zcomp::report::pct;
use zcomp_bench::{
    print_machine, print_table, reap_fabric_workers, report_supervision, spawn_fabric_workers,
    sweep_error_exit, SupervisedFigArgs,
};

fn main() {
    let args = SupervisedFigArgs::from_env();
    print_machine();
    let siblings = spawn_fabric_workers(&args.run);
    let out = zcomp::experiments::fullnet::run_sweep(args.fig.scale, &args.sweep_opts())
        .unwrap_or_else(|e| sweep_error_exit(&e));
    reap_fabric_workers(siblings);
    let result = out.result;
    print_table(&result.table_traffic());
    let s = result.summary();
    println!("== Figure 13 summary (paper values in parentheses) ==");
    println!(
        "training:  zcomp {} (31%)   avx512-comp {} (26%)",
        pct(s.zcomp_train_traffic),
        pct(s.avx_train_traffic)
    );
    println!(
        "inference: zcomp {} (23%)   avx512-comp {} (19%)",
        pct(s.zcomp_infer_traffic),
        pct(s.avx_infer_traffic)
    );
    args.fig.save_json(&result);
    let code = report_supervision(&out.supervision);
    if code != 0 {
        std::process::exit(code);
    }
}
