//! Regenerates Figure 13: full-network data-traffic reduction for
//! training (batch 64; ResNet 128) and inference (batch 4). Cells run
//! under the supervised runtime; a sick cell is quarantined (exit 3)
//! instead of taking the figure down.

use zcomp::report::pct;
use zcomp::sweep::SweepOpts;
use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let out = zcomp::experiments::fullnet::run_sweep(args.scale, &SweepOpts::serial())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let result = out.result;
    print_table(&result.table_traffic());
    let s = result.summary();
    println!("== Figure 13 summary (paper values in parentheses) ==");
    println!(
        "training:  zcomp {} (31%)   avx512-comp {} (26%)",
        pct(s.zcomp_train_traffic),
        pct(s.avx_train_traffic)
    );
    println!(
        "inference: zcomp {} (23%)   avx512-comp {} (19%)",
        pct(s.zcomp_infer_traffic),
        pct(s.avx_infer_traffic)
    );
    args.save_json(&result);
    if !out.supervision.quarantined.is_empty() {
        eprintln!("supervision: {}", out.supervision.summary());
        for failure in &out.supervision.quarantined {
            eprintln!("quarantined: {failure}");
        }
        std::process::exit(3);
    }
}
