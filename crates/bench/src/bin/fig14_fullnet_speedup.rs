//! Regenerates Figure 14: full-network speedup over the uncompressed
//! baseline for training and inference.

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let result = zcomp::experiments::fullnet::run(args.scale);
    print_table(&result.table_speedup());
    let s = result.summary();
    println!("== Figure 14 summary (paper values in parentheses) ==");
    println!(
        "training:  zcomp {:.3}x (1.11x)   avx512-comp {:.3}x (1.04x)",
        s.zcomp_train_speedup, s.avx_train_speedup
    );
    println!(
        "inference: zcomp {:.3}x (1.03x)   avx512-comp {:.3}x (0.98x)",
        s.zcomp_infer_speedup, s.avx_infer_speedup
    );
    println!(
        "avx512-comp slowdowns: {}/10 benchmarks (paper: 5/10)",
        s.avx_slowdowns
    );
    args.save_json(&result);
}
