//! Regenerates Figure 14: full-network speedup over the uncompressed
//! baseline for training and inference. Cells run under the supervised
//! runtime; a sick cell is quarantined (exit 3) instead of taking the
//! figure down.

use zcomp::sweep::SweepOpts;
use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let out = zcomp::experiments::fullnet::run_sweep(args.scale, &SweepOpts::serial())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let result = out.result;
    print_table(&result.table_speedup());
    let s = result.summary();
    println!("== Figure 14 summary (paper values in parentheses) ==");
    println!(
        "training:  zcomp {:.3}x (1.11x)   avx512-comp {:.3}x (1.04x)",
        s.zcomp_train_speedup, s.avx_train_speedup
    );
    println!(
        "inference: zcomp {:.3}x (1.03x)   avx512-comp {:.3}x (0.98x)",
        s.zcomp_infer_speedup, s.avx_infer_speedup
    );
    println!(
        "avx512-comp slowdowns: {}/10 benchmarks (paper: 5/10)",
        s.avx_slowdowns
    );
    args.save_json(&result);
    if !out.supervision.quarantined.is_empty() {
        eprintln!("supervision: {}", out.supervision.summary());
        for failure in &out.supervision.quarantined {
            eprintln!("quarantined: {failure}");
        }
        std::process::exit(3);
    }
}
