//! Regenerates Figure 14: full-network speedup over the uncompressed
//! baseline for training and inference. Cells run under the supervised
//! runtime; a sick cell is quarantined (exit 3) instead of taking the
//! figure down.

use zcomp_bench::{
    print_machine, print_table, reap_fabric_workers, report_supervision, spawn_fabric_workers,
    sweep_error_exit, SupervisedFigArgs,
};

fn main() {
    let args = SupervisedFigArgs::from_env();
    print_machine();
    let siblings = spawn_fabric_workers(&args.run);
    let out = zcomp::experiments::fullnet::run_sweep(args.fig.scale, &args.sweep_opts())
        .unwrap_or_else(|e| sweep_error_exit(&e));
    reap_fabric_workers(siblings);
    let result = out.result;
    print_table(&result.table_speedup());
    let s = result.summary();
    println!("== Figure 14 summary (paper values in parentheses) ==");
    println!(
        "training:  zcomp {:.3}x (1.11x)   avx512-comp {:.3}x (1.04x)",
        s.zcomp_train_speedup, s.avx_train_speedup
    );
    println!(
        "inference: zcomp {:.3}x (1.03x)   avx512-comp {:.3}x (0.98x)",
        s.zcomp_infer_speedup, s.avx_infer_speedup
    );
    println!(
        "avx512-comp slowdowns: {}/10 benchmarks (paper: 5/10)",
        s.avx_slowdowns
    );
    args.fig.save_json(&result);
    let code = report_supervision(&out.supervision);
    if code != 0 {
        std::process::exit(code);
    }
}
