//! Regenerates Figure 15: ZCOMP's compression ratio vs cache compression
//! (LimitCC upper bound and practical TwoTagCC, both FPC-D based) on
//! random feature-map snapshots of the five networks.

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = (4 << 20) / args.scale.max(1);
    let result = zcomp::experiments::fig15::run(5, elements.max(16 * 1024));
    print_table(&result.table());
    let (z, l, t) = result.geomeans();
    println!("== Figure 15 summary (paper values in parentheses) ==");
    println!("geomean ratios: zcomp {z:.2} (1.8), limitcc {l:.2} (1.54), twotagcc {t:.2} (1.1)");
    args.save_json(&result);
}
