//! Post-sweep fleet report: merged Perfetto timeline + markdown summary.
//!
//! After a multi-process fabric sweep ran with the `events` feature, each
//! worker left a CRC-guarded event stream under
//! `<fabric-dir>/<experiment>/events/`. This binary merges those streams
//! into one Chrome `trace_event` timeline — one process per worker,
//! clocks aligned via each stream's wall-clock epoch anchor, lease
//! lifecycles as async spans ([`zcomp::fleet::merged_trace`]) — and
//! writes a per-worker markdown summary table next to it:
//!
//! ```text
//! fleet_report <fabric-dir> [--experiment NAME] [--out-dir DIR] [--quiet]
//! ```
//!
//! Produces, under `--out-dir` (default `results/`):
//!
//! * `fleet_trace_<experiment>.json` — merged timeline, loadable in
//!   Perfetto / `chrome://tracing`;
//! * `fleet_report.md` — fleet status table ([`zcomp::fleet::markdown`]).
//!
//! Every merged trace is self-validated (balanced async spans, sorted
//! timestamps, one pid per worker) before it is written; validation
//! failure exits non-zero so CI can use this as a smoke check.

use std::path::PathBuf;

use zcomp::fleet;
use zcomp_trace::chrome;

struct Args {
    dir: PathBuf,
    experiment: Option<String>,
    out_dir: String,
    quiet: bool,
}

const USAGE: &str =
    "usage: fleet_report <fabric-dir> [--experiment NAME] [--out-dir DIR] [--quiet]";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg} ({USAGE})");
    std::process::exit(2)
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Args {
    let mut dir = None;
    let mut experiment = None;
    let mut out_dir = "results".to_string();
    let mut quiet = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--experiment" => {
                experiment = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--experiment needs a name")),
                );
            }
            "--out-dir" => {
                out_dir = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--out-dir needs a path"));
            }
            "--quiet" => quiet = true,
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => usage_exit(&format!("unknown argument: {other}")),
        }
    }
    Args {
        dir: dir.unwrap_or_else(|| usage_exit("missing fabric directory")),
        experiment,
        out_dir,
        quiet,
    }
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let status = match fleet::scan(&args.dir) {
        Ok(status) => status,
        Err(e) => {
            eprintln!("fleet_report: cannot scan {}: {e}", args.dir.display());
            std::process::exit(1);
        }
    };
    let experiments: Vec<String> = status
        .experiments
        .iter()
        .map(|e| e.experiment.clone())
        .filter(|name| args.experiment.as_ref().is_none_or(|want| want == name))
        .collect();
    if experiments.is_empty() {
        eprintln!(
            "fleet_report: no matching fabric experiments under {}",
            args.dir.display()
        );
        std::process::exit(1);
    }
    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("error: cannot create {}: {e}", args.out_dir);
        std::process::exit(1);
    }

    for name in &experiments {
        let json = match fleet::merged_trace(&args.dir, name) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("fleet_report: cannot merge streams for {name}: {e}");
                std::process::exit(1);
            }
        };
        let check = match chrome::validate(&json) {
            Ok(check) => check,
            Err(e) => {
                eprintln!("fleet_report: merged trace for {name} failed validation: {e}");
                std::process::exit(1);
            }
        };
        let path = format!("{}/fleet_trace_{name}.json", args.out_dir);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        if !args.quiet {
            println!(
                "{name}: {} workers, {} lease spans, {} counters, {} instants over {} us",
                check.pids, check.async_spans, check.counters, check.instants, check.max_ts_us
            );
            println!("wrote {path}");
        }
    }

    let mut status = status;
    status
        .experiments
        .retain(|e| experiments.contains(&e.experiment));
    let md = fleet::markdown(&status);
    let md_path = format!("{}/fleet_report.md", args.out_dir);
    if let Err(e) = std::fs::write(&md_path, &md) {
        eprintln!("error: cannot write {md_path}: {e}");
        std::process::exit(1);
    }
    if !args.quiet {
        println!("wrote {md_path}");
    }
}
