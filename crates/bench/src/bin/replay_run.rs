//! Replays cached memory traces through the sweep engine.
//!
//! The warm path of the capture/replay split: cells whose traces exist
//! under `--traces` are reproduced from disk without regenerating
//! workloads; missing cells simulate (and capture) as usual. Cells run
//! under the supervised runtime, so a corrupt cached trace is quarantined
//! and regenerated instead of failing the replay.
//!
//! * `--verify` re-runs the experiment in-process and asserts the replayed
//!   statistics are identical — the end-to-end fidelity check.
//! * `--bench PATH` times cold capture vs warm serial vs warm parallel
//!   replay and writes the measurements as JSON (see `BENCH_replay.json`).
//!
//! ```text
//! replay_run <fig12|fullnet> [--scale N] [--traces DIR] [--threads N]
//!            [--verify] [--bench PATH] [--resume] [--json PATH]
//!            [--fabric-dir DIR] [--worker-id ID] [--lease-ttl-ms MS]
//!            [--workers N] [--quiet]
//! ```
//!
//! With `--fabric-dir` the plain replay sweep joins the multi-process
//! lease fabric (see `capture_run`); `--verify` and `--bench` stay
//! single-process.

use std::time::Instant;

use serde::Serialize;
use zcomp::experiments::{fig12, fullnet};
use zcomp::sweep::{SweepError, SweepOpts};
use zcomp_bench::{
    print_machine, reap_fabric_workers, save_json, spawn_fabric_workers, sweep_error_exit,
    SweepArgs,
};
use zcomp_dnn::deepbench::all_configs;
use zcomp_replay::CacheMode;

fn sweep_fail(e: SweepError) -> ! {
    sweep_error_exit(&e)
}

/// One timed sweep; returns (cells, quarantined, seconds).
fn timed_sweep(args: &SweepArgs, opts: &SweepOpts) -> (usize, usize, f64) {
    let t0 = Instant::now();
    let (cells, quarantined) = match args.experiment.as_str() {
        "fig12" => {
            let out = fig12::run_sweep(&all_configs(), args.scale, 0.53, opts)
                .unwrap_or_else(|e| sweep_fail(e));
            if let Some(path) = &args.json {
                save_json(path, &out.result);
            }
            (
                out.result.rows.len() * fig12::SCHEMES.len(),
                out.supervision.quarantined.len(),
            )
        }
        _ => {
            let out = fullnet::run_sweep(args.scale, opts).unwrap_or_else(|e| sweep_fail(e));
            if let Some(path) = &args.json {
                save_json(path, &out.result);
            }
            (
                out.result.rows.iter().map(|row| row.cells.len()).sum(),
                out.supervision.quarantined.len(),
            )
        }
    };
    (cells, quarantined, t0.elapsed().as_secs_f64())
}

/// Replays the sweep and checks it against a from-scratch in-process run.
/// Returns whether the statistics matched exactly.
fn verify(args: &SweepArgs, opts: &SweepOpts) -> bool {
    match args.experiment.as_str() {
        "fig12" => {
            let configs = all_configs();
            let replayed = fig12::run_sweep(&configs, args.scale, 0.53, opts)
                .unwrap_or_else(|e| sweep_fail(e));
            let reference = fig12::run_configs(&configs, args.scale, 0.53);
            if !replayed.result.quarantined.is_empty() {
                eprintln!("verify: fig12 replay quarantined cells");
                return false;
            }
            let rows_ok = replayed.result.rows == reference.rows;
            let prefetch_ok = replayed.result.zcomp_prefetch == reference.zcomp_prefetch;
            if !rows_ok {
                eprintln!("verify: fig12 rows differ between replay and in-process run");
            }
            if !prefetch_ok {
                eprintln!("verify: fig12 prefetch stats differ");
            }
            rows_ok && prefetch_ok
        }
        _ => {
            let replayed = fullnet::run_sweep(args.scale, opts).unwrap_or_else(|e| sweep_fail(e));
            let reference = fullnet::run(args.scale);
            if !replayed.result.quarantined.is_empty() {
                eprintln!("verify: fullnet replay quarantined cells");
                return false;
            }
            let ok = replayed.result.rows == reference.rows;
            if !ok {
                eprintln!("verify: fullnet rows differ between replay and in-process run");
            }
            ok
        }
    }
}

/// The record written by `--bench`.
#[derive(Debug, Serialize)]
struct BenchRecord {
    experiment: String,
    scale: usize,
    threads: usize,
    host_cores: usize,
    cells: usize,
    cold_capture_secs: f64,
    warm_serial_secs: f64,
    warm_parallel_secs: f64,
    warm_serial_speedup_vs_cold: f64,
    warm_parallel_speedup_vs_cold: f64,
}

fn bench(args: &SweepArgs, path: &str) {
    let threads = args.effective_threads();
    let cache = |mode: CacheMode, threads: usize| {
        args.sweep_opts()
            .with_threads(threads)
            .with_mode(mode)
            .with_resume(false)
    };
    println!("bench: cold capture (serial, refresh)...");
    let (cells, _, cold) = timed_sweep(args, &cache(CacheMode::Refresh, 1));
    println!("bench: warm replay (serial)...");
    let (_, _, warm_serial) = timed_sweep(args, &cache(CacheMode::Auto, 1));
    println!("bench: warm replay ({threads} threads)...");
    let (_, _, warm_parallel) = timed_sweep(args, &cache(CacheMode::Auto, threads));
    let record = BenchRecord {
        experiment: args.experiment.clone(),
        scale: args.scale,
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells,
        cold_capture_secs: cold,
        warm_serial_secs: warm_serial,
        warm_parallel_secs: warm_parallel,
        warm_serial_speedup_vs_cold: cold / warm_serial,
        warm_parallel_speedup_vs_cold: cold / warm_parallel,
    };
    println!(
        "bench: cold {cold:.2}s, warm serial {warm_serial:.2}s ({:.2}x), \
         warm parallel {warm_parallel:.2}s ({:.2}x)",
        record.warm_serial_speedup_vs_cold, record.warm_parallel_speedup_vs_cold
    );
    match serde_json::to_string_pretty(&record) {
        Ok(text) => match std::fs::write(path, text + "\n") {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        },
        Err(e) => eprintln!("cannot serialize bench record: {e}"),
    }
}

fn main() {
    let args = SweepArgs::from_env();
    print_machine();
    if let Some(path) = &args.bench {
        bench(&args, path);
        return;
    }
    let opts = args.sweep_opts();
    if args.verify {
        println!(
            "replaying {} (scale {}) from {} and verifying against an in-process run",
            args.experiment, args.scale, args.traces
        );
        if verify(&args, &opts) {
            println!("verify: OK — replayed statistics are identical");
        } else {
            eprintln!("verify: FAILED");
            std::process::exit(1);
        }
        return;
    }
    println!(
        "replaying {} (scale {}, {} threads) from {}",
        args.experiment, args.scale, opts.threads, args.traces
    );
    let siblings = spawn_fabric_workers(&args.run);
    let (cells, quarantined, secs) = timed_sweep(&args, &opts);
    reap_fabric_workers(siblings);
    println!("replayed {cells} cells in {secs:.2}s ({quarantined} quarantined)");
    if quarantined > 0 {
        std::process::exit(3);
    }
}
