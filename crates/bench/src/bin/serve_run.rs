//! Open-loop serving sweep: sustainable QPS at fixed p99, compressed vs
//! uncompressed — plus the chaos grid behind `--chaos`.
//!
//! Default mode runs the `zcomp::serve` knee search over the serving grid
//! (GoogLeNet and VGG-16 by default): per network, two
//! identically-configured serving nodes — same tenants, same seeded
//! arrival traces, same p99 SLO derived from the uncompressed solo batch
//! latency — differing only in the feature-map scheme. The headline table
//! reports the knee (highest sustainable offered QPS) per scheme and the
//! compressed/uncompressed ratio.
//!
//! `--chaos` runs the resilience grid instead: per codec fault rate,
//! three identically-loaded nodes under the same seeded instance-crash
//! schedule — uncompressed, compressed-hard-fail, and
//! compressed-degraded (the PR-1 retry-then-uncompressed brownout) —
//! reporting goodput and per-class p99, plus a fixed-fleet vs autoscaled
//! knee comparison under chaos.
//!
//! Cells run under the supervised sweep runtime (`run_cells`): panic
//! quarantine, retries, `--resume`, and the multi-process lease fabric
//! via `--fabric-dir`/`--workers` all behave as in the other sweep
//! binaries. Exit codes: 0 clean, 1 I/O error, 2 usage, 3 quarantined
//! cells, 4 fabric drained.
//!
//! `--smoke` runs the CI gate instead: the short smoke grid twice,
//! asserting the two runs serialize byte-identically and that the
//! compressed knee is at least the uncompressed one; then the chaos smoke
//! grid twice, asserting byte-identical replay under crashes + codec
//! faults, zero request-level hard failures in degraded mode, and
//! degraded goodput at least hard-fail goodput at every fault rate.
//!
//! ```text
//! serve_run [--smoke] [--chaos] [--quick|--scale N] [--threads N]
//!           [--json PATH] [--bench PATH] [--resume] [--attempts N]
//!           [--deadline-ms MS] [--fabric-dir DIR] [--worker-id ID]
//!           [--lease-ttl-ms MS] [--workers N] [--quiet]
//! ```

use std::process::exit;

use serde::Serialize;
use zcomp::experiments::serve::{run, run_sweep, ServeGridSpec, ServeResult};
use zcomp::experiments::serve_chaos::{self, ChaosGridSpec, ChaosResult};
use zcomp::serve::determinism::require_byte_identical;
use zcomp::serve::slo::SloClass;
use zcomp::sweep::SweepOpts;
use zcomp_bench::{
    print_machine, print_table, reap_fabric_workers, report_supervision, save_json,
    spawn_fabric_workers, sweep_error_exit, RunFlags,
};

struct Args {
    scale: usize,
    threads: usize,
    json: Option<String>,
    bench: Option<String>,
    smoke: bool,
    chaos: bool,
    quiet: bool,
    run: RunFlags,
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: serve_run [--smoke] [--chaos] [--quick|--scale N] [--threads N] \
         [--json PATH] [--bench PATH] [--quiet], {}",
        RunFlags::USAGE
    );
    exit(2);
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| usage_exit(&format!("{flag}: invalid number {text:?}")))
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: 1,
        threads: 0,
        json: None,
        bench: None,
        smoke: false,
        chaos: false,
        quiet: false,
        run: RunFlags::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match out.run.accept(&arg, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => usage_exit(&e.to_string()),
        }
        match arg.as_str() {
            "--quick" => out.scale = 64,
            "--scale" => {
                out.scale = parse_num("--scale", &value_of(&mut it, "--scale"));
                if out.scale < 1 {
                    usage_exit("--scale must be >= 1");
                }
            }
            "--threads" => out.threads = parse_num("--threads", &value_of(&mut it, "--threads")),
            "--json" => out.json = Some(value_of(&mut it, "--json")),
            "--bench" => out.bench = Some(value_of(&mut it, "--bench")),
            "--smoke" => out.smoke = true,
            "--chaos" => out.chaos = true,
            "--quiet" => out.quiet = true,
            other => usage_exit(&format!("unknown argument: {other}")),
        }
    }
    if out.run.workers > 1 && out.run.fabric_dir.is_none() {
        usage_exit("--workers needs --fabric-dir");
    }
    if out.quiet {
        zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
    }
    out
}

/// The `BENCH_serve.json` record: the knee QPS pair per network.
#[derive(Serialize)]
struct BenchRecord {
    benchmark: &'static str,
    scale: usize,
    networks: Vec<BenchNetwork>,
    mean_knee_ratio: f64,
}

#[derive(Serialize)]
struct BenchNetwork {
    network: String,
    max_batch: usize,
    slo_p99_us: f64,
    uncompressed_knee_qps: f64,
    compressed_knee_qps: f64,
    knee_ratio: f64,
}

fn bench_record(result: &ServeResult, scale: usize) -> BenchRecord {
    let networks: Vec<BenchNetwork> = result
        .rows
        .iter()
        .map(|r| BenchNetwork {
            network: r.model.to_string(),
            max_batch: r.max_batch,
            slo_p99_us: r.uncompressed.slo_p99_us,
            uncompressed_knee_qps: r.uncompressed.knee_qps,
            compressed_knee_qps: r.compressed.knee_qps,
            knee_ratio: r.knee_ratio(),
        })
        .collect();
    let mean_knee_ratio = if networks.is_empty() {
        0.0
    } else {
        networks.iter().map(|n| n.knee_ratio).sum::<f64>() / networks.len() as f64
    };
    BenchRecord {
        benchmark: "serve_knee",
        scale,
        networks,
        mean_knee_ratio,
    }
}

/// The `BENCH_serve_chaos.json` record: goodput and per-class p99 per
/// (fault rate, mode), plus the chaos knee comparison.
#[derive(Serialize)]
struct ChaosBenchRecord {
    benchmark: &'static str,
    scale: usize,
    rows: Vec<ChaosBenchRow>,
    fixed_knee_qps: f64,
    autoscaled_knee_qps: f64,
}

#[derive(Serialize)]
struct ChaosBenchRow {
    fault_rate: f64,
    mode: String,
    goodput_qps: f64,
    p99_interactive_ms: f64,
    p99_batch_ms: f64,
    completed: u64,
    failed: u64,
    codec_fallbacks: u64,
    crashes: u64,
}

fn chaos_bench_record(result: &ChaosResult, scale: usize) -> ChaosBenchRecord {
    let class_p99_ms = |p: &zcomp::serve::engine::RatePoint, class: SloClass| {
        p.classes
            .iter()
            .find(|c| c.class == class)
            .map_or(0.0, |c| c.p99_us / 1_000.0)
    };
    let rows = result
        .cells
        .iter()
        .filter_map(|cell| {
            cell.point.as_ref().map(|p| ChaosBenchRow {
                fault_rate: cell.fault_rate,
                mode: cell.mode.label().to_string(),
                goodput_qps: p.goodput_qps,
                p99_interactive_ms: class_p99_ms(p, SloClass::Interactive),
                p99_batch_ms: class_p99_ms(p, SloClass::Batch),
                completed: p.completed,
                failed: p.failed,
                codec_fallbacks: p.codec_fallbacks,
                crashes: p.crashes,
            })
        })
        .collect();
    ChaosBenchRecord {
        benchmark: "serve_chaos",
        scale,
        rows,
        fixed_knee_qps: result.autoscale.fixed.as_ref().map_or(0.0, |c| c.knee_qps),
        autoscaled_knee_qps: result
            .autoscale
            .autoscaled
            .as_ref()
            .map_or(0.0, |c| c.knee_qps),
    }
}

/// One OK/FAIL line; returns 1 on failure so callers can sum.
fn check(ok: bool, ok_msg: &str, fail_msg: &str) -> u32 {
    if ok {
        println!("OK   {ok_msg}");
        0
    } else {
        println!("FAIL {fail_msg}");
        1
    }
}

/// CI smoke gate: the knee smoke grid twice (byte-identical, compressed
/// knee >= uncompressed), then the chaos smoke grid twice (byte-identical
/// under crashes + codec faults, degraded mode never hard-fails, degraded
/// goodput >= hard-fail goodput).
fn smoke() -> ! {
    let mut failures = 0;

    let grid = ServeGridSpec::smoke_grid();
    let first = run(&grid);
    let second = run(&grid);
    print_table(&first.table());
    match require_byte_identical(&first.rows, &second.rows) {
        Ok(()) => println!("OK   serve re-execution is byte-identical"),
        Err(e) => {
            println!("FAIL serve re-execution differs: {e}");
            failures += 1;
        }
    }
    for row in &first.rows {
        let (un, co) = (row.uncompressed.knee_qps, row.compressed.knee_qps);
        failures += check(
            un > 0.0 && co >= un,
            &format!(
                "{}: compressed knee {:.1} qps >= uncompressed {:.1} qps",
                row.model, co, un
            ),
            &format!(
                "{}: compressed knee {:.1} qps vs uncompressed {:.1} qps",
                row.model, co, un
            ),
        );
    }

    let chaos_grid = ChaosGridSpec::smoke_grid();
    let chaos_first = serve_chaos::run(&chaos_grid);
    let chaos_second = serve_chaos::run(&chaos_grid);
    print_table(&chaos_first.table());
    match require_byte_identical(&chaos_first, &chaos_second) {
        Ok(()) => println!("OK   chaos re-execution is byte-identical (crashes + codec faults)"),
        Err(e) => {
            println!("FAIL chaos re-execution differs: {e}");
            failures += 1;
        }
    }
    let crashes: u64 = chaos_first
        .cells
        .iter()
        .filter_map(|c| c.point.as_ref())
        .map(|p| p.crashes)
        .sum();
    failures += check(
        crashes > 0,
        &format!("chaos crash process ran ({crashes} crashes across the grid)"),
        "chaos grid saw no crashes — the chaos process did not run",
    );
    failures += check(
        chaos_first.degraded_never_hard_fails(),
        "degraded mode hard-failed zero requests",
        "degraded mode hard-failed requests — the brownout path leaked failures",
    );
    failures += check(
        chaos_first.degraded_goodput_dominates(),
        "degraded goodput >= hard-fail goodput at every fault rate",
        "hard-fail goodput beat degraded goodput at some fault rate",
    );

    if failures > 0 {
        println!("serve smoke: {failures} check(s) FAILED");
        exit(1);
    }
    println!("serve smoke: all checks passed");
    exit(0);
}

fn chaos_main(args: &Args, threads: usize) -> ! {
    let grid = ChaosGridSpec::default_grid().scaled(args.scale);
    println!(
        "chaos sweep: {} fault rates x {} modes + 2 knee cells, {} tenants, {} arrivals/tenant, {} threads",
        grid.fault_rates.len(),
        serve_chaos::MODES.len(),
        grid.params.tenants,
        grid.params.arrivals_per_tenant,
        threads
    );
    let opts = args.run.apply(SweepOpts::default().with_threads(threads));
    let siblings = spawn_fabric_workers(&args.run);
    let out = match serve_chaos::run_sweep(&grid, &opts) {
        Ok(out) => out,
        Err(e) => {
            reap_fabric_workers(siblings);
            sweep_error_exit(&e);
        }
    };
    reap_fabric_workers(siblings);

    print_table(&out.result.table());
    print_table(&out.result.autoscale_table());
    if out.result.degraded_never_hard_fails() && out.result.degraded_goodput_dominates() {
        println!(
            "degrade policy held: zero hard failures, goodput >= hard-fail at every fault rate"
        );
    } else {
        println!("warning: degrade policy did not dominate hard-fail on this grid");
    }
    if let Some(path) = &args.json {
        save_json(path, &out.result);
    }
    if let Some(path) = &args.bench {
        save_json(path, &chaos_bench_record(&out.result, args.scale));
    }
    exit(report_supervision(&out.supervision));
}

fn main() {
    let args = parse_args();
    if args.smoke {
        smoke();
    }
    print_machine();
    let threads = if args.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        args.threads
    };
    if args.chaos {
        chaos_main(&args, threads);
    }
    let grid = ServeGridSpec::default_grid().scaled(args.scale);
    println!(
        "serving sweep: {} networks x 2 schemes, {} tenants, {} arrivals/tenant, {} threads",
        grid.networks.len(),
        grid.params.tenants,
        grid.params.arrivals_per_tenant,
        threads
    );
    let opts = args.run.apply(SweepOpts::default().with_threads(threads));
    let siblings = spawn_fabric_workers(&args.run);
    let out = match run_sweep(&grid, &opts) {
        Ok(out) => out,
        Err(e) => {
            reap_fabric_workers(siblings);
            sweep_error_exit(&e);
        }
    };
    reap_fabric_workers(siblings);

    print_table(&out.result.table());
    for row in &out.result.rows {
        println!(
            "{}: {} rate points probed per scheme, p99 bound {:.2} ms, knee ratio {:.3}x",
            row.model,
            row.uncompressed.points.len(),
            row.uncompressed.slo_p99_us / 1_000.0,
            row.knee_ratio()
        );
    }
    if out.result.all_compressed_higher() {
        println!("compression sustains strictly higher QPS at the same p99 on every network");
    } else {
        println!("warning: compressed knee did not beat uncompressed on every network");
    }
    if let Some(path) = &args.json {
        save_json(path, &out.result);
    }
    if let Some(path) = &args.bench {
        save_json(path, &bench_record(&out.result, args.scale));
    }
    exit(report_supervision(&out.supervision));
}
