//! Extension sweep: batch-size effect on the feature-map vs weight
//! footprint balance (§2.3's motivation for larger batches stressing the
//! memory system).

use zcomp_bench::{print_machine, print_table, FigArgs};
use zcomp_dnn::models::ModelId;

fn main() {
    let _args = FigArgs::from_env();
    print_machine();
    for model in ModelId::ALL {
        let result = zcomp::experiments::sweeps::batch_sweep(model, &[1, 4, 16, 64, 128, 256]);
        print_table(&result.table());
    }
}
