//! Extension sweep: batch-size effect on the feature-map vs weight
//! footprint balance (§2.3's motivation for larger batches stressing the
//! memory system). Each model sweeps as a supervised cell, so one sick
//! model is quarantined (exit 3) instead of losing the other tables.

use zcomp::experiments::sweeps::batch_sweep;
use zcomp_bench::{print_machine, print_table, run_supervised, FigArgs};
use zcomp_dnn::models::ModelId;

const BATCHES: [usize; 6] = [1, 4, 16, 64, 128, 256];

fn main() {
    let _args = FigArgs::from_env();
    print_machine();
    let (outcomes, code) = run_supervised(
        "sweep_batch",
        ModelId::ALL.len(),
        |i| format!("model={}", ModelId::ALL[i]),
        |i| {
            let model = ModelId::ALL[i];
            Box::new(move || batch_sweep(model, &BATCHES))
        },
    );
    for outcome in &outcomes {
        if let Some(result) = outcome.value() {
            print_table(&result.table());
        }
    }
    if code != 0 {
        std::process::exit(code);
    }
}
