//! Extension sweep: scheme sensitivity to feature-map sparsity on a
//! DeepBench-scale ReLU layer (complements §4.1's break-even analysis).

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = (16 << 20) / args.scale.max(1);
    let result = zcomp::experiments::sweeps::sparsity_sweep(
        elements.max(64 * 1024),
        &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.53, 0.6, 0.7, 0.8, 0.9],
    );
    print_table(&result.table());
    args.save_json(&result);
}
