//! Extension sweep: scheme sensitivity to feature-map sparsity on a
//! DeepBench-scale ReLU layer (complements §4.1's break-even analysis).
//! Each sparsity point simulates as a supervised cell; quarantined points
//! are omitted from the table and reported on stderr (exit 3).

use zcomp::experiments::sweeps::{sparsity_sweep, SparsitySweepResult};
use zcomp_bench::{print_machine, print_table, run_supervised, FigArgs};

const SPARSITIES: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.53, 0.6, 0.7, 0.8, 0.9];

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = ((16 << 20) / args.scale.max(1)).max(64 * 1024);
    let (outcomes, code) = run_supervised(
        "sweep_sparsity",
        SPARSITIES.len(),
        |i| format!("elements={elements};sparsity={}", SPARSITIES[i]),
        |i| {
            let sparsity = SPARSITIES[i];
            Box::new(move || sparsity_sweep(elements, &[sparsity]).points[0])
        },
    );
    let result = SparsitySweepResult {
        points: outcomes.iter().filter_map(|o| o.value().copied()).collect(),
    };
    print_table(&result.table());
    args.save_json(&result);
    if code != 0 {
        std::process::exit(code);
    }
}
