//! Extension sweep: thread-count scalability of the three ReLU schemes
//! (§4.3's partitioned-parallelization scaling argument).

use zcomp_bench::{print_machine, print_table, FigArgs};

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = (16 << 20) / args.scale.max(1);
    let result = zcomp::experiments::thread_sweep::run(elements.max(128 * 1024), &[1, 2, 4, 8, 16]);
    print_table(&result.table());
    args.save_json(&result);
}
