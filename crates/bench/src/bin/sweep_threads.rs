//! Extension sweep: thread-count scalability of the three ReLU schemes
//! (§4.3's partitioned-parallelization scaling argument). Each thread
//! count simulates as a supervised cell; quarantined points are omitted
//! from the table and reported on stderr (exit 3).

use zcomp::experiments::thread_sweep::{self, ThreadSweepResult};
use zcomp_bench::{print_machine, print_table, run_supervised, FigArgs};

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let args = FigArgs::from_env();
    print_machine();
    let elements = ((16 << 20) / args.scale.max(1)).max(128 * 1024);
    let (outcomes, code) = run_supervised(
        "sweep_threads",
        THREAD_COUNTS.len(),
        |i| format!("elements={elements};threads={}", THREAD_COUNTS[i]),
        |i| {
            let threads = THREAD_COUNTS[i];
            Box::new(move || thread_sweep::run(elements, &[threads]).points)
        },
    );
    let result = ThreadSweepResult {
        elements,
        points: outcomes
            .iter()
            .filter_map(|o| o.value())
            .flat_map(|points| points.iter().copied())
            .collect(),
    };
    print_table(&result.table());
    args.save_json(&result);
    if code != 0 {
        std::process::exit(code);
    }
}
