//! Runs an experiment under the tracer and writes the trace artifacts.
//!
//! ```text
//! trace_run <fig12|fullnet> [--scale N] [--out-dir DIR]
//! ```
//!
//! Produces, under `--out-dir` (default `results/`; `--out` is accepted
//! as an alias for compatibility with earlier invocations):
//!
//! * `trace_<exp>.json` — Chrome `trace_event` JSON, loadable in
//!   Perfetto / `chrome://tracing`;
//! * `counters_<exp>.csv` — counter samples as a CSV time series.
//!
//! The binary self-validates the emitted trace (balanced B/E spans,
//! non-decreasing timestamps, numeric counters) and exits non-zero if
//! the check fails, so CI can run it as a smoke test.

use zcomp_trace::{chrome, csv, log_info, tracer};

struct Args {
    experiment: String,
    scale: usize,
    out_dir: String,
}

const USAGE: &str = "usage: trace_run <fig12|fullnet> [--scale N] [--out-dir DIR]";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg} ({USAGE})");
    std::process::exit(2)
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Args {
    let mut experiment = None;
    let mut scale = 64;
    let mut out_dir = "results".to_string();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--scale needs a value"));
                scale = v.parse().unwrap_or_else(|_| {
                    usage_exit(&format!("--scale needs an integer, got `{v}`"))
                });
                if scale < 1 {
                    usage_exit("--scale must be >= 1");
                }
            }
            "--out-dir" | "--out" => {
                out_dir = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--out-dir needs a path"));
            }
            other if experiment.is_none() && !other.starts_with('-') => {
                if other != "fig12" && other != "fullnet" {
                    usage_exit(&format!("unknown experiment: {other}"));
                }
                experiment = Some(other.to_string());
            }
            other => usage_exit(&format!("unknown argument: {other}")),
        }
    }
    Args {
        experiment: experiment.unwrap_or_else(|| usage_exit("missing experiment")),
        scale,
        out_dir,
    }
}

fn main() {
    let args = parse_args(std::env::args().skip(1));

    tracer::session_start();
    match args.experiment.as_str() {
        "fig12" => {
            let result = zcomp::experiments::fig12::run(args.scale, 0.53);
            let s = result.summary();
            log_info!(
                "fig12 traced: {} rows, zcomp speedup {:.2}x",
                result.rows.len(),
                s.zcomp_speedup
            );
        }
        "fullnet" => {
            let result = zcomp::experiments::fullnet::run(args.scale);
            log_info!("fullnet traced: {} rows", result.rows.len());
        }
        // parse_args validates the experiment name up front.
        other => usage_exit(&format!("unknown experiment: {other}")),
    }
    let events = tracer::session_end();

    let json = chrome::export(&events);
    let counters = csv::counter_csv(&events);

    let check = match chrome::validate(&json) {
        Ok(check) => check,
        Err(e) => {
            eprintln!("trace_run: emitted trace failed validation: {e}");
            std::process::exit(1);
        }
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("error: cannot create {}: {e}", args.out_dir);
        std::process::exit(1);
    }
    let trace_path = format!("{}/trace_{}.json", args.out_dir, args.experiment);
    let csv_path = format!("{}/counters_{}.csv", args.out_dir, args.experiment);
    for (path, contents) in [(&trace_path, &json), (&csv_path, &counters)] {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    println!(
        "trace_run: {} events ({} spans, {} counters, {} instants) over {} us",
        check.events, check.spans, check.counters, check.instants, check.max_ts_us
    );
    let dropped = tracer::dropped_samples();
    if dropped > 0 {
        println!("trace_run: {dropped} samples dropped at the per-session volume ceiling");
    }
    println!("wrote {trace_path}");
    println!("wrote {csv_path}");
}
