//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every paper figure has a `fig*` binary in `src/bin/`; they accept:
//!
//! * `--quick` — scale workloads down for a fast sanity run;
//! * `--scale <N>` — explicit scale divisor (1 = the paper's full sizes);
//! * `--json <path>` — also write the typed result as JSON;
//! * `--quiet` — silence the leveled stderr logger (overrides `ZCOMP_LOG`).
//!
//! Each binary prints the Table-1 machine configuration first, then the
//! figure's rows.
//!
//! Argument parsing is fallible by design: malformed command lines come
//! back as a typed [`CliError`] with the offending flag named, and the
//! `from_env` helpers turn that into a clean `error: …` + exit code 2 —
//! never a panic with a backtrace pointing at the parser.

use zcomp::report::Table;
use zcomp::supervise::SuperviseOpts;
use zcomp::sweep::SweepOpts;
use zcomp_replay::CacheMode;
use zcomp_sim::config::SimConfig;

/// A malformed command line: which argument, and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Exits with code 2 (the conventional usage-error code) after printing
/// the parse failure to stderr.
fn usage_exit(e: &CliError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2)
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    it.next()
        .ok_or_else(|| CliError::new(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, CliError> {
    text.parse()
        .map_err(|_| CliError::new(format!("{flag} needs an integer, got `{text}`")))
}

/// Parsed command-line options common to all figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigArgs {
    /// Workload scale divisor (1 = full size).
    pub scale: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Silence the stderr logger for the run.
    pub quiet: bool,
}

impl FigArgs {
    /// Parses `std::env::args`-style arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<FigArgs, CliError> {
        let mut out = FigArgs {
            scale: 1,
            json: None,
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.scale = 64,
                "--scale" => {
                    out.scale = parse_num("--scale", &value_of(&mut it, "--scale")?)?;
                    if out.scale < 1 {
                        return Err(CliError::new("--scale must be >= 1"));
                    }
                }
                "--json" => out.json = Some(value_of(&mut it, "--json")?),
                "--quiet" => out.quiet = true,
                other => {
                    return Err(CliError::new(format!(
                        "unknown argument: {other} (expected --quick/--scale/--json/--quiet)"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Parses the process arguments (skipping argv[0]) and applies the
    /// logging choice (`--quiet` overrides `ZCOMP_LOG`); a malformed
    /// command line prints the error and exits with code 2.
    pub fn from_env() -> FigArgs {
        let args = FigArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| usage_exit(&e));
        if args.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// Writes a serializable result to the `--json` path, if given.
    ///
    /// Failures are logged, not fatal: by the time this runs the figure has
    /// already been printed, and losing the JSON copy should not turn a
    /// completed run into a non-zero exit.
    pub fn save_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            save_json(path, value);
        }
    }
}

/// Writes a serializable value to `path` as pretty JSON; failures are
/// logged, not fatal (see [`FigArgs::save_json`]).
pub fn save_json<T: serde::Serialize>(path: &str, value: &T) {
    let text = match serde_json::to_string_pretty(value) {
        Ok(t) => t,
        Err(e) => {
            zcomp_trace::log_warn!("cannot serialize results ({e}); {path} not written");
            return;
        }
    };
    match std::fs::write(path, text) {
        Ok(()) => zcomp_trace::log_info!("wrote {path}"),
        Err(e) => zcomp_trace::log_warn!("cannot write {path}: {e}"),
    }
}

/// Parsed command-line options of the trace capture/replay binaries
/// (`capture_run`, `replay_run`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Which sweep: `fig12` or `fullnet`.
    pub experiment: String,
    /// Workload scale divisor (fig12: tensor sizes, fullnet: batches).
    pub scale: usize,
    /// Trace-cache directory.
    pub traces: String,
    /// Worker threads; 0 = one per core.
    pub threads: usize,
    /// Ignore cached traces and re-capture everything.
    pub refresh: bool,
    /// Replay, then verify against an in-process run (replay_run only).
    pub verify: bool,
    /// Benchmark cold/warm/parallel and write JSON here (replay_run only).
    pub bench: Option<String>,
    /// Write the sweep's scientific result as JSON here.
    pub json: Option<String>,
    /// Skip cells the journal records as complete.
    pub resume: bool,
    /// Attempts per cell before quarantine.
    pub attempts: u32,
    /// Per-cell watchdog deadline in milliseconds (0 = none).
    pub deadline_ms: Option<u64>,
    /// Silence the stderr logger.
    pub quiet: bool,
}

impl SweepArgs {
    /// Parses `std::env::args`-style arguments (without argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<SweepArgs, CliError> {
        let mut out = SweepArgs {
            experiment: String::new(),
            scale: 1,
            traces: "results/traces".to_string(),
            threads: 0,
            refresh: false,
            verify: false,
            bench: None,
            json: None,
            resume: false,
            attempts: SuperviseOpts::default().max_attempts,
            deadline_ms: None,
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.scale = 64,
                "--scale" => {
                    out.scale = parse_num("--scale", &value_of(&mut it, "--scale")?)?;
                    if out.scale < 1 {
                        return Err(CliError::new("--scale must be >= 1"));
                    }
                }
                "--traces" => out.traces = value_of(&mut it, "--traces")?,
                "--threads" => {
                    out.threads = parse_num("--threads", &value_of(&mut it, "--threads")?)?;
                }
                "--refresh" => out.refresh = true,
                "--verify" => out.verify = true,
                "--bench" => out.bench = Some(value_of(&mut it, "--bench")?),
                "--json" => out.json = Some(value_of(&mut it, "--json")?),
                "--resume" => out.resume = true,
                "--attempts" => {
                    out.attempts = parse_num("--attempts", &value_of(&mut it, "--attempts")?)?;
                    if out.attempts < 1 {
                        return Err(CliError::new("--attempts must be >= 1"));
                    }
                }
                "--deadline-ms" => {
                    out.deadline_ms = Some(parse_num(
                        "--deadline-ms",
                        &value_of(&mut it, "--deadline-ms")?,
                    )?);
                }
                "--quiet" => out.quiet = true,
                other if out.experiment.is_empty() && !other.starts_with('-') => {
                    if other != "fig12" && other != "fullnet" {
                        return Err(CliError::new(format!(
                            "unknown experiment: {other} (expected fig12 or fullnet)"
                        )));
                    }
                    out.experiment = other.to_string();
                }
                other => {
                    return Err(CliError::new(format!(
                        "unknown argument: {other} (expected fig12|fullnet, \
                         --quick/--scale/--traces/--threads/--refresh/--verify/--bench/\
                         --json/--resume/--attempts/--deadline-ms/--quiet)"
                    )))
                }
            }
        }
        if out.experiment.is_empty() {
            return Err(CliError::new(
                "missing experiment: expected fig12 or fullnet",
            ));
        }
        Ok(out)
    }

    /// Parses the process arguments and applies the logging choice; a
    /// malformed command line prints the error and exits with code 2.
    pub fn from_env() -> SweepArgs {
        let args = SweepArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| usage_exit(&e));
        if args.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// Thread count with the 0-means-all-cores default resolved.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// The full sweep options these arguments describe: cache root and
    /// mode, thread count, resume flag, and the supervision policy
    /// (`--attempts`, `--deadline-ms`).
    pub fn sweep_opts(&self) -> SweepOpts {
        let mut supervise = SuperviseOpts::default().with_attempts(self.attempts);
        if let Some(ms) = self.deadline_ms {
            if ms > 0 {
                supervise = supervise.with_deadline(std::time::Duration::from_millis(ms));
            }
        }
        SweepOpts::default()
            .with_cache(&self.traces)
            .with_threads(self.effective_threads())
            .with_mode(if self.refresh {
                CacheMode::Refresh
            } else {
                CacheMode::Auto
            })
            .with_supervise(supervise)
            .with_resume(self.resume)
    }
}

/// Runs `items` cells serially under the supervised runtime — panic
/// isolation and quarantine, no cache or journal — so one sick cell
/// cannot take down a whole figure. Prints quarantine details to stderr
/// and returns the per-cell outcomes plus the process exit code the
/// supervision contract demands (0 clean, 3 when cells were quarantined).
pub fn run_supervised<T, K, J>(
    experiment: &str,
    items: usize,
    key_of: K,
    make_job: J,
) -> (Vec<zcomp::supervise::CellOutcome<T>>, i32)
where
    T: serde::Serialize + serde::Deserialize + Send + 'static,
    K: Fn(usize) -> String + Sync,
    J: Fn(usize) -> Box<dyn FnOnce() -> T + Send + 'static> + Sync,
{
    let run =
        match zcomp::sweep::run_cells(experiment, items, 0, &SweepOpts::serial(), key_of, make_job)
        {
            Ok(run) => run,
            Err(e) => {
                // Unreachable without a cache root, but the contract stands.
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    let code = if run.report.quarantined.is_empty() {
        0
    } else {
        eprintln!("supervision: {}", run.report.summary());
        for failure in &run.report.quarantined {
            eprintln!("quarantined: {failure}");
        }
        3
    };
    (run.outcomes, code)
}

/// Prints the Table-1 machine configuration.
pub fn print_machine() {
    println!("== Table 1: Architecture Configuration ==");
    for (k, v) in SimConfig::table1().table1_rows() {
        println!("{k:<12} {v}");
    }
    println!();
}

/// Prints a rendered table followed by a blank line.
pub fn print_table(t: &Table) {
    println!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = FigArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.scale, 1);
        assert_eq!(a.json, None);
        assert!(!a.quiet);
    }

    #[test]
    fn parse_quiet() {
        let a = FigArgs::parse(["--quiet".to_string()]).unwrap();
        assert!(a.quiet);
        assert_eq!(a.scale, 1);
    }

    #[test]
    fn parse_quick_and_json() {
        let a = FigArgs::parse(
            ["--quick", "--json", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.scale, 64);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn parse_explicit_scale() {
        let a = FigArgs::parse(["--scale", "8"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(a.scale, 8);
    }

    #[test]
    fn unknown_flag_is_a_typed_error() {
        let e = FigArgs::parse(["--bogus".to_string()]).unwrap_err();
        assert!(e.to_string().contains("unknown argument"), "{e}");
    }

    #[test]
    fn missing_and_malformed_values_are_typed_errors() {
        let e = FigArgs::parse(["--scale".to_string()]).unwrap_err();
        assert!(e.to_string().contains("--scale needs a value"), "{e}");
        let e = FigArgs::parse(["--scale", "many"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(e.to_string().contains("integer"), "{e}");
        let e = FigArgs::parse(["--scale", "0"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(e.to_string().contains(">= 1"), "{e}");
    }

    #[test]
    fn sweep_args_defaults() {
        let a = SweepArgs::parse(["fig12".to_string()]).unwrap();
        assert_eq!(a.experiment, "fig12");
        assert_eq!(a.scale, 1);
        assert_eq!(a.traces, "results/traces");
        assert_eq!(a.threads, 0);
        assert!(a.effective_threads() >= 1);
        assert!(!a.refresh && !a.verify && a.bench.is_none() && !a.quiet);
        assert!(!a.resume && a.json.is_none() && a.deadline_ms.is_none());
        assert_eq!(a.attempts, SuperviseOpts::default().max_attempts);
    }

    #[test]
    fn sweep_args_full() {
        let a = SweepArgs::parse(
            [
                "fullnet",
                "--scale",
                "8",
                "--traces",
                "/tmp/t",
                "--threads",
                "4",
                "--refresh",
                "--verify",
                "--bench",
                "B.json",
                "--json",
                "R.json",
                "--resume",
                "--attempts",
                "3",
                "--deadline-ms",
                "1500",
                "--quiet",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.experiment, "fullnet");
        assert_eq!(a.scale, 8);
        assert_eq!(a.traces, "/tmp/t");
        assert_eq!(a.effective_threads(), 4);
        assert!(a.refresh && a.verify && a.quiet && a.resume);
        assert_eq!(a.bench.as_deref(), Some("B.json"));
        assert_eq!(a.json.as_deref(), Some("R.json"));
        assert_eq!(a.attempts, 3);
        assert_eq!(a.deadline_ms, Some(1500));

        let opts = a.sweep_opts();
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.cache_mode, CacheMode::Refresh);
        assert!(opts.resume);
        assert_eq!(opts.supervise.max_attempts, 3);
        assert_eq!(
            opts.supervise.deadline,
            Some(std::time::Duration::from_millis(1500))
        );
    }

    #[test]
    fn sweep_args_reject_bad_experiment() {
        let e = SweepArgs::parse(["fig99".to_string()]).unwrap_err();
        assert!(e.to_string().contains("unknown experiment"), "{e}");
    }

    #[test]
    fn sweep_args_require_experiment() {
        let e = SweepArgs::parse(["--quick".to_string()]).unwrap_err();
        assert!(e.to_string().contains("missing experiment"), "{e}");
    }

    #[test]
    fn sweep_args_reject_zero_attempts() {
        let e = SweepArgs::parse(["fig12", "--attempts", "0"].iter().map(|s| s.to_string()))
            .unwrap_err();
        assert!(e.to_string().contains(">= 1"), "{e}");
    }
}
