//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every paper figure has a `fig*` binary in `src/bin/`; they accept:
//!
//! * `--quick` — scale workloads down for a fast sanity run;
//! * `--scale <N>` — explicit scale divisor (1 = the paper's full sizes);
//! * `--json <path>` — also write the typed result as JSON;
//! * `--quiet` — silence the leveled stderr logger (overrides `ZCOMP_LOG`).
//!
//! Each binary prints the Table-1 machine configuration first, then the
//! figure's rows.

use zcomp::report::Table;
use zcomp_sim::config::SimConfig;

/// Parsed command-line options common to all figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigArgs {
    /// Workload scale divisor (1 = full size).
    pub scale: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Silence the stderr logger for the run.
    pub quiet: bool,
}

impl FigArgs {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> FigArgs {
        let mut out = FigArgs {
            scale: 1,
            json: None,
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.scale = 64,
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    out.scale = v.parse().expect("--scale needs an integer");
                    assert!(out.scale >= 1, "--scale must be >= 1");
                }
                "--json" => out.json = Some(it.next().expect("--json needs a path")),
                "--quiet" => out.quiet = true,
                other => {
                    panic!("unknown argument: {other} (expected --quick/--scale/--json/--quiet)")
                }
            }
        }
        out
    }

    /// Parses the process arguments (skipping argv[0]) and applies the
    /// logging choice (`--quiet` overrides `ZCOMP_LOG`).
    pub fn from_env() -> FigArgs {
        let args = FigArgs::parse(std::env::args().skip(1));
        if args.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// Writes a serializable result to the `--json` path, if given.
    pub fn save_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let text = serde_json::to_string_pretty(value).expect("results serialize");
            std::fs::write(path, text).expect("write json output");
            zcomp_trace::log_info!("wrote {path}");
        }
    }
}

/// Prints the Table-1 machine configuration.
pub fn print_machine() {
    println!("== Table 1: Architecture Configuration ==");
    for (k, v) in SimConfig::table1().table1_rows() {
        println!("{k:<12} {v}");
    }
    println!();
}

/// Prints a rendered table followed by a blank line.
pub fn print_table(t: &Table) {
    println!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = FigArgs::parse(Vec::<String>::new());
        assert_eq!(a.scale, 1);
        assert_eq!(a.json, None);
        assert!(!a.quiet);
    }

    #[test]
    fn parse_quiet() {
        let a = FigArgs::parse(["--quiet".to_string()]);
        assert!(a.quiet);
        assert_eq!(a.scale, 1);
    }

    #[test]
    fn parse_quick_and_json() {
        let a = FigArgs::parse(
            ["--quick", "--json", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.scale, 64);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn parse_explicit_scale() {
        let a = FigArgs::parse(["--scale", "8"].iter().map(|s| s.to_string()));
        assert_eq!(a.scale, 8);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        FigArgs::parse(["--bogus".to_string()]);
    }
}
