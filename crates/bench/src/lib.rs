//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every paper figure has a `fig*` binary in `src/bin/`; they accept:
//!
//! * `--quick` — scale workloads down for a fast sanity run;
//! * `--scale <N>` — explicit scale divisor (1 = the paper's full sizes);
//! * `--json <path>` — also write the typed result as JSON;
//! * `--quiet` — silence the leveled stderr logger (overrides `ZCOMP_LOG`).
//!
//! Each binary prints the Table-1 machine configuration first, then the
//! figure's rows.
//!
//! Argument parsing is fallible by design: malformed command lines come
//! back as a typed [`CliError`] with the offending flag named, and the
//! `from_env` helpers turn that into a clean `error: …` + exit code 2 —
//! never a panic with a backtrace pointing at the parser.

use zcomp::fabric::FabricOpts;
use zcomp::report::Table;
use zcomp::supervise::SuperviseOpts;
use zcomp::sweep::{SupervisionReport, SweepError, SweepOpts};
use zcomp_replay::CacheMode;
use zcomp_sim::config::SimConfig;

/// A malformed command line: which argument, and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Exits with code 2 (the conventional usage-error code) after printing
/// the parse failure to stderr.
fn usage_exit(e: &CliError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2)
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    it.next()
        .ok_or_else(|| CliError::new(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, CliError> {
    text.parse()
        .map_err(|_| CliError::new(format!("{flag} needs an integer, got `{text}`")))
}

/// The shared supervised-run and fabric flags, parsed once here instead
/// of copy-pasted per binary:
///
/// * `--resume` — skip cells the journal records as complete;
/// * `--attempts <N>` — attempts per cell before quarantine;
/// * `--deadline-ms <N>` — per-cell watchdog deadline (0 = none);
/// * `--fabric-dir <path>` — join the multi-process lease fabric there;
/// * `--worker-id <id>` — stable fabric worker id (default `w<pid>`);
/// * `--lease-ttl-ms <N>` — fabric lease time-to-live;
/// * `--workers <N>` — spawn N-1 sibling worker processes of this binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFlags {
    /// Skip cells the journal records as complete.
    pub resume: bool,
    /// Attempts per cell before quarantine.
    pub attempts: u32,
    /// Per-cell watchdog deadline in milliseconds (0 = none).
    pub deadline_ms: Option<u64>,
    /// Fabric directory; `Some` means the sweep joins the lease fabric.
    pub fabric_dir: Option<String>,
    /// Explicit fabric worker id (default: `w<pid>`).
    pub worker_id: Option<String>,
    /// Fabric lease time-to-live in milliseconds.
    pub lease_ttl_ms: u64,
    /// Worker processes for the fabric sweep (1 = just this process).
    pub workers: usize,
}

impl Default for RunFlags {
    fn default() -> RunFlags {
        RunFlags {
            resume: false,
            attempts: SuperviseOpts::default().max_attempts,
            deadline_ms: None,
            fabric_dir: None,
            worker_id: None,
            lease_ttl_ms: 30_000,
            workers: 1,
        }
    }
}

impl RunFlags {
    /// The flags [`RunFlags::accept`] consumes, for usage messages.
    pub const USAGE: &'static str =
        "--resume/--attempts/--deadline-ms/--fabric-dir/--worker-id/--lease-ttl-ms/--workers";

    /// Tries to consume `arg` (pulling values from `it` as needed);
    /// `Ok(false)` means the argument is not a shared run flag and the
    /// caller should parse it itself.
    pub fn accept(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, CliError> {
        match arg {
            "--resume" => self.resume = true,
            "--attempts" => {
                self.attempts = parse_num("--attempts", &value_of(it, "--attempts")?)?;
                if self.attempts < 1 {
                    return Err(CliError::new("--attempts must be >= 1"));
                }
            }
            "--deadline-ms" => {
                self.deadline_ms =
                    Some(parse_num("--deadline-ms", &value_of(it, "--deadline-ms")?)?);
            }
            "--fabric-dir" => self.fabric_dir = Some(value_of(it, "--fabric-dir")?),
            "--worker-id" => self.worker_id = Some(value_of(it, "--worker-id")?),
            "--lease-ttl-ms" => {
                self.lease_ttl_ms = parse_num("--lease-ttl-ms", &value_of(it, "--lease-ttl-ms")?)?;
                if self.lease_ttl_ms < 1 {
                    return Err(CliError::new("--lease-ttl-ms must be >= 1"));
                }
            }
            "--workers" => {
                self.workers = parse_num("--workers", &value_of(it, "--workers")?)?;
                if self.workers < 1 {
                    return Err(CliError::new("--workers must be >= 1"));
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Cross-flag checks, called once the whole command line is parsed.
    fn validate(&self) -> Result<(), CliError> {
        if self.workers > 1 && self.fabric_dir.is_none() {
            return Err(CliError::new("--workers needs --fabric-dir"));
        }
        Ok(())
    }

    /// The supervision policy these flags describe.
    pub fn supervise_opts(&self) -> SuperviseOpts {
        let mut supervise = SuperviseOpts::default().with_attempts(self.attempts);
        if let Some(ms) = self.deadline_ms {
            if ms > 0 {
                supervise = supervise.with_deadline(std::time::Duration::from_millis(ms));
            }
        }
        supervise
    }

    /// The fabric membership these flags describe (`None` without
    /// `--fabric-dir`).
    pub fn fabric_opts(&self) -> Option<FabricOpts> {
        let dir = self.fabric_dir.as_ref()?;
        let mut fabric = FabricOpts::new(dir)
            .with_lease_ttl(std::time::Duration::from_millis(self.lease_ttl_ms));
        if let Some(worker) = &self.worker_id {
            fabric = fabric.with_worker(worker.clone());
        }
        Some(fabric)
    }

    /// Applies the supervision policy, resume flag and fabric membership
    /// to a set of sweep options.
    pub fn apply(&self, opts: SweepOpts) -> SweepOpts {
        let mut opts = opts
            .with_supervise(self.supervise_opts())
            .with_resume(self.resume);
        if let Some(fabric) = self.fabric_opts() {
            opts = opts.with_fabric(fabric);
        }
        opts
    }
}

/// Parsed command-line options common to all figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigArgs {
    /// Workload scale divisor (1 = full size).
    pub scale: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Silence the stderr logger for the run.
    pub quiet: bool,
}

impl Default for FigArgs {
    fn default() -> FigArgs {
        FigArgs {
            scale: 1,
            json: None,
            quiet: false,
        }
    }
}

impl FigArgs {
    /// Tries to consume `arg`; `Ok(false)` means it is not a figure flag.
    fn accept(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, CliError> {
        match arg {
            "--quick" => self.scale = 64,
            "--scale" => {
                self.scale = parse_num("--scale", &value_of(it, "--scale")?)?;
                if self.scale < 1 {
                    return Err(CliError::new("--scale must be >= 1"));
                }
            }
            "--json" => self.json = Some(value_of(it, "--json")?),
            "--quiet" => self.quiet = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Parses `std::env::args`-style arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<FigArgs, CliError> {
        let mut out = FigArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if !out.accept(&arg, &mut it)? {
                return Err(CliError::new(format!(
                    "unknown argument: {arg} (expected --quick/--scale/--json/--quiet)"
                )));
            }
        }
        Ok(out)
    }

    /// Parses the process arguments (skipping argv[0]) and applies the
    /// logging choice (`--quiet` overrides `ZCOMP_LOG`); a malformed
    /// command line prints the error and exits with code 2.
    pub fn from_env() -> FigArgs {
        let args = FigArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| usage_exit(&e));
        if args.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// Writes a serializable result to the `--json` path, if given.
    ///
    /// Failures are logged, not fatal: by the time this runs the figure has
    /// already been printed, and losing the JSON copy should not turn a
    /// completed run into a non-zero exit.
    pub fn save_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            save_json(path, value);
        }
    }
}

/// Writes a serializable value to `path` as pretty JSON; failures are
/// logged, not fatal (see [`FigArgs::save_json`]).
pub fn save_json<T: serde::Serialize>(path: &str, value: &T) {
    let text = match serde_json::to_string_pretty(value) {
        Ok(t) => t,
        Err(e) => {
            zcomp_trace::log_warn!("cannot serialize results ({e}); {path} not written");
            return;
        }
    };
    match std::fs::write(path, text) {
        Ok(()) => zcomp_trace::log_info!("wrote {path}"),
        Err(e) => zcomp_trace::log_warn!("cannot write {path}: {e}"),
    }
}

/// [`FigArgs`] plus the shared [`RunFlags`], for figure binaries whose
/// cells run under the supervised sweep runtime (the fig12/fig13/fig14
/// sweeps and the fault campaign).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisedFigArgs {
    /// The common figure options.
    pub fig: FigArgs,
    /// The shared supervised-run / fabric flags.
    pub run: RunFlags,
}

impl SupervisedFigArgs {
    /// Parses `std::env::args`-style arguments (without argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<SupervisedFigArgs, CliError> {
        let mut out = SupervisedFigArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if out.fig.accept(&arg, &mut it)? || out.run.accept(&arg, &mut it)? {
                continue;
            }
            return Err(CliError::new(format!(
                "unknown argument: {arg} (expected --quick/--scale/--json/--quiet, {})",
                RunFlags::USAGE
            )));
        }
        out.run.validate()?;
        Ok(out)
    }

    /// Parses the process arguments and applies the logging choice; a
    /// malformed command line prints the error and exits with code 2.
    pub fn from_env() -> SupervisedFigArgs {
        let args =
            SupervisedFigArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| usage_exit(&e));
        if args.fig.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// The sweep options these arguments describe: serial cells (these
    /// binaries parallelize inside a cell), the supervision policy, and
    /// the fabric membership when `--fabric-dir` is given.
    pub fn sweep_opts(&self) -> SweepOpts {
        self.run.apply(SweepOpts::serial())
    }
}

/// Parsed command-line options of the trace capture/replay binaries
/// (`capture_run`, `replay_run`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Which sweep: `fig12` or `fullnet`.
    pub experiment: String,
    /// Workload scale divisor (fig12: tensor sizes, fullnet: batches).
    pub scale: usize,
    /// Trace-cache directory.
    pub traces: String,
    /// Worker threads; 0 = one per core.
    pub threads: usize,
    /// Ignore cached traces and re-capture everything.
    pub refresh: bool,
    /// Replay, then verify against an in-process run (replay_run only).
    pub verify: bool,
    /// Benchmark cold/warm/parallel and write JSON here (replay_run only).
    pub bench: Option<String>,
    /// Write the sweep's scientific result as JSON here.
    pub json: Option<String>,
    /// The shared supervised-run / fabric flags.
    pub run: RunFlags,
    /// Silence the stderr logger.
    pub quiet: bool,
}

impl SweepArgs {
    /// Parses `std::env::args`-style arguments (without argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<SweepArgs, CliError> {
        let mut out = SweepArgs {
            experiment: String::new(),
            scale: 1,
            traces: "results/traces".to_string(),
            threads: 0,
            refresh: false,
            verify: false,
            bench: None,
            json: None,
            run: RunFlags::default(),
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if out.run.accept(&arg, &mut it)? {
                continue;
            }
            match arg.as_str() {
                "--quick" => out.scale = 64,
                "--scale" => {
                    out.scale = parse_num("--scale", &value_of(&mut it, "--scale")?)?;
                    if out.scale < 1 {
                        return Err(CliError::new("--scale must be >= 1"));
                    }
                }
                "--traces" => out.traces = value_of(&mut it, "--traces")?,
                "--threads" => {
                    out.threads = parse_num("--threads", &value_of(&mut it, "--threads")?)?;
                }
                "--refresh" => out.refresh = true,
                "--verify" => out.verify = true,
                "--bench" => out.bench = Some(value_of(&mut it, "--bench")?),
                "--json" => out.json = Some(value_of(&mut it, "--json")?),
                "--quiet" => out.quiet = true,
                other if out.experiment.is_empty() && !other.starts_with('-') => {
                    if other != "fig12" && other != "fullnet" {
                        return Err(CliError::new(format!(
                            "unknown experiment: {other} (expected fig12 or fullnet)"
                        )));
                    }
                    out.experiment = other.to_string();
                }
                other => {
                    return Err(CliError::new(format!(
                        "unknown argument: {other} (expected fig12|fullnet, \
                         --quick/--scale/--traces/--threads/--refresh/--verify/--bench/\
                         --json/--quiet, {})",
                        RunFlags::USAGE
                    )))
                }
            }
        }
        if out.experiment.is_empty() {
            return Err(CliError::new(
                "missing experiment: expected fig12 or fullnet",
            ));
        }
        out.run.validate()?;
        Ok(out)
    }

    /// Parses the process arguments and applies the logging choice; a
    /// malformed command line prints the error and exits with code 2.
    pub fn from_env() -> SweepArgs {
        let args = SweepArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| usage_exit(&e));
        if args.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// Thread count with the 0-means-all-cores default resolved.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// The full sweep options these arguments describe: cache root and
    /// mode, thread count, and the shared run flags (resume, supervision
    /// policy, fabric membership).
    pub fn sweep_opts(&self) -> SweepOpts {
        self.run.apply(
            SweepOpts::default()
                .with_cache(&self.traces)
                .with_threads(self.effective_threads())
                .with_mode(if self.refresh {
                    CacheMode::Refresh
                } else {
                    CacheMode::Auto
                }),
        )
    }
}

/// Runs `items` cells serially under the supervised runtime — panic
/// isolation and quarantine, no cache or journal — so one sick cell
/// cannot take down a whole figure. Prints quarantine details to stderr
/// and returns the per-cell outcomes plus the process exit code the
/// supervision contract demands (0 clean, 3 when cells were quarantined).
pub fn run_supervised<T, K, J>(
    experiment: &str,
    items: usize,
    key_of: K,
    make_job: J,
) -> (Vec<zcomp::supervise::CellOutcome<T>>, i32)
where
    T: serde::Serialize + serde::Deserialize + Send + 'static,
    K: Fn(usize) -> String + Sync,
    J: Fn(usize) -> Box<dyn FnOnce() -> T + Send + 'static> + Sync,
{
    let run =
        match zcomp::sweep::run_cells(experiment, items, 0, &SweepOpts::serial(), key_of, make_job)
        {
            Ok(run) => run,
            Err(e) => {
                // Unreachable without a cache root, but the contract stands.
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    let code = if run.report.quarantined.is_empty() {
        0
    } else {
        eprintln!("supervision: {}", run.report.summary());
        for failure in &run.report.quarantined {
            eprintln!("quarantined: {failure}");
        }
        3
    };
    (run.outcomes, code)
}

/// Prints the supervision summary (which includes the fabric summary
/// when the sweep ran on a lease fabric) to stdout and any quarantine
/// details to stderr, then returns the exit code the supervision
/// contract demands: 0 for a clean run, 3 when cells were quarantined.
pub fn report_supervision(report: &SupervisionReport) -> i32 {
    println!("supervision: {}", report.summary());
    for failure in &report.quarantined {
        eprintln!("quarantined: {failure}");
    }
    if report.quarantined.is_empty() {
        0
    } else {
        3
    }
}

/// Prints a sweep error and exits: code 4 for a graceful fabric drain
/// (progress so far is journalled; re-running with the same fabric
/// directory resumes), 1 for everything else.
pub fn sweep_error_exit(e: &SweepError) -> ! {
    eprintln!("error: {e}");
    match e {
        SweepError::FabricDrained { .. } => std::process::exit(4),
        _ => std::process::exit(1),
    }
}

/// Prepares the fabric for this process and spawns the `--workers N`
/// siblings: for a fresh (non-`--resume`) run the fabric directory is
/// cleared first so stale leases and journals cannot leak in, then
/// `N - 1` copies of this binary are re-invoked with the same arguments
/// minus the caller-only flags (`--workers`, `--json`, `--bench`,
/// `--worker-id`) plus a derived `--worker-id`, `--resume` (the
/// directory is already reset) and `--quiet`. Returns the children for
/// [`reap_fabric_workers`]; empty without `--fabric-dir`.
pub fn spawn_fabric_workers(run: &RunFlags) -> Vec<std::process::Child> {
    let Some(dir) = &run.fabric_dir else {
        return Vec::new();
    };
    if !run.resume {
        if let Err(e) = std::fs::remove_dir_all(dir) {
            if e.kind() != std::io::ErrorKind::NotFound {
                eprintln!("error: cannot reset fabric dir {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
    if run.workers <= 1 {
        return Vec::new();
    }
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("error: cannot locate this binary to spawn fabric workers: {e}");
            std::process::exit(1);
        }
    };
    let base = run
        .worker_id
        .clone()
        .unwrap_or_else(|| format!("w{}", std::process::id()));
    let args = sibling_args();
    let mut children = Vec::with_capacity(run.workers - 1);
    for n in 1..run.workers {
        match std::process::Command::new(&exe)
            .args(&args)
            .arg("--worker-id")
            .arg(format!("{base}-s{n}"))
            .stdout(std::process::Stdio::null())
            .spawn()
        {
            Ok(child) => children.push(child),
            // A missing sibling is not fatal: the fabric completes with
            // however many workers actually started.
            Err(e) => eprintln!("cannot spawn fabric worker {n}: {e}"),
        }
    }
    children
}

/// The calling binary's arguments with the caller-only flags stripped
/// and the sibling-only ones appended.
fn sibling_args() -> Vec<String> {
    let mut args = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" | "--json" | "--bench" | "--worker-id" => {
                let _ = it.next();
            }
            "--resume" | "--quiet" => {}
            _ => args.push(arg),
        }
    }
    args.push("--resume".to_string());
    args.push("--quiet".to_string());
    args
}

/// Waits for the sibling fabric workers. A dead or failing sibling is
/// reported but never fatal: the fabric reclaims its cells, and the
/// calling worker's merged result is already complete.
pub fn reap_fabric_workers(children: Vec<std::process::Child>) {
    for mut child in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("fabric worker exited with {status}"),
            Err(e) => eprintln!("cannot wait for fabric worker: {e}"),
        }
    }
}

/// Prints the Table-1 machine configuration.
pub fn print_machine() {
    println!("== Table 1: Architecture Configuration ==");
    for (k, v) in SimConfig::table1().table1_rows() {
        println!("{k:<12} {v}");
    }
    println!();
}

/// Prints a rendered table followed by a blank line.
pub fn print_table(t: &Table) {
    println!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = FigArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.scale, 1);
        assert_eq!(a.json, None);
        assert!(!a.quiet);
    }

    #[test]
    fn parse_quiet() {
        let a = FigArgs::parse(["--quiet".to_string()]).unwrap();
        assert!(a.quiet);
        assert_eq!(a.scale, 1);
    }

    #[test]
    fn parse_quick_and_json() {
        let a = FigArgs::parse(
            ["--quick", "--json", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.scale, 64);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn parse_explicit_scale() {
        let a = FigArgs::parse(["--scale", "8"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(a.scale, 8);
    }

    #[test]
    fn unknown_flag_is_a_typed_error() {
        let e = FigArgs::parse(["--bogus".to_string()]).unwrap_err();
        assert!(e.to_string().contains("unknown argument"), "{e}");
    }

    #[test]
    fn missing_and_malformed_values_are_typed_errors() {
        let e = FigArgs::parse(["--scale".to_string()]).unwrap_err();
        assert!(e.to_string().contains("--scale needs a value"), "{e}");
        let e = FigArgs::parse(["--scale", "many"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(e.to_string().contains("integer"), "{e}");
        let e = FigArgs::parse(["--scale", "0"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(e.to_string().contains(">= 1"), "{e}");
    }

    #[test]
    fn sweep_args_defaults() {
        let a = SweepArgs::parse(["fig12".to_string()]).unwrap();
        assert_eq!(a.experiment, "fig12");
        assert_eq!(a.scale, 1);
        assert_eq!(a.traces, "results/traces");
        assert_eq!(a.threads, 0);
        assert!(a.effective_threads() >= 1);
        assert!(!a.refresh && !a.verify && a.bench.is_none() && !a.quiet);
        assert!(a.json.is_none());
        assert_eq!(a.run, RunFlags::default());
        assert!(a.run.fabric_opts().is_none());
    }

    #[test]
    fn sweep_args_full() {
        let a = SweepArgs::parse(
            [
                "fullnet",
                "--scale",
                "8",
                "--traces",
                "/tmp/t",
                "--threads",
                "4",
                "--refresh",
                "--verify",
                "--bench",
                "B.json",
                "--json",
                "R.json",
                "--resume",
                "--attempts",
                "3",
                "--deadline-ms",
                "1500",
                "--fabric-dir",
                "/tmp/fab",
                "--worker-id",
                "w-a",
                "--lease-ttl-ms",
                "2000",
                "--workers",
                "3",
                "--quiet",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.experiment, "fullnet");
        assert_eq!(a.scale, 8);
        assert_eq!(a.traces, "/tmp/t");
        assert_eq!(a.effective_threads(), 4);
        assert!(a.refresh && a.verify && a.quiet && a.run.resume);
        assert_eq!(a.bench.as_deref(), Some("B.json"));
        assert_eq!(a.json.as_deref(), Some("R.json"));
        assert_eq!(a.run.attempts, 3);
        assert_eq!(a.run.deadline_ms, Some(1500));
        assert_eq!(a.run.fabric_dir.as_deref(), Some("/tmp/fab"));
        assert_eq!(a.run.worker_id.as_deref(), Some("w-a"));
        assert_eq!(a.run.lease_ttl_ms, 2000);
        assert_eq!(a.run.workers, 3);

        let opts = a.sweep_opts();
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.cache_mode, CacheMode::Refresh);
        assert!(opts.resume);
        assert_eq!(opts.supervise.max_attempts, 3);
        assert_eq!(
            opts.supervise.deadline,
            Some(std::time::Duration::from_millis(1500))
        );
        let fabric = opts.fabric.expect("fabric opts attached");
        assert_eq!(fabric.dir, std::path::PathBuf::from("/tmp/fab"));
        assert_eq!(fabric.worker, "w-a");
        assert_eq!(fabric.lease_ttl, std::time::Duration::from_millis(2000));
    }

    #[test]
    fn workers_flag_requires_a_fabric_dir() {
        let e = SweepArgs::parse(["fig12", "--workers", "3"].iter().map(|s| s.to_string()))
            .unwrap_err();
        assert!(
            e.to_string().contains("--workers needs --fabric-dir"),
            "{e}"
        );
    }

    #[test]
    fn supervised_fig_args_parse_both_flag_families() {
        let a = SupervisedFigArgs::parse(
            [
                "--scale",
                "256",
                "--attempts",
                "2",
                "--fabric-dir",
                "/tmp/fab",
                "--workers",
                "2",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.fig.scale, 256);
        assert_eq!(a.run.attempts, 2);
        assert_eq!(a.run.workers, 2);
        let opts = a.sweep_opts();
        assert_eq!(opts.supervise.max_attempts, 2);
        assert!(opts.fabric.is_some());

        let e = SupervisedFigArgs::parse(["--bogus".to_string()]).unwrap_err();
        assert!(e.to_string().contains("unknown argument"), "{e}");
    }

    #[test]
    fn sweep_args_reject_bad_experiment() {
        let e = SweepArgs::parse(["fig99".to_string()]).unwrap_err();
        assert!(e.to_string().contains("unknown experiment"), "{e}");
    }

    #[test]
    fn sweep_args_require_experiment() {
        let e = SweepArgs::parse(["--quick".to_string()]).unwrap_err();
        assert!(e.to_string().contains("missing experiment"), "{e}");
    }

    #[test]
    fn sweep_args_reject_zero_attempts() {
        let e = SweepArgs::parse(["fig12", "--attempts", "0"].iter().map(|s| s.to_string()))
            .unwrap_err();
        assert!(e.to_string().contains(">= 1"), "{e}");
    }
}
