//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every paper figure has a `fig*` binary in `src/bin/`; they accept:
//!
//! * `--quick` — scale workloads down for a fast sanity run;
//! * `--scale <N>` — explicit scale divisor (1 = the paper's full sizes);
//! * `--json <path>` — also write the typed result as JSON;
//! * `--quiet` — silence the leveled stderr logger (overrides `ZCOMP_LOG`).
//!
//! Each binary prints the Table-1 machine configuration first, then the
//! figure's rows.

use zcomp::report::Table;
use zcomp_sim::config::SimConfig;

/// Parsed command-line options common to all figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigArgs {
    /// Workload scale divisor (1 = full size).
    pub scale: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Silence the stderr logger for the run.
    pub quiet: bool,
}

impl FigArgs {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> FigArgs {
        let mut out = FigArgs {
            scale: 1,
            json: None,
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.scale = 64,
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    out.scale = v.parse().expect("--scale needs an integer");
                    assert!(out.scale >= 1, "--scale must be >= 1");
                }
                "--json" => out.json = Some(it.next().expect("--json needs a path")),
                "--quiet" => out.quiet = true,
                other => {
                    panic!("unknown argument: {other} (expected --quick/--scale/--json/--quiet)")
                }
            }
        }
        out
    }

    /// Parses the process arguments (skipping argv[0]) and applies the
    /// logging choice (`--quiet` overrides `ZCOMP_LOG`).
    pub fn from_env() -> FigArgs {
        let args = FigArgs::parse(std::env::args().skip(1));
        if args.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// Writes a serializable result to the `--json` path, if given.
    ///
    /// Failures are logged, not fatal: by the time this runs the figure has
    /// already been printed, and losing the JSON copy should not turn a
    /// completed run into a non-zero exit.
    pub fn save_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let text = match serde_json::to_string_pretty(value) {
                Ok(t) => t,
                Err(e) => {
                    zcomp_trace::log_warn!("cannot serialize results ({e}); {path} not written");
                    return;
                }
            };
            match std::fs::write(path, text) {
                Ok(()) => zcomp_trace::log_info!("wrote {path}"),
                Err(e) => zcomp_trace::log_warn!("cannot write {path}: {e}"),
            }
        }
    }
}

/// Parsed command-line options of the trace capture/replay binaries
/// (`capture_run`, `replay_run`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Which sweep: `fig12` or `fullnet`.
    pub experiment: String,
    /// Workload scale divisor (fig12: tensor sizes, fullnet: batches).
    pub scale: usize,
    /// Trace-cache directory.
    pub traces: String,
    /// Worker threads; 0 = one per core.
    pub threads: usize,
    /// Ignore cached traces and re-capture everything.
    pub refresh: bool,
    /// Replay, then verify against an in-process run (replay_run only).
    pub verify: bool,
    /// Benchmark cold/warm/parallel and write JSON here (replay_run only).
    pub bench: Option<String>,
    /// Silence the stderr logger.
    pub quiet: bool,
}

impl SweepArgs {
    /// Parses `std::env::args`-style arguments (without argv[0]).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments, matching the
    /// figure binaries' behaviour.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> SweepArgs {
        let mut out = SweepArgs {
            experiment: String::new(),
            scale: 1,
            traces: "results/traces".to_string(),
            threads: 0,
            refresh: false,
            verify: false,
            bench: None,
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.scale = 64,
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    out.scale = v.parse().expect("--scale needs an integer");
                    assert!(out.scale >= 1, "--scale must be >= 1");
                }
                "--traces" => out.traces = it.next().expect("--traces needs a directory"),
                "--threads" => {
                    let v = it.next().expect("--threads needs a value");
                    out.threads = v.parse().expect("--threads needs an integer");
                }
                "--refresh" => out.refresh = true,
                "--verify" => out.verify = true,
                "--bench" => out.bench = Some(it.next().expect("--bench needs a path")),
                "--quiet" => out.quiet = true,
                other if out.experiment.is_empty() && !other.starts_with('-') => {
                    assert!(
                        other == "fig12" || other == "fullnet",
                        "unknown experiment: {other} (expected fig12 or fullnet)"
                    );
                    out.experiment = other.to_string();
                }
                other => panic!(
                    "unknown argument: {other} (expected fig12|fullnet, \
                     --quick/--scale/--traces/--threads/--refresh/--verify/--bench/--quiet)"
                ),
            }
        }
        assert!(
            !out.experiment.is_empty(),
            "missing experiment: expected fig12 or fullnet"
        );
        out
    }

    /// Parses the process arguments and applies the logging choice.
    pub fn from_env() -> SweepArgs {
        let args = SweepArgs::parse(std::env::args().skip(1));
        if args.quiet {
            zcomp_trace::log::set_level(zcomp_trace::log::Level::Off);
        }
        args
    }

    /// Thread count with the 0-means-all-cores default resolved.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// Prints the Table-1 machine configuration.
pub fn print_machine() {
    println!("== Table 1: Architecture Configuration ==");
    for (k, v) in SimConfig::table1().table1_rows() {
        println!("{k:<12} {v}");
    }
    println!();
}

/// Prints a rendered table followed by a blank line.
pub fn print_table(t: &Table) {
    println!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = FigArgs::parse(Vec::<String>::new());
        assert_eq!(a.scale, 1);
        assert_eq!(a.json, None);
        assert!(!a.quiet);
    }

    #[test]
    fn parse_quiet() {
        let a = FigArgs::parse(["--quiet".to_string()]);
        assert!(a.quiet);
        assert_eq!(a.scale, 1);
    }

    #[test]
    fn parse_quick_and_json() {
        let a = FigArgs::parse(
            ["--quick", "--json", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.scale, 64);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn parse_explicit_scale() {
        let a = FigArgs::parse(["--scale", "8"].iter().map(|s| s.to_string()));
        assert_eq!(a.scale, 8);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        FigArgs::parse(["--bogus".to_string()]);
    }

    #[test]
    fn sweep_args_defaults() {
        let a = SweepArgs::parse(["fig12".to_string()]);
        assert_eq!(a.experiment, "fig12");
        assert_eq!(a.scale, 1);
        assert_eq!(a.traces, "results/traces");
        assert_eq!(a.threads, 0);
        assert!(a.effective_threads() >= 1);
        assert!(!a.refresh && !a.verify && a.bench.is_none() && !a.quiet);
    }

    #[test]
    fn sweep_args_full() {
        let a = SweepArgs::parse(
            [
                "fullnet",
                "--scale",
                "8",
                "--traces",
                "/tmp/t",
                "--threads",
                "4",
                "--refresh",
                "--verify",
                "--bench",
                "B.json",
                "--quiet",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(a.experiment, "fullnet");
        assert_eq!(a.scale, 8);
        assert_eq!(a.traces, "/tmp/t");
        assert_eq!(a.effective_threads(), 4);
        assert!(a.refresh && a.verify && a.quiet);
        assert_eq!(a.bench.as_deref(), Some("B.json"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn sweep_args_reject_bad_experiment() {
        SweepArgs::parse(["fig99".to_string()]);
    }

    #[test]
    #[should_panic(expected = "missing experiment")]
    fn sweep_args_require_experiment() {
        SweepArgs::parse(["--quick".to_string()]);
    }
}
