//! Kill-mid-sweep integration tests for the multi-process sweep fabric.
//!
//! Drives the real `capture_run` binary. A 1-worker fabric-less run
//! produces the reference JSON report; then three workers share one
//! fabric directory, one of them is SIGKILLed mid-sweep, and the
//! survivors must reclaim its leased cells and produce a merged report
//! byte-for-byte identical to the reference. A second test exercises the
//! `--workers N` convenience spawner end to end.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const SCALE: &str = "2048";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zcomp-fabric-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn base_cmd(traces: &Path, json: Option<&Path>) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_capture_run"));
    cmd.arg("fig12")
        .args(["--scale", SCALE, "--threads", "2", "--quiet"])
        .arg("--traces")
        .arg(traces);
    if let Some(json) = json {
        cmd.arg("--json").arg(json);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

/// A fabric worker command. All manually-spawned workers pass `--resume`
/// so none of them wipes the (shared, already fresh) fabric directory.
fn worker_cmd(fabric: &Path, traces: &Path, json: Option<&Path>, worker: &str) -> Command {
    let mut cmd = base_cmd(traces, json);
    cmd.arg("--resume")
        .args(["--lease-ttl-ms", "500"])
        .arg("--fabric-dir")
        .arg(fabric)
        .args(["--worker-id", worker]);
    cmd
}

fn reference_report(dir: &Path) -> Vec<u8> {
    let json = dir.join("reference.json");
    let status = base_cmd(&dir.join("ref-traces"), Some(&json))
        .status()
        .expect("spawn reference capture_run");
    assert!(status.success(), "reference run failed: {status}");
    let bytes = std::fs::read(&json).expect("reference json");
    assert!(!bytes.is_empty());
    bytes
}

/// Counts `.expired` lease tombstones — the on-disk proof of a reclaim.
fn expired_tombstones(fabric: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(fabric.join("fig12").join("leases")) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".expired"))
        })
        .count()
}

#[test]
fn survivors_reclaim_a_sigkilled_workers_cells_and_merge_byte_identically() {
    let dir = tmp_dir("kill");
    let reference = reference_report(&dir);

    // SIGKILL one of three workers at a few staggered points so at least
    // one kill lands while it holds an unjournalled lease. Every round —
    // whether or not the kill connected — must still converge to the
    // reference bytes.
    let mut reclaim_observed = false;
    for attempt in 0..5u64 {
        let fabric = dir.join(format!("fabric-{attempt}"));
        let json = dir.join(format!("merged-{attempt}.json"));
        let traces = |w: &str| dir.join(format!("traces-{attempt}-{w}"));

        let mut w1 = worker_cmd(&fabric, &traces("w1"), Some(&json), "w1")
            .spawn()
            .expect("spawn w1");
        let mut victim = worker_cmd(&fabric, &traces("w2"), None, "w2")
            .spawn()
            .expect("spawn w2");
        let mut w3 = worker_cmd(&fabric, &traces("w3"), None, "w3")
            .spawn()
            .expect("spawn w3");

        std::thread::sleep(Duration::from_millis(40 + 60 * attempt));
        let victim_was_running = matches!(victim.try_wait(), Ok(None));
        let _ = victim.kill(); // SIGKILL — no drain handler, no lease release
        let _ = victim.wait();

        let s1 = w1.wait().expect("wait w1");
        let s3 = w3.wait().expect("wait w3");
        assert!(s1.success(), "worker w1 failed: {s1}");
        assert!(s3.success(), "worker w3 failed: {s3}");

        let merged = std::fs::read(&json).expect("merged json");
        assert_eq!(
            merged, reference,
            "merged fabric report must be byte-identical to the 1-worker run"
        );

        if victim_was_running && expired_tombstones(&fabric) >= 1 {
            reclaim_observed = true;
            break;
        }
    }
    assert!(
        reclaim_observed,
        "no kill landed while the victim held a lease; increase the sweep \
         size or shrink the delays"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_workers_spawner_runs_siblings_and_resets_a_stale_fabric_dir() {
    let dir = tmp_dir("spawner");
    let reference = reference_report(&dir);

    // Poison the fabric dir with a stale (valid-looking) journal: a
    // fresh `--workers` run must wipe it, not merge it.
    let fabric = dir.join("fabric");
    std::fs::create_dir_all(fabric.join("fig12")).expect("pre-create fabric dir");
    std::fs::write(fabric.join("fig12").join("journal.stale.jsonl"), b"junk\n")
        .expect("write stale journal");

    let json = dir.join("merged.json");
    let mut cmd = base_cmd(&dir.join("traces"), Some(&json));
    cmd.arg("--fabric-dir")
        .arg(&fabric)
        .args(["--workers", "3", "--lease-ttl-ms", "2000"]);
    let status = cmd.status().expect("spawn capture_run --workers 3");
    assert!(status.success(), "spawner run failed: {status}");

    let merged = std::fs::read(&json).expect("merged json");
    assert_eq!(
        merged, reference,
        "spawner-merged report must be byte-identical to the 1-worker run"
    );
    assert!(
        !fabric.join("fig12").join("journal.stale.jsonl").exists(),
        "a fresh run must reset the fabric directory"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
