//! Smoke tests for the fleet observability tools.
//!
//! The feature-less tests build a synthetic fabric directory out of the
//! always-compiled building blocks (event streams, journals) and drive
//! the real `fabric_top` / `fleet_report` binaries over it — including a
//! stream whose tail is torn mid-write, the on-disk signature of a
//! SIGKILLed worker. The `events`-gated test runs the real thing: three
//! `capture_run` fabric workers, one SIGKILLed mid-sweep, and checks the
//! dashboard JSON and the merged Perfetto timeline stay consistent with
//! the journalled truth.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use zcomp::fabric::FabricCellPayload;
use zcomp::fleet::FleetStatus;
use zcomp::supervise::Journal;
use zcomp_trace::chrome;
use zcomp_trace::events::{EventStream, FleetEvent, STREAM_VERSION};
use zcomp_trace::metrics::MetricsDelta;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zcomp-fleet-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start_event(worker: &str, cells: u64) -> FleetEvent {
    FleetEvent::WorkerStart {
        worker: worker.to_string(),
        experiment: "exp".to_string(),
        cells,
        fingerprint: 9,
        lease_ttl_ms: 500,
        epoch_us: 5_000_000,
        version: STREAM_VERSION,
    }
}

fn claim(index: u64) -> FleetEvent {
    FleetEvent::CellClaimed {
        index,
        cell: format!("cell-{index}"),
        token: 1,
        reclaimed: false,
    }
}

fn commit(index: u64) -> FleetEvent {
    FleetEvent::CellCommitted {
        index,
        cell: format!("cell-{index}"),
        token: 1,
        attempts: 1,
        elapsed_us: 2000,
    }
}

/// A synthetic two-worker fabric dir: w1 finished cleanly, w2's stream
/// is torn mid-line (SIGKILL signature); both cells are journalled.
fn synthetic_fabric(root: &Path) {
    let events = root.join("exp").join("events");
    let mut w1 = EventStream::create(&events.join("w1.jsonl")).expect("w1 stream");
    for ev in [
        start_event("w1", 2),
        claim(0),
        FleetEvent::Heartbeat {
            metrics: MetricsDelta::default(),
        },
        commit(0),
        FleetEvent::WorkerDone {
            completed: 1,
            claims: 1,
            reclaims: 0,
            fenced: 0,
            drains: 0,
            duplicates: 0,
        },
    ] {
        w1.emit(ev).expect("emit w1");
    }
    let mut w2 = EventStream::create(&events.join("w2.jsonl")).expect("w2 stream");
    for ev in [start_event("w2", 2), claim(1), commit(1)] {
        w2.emit(ev).expect("emit w2");
    }
    drop(w2);
    // Tear the tail: a half-written line with no newline, as left by a
    // worker killed mid-write. Readers must stop at the last valid event.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(events.join("w2.jsonl"))
        .expect("reopen w2");
    file.write_all(b"deadbeef {\"seq\":3,\"ts_us\":99,\"event\":")
        .expect("append torn line");

    let mut journal = Journal::load(root.join("exp").join("journal.w1.jsonl")).expect("journal");
    for (cell, worker) in [("cell-0", "w1"), ("cell-1", "w2")] {
        journal
            .commit_fenced(
                cell.to_string(),
                9,
                serde_json::to_string(&FabricCellPayload::Completed {
                    attempts: 1,
                    value: "1".to_string(),
                })
                .expect("payload"),
                worker.to_string(),
                1,
            )
            .expect("commit");
    }
}

#[test]
fn fabric_top_once_json_parses_and_reflects_a_torn_stream() {
    let dir = tmp_dir("top");
    synthetic_fabric(&dir);

    let out = Command::new(env!("CARGO_BIN_EXE_fabric_top"))
        .arg(&dir)
        .args(["--once", "--json"])
        .output()
        .expect("run fabric_top");
    assert!(out.status.success(), "fabric_top failed: {}", out.status);
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let status: FleetStatus =
        serde_json::from_str(&stdout).expect("fabric_top --json must emit valid status JSON");

    assert_eq!(status.experiments.len(), 1);
    let exp = &status.experiments[0];
    assert_eq!(exp.experiment, "exp");
    assert!(exp.grid_known);
    assert_eq!((exp.cells, exp.done, exp.quarantined), (2, 2, 0));
    assert_eq!(exp.workers.len(), 2);
    let (w1, w2) = (&exp.workers[0], &exp.workers[1]);
    assert!(w1.done && !w1.truncated);
    assert_eq!((w1.claims, w1.completed), (1, 1));
    assert!(
        w2.truncated && !w2.done,
        "torn tail must flag the stream truncated"
    );
    assert_eq!(
        (w2.claims, w2.completed),
        (1, 1),
        "events before the torn line still count"
    );

    // The human view renders without crashing and names both workers.
    let human = Command::new(env!("CARGO_BIN_EXE_fabric_top"))
        .arg(&dir)
        .arg("--once")
        .output()
        .expect("run fabric_top human view");
    assert!(human.status.success());
    let text = String::from_utf8_lossy(&human.stdout).to_string();
    assert!(text.contains("w1") && text.contains("w2"), "{text}");
    assert!(text.contains("killed?"), "torn worker flagged: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_report_writes_valid_merged_trace_and_markdown() {
    let dir = tmp_dir("report");
    synthetic_fabric(&dir);
    let out_dir = dir.join("results");

    let out = Command::new(env!("CARGO_BIN_EXE_fleet_report"))
        .arg(&dir)
        .arg("--out-dir")
        .arg(&out_dir)
        .output()
        .expect("run fleet_report");
    assert!(out.status.success(), "fleet_report failed: {}", out.status);

    let trace = std::fs::read_to_string(out_dir.join("fleet_trace_exp.json")).expect("trace file");
    let check = chrome::validate(&trace).expect("merged trace validates");
    assert_eq!(check.pids, 2, "one Perfetto process per worker");
    assert_eq!(check.metadata, 2, "process_name metadata per worker");
    assert_eq!(check.async_spans, 2, "one lease span per claimed cell");

    let md = std::fs::read_to_string(out_dir.join("fleet_report.md")).expect("markdown");
    assert!(md.contains("# Fleet report"));
    assert!(md.contains("| w1 |") && md.contains("| w2 |"), "{md}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fabric_top_exits_nonzero_on_missing_dir_and_bad_usage() {
    let missing = std::env::temp_dir().join("zcomp-fleet-smoke-definitely-missing");
    let out = Command::new(env!("CARGO_BIN_EXE_fabric_top"))
        .arg(&missing)
        .args(["--once", "--json"])
        .stderr(Stdio::null())
        .output()
        .expect("run fabric_top");
    assert_eq!(out.status.code(), Some(1));

    let usage = Command::new(env!("CARGO_BIN_EXE_fleet_report"))
        .args(["--bogus-flag"])
        .stderr(Stdio::null())
        .output()
        .expect("run fleet_report");
    assert_eq!(usage.status.code(), Some(2));
}

/// The real thing: three fabric workers on a fig12 sweep with the event
/// sink armed, one SIGKILLed mid-run. The survivors finish the sweep;
/// the dashboard JSON must agree with the journalled truth and the
/// merged timeline must carry all three workers, the killed one's
/// stream read up to its last CRC-valid event.
#[cfg(feature = "events")]
#[test]
fn killed_worker_fleet_stays_consistent_end_to_end() {
    use std::time::Duration;
    let dir = tmp_dir("e2e");
    let worker_cmd = |fabric: &Path, worker: &str| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_capture_run"));
        cmd.arg("fig12")
            .args(["--scale", "2048", "--threads", "2", "--quiet", "--resume"])
            .arg("--traces")
            .arg(dir.join(format!("traces-{worker}")))
            .args(["--lease-ttl-ms", "500"])
            .arg("--fabric-dir")
            .arg(fabric)
            .args(["--worker-id", worker]);
        cmd.stdout(Stdio::null()).stderr(Stdio::null());
        cmd
    };

    // Stagger the kill until a round lands while the victim is alive
    // (same approach as the fabric smoke test).
    let mut fabric = dir.join("fabric-0");
    for attempt in 0..5u64 {
        fabric = dir.join(format!("fabric-{attempt}"));
        let mut w1 = worker_cmd(&fabric, "w1").spawn().expect("spawn w1");
        let mut victim = worker_cmd(&fabric, "w2").spawn().expect("spawn w2");
        let mut w3 = worker_cmd(&fabric, "w3").spawn().expect("spawn w3");

        std::thread::sleep(Duration::from_millis(40 + 60 * attempt));
        let victim_was_running = matches!(victim.try_wait(), Ok(None));
        let _ = victim.kill();
        let _ = victim.wait();
        let s1 = w1.wait().expect("wait w1");
        let s3 = w3.wait().expect("wait w3");
        assert!(s1.success() && s3.success(), "survivors failed: {s1} {s3}");
        if victim_was_running {
            break;
        }
        assert!(attempt < 4, "no kill landed while the victim was alive");
    }

    // Every worker left an event stream; the killed one's parses up to
    // its last CRC-valid record (torn tail or not, never garbage).
    let events_dir = fabric.join("fig12").join("events");
    let mut streams: Vec<PathBuf> = std::fs::read_dir(&events_dir)
        .expect("events dir exists when the sink is armed")
        .flatten()
        .map(|e| e.path())
        .collect();
    streams.sort();
    assert_eq!(streams.len(), 3, "one stream per worker: {streams:?}");
    for path in &streams {
        let stream = zcomp_trace::events::read_stream(path).expect("stream parses");
        assert!(!stream.records.is_empty(), "{path:?} has valid events");
    }

    // Dashboard JSON agrees with the journalled truth.
    let out = Command::new(env!("CARGO_BIN_EXE_fabric_top"))
        .arg(&fabric)
        .args(["--once", "--json"])
        .output()
        .expect("run fabric_top");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let status: FleetStatus = serde_json::from_str(&stdout).expect("status JSON");
    let exp = &status.experiments[0];
    assert_eq!(exp.experiment, "fig12");
    assert!(exp.grid_known);
    assert_eq!(exp.done, exp.cells, "sweep completed despite the kill");
    assert_eq!(exp.quarantined, 0);
    assert_eq!(exp.in_flight, 0, "no leases left running");
    assert_eq!(exp.workers.len(), 3);
    assert!(exp.workers.iter().all(|w| w.started));
    let killed = exp.workers.iter().find(|w| w.worker == "w2").expect("w2");
    assert!(!killed.done, "SIGKILL leaves no WorkerDone");
    let claims: u64 = exp.workers.iter().map(|w| w.claims).sum();
    assert!(claims >= exp.cells, "every cell was claimed at least once");
    // The survivors' committed counts cover the whole grid minus at most
    // what the victim journalled before its stream stopped.
    let completed: u64 = exp.workers.iter().map(|w| w.completed).sum();
    assert!(completed >= exp.cells.saturating_sub(killed.claims));

    // One merged timeline with all three workers, and it validates.
    let out_dir = dir.join("results");
    let report = Command::new(env!("CARGO_BIN_EXE_fleet_report"))
        .arg(&fabric)
        .args(["--experiment", "fig12", "--quiet"])
        .arg("--out-dir")
        .arg(&out_dir)
        .status()
        .expect("run fleet_report");
    assert!(report.success(), "fleet_report failed: {report}");
    let trace =
        std::fs::read_to_string(out_dir.join("fleet_trace_fig12.json")).expect("merged trace");
    let check = chrome::validate(&trace).expect("merged trace validates");
    assert_eq!(check.pids, 3, "spans from all three workers");
    assert!(check.async_spans as u64 >= exp.cells, "{check:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
