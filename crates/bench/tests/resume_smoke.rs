//! Kill-mid-sweep integration test for crash-safe checkpoint–resume.
//!
//! Drives the real `capture_run` binary: one uninterrupted run produces
//! the reference JSON report; a second run is SIGKILLed mid-sweep and then
//! continued with `--resume`. The resumed run must exit cleanly and its
//! report must be byte-for-byte identical to the uninterrupted one — the
//! journal restores completed cells exactly, and the JSON carries only the
//! scientific result, never "how we got there".

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const SCALE: &str = "2048";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zcomp-resume-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn capture_cmd(traces: &Path, json: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_capture_run"));
    cmd.arg("fig12")
        .args(["--scale", SCALE, "--threads", "2", "--quiet"])
        .arg("--traces")
        .arg(traces)
        .arg("--json")
        .arg(json);
    if resume {
        cmd.arg("--resume");
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

/// Kills `child` after `delay`; returns whether it was still running.
fn kill_after(mut child: Child, delay: Duration) -> bool {
    std::thread::sleep(delay);
    let still_running = matches!(child.try_wait(), Ok(None));
    let _ = child.kill(); // SIGKILL — no cleanup handlers run
    let _ = child.wait();
    still_running
}

#[test]
fn resumed_run_reproduces_the_uninterrupted_report_byte_for_byte() {
    let dir = tmp_dir("main");
    let reference_json = dir.join("uninterrupted.json");
    let resumed_json = dir.join("resumed.json");

    // Reference: one uninterrupted run.
    let status = capture_cmd(&dir.join("ref-traces"), &reference_json, false)
        .status()
        .expect("spawn capture_run");
    assert!(status.success(), "uninterrupted run failed: {status}");
    let reference = std::fs::read(&reference_json).expect("reference json");
    assert!(!reference.is_empty());

    // Interrupted: SIGKILL mid-sweep, at a few staggered points so at
    // least one kill lands while cells are still in flight. Every
    // (kill, resume) round must converge to the reference bytes.
    let traces = dir.join("run-traces");
    let mut interrupted_midway = false;
    for attempt in 0..4u64 {
        let _ = std::fs::remove_dir_all(&traces);
        let _ = std::fs::remove_file(&resumed_json);
        let child = capture_cmd(&traces, &resumed_json, false)
            .spawn()
            .expect("spawn capture_run");
        interrupted_midway |= kill_after(child, Duration::from_millis(30 + 60 * attempt));

        let status = capture_cmd(&traces, &resumed_json, true)
            .status()
            .expect("spawn resume");
        assert!(status.success(), "resume run failed: {status}");
        let resumed = std::fs::read(&resumed_json).expect("resumed json");
        assert_eq!(
            resumed, reference,
            "resumed report must be byte-identical to the uninterrupted one"
        );
        if interrupted_midway {
            break;
        }
    }
    assert!(
        interrupted_midway,
        "no kill landed mid-sweep; increase the sweep size or shrink the delays"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming with nothing journalled (the kill landed before any cell
/// committed, or the cache dir is fresh) is just a full run.
#[test]
fn resume_with_empty_journal_is_a_full_run() {
    let dir = tmp_dir("fresh");
    let json = dir.join("out.json");
    let status = capture_cmd(&dir.join("traces"), &json, true)
        .status()
        .expect("spawn capture_run --resume");
    assert!(status.success(), "fresh --resume run failed: {status}");
    assert!(json.exists());
    let _ = std::fs::remove_dir_all(&dir);
}
