//! Base-Delta-Immediate (BDI) compression — Pekhimenko et al., PACT 2012
//! (reference [43] of the ZCOMP paper).
//!
//! BDI stores a cache line as one base value plus small per-word deltas.
//! It excels on pointer-rich and slowly-varying integer data; on fp32
//! activation maps the mantissa entropy defeats small deltas, which is
//! why the ZCOMP paper's cache-compression comparison builds on FPC-D
//! instead. BDI is provided as an additional baseline so that claim can
//! be checked rather than assumed.

use crate::line::{lines_of, words_of, LINE_BYTES};

/// A BDI encoding option: base size and delta size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BdiOption {
    base_bytes: usize,
    delta_bytes: usize,
}

/// The canonical BDI encoding set (base8/Δ1..4, base4/Δ1..2, base2/Δ1).
const OPTIONS: [BdiOption; 6] = [
    BdiOption {
        base_bytes: 8,
        delta_bytes: 1,
    },
    BdiOption {
        base_bytes: 8,
        delta_bytes: 2,
    },
    BdiOption {
        base_bytes: 8,
        delta_bytes: 4,
    },
    BdiOption {
        base_bytes: 4,
        delta_bytes: 1,
    },
    BdiOption {
        base_bytes: 4,
        delta_bytes: 2,
    },
    BdiOption {
        base_bytes: 2,
        delta_bytes: 1,
    },
];

/// BDI metadata per line: encoding selector plus the zero-word bitmap.
const BDI_LINE_PREFIX_BYTES: usize = 2;

/// Compressed size of one cache line under BDI, in bytes (capped at the
/// raw line size). A zero line compresses to the prefix plus one base.
pub fn bdi_line_bytes(line: &[u8; LINE_BYTES]) -> usize {
    // Zero line special case.
    if line.iter().all(|&b| b == 0) {
        return BDI_LINE_PREFIX_BYTES + 1;
    }
    // Repeated-value special case (any granule).
    let words = words_of(line);
    if words.iter().all(|&w| w == words[0]) {
        return BDI_LINE_PREFIX_BYTES + 4;
    }
    let mut best = LINE_BYTES;
    for opt in OPTIONS {
        if let Some(size) = try_option(line, opt) {
            best = best.min(size);
        }
    }
    best
}

/// Attempts one base+delta encoding; BDI uses the first value as the base
/// (with a second implicit base of zero, which covers zero-interleaved
/// data).
fn try_option(line: &[u8; LINE_BYTES], opt: BdiOption) -> Option<usize> {
    let values: Vec<i128> = line
        .chunks_exact(opt.base_bytes)
        .map(|chunk| {
            let mut raw = [0u8; 16];
            raw[..chunk.len()].copy_from_slice(chunk);
            i128::from_le_bytes(raw)
        })
        .collect();
    let base = values[0];
    let delta_max = 1i128 << (opt.delta_bytes * 8 - 1);
    let fits = values.iter().all(|&v| {
        let from_base = v.wrapping_sub(base);
        let from_zero = v;
        (-delta_max..delta_max).contains(&from_base) || (-delta_max..delta_max).contains(&from_zero)
    });
    if !fits {
        return None;
    }
    let n = values.len();
    // Prefix + base + one delta per granule + one bit per granule for the
    // base selector (rounded to bytes).
    Some(BDI_LINE_PREFIX_BYTES + opt.base_bytes + n * opt.delta_bytes + n.div_ceil(8))
}

/// BDI compression ratio over a buffer (uncompressed / compressed).
///
/// Returns 1.0 for an empty buffer.
pub fn bdi_ratio(data: &[f32]) -> f64 {
    let _span = zcomp_trace::tracer::span("cachecomp", "bdi_ratio");
    let mut compressed = 0usize;
    let mut lines = 0usize;
    for line in lines_of(data) {
        compressed += bdi_line_bytes(&line);
        lines += 1;
    }
    if lines == 0 {
        1.0
    } else {
        let ratio = (lines * LINE_BYTES) as f64 / compressed as f64;
        if zcomp_trace::tracer::enabled() {
            zcomp_trace::tracer::counter("cachecomp.bdi_ratio", ratio);
        }
        ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpc::fpcd_line_bytes;

    #[test]
    fn zero_line_is_tiny() {
        assert_eq!(bdi_line_bytes(&[0u8; LINE_BYTES]), 3);
    }

    #[test]
    fn repeated_word_line_compresses() {
        let mut line = [0u8; LINE_BYTES];
        for chunk in line.chunks_exact_mut(4) {
            chunk.copy_from_slice(&0x3F80_0000u32.to_le_bytes()); // 1.0f32
        }
        assert!(bdi_line_bytes(&line) < 8);
    }

    #[test]
    fn small_integer_sequence_compresses() {
        // 8-byte granules holding 0..8: deltas fit one byte from base 0.
        let mut line = [0u8; LINE_BYTES];
        for (i, chunk) in line.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(i as u64).to_le_bytes());
        }
        let size = bdi_line_bytes(&line);
        assert!(size < LINE_BYTES / 2, "got {size}");
    }

    #[test]
    fn random_floats_defeat_bdi() {
        // Distinct fp32 activations: high-entropy mantissas, no small
        // deltas — BDI stores the line raw. This is why the paper's
        // comparison uses FPC-D.
        let mut line = [0u8; LINE_BYTES];
        for (i, chunk) in line.chunks_exact_mut(4).enumerate() {
            let v = 1.234f32 + 0.731 * i as f32;
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        assert_eq!(bdi_line_bytes(&line), LINE_BYTES);
    }

    #[test]
    fn fpcd_beats_bdi_on_sparse_activations() {
        // Half-sparse activation data: FPC-D's per-word zero pattern wins
        // over BDI's whole-line delta requirement.
        let data: Vec<f32> = (0..4096)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.5 + i as f32 })
            .collect();
        let mut fpcd_total = 0usize;
        let mut bdi_total = 0usize;
        for line in crate::line::lines_of(&data) {
            fpcd_total += fpcd_line_bytes(&line);
            bdi_total += bdi_line_bytes(&line);
        }
        assert!(
            fpcd_total < bdi_total,
            "fpcd {fpcd_total} vs bdi {bdi_total}"
        );
    }

    #[test]
    fn ratio_bounds() {
        assert_eq!(bdi_ratio(&[]), 1.0);
        let zeros = vec![0.0f32; 1024];
        assert!(bdi_ratio(&zeros) > 10.0);
        let dense: Vec<f32> = (0..1024).map(|i| 1.0 + i as f32 * 0.997).collect();
        assert!(bdi_ratio(&dense) <= 1.05);
    }
}
