//! Frequent Pattern Compression (FPC) and FPC with a limited dictionary
//! (FPC-D).
//!
//! FPC (Alameldeen & Wood, 2004) encodes each 32-bit word with a 3-bit
//! prefix selecting one of eight patterns. FPC-D (Alameldeen & Agarwal,
//! 2018) extends it with a small dictionary of recently seen words,
//! "achieving higher compression ratios at lower latency and complexity";
//! its line format carries an 8-byte prefix per cache line (§5.4 of the
//! ZCOMP paper attributes LimitCC's modest ratios to that overhead,
//! compared with ZCOMP's two bytes per line).

#[cfg(test)]
use crate::line::WORDS_PER_LINE;
use crate::line::{words_of, LINE_BYTES};

/// Bits of the per-word FPC pattern prefix.
const PREFIX_BITS: usize = 3;

/// FPC-D per-line metadata prefix in bytes (compression encoding, segment
/// count and dictionary seed information).
pub const FPCD_LINE_PREFIX_BYTES: usize = 8;

/// Number of dictionary entries FPC-D tracks while scanning a line.
const FPCD_DICT_ENTRIES: usize = 4;

/// Whether both halfwords of `word` are sign-extended bytes.
fn halfwords_are_sign_extended_bytes(word: u32) -> bool {
    let lo = (word & 0xFFFF) as i16 as i32;
    let hi = (word >> 16) as i16 as i32;
    (-128..128).contains(&lo) && (-128..128).contains(&hi)
}

/// Payload bits FPC assigns to one 32-bit word (excluding the prefix).
fn fpc_payload_bits(word: u32) -> usize {
    let as_i32 = word as i32;
    if word == 0 {
        // Zero word (runs are encoded in the payload; one word per entry
        // in this per-word model).
        3
    } else if (-8..8).contains(&as_i32) {
        // 4-bit sign-extended.
        4
    } else if (-128..128).contains(&as_i32) {
        // 8-bit sign-extended.
        8
    } else if (-32768..32768).contains(&as_i32) {
        // 16-bit sign-extended.
        16
    } else if word & 0xFFFF == 0 {
        // Halfword padded with a zero halfword.
        16
    } else if halfwords_are_sign_extended_bytes(word) {
        // Two halfwords, each a sign-extended byte.
        16
    } else if word.to_le_bytes().windows(2).all(|w| w[0] == w[1]) {
        // Word consisting of repeated bytes.
        8
    } else {
        // Uncompressed word.
        32
    }
}

/// Compressed size of one cache line under plain FPC, in bits.
pub fn fpc_line_bits(line: &[u8; LINE_BYTES]) -> usize {
    words_of(line)
        .iter()
        .map(|&w| PREFIX_BITS + fpc_payload_bits(w))
        .sum()
}

/// Compressed size of one cache line under FPC-D, in bytes, including the
/// 8-byte line prefix. The result is capped at the uncompressed line size
/// (an incompressible line is stored raw).
pub fn fpcd_line_bytes(line: &[u8; LINE_BYTES]) -> usize {
    let mut dict: [u32; FPCD_DICT_ENTRIES] = [0; FPCD_DICT_ENTRIES];
    let mut dict_len = 0usize;
    let mut bits = 0usize;
    for &w in &words_of(line) {
        let dict_hit = dict[..dict_len].contains(&w) && w != 0;
        if dict_hit {
            // Prefix + 2-bit dictionary index.
            bits += PREFIX_BITS + 2;
            continue;
        }
        bits += PREFIX_BITS + fpc_payload_bits(w);
        if w != 0 && fpc_payload_bits(w) == 32 {
            // Insert uncompressible words into the dictionary (FIFO).
            if dict_len < FPCD_DICT_ENTRIES {
                dict[dict_len] = w;
                dict_len += 1;
            } else {
                dict.rotate_left(1);
                dict[FPCD_DICT_ENTRIES - 1] = w;
            }
        }
    }
    (FPCD_LINE_PREFIX_BYTES + bits.div_ceil(8)).min(LINE_BYTES)
}

/// Average FPC-D compressed line size over a buffer, in bytes.
pub fn fpcd_average_line_bytes(data: &[f32]) -> f64 {
    let mut total = 0usize;
    let mut lines = 0usize;
    for line in crate::line::lines_of(data) {
        total += fpcd_line_bytes(&line);
        lines += 1;
    }
    if lines == 0 {
        LINE_BYTES as f64
    } else {
        total as f64 / lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::lines_of;

    fn line_from(words: [u32; WORDS_PER_LINE]) -> [u8; LINE_BYTES] {
        let mut line = [0u8; LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            line[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        line
    }

    #[test]
    fn zero_line_compresses_hard() {
        let line = [0u8; LINE_BYTES];
        // 16 words * (3 prefix + 3 payload) = 96 bits = 12 bytes.
        assert_eq!(fpc_line_bits(&line), 96);
        assert_eq!(fpcd_line_bytes(&line), FPCD_LINE_PREFIX_BYTES + 12);
    }

    #[test]
    fn random_float_line_is_nearly_incompressible() {
        let words = [0x3F8C_5A31u32; WORDS_PER_LINE].map(|w| w ^ 0xDEAD);
        let line = line_from(words);
        // Every word identical: the first is uncompressed, the rest hit
        // the FPC-D dictionary.
        let bytes = fpcd_line_bytes(&line);
        assert!(
            bytes < LINE_BYTES / 2,
            "dictionary must catch repeats: {bytes}"
        );
    }

    #[test]
    fn distinct_random_floats_stay_raw() {
        let mut words = [0u32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            *w = 0x3F80_0000 + 0x1357 * (i as u32 + 1); // distinct fp32 patterns
        }
        let line = line_from(words);
        assert_eq!(fpcd_line_bytes(&line), LINE_BYTES, "capped at raw size");
    }

    #[test]
    fn small_integers_use_short_patterns() {
        assert_eq!(fpc_payload_bits(0), 3);
        assert_eq!(fpc_payload_bits(5), 4);
        assert_eq!(fpc_payload_bits((-3i32) as u32), 4);
        assert_eq!(fpc_payload_bits(100), 8);
        assert_eq!(fpc_payload_bits(30_000), 16);
        assert_eq!(fpc_payload_bits(0xABAB_ABAB), 8); // repeated bytes
        assert_eq!(fpc_payload_bits(0x1234_0000), 16); // low half zero... high half used
    }

    #[test]
    fn half_sparse_activations_give_middling_ratio() {
        // 50% zero words, 50% arbitrary floats: the zero words shrink, the
        // floats stay raw. Expect a ratio well below ZCOMP's on the same
        // data (Fig. 15's finding).
        let data: Vec<f32> = (0..4096)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.234 + i as f32 })
            .collect();
        let avg = fpcd_average_line_bytes(&data);
        let ratio = LINE_BYTES as f64 / avg;
        assert!((1.0..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn average_of_empty_buffer_is_raw_line() {
        assert_eq!(fpcd_average_line_bytes(&[]), LINE_BYTES as f64);
    }

    #[test]
    fn fpcd_never_exceeds_line_size() {
        let data: Vec<f32> = (0..1024).map(|i| (i as f32).sin() * 1e7).collect();
        for line in lines_of(&data) {
            assert!(fpcd_line_bytes(&line) <= LINE_BYTES);
        }
    }
}
