//! Cache-compression baselines for the ZCOMP comparison (Fig. 15).
//!
//! The paper compares ZCOMP's effective compression ratio against cache
//! compression built on the FPC-D algorithm, in two architectures:
//!
//! * [`limitcc::limitcc_ratio`] — an upper bound that packs compressed
//!   lines at byte granularity with no physical-line boundaries;
//! * [`twotag::twotag_ratio`] — a practical design that can merge at most
//!   two logical lines into one physical line.
//!
//! Fig. 15's finding: ZCOMP reaches a geometric-mean ratio of 1.8 while
//! LimitCC reaches 1.54 and TwoTagCC only 1.1 — FPC-D's 8-byte per-line
//! prefix and the pairing constraint eat the head-room that ZCOMP's 2-byte
//! headers preserve.
//!
//! # Example
//!
//! ```
//! use zcomp_cachecomp::{limitcc_ratio, twotag_ratio};
//!
//! // A half-sparse activation buffer.
//! let data: Vec<f32> = (0..4096)
//!     .map(|i| if i % 2 == 0 { 0.0 } else { 1.5 + i as f32 })
//!     .collect();
//! let limit = limitcc_ratio(&data);
//! let twotag = twotag_ratio(&data);
//! assert!(limit >= twotag, "LimitCC bounds TwoTagCC from above");
//! ```

pub mod bdi;
pub mod fpc;
pub mod limitcc;
pub mod line;
pub mod twotag;

pub use bdi::{bdi_line_bytes, bdi_ratio};
pub use fpc::{fpc_line_bits, fpcd_average_line_bytes, fpcd_line_bytes};
pub use limitcc::limitcc_ratio;
pub use twotag::twotag_ratio;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limitcc_upper_bounds_twotag() {
        for density in 1..10usize {
            let data: Vec<f32> = (0..8192)
                .map(|i| {
                    if i % 10 < density {
                        1.0 + i as f32
                    } else {
                        0.0
                    }
                })
                .collect();
            assert!(
                limitcc_ratio(&data) + 1e-9 >= twotag_ratio(&data) * 0.99,
                "density {density}"
            );
        }
    }
}
