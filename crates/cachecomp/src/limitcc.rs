//! LimitCC — the upper-bound cache-compression architecture of §5.4.
//!
//! "We also show the upper bound cache compression ratio (LimitCC)
//! assuming we can compress cache lines to arbitrary sizes (at a byte
//! granularity), and compress as many lines as possible in a cache set
//! regardless of physical cache line boundaries." Lines are compressed
//! with FPC-D.

use crate::fpc::fpcd_line_bytes;
use crate::line::{lines_of, LINE_BYTES};

/// Compression ratio achieved by LimitCC on a buffer: uncompressed bytes
/// over the byte-granularity sum of FPC-D line sizes.
///
/// Returns 1.0 for an empty buffer.
///
/// # Example
///
/// ```
/// use zcomp_cachecomp::limitcc::limitcc_ratio;
///
/// let zeros = vec![0.0f32; 1024];
/// assert!(limitcc_ratio(&zeros) > 2.0);
/// ```
pub fn limitcc_ratio(data: &[f32]) -> f64 {
    let mut compressed = 0usize;
    let mut lines = 0usize;
    for line in lines_of(data) {
        compressed += fpcd_line_bytes(&line);
        lines += 1;
    }
    if lines == 0 {
        1.0
    } else {
        (lines * LINE_BYTES) as f64 / compressed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_ratio_is_line_over_prefix_plus_zero_codes() {
        let zeros = vec![0.0f32; 4096];
        // 64 / (8 prefix + 12 zero-coded payload) = 3.2
        let r = limitcc_ratio(&zeros);
        assert!((r - 3.2).abs() < 0.01, "got {r}");
    }

    #[test]
    fn dense_random_data_barely_compresses() {
        let data: Vec<f32> = (0..4096).map(|i| 1.0 + (i as f32) * 0.731).collect();
        let r = limitcc_ratio(&data);
        assert!(r <= 1.05, "got {r}");
    }

    #[test]
    fn empty_buffer_ratio_is_one() {
        assert_eq!(limitcc_ratio(&[]), 1.0);
    }

    #[test]
    fn ratio_grows_with_sparsity() {
        let make = |sparsity_num: usize| -> Vec<f32> {
            (0..8192)
                .map(|i| {
                    if i % 10 < sparsity_num {
                        0.0
                    } else {
                        1.0 + i as f32
                    }
                })
                .collect()
        };
        assert!(limitcc_ratio(&make(8)) > limitcc_ratio(&make(4)));
        assert!(limitcc_ratio(&make(4)) > limitcc_ratio(&make(1)));
    }
}
