//! Cache-line views over data buffers.

/// Size of a cache line in bytes.
pub const LINE_BYTES: usize = 64;

/// Number of 32-bit words per line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / 4;

/// Iterates over the 64-byte cache lines of an `f32` buffer.
///
/// The final partial line (if any) is zero-padded, as resident cache data
/// would be.
///
/// # Example
///
/// ```
/// use zcomp_cachecomp::line::lines_of;
///
/// let data = vec![1.0f32; 20]; // 80 bytes -> 2 lines
/// let lines: Vec<_> = lines_of(&data).collect();
/// assert_eq!(lines.len(), 2);
/// assert_eq!(lines[1][63], 0, "padding is zero");
/// ```
pub fn lines_of(data: &[f32]) -> impl Iterator<Item = [u8; LINE_BYTES]> + '_ {
    let total_lines = data.len().div_ceil(WORDS_PER_LINE);
    (0..total_lines).map(move |i| {
        let mut line = [0u8; LINE_BYTES];
        let start = i * WORDS_PER_LINE;
        for (w, v) in data[start..data.len().min(start + WORDS_PER_LINE)]
            .iter()
            .enumerate()
        {
            line[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        line
    })
}

/// Extracts the 16 little-endian 32-bit words of a line.
pub fn words_of(line: &[u8; LINE_BYTES]) -> [u32; WORDS_PER_LINE] {
    let mut out = [0u32; WORDS_PER_LINE];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = u32::from_le_bytes(line[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_has_no_lines() {
        assert_eq!(lines_of(&[]).count(), 0);
    }

    #[test]
    fn exact_line_count() {
        let data = vec![0.0f32; 32];
        assert_eq!(lines_of(&data).count(), 2);
    }

    #[test]
    fn words_roundtrip() {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let line = lines_of(&data).next().expect("one line");
        let words = words_of(&line);
        assert_eq!(f32::from_bits(words[3]), 3.0);
    }
}
