//! TwoTagCC — a practical two-tag cache-compression architecture (§5.4).
//!
//! "A more practical Two Tag architecture (TwoTagCC) where we can combine
//! at most two logical lines into one physical line" (Gaur et al., 2016,
//! Base-Victim compression). A pair of logical lines shares one physical
//! 64-byte line only when both compressed images fit together; §5.4 notes
//! that this "requires lines in the same set to have complementary
//! compressed lengths", which is rarely the case when the average
//! compressed size exceeds half a line.

use crate::fpc::fpcd_line_bytes;
use crate::line::{lines_of, LINE_BYTES};

/// Set-associativity assumed when pairing candidate lines (lines mapping
/// to the same set are pairing candidates, as in the referenced design).
const PAIR_WINDOW: usize = 16;

/// Compression ratio achieved by TwoTagCC on a buffer: logical lines over
/// physical lines after greedy complementary pairing within each
/// `PAIR_WINDOW`-line window.
///
/// Returns 1.0 for an empty buffer.
///
/// # Example
///
/// ```
/// use zcomp_cachecomp::twotag::twotag_ratio;
///
/// let zeros = vec![0.0f32; 4096];
/// // Every pair of all-zero lines shares a physical line: ratio 2.
/// assert!((twotag_ratio(&zeros) - 2.0).abs() < 0.05);
/// ```
pub fn twotag_ratio(data: &[f32]) -> f64 {
    let sizes: Vec<usize> = lines_of(data).map(|l| fpcd_line_bytes(&l)).collect();
    if sizes.is_empty() {
        return 1.0;
    }
    let mut physical = 0usize;
    for window in sizes.chunks(PAIR_WINDOW) {
        physical += physical_lines_for_window(window);
    }
    sizes.len() as f64 / physical as f64
}

/// Greedy complementary pairing inside one set-window: sort the sizes,
/// then repeatedly match the smallest with the largest that still fits.
fn physical_lines_for_window(sizes: &[usize]) -> usize {
    let mut sorted: Vec<usize> = sizes.to_vec();
    sorted.sort_unstable();
    let (mut lo, mut hi) = (0usize, sorted.len());
    let mut physical = 0usize;
    while lo < hi {
        if hi - lo >= 2 && sorted[lo] + sorted[hi - 1] <= LINE_BYTES {
            // The smallest and the largest-fitting share a physical line.
            lo += 1;
            hi -= 1;
        } else {
            // The largest line cannot pair with anything: stored alone.
            hi -= 1;
        }
        physical += 1;
    }
    physical
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incompressible_data_gets_ratio_one() {
        let data: Vec<f32> = (0..4096).map(|i| 1.0 + (i as f32) * 0.917).collect();
        let r = twotag_ratio(&data);
        assert!((r - 1.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn at_most_two_to_one() {
        let zeros = vec![0.0f32; 65536];
        assert!(twotag_ratio(&zeros) <= 2.0 + 1e-9);
    }

    #[test]
    fn half_compressible_pairs_partially() {
        // Alternate all-zero lines (20 B compressed) with raw lines (64 B):
        // zero lines cannot pair with raw ones, and raw lines stand alone;
        // pairs form only among the zero lines.
        let mut data = Vec::new();
        for i in 0..256 {
            for w in 0..16 {
                data.push(if i % 2 == 0 {
                    0.0
                } else {
                    1.0 + (i * 16 + w) as f32
                });
            }
        }
        let r = twotag_ratio(&data);
        // 128 raw lines + 64 physical lines for the 128 zero lines =
        // 192 physical for 256 logical = ratio 1.33.
        assert!((1.25..1.45).contains(&r), "got {r}");
    }

    #[test]
    fn empty_buffer_ratio_is_one() {
        assert_eq!(twotag_ratio(&[]), 1.0);
    }

    #[test]
    fn window_pairing_is_greedy_best_fit() {
        // Sizes 10 and 54 fit together (64); 40 and 40 do not.
        assert_eq!(physical_lines_for_window(&[10, 54]), 1);
        assert_eq!(physical_lines_for_window(&[40, 40]), 2);
        assert_eq!(physical_lines_for_window(&[10, 20, 30, 64]), 3);
    }
}
