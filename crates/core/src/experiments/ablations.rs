//! Ablation studies for the design choices called out in the paper.
//!
//! * §3.3 — ZCOMP logic-pipeline latency (2 vs 3 cycles): "the overall
//!   performance is almost identical ... due to throughput-bound
//!   operation".
//! * §4.3 — parallelization strategy (serialized Fig. 7(a) vs partitioned
//!   Fig. 7(b)) and sub-block loop unrolling.
//! * §4.1 — header placement (interleaved vs separate) and the 3.125%
//!   metadata break-even compressibility.

use serde::{Deserialize, Serialize};
use zcomp_isa::dtype::ElemType;
use zcomp_isa::stream::HeaderMode;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::partition::Parallelization;
use zcomp_kernels::relu::{run_relu, ReluOpts, ReluScheme};
use zcomp_kernels::relu_interval::run_relu_interval;
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

use crate::report::{pct, Table};

/// Result of the logic-latency ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicLatencyResult {
    /// `(latency_cycles, runtime_cycles)` pairs.
    pub points: Vec<(u32, f64)>,
}

impl LogicLatencyResult {
    /// Relative runtime change from the first to the last point.
    pub fn relative_change(&self) -> f64 {
        let first = self.points.first().expect("at least one point").1;
        let last = self.points.last().expect("at least one point").1;
        (last - first) / first
    }

    /// Renders the ablation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation (3.3): ZCOMP logic pipeline latency",
            &["logic_latency", "cycles", "vs_2cy"],
        );
        let base = self.points[0].1;
        for &(lat, cycles) in &self.points {
            t.row([
                format!("{lat}"),
                format!("{cycles:.0}"),
                pct(cycles / base - 1.0),
            ]);
        }
        t
    }
}

/// Runs the logic-latency ablation on a medium DeepBench-scale tensor.
///
/// The cycle-stepped interval model is used because the pipeline latency
/// enters timing through per-iteration dependency chains — exactly the
/// mechanism §3.3 argues is hidden by throughput-bound operation.
pub fn logic_latency(elements: usize, latencies: &[u32]) -> LogicLatencyResult {
    let nnz = nnz_synthetic(elements, 0.53, 6.0, 0xAB1);
    let cfg = SimConfig::table1();
    let points = latencies
        .iter()
        .map(|&lat| {
            let table = UopTable {
                zcomp_logic_latency: lat,
            };
            let result =
                run_relu_interval(&cfg, table, ReluScheme::Zcomp, &nnz, &ReluOpts::default());
            (lat, result.wall_cycles)
        })
        .collect();
    LogicLatencyResult { points }
}

/// Result of the parallelization ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelizationResult {
    /// Serialized (Fig. 7(a)) runtime in cycles.
    pub serialized_cycles: f64,
    /// Partitioned (Fig. 7(b)) runtime per unroll factor:
    /// `(unroll, cycles)`.
    pub partitioned: Vec<(usize, f64)>,
}

impl ParallelizationResult {
    /// Speedup of partitioned (unroll 1) over serialized.
    pub fn partitioned_speedup(&self) -> f64 {
        self.serialized_cycles / self.partitioned[0].1
    }

    /// Renders the ablation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation (4.3): parallelization strategy and unrolling",
            &["strategy", "cycles"],
        );
        t.row([
            "serialized (Fig 7a)".to_string(),
            format!("{:.0}", self.serialized_cycles),
        ]);
        for &(unroll, cycles) in &self.partitioned {
            t.row([
                format!("partitioned, unroll {unroll}"),
                format!("{cycles:.0}"),
            ]);
        }
        t
    }
}

/// Runs the parallelization ablation.
pub fn parallelization(elements: usize, unrolls: &[usize]) -> ParallelizationResult {
    let nnz = nnz_synthetic(elements, 0.53, 6.0, 0xAB2);
    let run_with = |par: Parallelization, unroll: usize| -> f64 {
        let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
        let opts = ReluOpts {
            parallelization: par,
            unroll,
            ..ReluOpts::default()
        };
        run_relu(&mut machine, ReluScheme::Zcomp, &nnz, &opts).total_cycles()
    };
    ParallelizationResult {
        serialized_cycles: run_with(Parallelization::Serialized, 1),
        partitioned: unrolls
            .iter()
            .map(|&u| (u, run_with(Parallelization::Partitioned, u)))
            .collect(),
    }
}

/// One sparsity point of the header-placement analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeaderPoint {
    /// Input sparsity.
    pub sparsity: f64,
    /// Interleaved stream bytes.
    pub interleaved_bytes: u64,
    /// Whether the interleaved stream fits the original allocation
    /// (§4.1's safety condition).
    pub fits_original: bool,
    /// Runtime with interleaved headers.
    pub interleaved_cycles: f64,
    /// Runtime with a separate header store.
    pub separate_cycles: f64,
}

/// Result of the header-placement ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeaderModeResult {
    /// Sweep points by increasing sparsity.
    pub points: Vec<HeaderPoint>,
}

impl HeaderModeResult {
    /// The metadata break-even compressibility for fp32/512-bit vectors
    /// (§4.1: 3.125%).
    pub fn breakeven() -> f64 {
        ElemType::F32.metadata_breakeven()
    }

    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation (4.1): header placement vs sparsity",
            &[
                "sparsity",
                "interleaved_bytes",
                "fits_original",
                "interleaved_cycles",
                "separate_cycles",
            ],
        );
        for p in &self.points {
            t.row([
                format!("{:.3}", p.sparsity),
                p.interleaved_bytes.to_string(),
                p.fits_original.to_string(),
                format!("{:.0}", p.interleaved_cycles),
                format!("{:.0}", p.separate_cycles),
            ]);
        }
        t
    }
}

/// Runs the header-placement sweep over input sparsities.
pub fn header_mode(elements: usize, sparsities: &[f64]) -> HeaderModeResult {
    let points = sparsities
        .iter()
        .map(|&s| {
            let nnz = nnz_synthetic(elements, s, 6.0, 0xAB3);
            let alloc = (elements * 4) as u64;
            let run_with = |mode: HeaderMode| {
                let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
                let opts = ReluOpts {
                    header_mode: mode,
                    ..ReluOpts::default()
                };
                run_relu(&mut machine, ReluScheme::Zcomp, &nnz, &opts)
            };
            let inter = run_with(HeaderMode::Interleaved);
            let sep = run_with(HeaderMode::Separate);
            HeaderPoint {
                sparsity: s,
                interleaved_bytes: inter.output_bytes,
                fits_original: inter.output_bytes <= alloc,
                interleaved_cycles: inter.total_cycles(),
                separate_cycles: sep.total_cycles(),
            }
        })
        .collect();
    HeaderModeResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_latency_is_insensitive_when_throughput_bound() {
        // §3.3: "the overall performance is almost identical to the
        // 2-cycle version due to throughput-bound operation".
        let r = logic_latency(512 * 1024, &[2, 3]);
        assert!(
            r.relative_change().abs() < 0.05,
            "3-cycle logic changed runtime by {}",
            r.relative_change()
        );
    }

    #[test]
    fn partitioned_beats_serialized() {
        let r = parallelization(256 * 1024, &[1, 2, 4]);
        assert!(
            r.partitioned_speedup() > 1.8,
            "speedup {}",
            r.partitioned_speedup()
        );
    }

    #[test]
    fn unrolling_never_hurts_much() {
        // §4.3: "loop unrolling has minor impact for large feature-maps".
        let r = parallelization(512 * 1024, &[1, 4]);
        let (u1, u4) = (r.partitioned[0].1, r.partitioned[1].1);
        assert!(u4 <= u1 * 1.05, "unroll-4 {u4} vs unroll-1 {u1}");
    }

    #[test]
    fn breakeven_is_3_125_percent() {
        assert!((HeaderModeResult::breakeven() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn interleaved_fits_only_above_breakeven() {
        let r = header_mode(64 * 1024, &[0.0, 0.02, 0.10, 0.53]);
        assert!(!r.points[0].fits_original, "dense stream must overflow");
        assert!(!r.points[1].fits_original, "2% < 3.125% break-even");
        assert!(r.points[2].fits_original);
        assert!(r.points[3].fits_original);
    }

    #[test]
    fn header_modes_have_similar_runtime_at_paper_sparsity() {
        let r = header_mode(128 * 1024, &[0.53]);
        let p = &r.points[0];
        let rel = (p.separate_cycles - p.interleaved_cycles).abs() / p.interleaved_cycles;
        assert!(rel < 0.25, "modes differ by {rel}");
    }

    #[test]
    fn tables_render() {
        assert!(logic_latency(64 * 1024, &[2, 3])
            .table()
            .render()
            .contains("2"));
        assert!(parallelization(64 * 1024, &[1])
            .table()
            .render()
            .contains("serialized"));
        assert!(header_mode(16 * 1024, &[0.5])
            .table()
            .render()
            .contains("true"));
    }
}
