//! Extension: full training-epoch time projection.
//!
//! The paper evaluates per-step behaviour; this extension projects a
//! whole epoch over the §5.3 datasets (Oxford Flowers and the
//! 100k-image ImageNet subset): steps per epoch × simulated step time,
//! per scheme. The *relative* numbers match Fig. 14 by construction; the
//! absolute seconds show what an 11% training speedup means at epoch
//! scale.

use serde::{Deserialize, Serialize};
use zcomp_dnn::dataset::Dataset;
use zcomp_dnn::models::ModelId;
use zcomp_dnn::sparsity::SparsityModel;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_kernels::network_exec::{run_network, NetworkExecOpts};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

use crate::report::Table;

/// One (network, scheme) epoch projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRow {
    /// Network.
    pub model: ModelId,
    /// Scheme.
    pub scheme: Scheme,
    /// Batch used for the simulated step.
    pub batch: usize,
    /// Steps per epoch on the dataset.
    pub steps: usize,
    /// Simulated seconds per step.
    pub step_seconds: f64,
    /// Projected seconds per epoch.
    pub epoch_seconds: f64,
}

/// Result of the epoch projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochResult {
    /// Dataset projected over.
    pub dataset: Dataset,
    /// Rows per network and scheme.
    pub rows: Vec<EpochRow>,
}

impl EpochResult {
    /// Renders the projection table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Extension: epoch time projection on {}", self.dataset.name),
            &["network", "scheme", "batch", "steps", "s/step", "s/epoch"],
        );
        for r in &self.rows {
            t.row([
                r.model.to_string(),
                r.scheme.to_string(),
                r.batch.to_string(),
                r.steps.to_string(),
                format!("{:.4}", r.step_seconds),
                format!("{:.1}", r.epoch_seconds),
            ]);
        }
        t
    }

    /// Epoch speedup of zcomp over the baseline for a network.
    pub fn speedup(&self, model: ModelId) -> f64 {
        let get = |scheme: Scheme| {
            self.rows
                .iter()
                .find(|r| r.model == model && r.scheme == scheme)
                .expect("row exists")
                .epoch_seconds
        };
        get(Scheme::None) / get(Scheme::Zcomp)
    }
}

/// Projects epoch times for the given networks on a dataset.
///
/// `batch_divisor` scales the paper's training batch down for quick runs;
/// steps per epoch always use the *paper's* batch so the projection stays
/// meaningful.
pub fn run(dataset: Dataset, models: &[ModelId], batch_divisor: usize) -> EpochResult {
    let mut rows = Vec::new();
    for &model in models {
        let paper_batch = model.training_batch();
        let batch = (paper_batch / batch_divisor.max(1)).max(1);
        let net = model.build(batch);
        let profile = SparsityModel::default().profile(&net, 50);
        let steps = dataset.steps_per_epoch(paper_batch);
        for scheme in [Scheme::None, Scheme::Avx512Comp, Scheme::Zcomp] {
            let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
            let result = run_network(
                &mut machine,
                &net,
                &profile,
                &NetworkExecOpts {
                    scheme,
                    training: true,
                    ..NetworkExecOpts::default()
                },
            );
            // Scale the reduced-batch step time back to the paper batch
            // (streaming phases scale linearly in batch).
            let step_seconds = result.summary.seconds * (paper_batch / batch) as f64;
            rows.push(EpochRow {
                model,
                scheme,
                batch,
                steps,
                step_seconds,
                epoch_seconds: step_seconds * steps as f64,
            });
        }
    }
    EpochResult { dataset, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_structure() {
        let r = run(Dataset::oxford_flowers(), &[ModelId::Resnet32], 32);
        assert_eq!(r.rows.len(), 3);
        assert!(r.rows.iter().all(|row| row.epoch_seconds > 0.0));
        assert_eq!(
            r.rows[0].steps,
            Dataset::oxford_flowers().steps_per_epoch(128)
        );
    }

    #[test]
    fn zcomp_shortens_epochs() {
        let r = run(Dataset::oxford_flowers(), &[ModelId::Resnet32], 16);
        assert!(r.speedup(ModelId::Resnet32) > 1.0);
    }

    #[test]
    fn table_renders() {
        let r = run(Dataset::oxford_flowers(), &[ModelId::Resnet32], 32);
        assert!(r.table().render().contains("s/epoch"));
    }
}
