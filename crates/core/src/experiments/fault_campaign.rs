//! Fault-injection campaign — detection, silent corruption, degradation.
//!
//! Sweeps fault rate × injection site over the data-faithful faulted
//! layer of `zcomp_kernels::degrade`: every trial materializes a real
//! compressed stream, streams it through the simulated memory hierarchy
//! with probes armed at exactly one site, applies every drained bit flip
//! to the modeled bytes, and runs the consumer-side integrity policy
//! (validate + optional CRC32 sidecar, retry once, fall back to the
//! uncompressed avx512-vec path).
//!
//! Reported per (site, rate) cell: injection and detection counts,
//! outcome mix (clean / recovered / fallback / silent corruption),
//! degradation overhead in bytes and cycles, and the desynchronization
//! distance distribution (how many trailing vectors one corrupted byte
//! poisons — the §4.1 in-band-header hazard the integrity machinery
//! exists to contain).
//!
//! The campaign is fully deterministic: every probe seed is derived from
//! the campaign seed, the site, the rate bits and the trial index, so the
//! same configuration reproduces byte-identical JSON.

use serde::{Deserialize, Serialize};
use zcomp_dnn::sparsity::generate_activations;
use zcomp_isa::stream::HeaderMode;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::degrade::{run_layer_faulted, DegradeOpts, FaultyLayerReport, LayerOutcome};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;
use zcomp_sim::faults::{FaultConfig, FaultSite};

use crate::report::{fmt_bytes, pct, Table};
use crate::supervise::{CellFailure, CellOutcome};
use crate::sweep::{run_cells, SweepError, SweepOpts, SweepOutcome};

/// One campaign's configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed every probe stream derives from.
    pub seed: u64,
    /// Per-access flip rates swept (0.0 is the clean control).
    pub rates: Vec<f64>,
    /// Sites swept, one armed at a time.
    pub sites: Vec<FaultSite>,
    /// Independent trials per (site, rate) cell.
    pub trials: usize,
    /// Layer size in fp32 elements (whole 16-lane vectors).
    pub elements: usize,
    /// Activation sparsity of the synthetic layer (paper average: 53%).
    pub sparsity: f64,
    /// Header placement of the compressed stream.
    pub mode: HeaderMode,
    /// Whether the CRC32 sidecar is maintained and verified.
    pub checksum: bool,
    /// Worker threads streaming the buffers.
    pub threads: usize,
}

impl CampaignConfig {
    /// The default campaign at a workload scale divisor (1 = full size).
    pub fn default_scaled(scale_divisor: usize) -> CampaignConfig {
        let elements = ((1usize << 20) / scale_divisor.max(1)).max(4096) / 16 * 16;
        CampaignConfig {
            seed: 0x000F_A017_CA4D,
            rates: vec![0.0, 1e-5, 1e-4, 1e-3],
            sites: FaultSite::ALL.to_vec(),
            trials: 3,
            elements,
            sparsity: 0.53,
            mode: HeaderMode::Separate,
            checksum: true,
            threads: 4,
        }
    }

    /// The same campaign under the weakest policy: interleaved headers
    /// and no checksum — the configuration where silent corruption is
    /// possible (payload flips keep the stream well-formed).
    pub fn weak_policy(mut self) -> CampaignConfig {
        self.mode = HeaderMode::Interleaved;
        self.checksum = false;
        self
    }

    fn degrade_opts(&self) -> DegradeOpts {
        DegradeOpts {
            threads: self.threads,
            mode: self.mode,
            checksum: self.checksum,
            max_retries: 1,
        }
    }
}

/// Outcome counts of one cell's trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Exact output, no retry.
    pub clean: u64,
    /// Detected, recovered by the retry read.
    pub recovered: u64,
    /// Detected, recovered by the uncompressed fallback.
    pub fallback: u64,
    /// Wrong output that passed every enabled check.
    pub silent: u64,
}

impl OutcomeCounts {
    fn record(&mut self, outcome: LayerOutcome) {
        match outcome {
            LayerOutcome::Clean => self.clean += 1,
            LayerOutcome::Recovered => self.recovered += 1,
            LayerOutcome::Fallback => self.fallback += 1,
            LayerOutcome::SilentCorruption => self.silent += 1,
        }
    }
}

/// Desynchronization-distance distribution of a cell's stream hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DesyncDistribution {
    /// Stream hits with a computable impact.
    pub count: u64,
    /// Fewest trailing vectors poisoned by one hit.
    pub min_vectors: u64,
    /// Mean trailing vectors poisoned.
    pub mean_vectors: f64,
    /// Most trailing vectors poisoned.
    pub max_vectors: u64,
}

impl DesyncDistribution {
    fn of(poisoned: &[u64]) -> DesyncDistribution {
        if poisoned.is_empty() {
            return DesyncDistribution::default();
        }
        DesyncDistribution {
            count: poisoned.len() as u64,
            min_vectors: poisoned.iter().copied().min().unwrap_or(0),
            mean_vectors: poisoned.iter().sum::<u64>() as f64 / poisoned.len() as f64,
            max_vectors: poisoned.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Measurements of one (site, rate) cell, aggregated over its trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Site armed for this cell.
    pub site: FaultSite,
    /// Per-access flip rate.
    pub rate: f64,
    /// Trials run.
    pub trials: u64,
    /// Fault events the probes injected (anywhere in memory).
    pub injected: u64,
    /// Events whose flipped byte landed inside the compressed stream.
    pub stream_hits: u64,
    /// Stream hits credited as detected by the integrity checks.
    pub detections: u64,
    /// Outcome mix of the trials.
    pub outcomes: OutcomeCounts,
    /// Extra bytes moved by retries and fallbacks, per trial.
    pub mean_extra_bytes: f64,
    /// Mean consumer-phase cycles, relative to the clean control (1.0 =
    /// no overhead).
    pub load_cycle_overhead: f64,
    /// Desync-distance distribution of the stream hits.
    pub desync: DesyncDistribution,
}

impl CampaignCell {
    /// Detected fraction of stream hits (1.0 when nothing hit).
    pub fn detection_rate(&self) -> f64 {
        if self.stream_hits == 0 {
            1.0
        } else {
            self.detections as f64 / self.stream_hits as f64
        }
    }

    /// Silently corrupted fraction of trials.
    pub fn silent_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.outcomes.silent as f64 / self.trials as f64
        }
    }
}

/// Complete campaign result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignResult {
    /// The configuration that produced it.
    pub config: CampaignConfig,
    /// Consumer-phase cycles of the clean (no probes) control run.
    pub clean_load_cycles: f64,
    /// Producer-phase cycles of the clean control run.
    pub clean_store_cycles: f64,
    /// One cell per (site, rate), sites outer, rates inner.
    pub cells: Vec<CampaignCell>,
    /// Cells the supervised campaign quarantined, in index order; their
    /// slots hold zeroed placeholder cells. Always empty for
    /// [`run_config`], which propagates panics instead.
    pub quarantined: Vec<CellFailure>,
}

/// Aggregate summary over every cell with a non-zero rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignSummary {
    /// Trials across all faulted cells.
    pub trials: u64,
    /// Stream hits across all faulted cells.
    pub stream_hits: u64,
    /// Overall detected fraction of stream hits.
    pub detection_rate: f64,
    /// Trials that ended in silent corruption.
    pub silent_runs: u64,
    /// Trials recovered by retry alone.
    pub recovered_runs: u64,
    /// Trials that fell back to the uncompressed path.
    pub fallback_runs: u64,
    /// Largest observed desync distance in vectors.
    pub max_desync_vectors: u64,
}

impl FaultCampaignResult {
    /// Computes the aggregate summary (clean controls excluded).
    pub fn summary(&self) -> FaultCampaignSummary {
        let faulted: Vec<&CampaignCell> = self.cells.iter().filter(|c| c.rate > 0.0).collect();
        let hits: u64 = faulted.iter().map(|c| c.stream_hits).sum();
        let detections: u64 = faulted.iter().map(|c| c.detections).sum();
        FaultCampaignSummary {
            trials: faulted.iter().map(|c| c.trials).sum(),
            stream_hits: hits,
            detection_rate: if hits == 0 {
                1.0
            } else {
                detections as f64 / hits as f64
            },
            silent_runs: faulted.iter().map(|c| c.outcomes.silent).sum(),
            recovered_runs: faulted.iter().map(|c| c.outcomes.recovered).sum(),
            fallback_runs: faulted.iter().map(|c| c.outcomes.fallback).sum(),
            max_desync_vectors: faulted
                .iter()
                .map(|c| c.desync.max_vectors)
                .max()
                .unwrap_or(0),
        }
    }

    /// Renders the campaign as one table, one row per cell.
    pub fn table(&self) -> Table {
        let policy = format!(
            "{} headers, checksum {}",
            match self.config.mode {
                HeaderMode::Interleaved => "interleaved",
                HeaderMode::Separate => "separate",
            },
            if self.config.checksum { "on" } else { "off" },
        );
        let mut t = Table::new(
            format!("Fault campaign ({policy})"),
            &[
                "site",
                "rate",
                "hits",
                "detect",
                "clean",
                "retry_ok",
                "fallback",
                "silent",
                "extra/trial",
                "cycle_ovh",
                "desync max",
            ],
        );
        for c in &self.cells {
            t.row([
                c.site.label().to_string(),
                format!("{:.0e}", c.rate),
                c.stream_hits.to_string(),
                pct(c.detection_rate()),
                c.outcomes.clean.to_string(),
                c.outcomes.recovered.to_string(),
                c.outcomes.fallback.to_string(),
                c.outcomes.silent.to_string(),
                fmt_bytes(c.mean_extra_bytes.round() as u64),
                format!("{:.2}x", c.load_cycle_overhead),
                format!("{} vec", c.desync.max_vectors),
            ]);
        }
        t
    }
}

/// Runs the default campaign at a workload scale divisor (1 = full).
pub fn run(scale_divisor: usize) -> FaultCampaignResult {
    run_config(&CampaignConfig::default_scaled(scale_divisor))
}

/// Runs one configured campaign.
///
/// # Panics
///
/// Panics if the configuration has no trials or a non-vector-multiple
/// element count.
pub fn run_config(cfg: &CampaignConfig) -> FaultCampaignResult {
    let _span = zcomp_trace::tracer::span("experiment", "fault_campaign");
    assert!(cfg.trials > 0, "campaign needs at least one trial");
    assert_eq!(cfg.elements % 16, 0, "elements must be whole vectors");
    zcomp_trace::log_info!(
        "fault campaign: {} sites x {} rates x {} trials over {} elements",
        cfg.sites.len(),
        cfg.rates.len(),
        cfg.trials,
        cfg.elements
    );
    let data = layer_data(cfg);
    let opts = cfg.degrade_opts();

    // Clean control: no probes attached at all.
    let clean = {
        let mut machine = machine();
        run_trial(&mut machine, &data, &opts)
    };

    let mut cells = Vec::with_capacity(cfg.sites.len() * cfg.rates.len());
    for &site in &cfg.sites {
        for &rate in &cfg.rates {
            let cell = run_cell(cfg, site, rate, &data, &opts, &clean);
            zcomp_trace::log_debug!(
                "campaign cell {site:?} @ {rate:e}: {} hits, {} detected",
                cell.stream_hits,
                cell.detections
            );
            cells.push(cell);
        }
    }
    FaultCampaignResult {
        config: cfg.clone(),
        clean_load_cycles: clean.load_cycles,
        clean_store_cycles: clean.store_cycles,
        cells,
        quarantined: Vec::new(),
    }
}

/// [`run_config`] with every (site, rate) cell routed through the
/// supervised sweep runtime ([`run_cells`]): a panicking or hung cell is
/// retried per `opts.supervise` and, if it keeps failing, quarantined
/// into the result's `quarantined` list with a zeroed placeholder cell —
/// the rest of the campaign completes. With a cache root the cells are
/// journalled for `opts.resume`, and with `opts.fabric` the campaign
/// joins a multi-process lease fabric like the figure sweeps.
///
/// The clean control run stays *unsupervised*: if the baseline itself
/// cannot run there is nothing meaningful to salvage, so that panic
/// still propagates.
pub fn run_config_supervised(
    cfg: &CampaignConfig,
    opts: &SweepOpts,
) -> Result<SweepOutcome<FaultCampaignResult>, SweepError> {
    let _span = zcomp_trace::tracer::span("experiment", "fault_campaign");
    assert!(cfg.trials > 0, "campaign needs at least one trial");
    assert_eq!(cfg.elements % 16, 0, "elements must be whole vectors");
    let data = std::sync::Arc::new(layer_data(cfg));
    let degrade = cfg.degrade_opts();

    let clean = {
        let mut machine = machine();
        run_trial(&mut machine, &data, &degrade)
    };

    let pairs: Vec<(FaultSite, f64)> = cfg
        .sites
        .iter()
        .flat_map(|&s| cfg.rates.iter().map(move |&r| (s, r)))
        .collect();
    let items = pairs.len();
    // The fingerprint covers the whole campaign configuration, and the
    // cell key names the integrity policy: cells journalled by the
    // strong campaign can never be resumed into the weak one even when
    // both share a fabric directory or cache root.
    let fingerprint = campaign_fingerprint(cfg);
    let key_of = |idx: usize| {
        let (site, rate) = pairs[idx];
        format!(
            "mode={:?};checksum={};site={site:?};rate={rate:e}",
            cfg.mode, cfg.checksum
        )
    };
    let make_job = |idx: usize| -> Box<dyn FnOnce() -> CampaignCell + Send + 'static> {
        // Self-contained job: campaign cells share the (immutable)
        // layer data via Arc so a watchdog-abandoned attempt can
        // safely outlive this frame.
        let (site, rate) = pairs[idx];
        let cfg = cfg.clone();
        let data = std::sync::Arc::clone(&data);
        let clean = clean.clone();
        Box::new(move || run_cell(&cfg, site, rate, &data, &degrade, &clean))
    };
    let run = run_cells("fault_campaign", items, fingerprint, opts, key_of, make_job)?;

    let mut cells = Vec::with_capacity(items);
    for (idx, outcome) in run.outcomes.iter().enumerate() {
        let (site, rate) = pairs[idx];
        match outcome {
            CellOutcome::Completed { value, .. } => cells.push(value.clone()),
            CellOutcome::Quarantined(_) => cells.push(CampaignCell {
                site,
                rate,
                trials: 0,
                injected: 0,
                stream_hits: 0,
                detections: 0,
                outcomes: OutcomeCounts::default(),
                mean_extra_bytes: 0.0,
                load_cycle_overhead: 0.0,
                desync: DesyncDistribution::default(),
            }),
        }
    }
    let result = FaultCampaignResult {
        config: cfg.clone(),
        clean_load_cycles: clean.load_cycles,
        clean_store_cycles: clean.store_cycles,
        cells,
        quarantined: run.report.quarantined.clone(),
    };
    Ok(SweepOutcome {
        result,
        supervision: run.report,
    })
}

/// CRC32 of the serialized campaign configuration — the journal
/// fingerprint that keeps differently-configured campaigns apart.
fn campaign_fingerprint(cfg: &CampaignConfig) -> u32 {
    let text = serde_json::to_string(cfg).expect("campaign config serializes");
    zcomp_isa::integrity::crc32(text.as_bytes())
}

fn machine() -> Machine {
    Machine::new(SimConfig::table1(), UopTable::skylake_x())
}

/// Synthetic post-activation layer data (zero or positive, clustered
/// zero runs), deterministic in the campaign seed.
fn layer_data(cfg: &CampaignConfig) -> Vec<f32> {
    generate_activations(cfg.elements, cfg.sparsity, 6.0, cfg.seed ^ 0xDA7A)
}

/// One faulted (or clean) layer trial. The input is whole vectors by
/// construction, so compression cannot fail.
fn run_trial(machine: &mut Machine, data: &[f32], opts: &DegradeOpts) -> FaultyLayerReport {
    run_layer_faulted(machine, data, opts).expect("campaign input is whole vectors")
}

fn run_cell(
    cfg: &CampaignConfig,
    site: FaultSite,
    rate: f64,
    data: &[f32],
    opts: &DegradeOpts,
    clean: &FaultyLayerReport,
) -> CampaignCell {
    let mut injected = 0u64;
    let mut stream_hits = 0u64;
    let mut detections = 0u64;
    let mut outcomes = OutcomeCounts::default();
    let mut extra_bytes = 0u64;
    let mut load_cycles = 0.0f64;
    let mut poisoned = Vec::new();
    for trial in 0..cfg.trials {
        let mut m = machine();
        if rate > 0.0 {
            let seed = trial_seed(cfg.seed, site, rate, trial);
            m.attach_faults(&FaultConfig::off(seed).with_rate(site, rate));
        }
        let r = run_trial(&mut m, data, opts);
        injected += m.fault_stats().total_injected();
        stream_hits += r.stream_hits;
        detections += r.detections;
        outcomes.record(r.outcome);
        extra_bytes += r.fallback_extra_bytes;
        load_cycles += r.load_cycles;
        poisoned.extend(r.desync.iter().map(|d| d.poisoned_vectors as u64));
    }
    let trials = cfg.trials as u64;
    CampaignCell {
        site,
        rate,
        trials,
        injected,
        stream_hits,
        detections,
        outcomes,
        mean_extra_bytes: extra_bytes as f64 / trials as f64,
        load_cycle_overhead: (load_cycles / trials as f64) / clean.load_cycles.max(1.0),
        desync: DesyncDistribution::of(&poisoned),
    }
}

/// Derives one trial's probe seed from the campaign coordinates.
fn trial_seed(master: u64, site: FaultSite, rate: f64, trial: usize) -> u64 {
    master
        ^ (site as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ rate.to_bits().wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (trial as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            rates: vec![0.0, 1e-3],
            sites: vec![FaultSite::L2Line, FaultSite::DramBurst, FaultSite::NocFlit],
            trials: 2,
            elements: 8192,
            ..CampaignConfig::default_scaled(1)
        }
    }

    #[test]
    fn zero_rate_cells_match_clean_control() {
        let r = run_config(&quick_config());
        for c in r.cells.iter().filter(|c| c.rate == 0.0) {
            assert_eq!(c.injected, 0, "{}", c.site);
            assert_eq!(c.stream_hits, 0);
            assert_eq!(c.outcomes.clean, c.trials);
            assert_eq!(c.mean_extra_bytes, 0.0);
            assert!(
                (c.load_cycle_overhead - 1.0).abs() < 1e-12,
                "clean cells must cost exactly the clean control: {}",
                c.load_cycle_overhead
            );
        }
    }

    #[test]
    fn strong_policy_never_corrupts_silently() {
        let r = run_config(&quick_config());
        let s = r.summary();
        assert!(s.stream_hits > 0, "campaign must land hits: {s:?}");
        assert_eq!(s.silent_runs, 0);
        assert!((s.detection_rate - 1.0).abs() < 1e-12, "{s:?}");
        assert!(s.fallback_runs > 0, "persistent sites must fall back");
    }

    #[test]
    fn faulted_cells_charge_overhead() {
        let r = run_config(&quick_config());
        let dram: Vec<&CampaignCell> = r
            .cells
            .iter()
            .filter(|c| c.site == FaultSite::DramBurst && c.rate > 0.0)
            .collect();
        assert!(dram.iter().any(|c| c.outcomes.fallback > 0));
        for c in dram {
            if c.outcomes.fallback > 0 {
                assert!(c.mean_extra_bytes > 0.0);
                assert!(c.load_cycle_overhead > 1.0);
            }
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = quick_config();
        assert_eq!(run_config(&cfg), run_config(&cfg));
    }

    #[test]
    fn desync_distribution_is_populated_on_hits() {
        let r = run_config(&quick_config());
        let s = r.summary();
        assert!(s.max_desync_vectors >= 1);
        for c in r.cells.iter().filter(|c| c.stream_hits > 0) {
            assert!(c.desync.count > 0);
            assert!(c.desync.mean_vectors >= c.desync.min_vectors as f64);
            assert!(c.desync.mean_vectors <= c.desync.max_vectors as f64);
        }
    }

    #[test]
    fn table_renders_every_cell() {
        let r = run_config(&quick_config());
        let text = r.table().render();
        assert!(text.contains("dram_burst"));
        assert!(text.contains("noc_flit"));
    }

    #[test]
    fn supervised_campaign_matches_unsupervised() {
        let cfg = quick_config();
        let plain = run_config(&cfg);
        let supervised = run_config_supervised(&cfg, &SweepOpts::serial()).unwrap();
        assert_eq!(plain, supervised.result);
        assert!(supervised.result.quarantined.is_empty());
        assert_eq!(
            supervised.supervision.executed,
            cfg.sites.len() * cfg.rates.len()
        );
        assert_eq!(supervised.supervision.retries, 0);
    }

    #[test]
    fn strong_and_weak_campaigns_never_share_a_fingerprint() {
        let cfg = quick_config();
        assert_ne!(
            campaign_fingerprint(&cfg),
            campaign_fingerprint(&cfg.clone().weak_policy())
        );
    }

    #[test]
    fn weak_policy_detects_less_or_equal() {
        let cfg = quick_config();
        let strong = run_config(&cfg).summary();
        let weak = run_config(&cfg.weak_policy()).summary();
        assert!(weak.detection_rate <= strong.detection_rate + 1e-12);
    }
}
