//! Figure 1 — VGG-16 feature-map sparsity and footprint characteristics.
//!
//! (a) Per-layer zero-value ratio across training epochs (batch 64).
//! (b) Per-layer feature-map vs weight memory footprint.

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::vgg16;
use zcomp_dnn::sparsity::SparsityModel;
use zcomp_dnn::training::layer_footprints;

use crate::report::{fmt_bytes, pct, Table};

/// One layer's row in Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Layer name.
    pub layer: String,
    /// Zero ratio at each sampled epoch.
    pub zero_ratio_by_epoch: Vec<f64>,
    /// Feature-map footprint in bytes.
    pub feature_map_bytes: u64,
    /// Weight footprint in bytes.
    pub weight_bytes: u64,
}

/// Complete Figure 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Sampled training epochs.
    pub epochs: Vec<usize>,
    /// Per-layer rows in network order.
    pub rows: Vec<Fig1Row>,
}

impl Fig1Result {
    /// Renders Fig. 1(a): zero ratio per layer per epoch.
    pub fn table_sparsity(&self) -> Table {
        let mut headers = vec!["layer".to_string()];
        headers.extend(self.epochs.iter().map(|e| format!("epoch{e}")));
        let mut t = Table {
            title: "Figure 1(a): VGG-16 per-layer zero ratio (batch 64)".into(),
            headers,
            rows: Vec::new(),
        };
        for r in &self.rows {
            let mut cells = vec![r.layer.clone()];
            cells.extend(r.zero_ratio_by_epoch.iter().map(|&z| pct(z)));
            t.rows.push(cells);
        }
        t
    }

    /// Renders Fig. 1(b): footprints per layer.
    pub fn table_footprint(&self) -> Table {
        let mut t = Table::new(
            "Figure 1(b): VGG-16 per-layer feature-map vs weight footprint",
            &["layer", "feature_map", "weights"],
        );
        for r in &self.rows {
            t.row([
                r.layer.clone(),
                fmt_bytes(r.feature_map_bytes),
                fmt_bytes(r.weight_bytes),
            ]);
        }
        t
    }
}

/// Runs the Figure 1 analysis.
pub fn run(batch: usize, epochs: &[usize]) -> Fig1Result {
    let net = vgg16(batch);
    let model = SparsityModel::default();
    let profiles: Vec<_> = epochs.iter().map(|&e| model.profile(&net, e)).collect();
    let footprints = layer_footprints(&net);
    let rows = net
        .layers
        .iter()
        .enumerate()
        .map(|(i, layer)| Fig1Row {
            layer: layer.name.clone(),
            zero_ratio_by_epoch: profiles.iter().map(|p| p.per_layer[i]).collect(),
            feature_map_bytes: footprints[i].1,
            weight_bytes: footprints[i].2,
        })
        .collect();
    Fig1Result {
        epochs: epochs.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_vgg_layer_and_epoch() {
        let r = run(64, &[1, 30, 90]);
        assert_eq!(r.rows.len(), vgg16(64).layers.len());
        assert!(r.rows.iter().all(|x| x.zero_ratio_by_epoch.len() == 3));
    }

    #[test]
    fn early_layers_dominate_feature_maps() {
        let r = run(64, &[30]);
        let conv1 = &r.rows[0];
        assert!(conv1.feature_map_bytes > 100 << 20);
        assert!(conv1.weight_bytes < 1 << 20);
        let fc6 = r.rows.iter().find(|x| x.layer == "fc6").expect("fc6");
        assert!(fc6.weight_bytes > fc6.feature_map_bytes);
    }

    #[test]
    fn tables_render() {
        let r = run(8, &[1, 90]);
        assert!(r.table_sparsity().render().contains("conv1_1"));
        assert!(r.table_footprint().render().contains("fc8"));
    }

    #[test]
    fn sparsity_exists_at_all_layers() {
        // Fig. 1: "feature map sparsity exists at all network layers".
        let r = run(64, &[90]);
        for row in &r.rows {
            assert!(
                row.zero_ratio_by_epoch[0] > 0.0,
                "{} has no sparsity",
                row.layer
            );
        }
    }
}
