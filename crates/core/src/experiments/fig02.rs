//! Figure 2 — CPU cycle breakdown (compute / memory / synchronization)
//! for the five DNN training workloads.
//!
//! The paper reports that 24–41% of execution time is stalled on memory,
//! motivating the whole work.

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_dnn::sparsity::SparsityModel;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_kernels::network_exec::{run_network, NetworkExecOpts};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

use crate::report::{pct, Table};

/// One network's breakdown row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Network.
    pub model: ModelId,
    /// Compute fraction of cycles.
    pub compute: f64,
    /// Memory-stall fraction of cycles.
    pub memory: f64,
    /// Synchronization fraction of cycles.
    pub sync: f64,
}

/// Complete Figure 2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Per-network rows.
    pub rows: Vec<Fig2Row>,
}

impl Fig2Result {
    /// Renders the stacked-bar data as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 2: CPU cycle breakdown (training, baseline)",
            &["network", "compute", "memory", "sync"],
        );
        for r in &self.rows {
            t.row([
                r.model.to_string(),
                pct(r.compute),
                pct(r.memory),
                pct(r.sync),
            ]);
        }
        t
    }
}

/// Runs the Figure 2 experiment.
///
/// `batch_divisor` scales the paper's training batches down for quick
/// runs (1 = full size).
pub fn run(batch_divisor: usize) -> Fig2Result {
    let rows = ModelId::ALL
        .iter()
        .map(|&model| {
            let batch = (model.training_batch() / batch_divisor.max(1)).max(1);
            let net = model.build(batch);
            let profile = SparsityModel::default().profile(&net, 50);
            let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
            let result = run_network(
                &mut machine,
                &net,
                &profile,
                &NetworkExecOpts {
                    scheme: Scheme::None,
                    training: true,
                    ..NetworkExecOpts::default()
                },
            );
            let b = result.summary.breakdown;
            let total = b.total().max(1e-9);
            Fig2Row {
                model,
                compute: b.compute / total,
                memory: b.memory / total,
                sync: b.sync / total,
            }
        })
        .collect();
    Fig2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Shared scaled-down run: the fixture costs 15 network simulations.
    fn quick() -> &'static Fig2Result {
        static RESULT: OnceLock<Fig2Result> = OnceLock::new();
        RESULT.get_or_init(|| run(32))
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = quick();
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            let sum = row.compute + row.memory + row.sync;
            assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", row.model);
        }
    }

    #[test]
    fn memory_stalls_are_substantial() {
        // Paper: 24-41% memory stalls. At reduced batch the band widens,
        // but stalls must remain a first-order component.
        let r = quick();
        for row in &r.rows {
            // At the reduced test batch small networks are more compute-
            // resident than at the paper's batch 64; keep a loose floor.
            assert!(
                row.memory > 0.02,
                "{}: memory fraction {} too low",
                row.model,
                row.memory
            );
            assert!(
                row.memory < 0.75,
                "{}: memory fraction {} too high",
                row.model,
                row.memory
            );
        }
    }

    #[test]
    fn table_lists_all_networks() {
        let r = quick();
        let text = r.table().render();
        for m in ModelId::ALL {
            assert!(text.contains(&m.to_string()), "{m}");
        }
    }
}
