//! Figure 3 — memory footprint of key data structures per DNN.

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_dnn::training::{training_footprint, MemoryFootprint};

use crate::report::{fmt_bytes, pct, Table};

/// One network's footprint row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Network.
    pub model: ModelId,
    /// Batch used (the paper's: 64, ResNet 128).
    pub batch: usize,
    /// Footprint breakdown.
    pub footprint: MemoryFootprint,
}

/// Complete Figure 3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Per-network rows.
    pub rows: Vec<Fig3Row>,
}

impl Fig3Result {
    /// Renders the footprint table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 3: memory footprint of key data structures (training)",
            &[
                "network",
                "batch",
                "inputs",
                "weights",
                "weight_grads",
                "feature_maps",
                "gradient_maps",
                "fm_share",
            ],
        );
        for r in &self.rows {
            let f = &r.footprint;
            t.row([
                r.model.to_string(),
                r.batch.to_string(),
                fmt_bytes(f.inputs_bytes),
                fmt_bytes(f.weights_bytes),
                fmt_bytes(f.weight_grads_bytes),
                fmt_bytes(f.feature_maps_bytes),
                fmt_bytes(f.gradient_maps_bytes),
                pct(f.feature_map_fraction()),
            ]);
        }
        t
    }
}

/// Runs the Figure 3 analysis at the paper's batch sizes.
pub fn run() -> Fig3Result {
    let rows = ModelId::ALL
        .iter()
        .map(|&model| {
            let batch = model.training_batch();
            let net = model.build(batch);
            Fig3Row {
                model,
                batch,
                footprint: training_footprint(&net),
            }
        })
        .collect();
    Fig3Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_maps_are_majority_for_most_networks() {
        // §2.3: "cross-layer feature map data accounts for the majority of
        // the memory footprint". AlexNet is the FC-heavy outlier where
        // weights rival maps.
        let r = run();
        let majority = r
            .rows
            .iter()
            .filter(|row| row.footprint.feature_map_fraction() > 0.45)
            .count();
        assert!(majority >= 4, "{majority}/5 networks feature-map-majority");
    }

    #[test]
    fn batches_match_paper() {
        let r = run();
        for row in &r.rows {
            let expect = if row.model == ModelId::Resnet32 {
                128
            } else {
                64
            };
            assert_eq!(row.batch, expect, "{}", row.model);
        }
    }

    #[test]
    fn table_renders_shares() {
        let text = run().table().render();
        assert!(text.contains("vgg-16"));
        assert!(text.contains('%'));
    }
}
