//! Figure 12 — ReLU activation layers over 44 DeepBench shapes.
//!
//! (a) Core↔cache-hierarchy data traffic, (b) off-chip DRAM traffic and
//! (c) runtime, for `avx512-vec`, `avx512-comp` and `zcomp`. The paper's
//! headline numbers: traffic reductions of 42%/46% (core) and 48%/54%
//! (DRAM) for avx512-comp/zcomp, a 77% average ZCOMP speedup over the
//! baseline with superlinear spots up to 12x at the cache-fit crossover,
//! and only two small-input outliers where ZCOMP loses ≤4%.

use serde::{Deserialize, Serialize};
use zcomp_dnn::deepbench::{all_configs, DeepBenchConfig};
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::relu::{run_relu, run_relu_with_path, ExecPath, ReluOpts, ReluScheme};
use zcomp_replay::{
    config_fingerprint, replay, CacheMode, TraceCache, TraceError, TraceKey, TraceMeta,
};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;
use zcomp_sim::stats::PrefetchStats;
use zcomp_trace::log_warn;

use crate::report::{fmt_bytes, mean, pct, Table};
use crate::supervise::{CellFailure, CellOutcome};
use crate::sweep::{run_cells, SweepError, SweepOpts, SweepOutcome};

/// The three schemes in plotting order.
pub const SCHEMES: [ReluScheme; 3] = [
    ReluScheme::Avx512Vec,
    ReluScheme::Avx512Comp,
    ReluScheme::Zcomp,
];

/// Measurements of one (config, scheme) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Cell {
    /// Scheme measured.
    pub scheme: ReluScheme,
    /// Cache-hierarchy traffic in bytes — demand plus inter-level line
    /// fills (Fig. 12(a)).
    pub onchip_bytes: u64,
    /// DRAM traffic in bytes (Fig. 12(b)).
    pub dram_bytes: u64,
    /// Runtime in cycles (Fig. 12(c)).
    pub cycles: f64,
    /// Output compression ratio.
    pub compression_ratio: f64,
}

/// All cells of one DeepBench configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig12Row {
    /// The configuration.
    pub config: DeepBenchConfig,
    /// Elements actually simulated (after any scale-down).
    pub simulated_elements: usize,
    /// One cell per scheme.
    pub cells: Vec<Fig12Cell>,
}

impl Fig12Row {
    fn cell(&self, scheme: ReluScheme) -> &Fig12Cell {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme)
            .expect("every scheme is measured")
    }

    /// Speedup of `scheme` over the avx512-vec baseline.
    pub fn speedup(&self, scheme: ReluScheme) -> f64 {
        self.cell(ReluScheme::Avx512Vec).cycles / self.cell(scheme).cycles
    }

    /// Traffic reduction (cache hierarchy) of `scheme` vs baseline.
    pub fn core_reduction(&self, scheme: ReluScheme) -> f64 {
        1.0 - self.cell(scheme).onchip_bytes as f64
            / self.cell(ReluScheme::Avx512Vec).onchip_bytes as f64
    }

    /// Traffic reduction (DRAM) of `scheme` vs baseline.
    pub fn dram_reduction(&self, scheme: ReluScheme) -> f64 {
        let base = self.cell(ReluScheme::Avx512Vec).dram_bytes;
        if base == 0 {
            0.0
        } else {
            1.0 - self.cell(scheme).dram_bytes as f64 / base as f64
        }
    }
}

/// Complete Figure 12 result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig12Result {
    /// Per-configuration rows, suite-grouped and size-sorted.
    pub rows: Vec<Fig12Row>,
    /// L2 prefetcher effectiveness aggregated over the zcomp runs
    /// (§3.3 reports 98–99% accuracy, 94–97% coverage).
    pub zcomp_prefetch: PrefetchStats,
    /// Cells the supervised sweep quarantined after exhausting their
    /// attempt budget, in index order. Their row slots hold zeroed
    /// placeholder cells so the report shape — and byte layout — is
    /// independent of *which* cells failed. Always empty for the plain
    /// serial runners, which propagate panics instead.
    pub quarantined: Vec<CellFailure>,
    /// Per-cell metrics (counters, gauges, latency histograms) collected
    /// while the trace feature is compiled in. Absent from trace-free
    /// builds so their JSON reports stay byte-identical.
    #[cfg(feature = "trace")]
    pub metrics: zcomp_trace::metrics::MetricsSummary,
}

/// Aggregate summary in the shape of the paper's §5.2 text.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig12Summary {
    /// Mean core-traffic reduction of avx512-comp (paper: 42%).
    pub avx_core_reduction: f64,
    /// Mean core-traffic reduction of zcomp (paper: 46%).
    pub zcomp_core_reduction: f64,
    /// Mean DRAM reduction of avx512-comp (paper: 48%).
    pub avx_dram_reduction: f64,
    /// Mean DRAM reduction of zcomp (paper: 54%).
    pub zcomp_dram_reduction: f64,
    /// Mean zcomp speedup over avx512-vec (paper: +77%).
    pub zcomp_speedup: f64,
    /// Mean zcomp speedup over avx512-comp (paper: +56%).
    pub zcomp_vs_avx_speedup: f64,
    /// Configurations where zcomp is slower than the baseline
    /// (paper: 2 outliers, ≤4%).
    pub zcomp_outliers: usize,
    /// Largest zcomp speedup (paper: up to 12x superlinear).
    pub max_zcomp_speedup: f64,
}

impl Fig12Result {
    /// Computes the aggregate summary over all rows.
    pub fn summary(&self) -> Fig12Summary {
        Self::summary_of(&self.rows)
    }

    /// Computes the summary of one benchmark group (the per-suite
    /// averages of Fig. 12's x-axis groups).
    pub fn suite_summary(&self, suite: zcomp_dnn::deepbench::Suite) -> Fig12Summary {
        let rows: Vec<Fig12Row> = self
            .rows
            .iter()
            .filter(|r| r.config.suite == suite)
            .cloned()
            .collect();
        Self::summary_of(&rows)
    }

    fn summary_of(rows: &[Fig12Row]) -> Fig12Summary {
        let col = |f: &dyn Fn(&Fig12Row) -> f64| -> Vec<f64> { rows.iter().map(f).collect() };
        let zcomp_speedups = col(&|r| r.speedup(ReluScheme::Zcomp));
        Fig12Summary {
            avx_core_reduction: mean(&col(&|r| r.core_reduction(ReluScheme::Avx512Comp))),
            zcomp_core_reduction: mean(&col(&|r| r.core_reduction(ReluScheme::Zcomp))),
            avx_dram_reduction: mean(&col(&|r| r.dram_reduction(ReluScheme::Avx512Comp))),
            zcomp_dram_reduction: mean(&col(&|r| r.dram_reduction(ReluScheme::Zcomp))),
            zcomp_speedup: mean(&zcomp_speedups),
            zcomp_vs_avx_speedup: mean(&col(&|r| {
                r.cell(ReluScheme::Avx512Comp).cycles / r.cell(ReluScheme::Zcomp).cycles
            })),
            zcomp_outliers: zcomp_speedups.iter().filter(|&&s| s < 1.0).count(),
            max_zcomp_speedup: zcomp_speedups.iter().copied().fold(0.0, f64::max),
        }
    }

    /// Renders one of the three panels.
    pub fn table(&self, panel: Panel) -> Table {
        let title = match panel {
            Panel::CoreTraffic => "Figure 12(a): cache-hierarchy data traffic",
            Panel::DramTraffic => "Figure 12(b): off-chip DRAM data traffic",
            Panel::Runtime => "Figure 12(c): runtime (cycles; speedup vs avx512-vec)",
        };
        let mut t = Table::new(
            title,
            &[
                "suite",
                "config",
                "size",
                "avx512-vec",
                "avx512-comp",
                "zcomp",
                "zcomp_gain",
            ],
        );
        for r in &self.rows {
            let cell_text = |s: ReluScheme| match panel {
                Panel::CoreTraffic => fmt_bytes(r.cell(s).onchip_bytes),
                Panel::DramTraffic => fmt_bytes(r.cell(s).dram_bytes),
                Panel::Runtime => format!("{:.0}", r.cell(s).cycles),
            };
            let gain = match panel {
                Panel::CoreTraffic => pct(r.core_reduction(ReluScheme::Zcomp)),
                Panel::DramTraffic => pct(r.dram_reduction(ReluScheme::Zcomp)),
                Panel::Runtime => format!("{:.2}x", r.speedup(ReluScheme::Zcomp)),
            };
            t.row([
                r.config.suite.to_string(),
                r.config.name.to_string(),
                fmt_bytes(r.config.bytes() as u64),
                cell_text(ReluScheme::Avx512Vec),
                cell_text(ReluScheme::Avx512Comp),
                cell_text(ReluScheme::Zcomp),
                gain,
            ]);
        }
        t
    }
}

/// The three panels of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Panel {
    /// Fig. 12(a).
    CoreTraffic,
    /// Fig. 12(b).
    DramTraffic,
    /// Fig. 12(c).
    Runtime,
}

/// Runs the Figure 12 experiment.
///
/// * `scale_divisor` — divide tensor sizes for quick runs (1 = full).
/// * `sparsity` — input sparsity (the paper's snapshots average 53%).
pub fn run(scale_divisor: usize, sparsity: f64) -> Fig12Result {
    run_configs(&all_configs(), scale_divisor, sparsity)
}

/// [`run`] with an explicit kernel execution path — the `bench_sim`
/// harness times the sweep under both paths and asserts bit-identity.
pub fn run_with_path(scale_divisor: usize, sparsity: f64, path: ExecPath) -> Fig12Result {
    run_configs_with_path(&all_configs(), scale_divisor, sparsity, path)
}

/// Runs a subset of configurations (used by the ablations and tests).
pub fn run_configs(
    configs: &[DeepBenchConfig],
    scale_divisor: usize,
    sparsity: f64,
) -> Fig12Result {
    run_configs_with_path(configs, scale_divisor, sparsity, ExecPath::Batched)
}

/// [`run_configs`] with an explicit kernel execution path.
pub fn run_configs_with_path(
    configs: &[DeepBenchConfig],
    scale_divisor: usize,
    sparsity: f64,
    path: ExecPath,
) -> Fig12Result {
    let _span = zcomp_trace::tracer::span("experiment", "fig12");
    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    let mut rows = Vec::with_capacity(configs.len());
    let mut zcomp_prefetch = PrefetchStats::default();
    for (i, config) in configs.iter().enumerate() {
        let elements = (config.elements / scale_divisor.max(1)).max(256);
        let nnz = nnz_synthetic(elements, sparsity, 6.0, 0xF16_5EED ^ ((i as u64) << 8));
        let mut cells = Vec::with_capacity(SCHEMES.len());
        for scheme in SCHEMES {
            let _cell_span = zcomp_trace::tracer::span_owned("experiment", || {
                format!("fig12/{}/{scheme:?}", config.name)
            });
            let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
            let result = run_relu_with_path(&mut machine, scheme, &nnz, &ReluOpts::default(), path);
            if scheme == ReluScheme::Zcomp {
                zcomp_prefetch.merge(&machine.summary().l2_prefetch);
            }
            // Traffic and cycles over the measured (steady-state) window
            // only — the warm-up iteration's compulsory misses are the
            // caches' problem, as in DeepBench itself.
            #[cfg(feature = "trace")]
            {
                registry.incr("fig12.cells", 1);
                registry.observe("fig12.cycles", result.total_cycles());
                registry.observe("fig12.dram_bytes", result.traffic.dram_bytes as f64);
                registry.gauge("fig12.compression_ratio", result.compression_ratio());
            }
            cells.push(Fig12Cell {
                scheme,
                onchip_bytes: result.traffic.onchip_bytes(),
                dram_bytes: result.traffic.dram_bytes,
                cycles: result.total_cycles(),
                compression_ratio: result.compression_ratio(),
            });
        }
        rows.push(Fig12Row {
            config: config.clone(),
            simulated_elements: elements,
            cells,
        });
    }
    Fig12Result {
        rows,
        zcomp_prefetch,
        quarantined: Vec::new(),
        #[cfg(feature = "trace")]
        metrics: registry.summary(),
    }
}

/// The trailer note persisted with every fig12 cell trace: the byte
/// counts the replay driver cannot recover from the op stream alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CellNote {
    output_bytes: u64,
    uncompressed_bytes: u64,
}

impl CellNote {
    fn compression_ratio(&self) -> f64 {
        if self.output_bytes == 0 {
            1.0
        } else {
            self.uncompressed_bytes as f64 / self.output_bytes as f64
        }
    }
}

/// What one supervised fig12 cell produces — the measured cell plus the
/// prefetch counters the result aggregates. Serialized whole into the
/// resume journal, so a restored cell is indistinguishable from an
/// executed one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Fig12CellRecord {
    cell: Fig12Cell,
    prefetch: PrefetchStats,
}

/// The cache/journal key of one (config, scheme) cell. Everything that
/// determines the cell's op stream is folded in, so a key hit is safe to
/// replay and a journal hit is safe to restore.
fn cell_key(
    config: &DeepBenchConfig,
    index: usize,
    scheme: ReluScheme,
    scale_divisor: usize,
    sparsity: f64,
) -> TraceKey {
    let elements = (config.elements / scale_divisor.max(1)).max(256);
    let seed = 0xF16_5EED ^ ((index as u64) << 8);
    TraceKey::new(
        "fig12",
        format!(
            "cfg={};scheme={scheme};elements={elements};sparsity={sparsity};seed={seed:#x};opts=default",
            config.name
        ),
    )
}

/// Runs one (config, scheme) cell with the trace cache: replay on a valid
/// hit, simulate-and-capture otherwise. Every cache failure — open,
/// replay, capture, finish — degrades to plain in-process simulation.
fn sweep_cell(
    cache: Option<&TraceCache>,
    mode: CacheMode,
    config: &DeepBenchConfig,
    index: usize,
    scheme: ReluScheme,
    scale_divisor: usize,
    sparsity: f64,
) -> (Fig12Cell, PrefetchStats) {
    let elements = (config.elements / scale_divisor.max(1)).max(256);
    let seed = 0xF16_5EED ^ ((index as u64) << 8);
    let sim_cfg = SimConfig::table1();
    let fingerprint = config_fingerprint(&sim_cfg);
    let key = cell_key(config, index, scheme, scale_divisor, sparsity);
    if let Some(cache) = cache {
        match mode {
            CacheMode::Refresh => cache.evict(&key, fingerprint),
            CacheMode::Auto => {
                if let Some(mut reader) = cache.open(&key, fingerprint) {
                    let mut machine = Machine::new(sim_cfg.clone(), UopTable::skylake_x());
                    match replay(&mut reader, &mut machine) {
                        Ok(outcome) => {
                            let note = serde_json::from_str::<CellNote>(&outcome.note);
                            if let (Some(window), Ok(note)) = (outcome.measured, note) {
                                let cell = Fig12Cell {
                                    scheme,
                                    onchip_bytes: window.traffic.onchip_bytes(),
                                    dram_bytes: window.traffic.dram_bytes,
                                    cycles: window.cycles,
                                    compression_ratio: note.compression_ratio(),
                                };
                                return (cell, outcome.summary.l2_prefetch);
                            }
                            log_warn!(
                                "fig12 trace for [{}] lacks a window or note; re-capturing",
                                key.cell
                            );
                            cache.quarantine_replay_failure(
                                &key,
                                fingerprint,
                                "replayed clean but lacks a measurement window or note",
                            );
                        }
                        Err(e) => {
                            log_warn!("fig12 replay of [{}] failed ({e}); re-capturing", key.cell);
                            if !matches!(e, TraceError::Io(_)) {
                                cache.quarantine_replay_failure(&key, fingerprint, &e.to_string());
                            }
                        }
                    }
                }
            }
        }
    }

    // Cache miss (or caching off): simulate, capturing when possible.
    let nnz = nnz_synthetic(elements, sparsity, 6.0, seed);
    let mut machine = Machine::new(sim_cfg, UopTable::skylake_x());
    let session =
        cache.and_then(
            |c| match c.begin_capture(&key, TraceMeta::for_config(machine.config())) {
                Ok(s) => Some(s),
                Err(e) => {
                    log_warn!(
                        "fig12 capture of [{}] cannot start ({e}); running uncached",
                        key.cell
                    );
                    None
                }
            },
        );
    if let Some(s) = &session {
        machine.set_observer(Some(s.observer()));
    }
    let result = run_relu(&mut machine, scheme, &nnz, &ReluOpts::default());
    machine.set_observer(None);
    if let Some(s) = session {
        let note = serde_json::to_string(&CellNote {
            output_bytes: result.output_bytes,
            uncompressed_bytes: result.uncompressed_bytes,
        })
        .unwrap_or_default();
        if let Err(e) = s.finish(&note) {
            log_warn!("fig12 capture of [{}] failed ({e}); result kept", key.cell);
        }
    }
    let cell = Fig12Cell {
        scheme,
        onchip_bytes: result.traffic.onchip_bytes(),
        dram_bytes: result.traffic.dram_bytes,
        cycles: result.total_cycles(),
        compression_ratio: result.compression_ratio(),
    };
    (cell, machine.summary().l2_prefetch)
}

/// Runs the Figure 12 sweep sharded across threads with trace-cached,
/// *supervised* cells; equivalent to [`run_configs`] cell for cell.
///
/// Cold cells simulate in-process (capturing a trace when a cache is
/// configured); warm cells replay their cached trace, skipping workload
/// generation. Every cell runs under the supervision policy in `opts`
/// (panic isolation, optional watchdog deadline, deterministic retry);
/// cells that exhaust their budget land in `quarantined` with a zeroed
/// placeholder in their row slot instead of aborting the sweep. With a
/// cache root configured, completed cells are journalled so
/// `opts.resume` skips them on a re-run — the resumed result is
/// byte-identical to an uninterrupted one. The merge is deterministic:
/// results are assembled in config/scheme order regardless of which
/// worker finished first.
pub fn run_sweep(
    configs: &[DeepBenchConfig],
    scale_divisor: usize,
    sparsity: f64,
    opts: &SweepOpts,
) -> Result<SweepOutcome<Fig12Result>, SweepError> {
    let _span = zcomp_trace::tracer::span("experiment", "fig12-sweep");
    let cache = opts.cache()?;
    let fingerprint = config_fingerprint(&SimConfig::table1());
    let items = configs.len() * SCHEMES.len();
    let key_of = |idx: usize| {
        cell_key(
            &configs[idx / SCHEMES.len()],
            idx / SCHEMES.len(),
            SCHEMES[idx % SCHEMES.len()],
            scale_divisor,
            sparsity,
        )
        .cell
    };
    let make_job = |idx: usize| -> Box<dyn FnOnce() -> Fig12CellRecord + Send + 'static> {
        // The job must be self-contained ('static): a watchdogged attempt
        // may outlive this stack frame.
        let cache = cache.clone();
        let mode = opts.cache_mode;
        let config = configs[idx / SCHEMES.len()].clone();
        let config_index = idx / SCHEMES.len();
        let scheme = SCHEMES[idx % SCHEMES.len()];
        Box::new(move || {
            let (cell, prefetch) = sweep_cell(
                cache.as_ref(),
                mode,
                &config,
                config_index,
                scheme,
                scale_divisor,
                sparsity,
            );
            Fig12CellRecord { cell, prefetch }
        })
    };
    let run = run_cells("fig12", items, fingerprint, opts, key_of, make_job)?;

    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    let mut rows = Vec::with_capacity(configs.len());
    let mut zcomp_prefetch = PrefetchStats::default();
    for (ci, config) in configs.iter().enumerate() {
        let mut row_cells = Vec::with_capacity(SCHEMES.len());
        for (si, scheme) in SCHEMES.iter().enumerate() {
            let cell = match &run.outcomes[ci * SCHEMES.len() + si] {
                CellOutcome::Completed { value, .. } => {
                    if *scheme == ReluScheme::Zcomp {
                        zcomp_prefetch.merge(&value.prefetch);
                    }
                    #[cfg(feature = "trace")]
                    {
                        registry.incr("fig12.cells", 1);
                        registry.observe("fig12.cycles", value.cell.cycles);
                        registry.observe("fig12.dram_bytes", value.cell.dram_bytes as f64);
                        registry.gauge("fig12.compression_ratio", value.cell.compression_ratio);
                    }
                    value.cell.clone()
                }
                // Quarantined slot: an explicit zeroed placeholder keeps
                // the row shape (and byte layout) stable; the failure
                // itself is reported in `quarantined`.
                CellOutcome::Quarantined(_) => Fig12Cell {
                    scheme: *scheme,
                    onchip_bytes: 0,
                    dram_bytes: 0,
                    cycles: 0.0,
                    compression_ratio: 0.0,
                },
            };
            row_cells.push(cell);
        }
        rows.push(Fig12Row {
            config: config.clone(),
            simulated_elements: (config.elements / scale_divisor.max(1)).max(256),
            cells: row_cells,
        });
    }
    #[cfg(feature = "trace")]
    {
        registry.incr("fig12.retries", run.report.retries);
        registry.incr("fig12.resume_skips", run.report.resume_skips as u64);
        registry.incr("fig12.quarantined", run.report.quarantined.len() as u64);
        if let Some(fabric) = &run.report.fabric {
            registry.incr("fabric.claims", fabric.claims);
            registry.incr("fabric.reclaims", fabric.reclaims);
            registry.incr("fabric.fenced_rejections", fabric.fenced_rejections);
            registry.incr("fabric.drains", fabric.drains);
        }
    }
    let result = Fig12Result {
        rows,
        zcomp_prefetch,
        quarantined: run.report.quarantined.clone(),
        #[cfg(feature = "trace")]
        metrics: registry.summary(),
    };
    Ok(SweepOutcome {
        result,
        supervision: run.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zcomp_dnn::deepbench::{suite_configs, Suite};

    fn quick() -> Fig12Result {
        // Heavy scale-down: structure checks only.
        run_configs(&suite_configs(Suite::ConvTrain)[..4], 4096, 0.53)
    }

    #[test]
    fn every_row_has_all_schemes() {
        let r = quick();
        for row in &r.rows {
            assert_eq!(row.cells.len(), 3);
        }
    }

    #[test]
    fn compression_reduces_core_traffic() {
        let r = quick();
        for row in &r.rows {
            // At the heavy test scale-down, line-granular fills blunt the
            // reduction for the smallest shapes; full-size runs land near
            // the paper's 46%.
            assert!(
                row.core_reduction(ReluScheme::Zcomp) > 0.1,
                "{}: {}",
                row.config.name,
                row.core_reduction(ReluScheme::Zcomp)
            );
        }
    }

    #[test]
    fn summary_aggregates() {
        let r = quick();
        let s = r.summary();
        assert!(s.zcomp_core_reduction > 0.0);
        assert!(s.max_zcomp_speedup >= s.zcomp_speedup * 0.5);
    }

    #[test]
    fn tables_render_all_panels() {
        let r = quick();
        for panel in [Panel::CoreTraffic, Panel::DramTraffic, Panel::Runtime] {
            let text = r.table(panel).render();
            assert!(text.contains("zcomp"));
        }
    }

    #[test]
    fn sweep_matches_serial_run() {
        let configs = &suite_configs(Suite::ConvTrain)[..2];
        let reference = run_configs(configs, 4096, 0.53);

        let root = std::env::temp_dir().join(format!("ztrc-fig12-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Cold: serial, capturing into the cache.
        let cold = run_sweep(configs, 4096, 0.53, &SweepOpts::serial().with_cache(&root))
            .expect("cold sweep");
        // Warm: parallel, replaying the captured traces.
        let warm = run_sweep(
            configs,
            4096,
            0.53,
            &SweepOpts::default().with_cache(&root).with_threads(4),
        )
        .expect("warm sweep");
        let _ = std::fs::remove_dir_all(&root);

        assert_eq!(
            reference.rows, cold.result.rows,
            "cold sweep must match run_configs"
        );
        assert_eq!(
            reference.rows, warm.result.rows,
            "warm replay must match run_configs"
        );
        assert_eq!(reference.zcomp_prefetch, cold.result.zcomp_prefetch);
        assert_eq!(reference.zcomp_prefetch, warm.result.zcomp_prefetch);
        assert!(cold.result.quarantined.is_empty());
        assert_eq!(cold.supervision.executed, configs.len() * SCHEMES.len());
        assert_eq!(cold.supervision.retries, 0);
    }

    #[test]
    fn resumed_sweep_reproduces_the_interrupted_result() {
        let configs = &suite_configs(Suite::ConvTrain)[..2];
        let root = std::env::temp_dir().join(format!("ztrc-fig12-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);

        // The uninterrupted reference run (its own cache dir, so the
        // resumed run can't borrow its traces).
        let ref_root = root.join("ref");
        let full = run_sweep(
            configs,
            4096,
            0.53,
            &SweepOpts::serial().with_cache(&ref_root),
        )
        .expect("reference sweep");

        // "Interrupted" run: journal exists with some completed cells
        // (simulated by running a prefix of the sweep).
        let run_root = root.join("run");
        run_sweep(
            &configs[..1],
            4096,
            0.53,
            &SweepOpts::serial().with_cache(&run_root),
        )
        .expect("partial sweep");

        // Resume over the full config set: the first config's cells are
        // restored from the journal, the rest execute.
        let resumed = run_sweep(
            configs,
            4096,
            0.53,
            &SweepOpts::serial().with_cache(&run_root).with_resume(true),
        )
        .expect("resumed sweep");
        assert_eq!(resumed.supervision.resume_skips, SCHEMES.len());
        assert_eq!(resumed.supervision.executed, SCHEMES.len());
        assert_eq!(
            resumed.result.rows, full.result.rows,
            "resume must be exact"
        );
        assert_eq!(resumed.result.zcomp_prefetch, full.result.zcomp_prefetch);
        // The scientific JSON must be byte-identical. (Trace builds embed
        // run-shape metrics — cells executed vs resumed — so the byte
        // check is for the default, trace-free report.)
        #[cfg(not(feature = "trace"))]
        assert_eq!(
            serde_json::to_string(&resumed.result).unwrap(),
            serde_json::to_string(&full.result).unwrap(),
            "resumed JSON must be byte-identical to an uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
