//! Figure 15 — ZCOMP vs cache compression.
//!
//! Five random static feature-map snapshots per network; compression
//! ratios of ZCOMP (real compressed streams via the ISA model) against
//! LimitCC and TwoTagCC (FPC-D-based cache compression). Paper geometric
//! means: ZCOMP 1.8, LimitCC 1.54, TwoTagCC 1.1.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use zcomp_cachecomp::{limitcc_ratio, twotag_ratio};
use zcomp_dnn::models::ModelId;
use zcomp_dnn::sparsity::{generate_activations, SparsityModel};
use zcomp_isa::ccf::CompareCond;
use zcomp_isa::compress::compress_f32_with_backend;
use zcomp_isa::native::CodecBackend;
use zcomp_isa::stream::HeaderMode;

use crate::report::{geomean, Table};

/// One snapshot's ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Snapshot {
    /// Source network.
    pub model: ModelId,
    /// Layer the snapshot was taken from.
    pub layer: String,
    /// Measured sparsity of the snapshot.
    pub sparsity: f64,
    /// ZCOMP compression ratio (byte-exact stream).
    pub zcomp: f64,
    /// LimitCC ratio (byte-granularity FPC-D packing).
    pub limitcc: f64,
    /// TwoTagCC ratio (two logical lines per physical line).
    pub twotag: f64,
}

/// Complete Figure 15 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Result {
    /// All snapshots (five per network).
    pub snapshots: Vec<Fig15Snapshot>,
}

impl Fig15Result {
    /// Geometric-mean ratios `(zcomp, limitcc, twotag)` — the headline of
    /// Fig. 15.
    pub fn geomeans(&self) -> (f64, f64, f64) {
        let col = |f: &dyn Fn(&Fig15Snapshot) -> f64| -> Vec<f64> {
            self.snapshots.iter().map(f).collect()
        };
        (
            geomean(&col(&|s| s.zcomp)),
            geomean(&col(&|s| s.limitcc)),
            geomean(&col(&|s| s.twotag)),
        )
    }

    /// Renders the per-snapshot table plus the geomean row.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 15: ZCOMP vs cache compression (compression ratios)",
            &[
                "network", "layer", "sparsity", "zcomp", "limitcc", "twotagcc",
            ],
        );
        for s in &self.snapshots {
            t.row([
                s.model.to_string(),
                s.layer.clone(),
                format!("{:.2}", s.sparsity),
                format!("{:.2}", s.zcomp),
                format!("{:.2}", s.limitcc),
                format!("{:.2}", s.twotag),
            ]);
        }
        let (z, l, tt) = self.geomeans();
        t.row([
            "geomean".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{z:.2}"),
            format!("{l:.2}"),
            format!("{tt:.2}"),
        ]);
        t
    }
}

/// Runs the Figure 15 analysis: `snapshots_per_network` random layer
/// snapshots of `elements_per_snapshot` elements each, using the
/// process-default codec backend.
pub fn run(snapshots_per_network: usize, elements_per_snapshot: usize) -> Fig15Result {
    run_with_backend(
        snapshots_per_network,
        elements_per_snapshot,
        CodecBackend::detect(),
    )
}

/// Runs the Figure 15 analysis through an explicitly chosen codec
/// backend — fig15 compresses real activation snapshots with the actual
/// stream codec, so it is the end-to-end consumer the codec benchmark
/// A/Bs. Results are backend-independent (the backends are bit-identical
/// by construction); only wall-clock differs.
pub fn run_with_backend(
    snapshots_per_network: usize,
    elements_per_snapshot: usize,
    backend: CodecBackend,
) -> Fig15Result {
    let mut rng = SmallRng::seed_from_u64(0x0F15);
    let model = SparsityModel::default();
    let mut snapshots = Vec::new();
    for id in ModelId::ALL {
        let net = id.build(id.training_batch());
        let profile = model.profile(&net, 50);
        // Candidate layers: those with ReLU-derived sparsity (the maps
        // ZCOMP targets), sampled weighted by footprint — a random
        // snapshot of resident feature-map memory mostly lands in the
        // large early layers, which are the less sparse ones.
        let candidates: Vec<usize> = net
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.has_relu())
            .map(|(i, _)| i)
            .collect();
        let weights: Vec<u64> = candidates
            .iter()
            .map(|&i| net.layers[i].output.bytes() as u64)
            .collect();
        let total_weight: u64 = weights.iter().sum();
        for k in 0..snapshots_per_network {
            let mut pick = rng.gen_range(0..total_weight.max(1));
            let mut chosen = 0usize;
            for (ci, &w) in weights.iter().enumerate() {
                if pick < w {
                    chosen = ci;
                    break;
                }
                pick -= w;
            }
            let idx = candidates[chosen];
            let sparsity = profile.per_layer[idx];
            let elements = elements_per_snapshot.div_ceil(16) * 16;
            let data = generate_activations(
                elements,
                sparsity,
                6.0,
                0x0F15_0000 ^ ((k as u64) << 32) ^ idx as u64,
            );
            let stream = compress_f32_with_backend(
                &data,
                CompareCond::Eqz,
                HeaderMode::Interleaved,
                backend,
            )
            .expect("whole vectors by construction");
            snapshots.push(Fig15Snapshot {
                model: id,
                layer: net.layers[idx].name.clone(),
                sparsity,
                zcomp: stream.compression_ratio(),
                limitcc: limitcc_ratio(&data),
                twotag: twotag_ratio(&data),
            });
        }
    }
    Fig15Result { snapshots }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig15Result {
        run(2, 64 * 1024)
    }

    #[test]
    fn snapshot_counts() {
        let r = quick();
        assert_eq!(r.snapshots.len(), 10);
    }

    #[test]
    fn ordering_matches_paper() {
        // Fig. 15: ZCOMP > LimitCC > TwoTagCC in geometric mean.
        let (z, l, tt) = quick().geomeans();
        assert!(z > l, "zcomp {z} vs limitcc {l}");
        assert!(l > tt, "limitcc {l} vs twotag {tt}");
    }

    #[test]
    fn magnitudes_are_in_paper_range() {
        let (z, l, tt) = run(5, 256 * 1024).geomeans();
        assert!((1.4..2.6).contains(&z), "zcomp geomean {z}");
        assert!((1.1..2.0).contains(&l), "limitcc geomean {l}");
        assert!((1.0..1.6).contains(&tt), "twotag geomean {tt}");
    }

    #[test]
    fn table_has_geomean_row() {
        let text = quick().table().render();
        assert!(text.contains("geomean"));
    }

    #[test]
    fn backends_produce_identical_results() {
        let scalar = run_with_backend(2, 16 * 1024, CodecBackend::Scalar);
        let native = run_with_backend(2, 16 * 1024, CodecBackend::Native);
        assert_eq!(scalar, native);
    }
}
