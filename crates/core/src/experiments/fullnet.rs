//! Figures 13 and 14 — full-network data-traffic reduction and speedup.
//!
//! Five networks, training (batch 64; ResNet 128) and inference
//! (batch 4), three schemes. Paper results: average traffic reductions of
//! 31%/23% (zcomp, training/inference) and 26%/19% (avx512-comp);
//! speedups of 11%/3% for zcomp vs 4%/−2% for avx512-comp, with
//! avx512-comp slowing down 5 of 10 benchmarks.

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_dnn::sparsity::SparsityModel;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_kernels::network_exec::{run_network, NetworkExecOpts};
use zcomp_replay::{
    config_fingerprint, replay, CacheMode, TraceCache, TraceError, TraceKey, TraceMeta,
};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::{Machine, RunSummary};
use zcomp_trace::log_warn;

use crate::report::{mean, pct, Table};
use crate::supervise::{CellFailure, CellOutcome};
use crate::sweep::{run_cells, SweepError, SweepOpts, SweepOutcome};

/// Training or inference column group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Forward + backward, large batch.
    Training,
    /// Forward only, batch 4.
    Inference,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mode::Training => "training",
            Mode::Inference => "inference",
        })
    }
}

/// Measurements of one (network, mode, scheme) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FullNetCell {
    /// Scheme measured.
    pub scheme: Scheme,
    /// Total cache-hierarchy traffic in bytes (demand + inter-level
    /// fills).
    pub onchip_bytes: u64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Wall cycles for one step.
    pub cycles: f64,
    /// Memory-stall fraction.
    pub memory_fraction: f64,
}

/// One (network, mode) row with all three schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullNetRow {
    /// Network.
    pub model: ModelId,
    /// Training or inference.
    pub mode: Mode,
    /// Batch size used.
    pub batch: usize,
    /// One cell per scheme.
    pub cells: Vec<FullNetCell>,
}

impl FullNetRow {
    fn cell(&self, scheme: Scheme) -> &FullNetCell {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme)
            .expect("every scheme measured")
    }

    /// Traffic reduction of `scheme` vs the baseline (Fig. 13's metric).
    pub fn traffic_reduction(&self, scheme: Scheme) -> f64 {
        1.0 - self.cell(scheme).onchip_bytes as f64 / self.cell(Scheme::None).onchip_bytes as f64
    }

    /// Speedup of `scheme` over the baseline (Fig. 14's metric).
    pub fn speedup(&self, scheme: Scheme) -> f64 {
        self.cell(Scheme::None).cycles / self.cell(scheme).cycles
    }
}

/// Complete Figures 13/14 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullNetResult {
    /// All (network, mode) rows.
    pub rows: Vec<FullNetRow>,
    /// Cells the supervised sweep quarantined, in index order; their row
    /// slots hold zeroed placeholder cells. Always empty for the plain
    /// serial runner.
    pub quarantined: Vec<CellFailure>,
    /// Per-run metrics (counters, gauges, latency histograms) collected
    /// while the trace feature is compiled in. Absent from trace-free
    /// builds so their JSON reports stay byte-identical.
    #[cfg(feature = "trace")]
    pub metrics: zcomp_trace::metrics::MetricsSummary,
}

/// Aggregate summary in the shape of the paper's §5.3 text.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FullNetSummary {
    /// Mean zcomp traffic reduction in training (paper: 31%).
    pub zcomp_train_traffic: f64,
    /// Mean zcomp traffic reduction in inference (paper: 23%).
    pub zcomp_infer_traffic: f64,
    /// Mean avx512-comp traffic reduction in training (paper: 26%).
    pub avx_train_traffic: f64,
    /// Mean avx512-comp traffic reduction in inference (paper: 19%).
    pub avx_infer_traffic: f64,
    /// Mean zcomp speedup in training (paper: 1.11x).
    pub zcomp_train_speedup: f64,
    /// Mean zcomp speedup in inference (paper: 1.03x).
    pub zcomp_infer_speedup: f64,
    /// Mean avx512-comp speedup in training (paper: 1.04x).
    pub avx_train_speedup: f64,
    /// Mean avx512-comp speedup in inference (paper: 0.98x).
    pub avx_infer_speedup: f64,
    /// Benchmarks (of 10) that avx512-comp slows down (paper: 5).
    pub avx_slowdowns: usize,
}

impl FullNetResult {
    /// Computes the aggregate summary.
    pub fn summary(&self) -> FullNetSummary {
        let sel = |mode: Mode, f: &dyn Fn(&FullNetRow) -> f64| -> Vec<f64> {
            self.rows.iter().filter(|r| r.mode == mode).map(f).collect()
        };
        FullNetSummary {
            zcomp_train_traffic: mean(&sel(Mode::Training, &|r| {
                r.traffic_reduction(Scheme::Zcomp)
            })),
            zcomp_infer_traffic: mean(&sel(Mode::Inference, &|r| {
                r.traffic_reduction(Scheme::Zcomp)
            })),
            avx_train_traffic: mean(&sel(Mode::Training, &|r| {
                r.traffic_reduction(Scheme::Avx512Comp)
            })),
            avx_infer_traffic: mean(&sel(Mode::Inference, &|r| {
                r.traffic_reduction(Scheme::Avx512Comp)
            })),
            zcomp_train_speedup: mean(&sel(Mode::Training, &|r| r.speedup(Scheme::Zcomp))),
            zcomp_infer_speedup: mean(&sel(Mode::Inference, &|r| r.speedup(Scheme::Zcomp))),
            avx_train_speedup: mean(&sel(Mode::Training, &|r| r.speedup(Scheme::Avx512Comp))),
            avx_infer_speedup: mean(&sel(Mode::Inference, &|r| r.speedup(Scheme::Avx512Comp))),
            avx_slowdowns: self
                .rows
                .iter()
                .filter(|r| r.speedup(Scheme::Avx512Comp) < 1.0)
                .count(),
        }
    }

    /// Renders Fig. 13 (traffic reduction).
    pub fn table_traffic(&self) -> Table {
        let mut t = Table::new(
            "Figure 13: full-network data traffic reduction vs baseline",
            &["network", "mode", "avx512-comp", "zcomp"],
        );
        for r in &self.rows {
            t.row([
                r.model.to_string(),
                r.mode.to_string(),
                pct(r.traffic_reduction(Scheme::Avx512Comp)),
                pct(r.traffic_reduction(Scheme::Zcomp)),
            ]);
        }
        t
    }

    /// Renders Fig. 14 (speedup).
    pub fn table_speedup(&self) -> Table {
        let mut t = Table::new(
            "Figure 14: full-network speedup vs baseline",
            &["network", "mode", "avx512-comp", "zcomp"],
        );
        for r in &self.rows {
            t.row([
                r.model.to_string(),
                r.mode.to_string(),
                format!("{:.3}x", r.speedup(Scheme::Avx512Comp)),
                format!("{:.3}x", r.speedup(Scheme::Zcomp)),
            ]);
        }
        t
    }
}

/// Runs the full-network experiments.
///
/// `batch_divisor` scales training batches down for quick runs (1 = the
/// paper's sizes). Inference always uses batch 4, the paper's choice.
pub fn run(batch_divisor: usize) -> FullNetResult {
    let _span = zcomp_trace::tracer::span("experiment", "fullnet");
    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    let mut rows = Vec::new();
    for model in ModelId::ALL {
        for mode in [Mode::Training, Mode::Inference] {
            let batch = match mode {
                Mode::Training => (model.training_batch() / batch_divisor.max(1)).max(1),
                Mode::Inference => model.inference_batch(),
            };
            let net = model.build(batch);
            let profile = SparsityModel::default().profile(&net, 50);
            let mut cells = Vec::new();
            for scheme in [Scheme::None, Scheme::Avx512Comp, Scheme::Zcomp] {
                let _run_span = zcomp_trace::tracer::span_owned("experiment", || {
                    format!("fullnet/{model}/{mode}/{scheme:?}")
                });
                let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
                let result = run_network(
                    &mut machine,
                    &net,
                    &profile,
                    &NetworkExecOpts {
                        scheme,
                        training: mode == Mode::Training,
                        ..NetworkExecOpts::default()
                    },
                );
                #[cfg(feature = "trace")]
                {
                    registry.incr("fullnet.runs", 1);
                    registry.observe("fullnet.wall_cycles", result.summary.wall_cycles);
                    registry.observe(
                        "fullnet.dram_bytes",
                        result.summary.traffic.dram_bytes as f64,
                    );
                    registry.gauge(
                        "fullnet.memory_fraction",
                        result.summary.breakdown.memory_fraction(),
                    );
                }
                cells.push(FullNetCell {
                    scheme,
                    onchip_bytes: result.summary.traffic.onchip_bytes(),
                    dram_bytes: result.summary.traffic.dram_bytes,
                    cycles: result.summary.wall_cycles,
                    memory_fraction: result.summary.breakdown.memory_fraction(),
                });
            }
            rows.push(FullNetRow {
                model,
                mode,
                batch,
                cells,
            });
        }
    }
    FullNetResult {
        rows,
        quarantined: Vec::new(),
        #[cfg(feature = "trace")]
        metrics: registry.summary(),
    }
}

/// The three schemes in plotting order.
const SCHEMES: [Scheme; 3] = [Scheme::None, Scheme::Avx512Comp, Scheme::Zcomp];

fn cell_from_summary(scheme: Scheme, summary: &RunSummary) -> FullNetCell {
    FullNetCell {
        scheme,
        onchip_bytes: summary.traffic.onchip_bytes(),
        dram_bytes: summary.traffic.dram_bytes,
        cycles: summary.wall_cycles,
        memory_fraction: summary.breakdown.memory_fraction(),
    }
}

/// Runs one (model, mode, scheme) cell with the trace cache: replay on a
/// valid hit, simulate-and-capture otherwise. A warm cell skips network
/// construction and sparsity profiling entirely; every cache failure
/// degrades to plain in-process simulation.
fn sweep_cell(
    cache: Option<&TraceCache>,
    cache_mode: CacheMode,
    model: ModelId,
    mode: Mode,
    scheme: Scheme,
    batch: usize,
) -> FullNetCell {
    let sim_cfg = SimConfig::table1();
    let fingerprint = config_fingerprint(&sim_cfg);
    let key = TraceKey::new(
        "fullnet",
        format!("model={model};mode={mode};scheme={scheme:?};batch={batch};profile=50"),
    );
    if let Some(cache) = cache {
        match cache_mode {
            CacheMode::Refresh => cache.evict(&key, fingerprint),
            CacheMode::Auto => {
                if let Some(mut reader) = cache.open(&key, fingerprint) {
                    let mut machine = Machine::new(sim_cfg.clone(), UopTable::skylake_x());
                    match replay(&mut reader, &mut machine) {
                        Ok(outcome) => return cell_from_summary(scheme, &outcome.summary),
                        Err(e) => {
                            log_warn!(
                                "fullnet replay of [{}] failed ({e}); re-capturing",
                                key.cell
                            );
                            if !matches!(e, TraceError::Io(_)) {
                                cache.quarantine_replay_failure(&key, fingerprint, &e.to_string());
                            }
                        }
                    }
                }
            }
        }
    }

    // Cache miss (or caching off): build the workload and simulate,
    // capturing when possible.
    let net = model.build(batch);
    let profile = SparsityModel::default().profile(&net, 50);
    let mut machine = Machine::new(sim_cfg, UopTable::skylake_x());
    let session =
        cache.and_then(
            |c| match c.begin_capture(&key, TraceMeta::for_config(machine.config())) {
                Ok(s) => Some(s),
                Err(e) => {
                    log_warn!(
                        "fullnet capture of [{}] cannot start ({e}); running uncached",
                        key.cell
                    );
                    None
                }
            },
        );
    if let Some(s) = &session {
        machine.set_observer(Some(s.observer()));
    }
    let result = run_network(
        &mut machine,
        &net,
        &profile,
        &NetworkExecOpts {
            scheme,
            training: mode == Mode::Training,
            ..NetworkExecOpts::default()
        },
    );
    machine.set_observer(None);
    if let Some(s) = session {
        if let Err(e) = s.finish("{}") {
            log_warn!(
                "fullnet capture of [{}] failed ({e}); result kept",
                key.cell
            );
        }
    }
    cell_from_summary(scheme, &result.summary)
}

/// Runs the full-network sweep sharded across threads with trace-cached,
/// *supervised* cells; equivalent to [`run`] row for row.
///
/// All 30 (network, mode, scheme) cells are independent; warm cells replay
/// their cached trace without rebuilding the network or re-profiling
/// sparsity. Cells run under the supervision policy in `opts` — panics
/// and watchdog timeouts quarantine the cell (zeroed placeholder slot +
/// entry in `quarantined`) instead of aborting; with a cache root,
/// completions are journalled and `opts.resume` restores them exactly.
/// The merge is deterministic regardless of scheduling.
pub fn run_sweep(
    batch_divisor: usize,
    opts: &SweepOpts,
) -> Result<SweepOutcome<FullNetResult>, SweepError> {
    let _span = zcomp_trace::tracer::span("experiment", "fullnet-sweep");
    let cache = opts.cache()?;
    let fingerprint = config_fingerprint(&SimConfig::table1());
    let modes = [Mode::Training, Mode::Inference];
    let batch_of = |model: ModelId, mode: Mode| match mode {
        Mode::Training => (model.training_batch() / batch_divisor.max(1)).max(1),
        Mode::Inference => model.inference_batch(),
    };
    let cell_of = |idx: usize| {
        let model = ModelId::ALL[idx / (modes.len() * SCHEMES.len())];
        let mode = modes[(idx / SCHEMES.len()) % modes.len()];
        let scheme = SCHEMES[idx % SCHEMES.len()];
        (model, mode, scheme)
    };
    let items = ModelId::ALL.len() * modes.len() * SCHEMES.len();
    let key_of = |idx: usize| {
        let (model, mode, scheme) = cell_of(idx);
        let batch = batch_of(model, mode);
        format!("model={model};mode={mode};scheme={scheme:?};batch={batch};profile=50")
    };
    let make_job = |idx: usize| -> Box<dyn FnOnce() -> FullNetCell + Send + 'static> {
        let cache = cache.clone();
        let cache_mode = opts.cache_mode;
        let (model, mode, scheme) = cell_of(idx);
        let batch = batch_of(model, mode);
        Box::new(move || sweep_cell(cache.as_ref(), cache_mode, model, mode, scheme, batch))
    };
    let run = run_cells("fullnet", items, fingerprint, opts, key_of, make_job)?;

    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    let mut rows = Vec::with_capacity(ModelId::ALL.len() * modes.len());
    let mut it = run.outcomes.iter().enumerate();
    for model in ModelId::ALL {
        for mode in modes {
            let cells = it
                .by_ref()
                .take(SCHEMES.len())
                .map(|(idx, outcome)| match outcome {
                    CellOutcome::Completed { value, .. } => {
                        #[cfg(feature = "trace")]
                        {
                            registry.incr("fullnet.runs", 1);
                            registry.observe("fullnet.wall_cycles", value.cycles);
                            registry.observe("fullnet.dram_bytes", value.dram_bytes as f64);
                            registry.gauge("fullnet.memory_fraction", value.memory_fraction);
                        }
                        *value
                    }
                    CellOutcome::Quarantined(_) => FullNetCell {
                        scheme: SCHEMES[idx % SCHEMES.len()],
                        onchip_bytes: 0,
                        dram_bytes: 0,
                        cycles: 0.0,
                        memory_fraction: 0.0,
                    },
                })
                .collect();
            rows.push(FullNetRow {
                model,
                mode,
                batch: batch_of(model, mode),
                cells,
            });
        }
    }
    #[cfg(feature = "trace")]
    {
        registry.incr("fullnet.retries", run.report.retries);
        registry.incr("fullnet.resume_skips", run.report.resume_skips as u64);
        registry.incr("fullnet.quarantined", run.report.quarantined.len() as u64);
        if let Some(fabric) = &run.report.fabric {
            registry.incr("fabric.claims", fabric.claims);
            registry.incr("fabric.reclaims", fabric.reclaims);
            registry.incr("fabric.fenced_rejections", fabric.fenced_rejections);
            registry.incr("fabric.drains", fabric.drains);
        }
    }
    let result = FullNetResult {
        rows,
        quarantined: run.report.quarantined.clone(),
        #[cfg(feature = "trace")]
        metrics: registry.summary(),
    };
    Ok(SweepOutcome {
        result,
        supervision: run.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The scaled-down run is expensive; share it across tests.
    fn quick() -> &'static FullNetResult {
        static RESULT: OnceLock<FullNetResult> = OnceLock::new();
        RESULT.get_or_init(|| run(16))
    }

    #[test]
    fn ten_rows_two_modes() {
        let r = quick();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(
            r.rows.iter().filter(|r| r.mode == Mode::Training).count(),
            5
        );
    }

    #[test]
    fn zcomp_reduces_traffic_in_training() {
        let r = quick();
        for row in r.rows.iter().filter(|r| r.mode == Mode::Training) {
            assert!(
                row.traffic_reduction(Scheme::Zcomp) > 0.05,
                "{}: {}",
                row.model,
                row.traffic_reduction(Scheme::Zcomp)
            );
        }
    }

    #[test]
    fn training_gains_exceed_inference_gains() {
        let s = quick().summary();
        assert!(s.zcomp_train_traffic > s.zcomp_infer_traffic);
        assert!(s.zcomp_train_speedup >= s.zcomp_infer_speedup * 0.98);
    }

    #[test]
    fn zcomp_beats_avx512_comp() {
        let s = quick().summary();
        assert!(s.zcomp_train_traffic > s.avx_train_traffic);
        assert!(s.zcomp_train_speedup > s.avx_train_speedup);
    }

    #[test]
    fn tables_render() {
        let r = quick();
        assert!(r.table_traffic().render().contains("zcomp"));
        assert!(r.table_speedup().render().contains('x'));
    }

    #[test]
    fn sweep_matches_serial_run() {
        let reference = quick();
        let root = std::env::temp_dir().join(format!("ztrc-fullnet-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Cold: parallel capture into the cache (order must not matter).
        let cold = run_sweep(16, &SweepOpts::default().with_cache(&root).with_threads(4))
            .expect("cold sweep");
        // Warm: replay every cell from the cache.
        let warm = run_sweep(16, &SweepOpts::default().with_cache(&root).with_threads(4))
            .expect("warm sweep");
        let _ = std::fs::remove_dir_all(&root);

        assert_eq!(
            reference.rows, cold.result.rows,
            "cold sweep must match run()"
        );
        assert_eq!(
            reference.rows, warm.result.rows,
            "warm replay must match run()"
        );
        assert!(cold.result.quarantined.is_empty());
        assert_eq!(cold.supervision.cells, 30);
    }
}
