//! Experiment runners — one module per paper figure, plus ablations.
//!
//! Every module exposes a `run(...)` producing a typed, serializable
//! result with `table()` renderers, so the `zcomp-bench` figure binaries
//! and EXPERIMENTS.md are generated from the same code the tests check.

pub mod ablations;
pub mod epoch;
pub mod fault_campaign;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig12;
pub mod fig15;
pub mod fullnet;
pub mod serve;
pub mod serve_chaos;
pub mod sweeps;
pub mod thread_sweep;
