//! Serving experiment: sustainable QPS at fixed p99, compressed vs
//! uncompressed.
//!
//! For each network in the grid, two knee searches run on identical
//! serving nodes (same tenants, same arrival seeds, same SLO derived from
//! the *uncompressed* solo batch latency) differing only in the feature-map
//! scheme. The deliverable per network is the pair of knees — the paper's
//! Fig. 13/14 traffic-to-speedup story restated as "compression raises
//! the sustainable QPS at a fixed p99".
//!
//! The default grid serves GoogLeNet and VGG-16, the two networks whose
//! inference feature-map traffic is large enough for the shared-bandwidth
//! roofline to bind (see DESIGN.md "Serving scenario"); ResNet-32's maps
//! are cache-resident and AlexNet is weight-dominated, so neither would
//! test the claim.

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_replay::config_fingerprint;
use zcomp_sim::config::SimConfig;

use crate::report::Table;
use crate::serve::knee::{derive_slo, find_knee, KneeOpts, KneeOutcome, ServeCurve};
use crate::serve::service::ServiceModel;
use crate::serve::ServeConfig;
use crate::supervise::{CellFailure, CellOutcome};
use crate::sweep::{run_cells, SweepError, SweepOpts, SweepOutcome};

/// The two schemes compared per network, in column order.
const SCHEMES: [Scheme; 2] = [Scheme::None, Scheme::Zcomp];

/// Grid-wide serving knobs (per-cell config is derived from these plus
/// the network).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeParams {
    /// Tenants sharing the node (truncates the default Poisson / bursty /
    /// diurnal mix).
    pub tenants: usize,
    /// Arrivals per tenant at each rate point.
    pub arrivals_per_tenant: usize,
    /// Sparsity drift epochs across the trace horizon.
    pub drift_epochs: usize,
    /// SLO as a multiple of the uncompressed solo full-batch latency.
    pub slo_factor: f64,
    /// Knee bisection iterations.
    pub bisect_iters: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ServeParams {
    fn default() -> Self {
        ServeParams {
            tenants: 3,
            arrivals_per_tenant: 600,
            drift_epochs: 2,
            slo_factor: 3.0,
            bisect_iters: 6,
            seed: 0x5eed_5e12e,
        }
    }
}

/// The serving grid: networks (with serving batch caps) × two schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeGridSpec {
    /// `(network, max_batch)` pairs; max_batch is the admission cap.
    pub networks: Vec<(ModelId, usize)>,
    /// Shared knobs.
    pub params: ServeParams,
}

impl ServeGridSpec {
    /// Default grid: the two bandwidth-bound inference networks.
    pub fn default_grid() -> Self {
        ServeGridSpec {
            networks: vec![(ModelId::Googlenet, 8), (ModelId::Vgg16, 4)],
            params: ServeParams::default(),
        }
    }

    /// CI smoke grid: GoogLeNet only, two tenants, one drift epoch,
    /// shorter traces and a coarser bisection. Still a real knee search
    /// on the real simulator.
    pub fn smoke_grid() -> Self {
        ServeGridSpec {
            networks: vec![(ModelId::Googlenet, 8)],
            params: ServeParams {
                tenants: 2,
                arrivals_per_tenant: 250,
                drift_epochs: 1,
                bisect_iters: 4,
                ..ServeParams::default()
            },
        }
    }

    /// Divides trace lengths by `scale` (floored to a useful minimum) for
    /// quick local runs.
    pub fn scaled(mut self, scale: usize) -> Self {
        self.params.arrivals_per_tenant = (self.params.arrivals_per_tenant / scale.max(1)).max(120);
        self
    }
}

/// One network's compressed-vs-uncompressed knee pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRow {
    /// Network served.
    pub model: ModelId,
    /// Admission batch cap.
    pub max_batch: usize,
    /// Rate-sweep curve with `Scheme::None`.
    pub uncompressed: ServeCurve,
    /// Rate-sweep curve with `Scheme::Zcomp`.
    pub compressed: ServeCurve,
}

impl ServeRow {
    /// Compressed / uncompressed sustainable-QPS ratio (>1 means
    /// compression bought serving headroom).
    pub fn knee_ratio(&self) -> f64 {
        if self.uncompressed.knee_qps <= 0.0 {
            0.0
        } else {
            self.compressed.knee_qps / self.uncompressed.knee_qps
        }
    }
}

/// Complete serving-experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResult {
    /// One row per grid network.
    pub rows: Vec<ServeRow>,
    /// Cells the supervised sweep quarantined; their curve slots hold
    /// empty placeholders. Always empty for the serial runner.
    pub quarantined: Vec<CellFailure>,
    /// Run metrics, embedded only when the trace feature is compiled in
    /// so trace-free reports stay byte-identical.
    #[cfg(feature = "trace")]
    pub metrics: zcomp_trace::metrics::MetricsSummary,
}

impl ServeResult {
    /// The headline table: knee QPS per scheme and the ratio.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sustainable QPS at fixed p99 (serving knee)",
            &[
                "network",
                "max_batch",
                "slo p99 (ms)",
                "knee none (qps)",
                "knee zcomp (qps)",
                "ratio",
            ],
        );
        for row in &self.rows {
            t.row([
                row.model.to_string(),
                row.max_batch.to_string(),
                format!("{:.2}", row.uncompressed.slo_p99_us / 1_000.0),
                format!("{:.1}", row.uncompressed.knee_qps),
                format!("{:.1}", row.compressed.knee_qps),
                format!("{:.3}x", row.knee_ratio()),
            ]);
        }
        t
    }

    /// Whether every row's compressed knee strictly beats uncompressed.
    pub fn all_compressed_higher(&self) -> bool {
        !self.rows.is_empty()
            && self.rows.iter().all(|r| {
                r.compressed.knee_qps > r.uncompressed.knee_qps && r.uncompressed.knee_qps > 0.0
            })
    }
}

/// Builds one cell's serving config (SLO fields still zero).
fn cell_config(model: ModelId, scheme: Scheme, max_batch: usize, p: &ServeParams) -> ServeConfig {
    let mut cfg = ServeConfig::new(model, scheme, max_batch);
    cfg.tenants.truncate(p.tenants.max(1));
    cfg.arrivals_per_tenant = p.arrivals_per_tenant;
    cfg.drift_epochs = p.drift_epochs;
    cfg.seed = p.seed;
    cfg
}

/// Runs one (network, scheme) knee search. The SLO is derived from the
/// *uncompressed* solo full-batch latency inside every cell — both scheme
/// cells therefore hold to the identical bound, and each cell stays
/// self-contained for the supervised sweep.
fn run_cell(model: ModelId, max_batch: usize, params: &ServeParams, scheme: Scheme) -> ServeCurve {
    let base_cfg = cell_config(model, Scheme::None, max_batch, params);
    let mut base_service = ServiceModel::for_network(&base_cfg);
    let (slo_ns, max_wait_ns) = derive_slo(&mut base_service, max_batch, params.slo_factor);

    let mut cfg = cell_config(model, scheme, max_batch, params);
    cfg.slo_ns = slo_ns;
    cfg.max_wait_ns = max_wait_ns;
    let mut service = if scheme == Scheme::None {
        base_service
    } else {
        ServiceModel::for_network(&cfg)
    };
    let opts = KneeOpts {
        bisect_iters: params.bisect_iters,
        ..KneeOpts::default()
    };
    find_knee(&cfg, &mut service, &opts)
}

fn cell_key(model: ModelId, max_batch: usize, p: &ServeParams, scheme: Scheme) -> String {
    format!(
        "model={model};scheme={scheme:?};mb={max_batch};tenants={};arr={};epochs={};slofac={};bisect={};seed={:#x}",
        p.tenants, p.arrivals_per_tenant, p.drift_epochs, p.slo_factor, p.bisect_iters, p.seed
    )
}

/// Placeholder curve for a quarantined cell.
fn empty_curve(model: ModelId, scheme: Scheme) -> ServeCurve {
    ServeCurve {
        model,
        scheme,
        slo_p99_us: 0.0,
        capacity_estimate_qps: 0.0,
        knee_qps: 0.0,
        outcome: KneeOutcome::Infeasible,
        points: Vec::new(),
    }
}

fn assemble(
    grid: &ServeGridSpec,
    outcomes: Vec<CellOutcome<ServeCurve>>,
    quarantined: Vec<CellFailure>,
    #[cfg(feature = "trace")] registry: &mut zcomp_trace::metrics::MetricsRegistry,
) -> ServeResult {
    let mut it = outcomes.into_iter();
    let mut rows = Vec::with_capacity(grid.networks.len());
    for &(model, max_batch) in &grid.networks {
        let mut curves = Vec::with_capacity(SCHEMES.len());
        for scheme in SCHEMES {
            let curve = match it.next().expect("one outcome per cell") {
                CellOutcome::Completed { value, .. } => {
                    #[cfg(feature = "trace")]
                    {
                        registry.incr("serve.cells", 1);
                        registry.observe("serve.knee_qps", value.knee_qps);
                    }
                    value
                }
                CellOutcome::Quarantined(_) => empty_curve(model, scheme),
            };
            curves.push(curve);
        }
        let compressed = curves.pop().expect("two curves");
        let uncompressed = curves.pop().expect("two curves");
        rows.push(ServeRow {
            model,
            max_batch,
            uncompressed,
            compressed,
        });
    }
    ServeResult {
        rows,
        quarantined,
        #[cfg(feature = "trace")]
        metrics: registry.summary(),
    }
}

/// Runs the grid serially in-process (no supervision, no cache).
pub fn run(grid: &ServeGridSpec) -> ServeResult {
    let _span = zcomp_trace::tracer::span("experiment", "serve");
    let outcomes = grid
        .networks
        .iter()
        .flat_map(|&(model, max_batch)| {
            SCHEMES.map(|scheme| CellOutcome::Completed {
                value: run_cell(model, max_batch, &grid.params, scheme),
                attempts: 1,
            })
        })
        .collect();
    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    assemble(
        grid,
        outcomes,
        Vec::new(),
        #[cfg(feature = "trace")]
        &mut registry,
    )
}

/// Runs the grid as a supervised sweep via [`run_cells`]: cells (one per
/// network × scheme) run sharded across threads or fabric workers with
/// panic quarantine, retries, resume and deterministic merge. Equivalent
/// to [`run`] row for row when nothing is quarantined.
pub fn run_sweep(
    grid: &ServeGridSpec,
    opts: &SweepOpts,
) -> Result<SweepOutcome<ServeResult>, SweepError> {
    let _span = zcomp_trace::tracer::span("experiment", "serve-sweep");
    let fingerprint = config_fingerprint(&SimConfig::table1());
    let items = grid.networks.len() * SCHEMES.len();
    let cell_of = |idx: usize| {
        let (model, max_batch) = grid.networks[idx / SCHEMES.len()];
        (model, max_batch, SCHEMES[idx % SCHEMES.len()])
    };
    let key_of = |idx: usize| {
        let (model, max_batch, scheme) = cell_of(idx);
        cell_key(model, max_batch, &grid.params, scheme)
    };
    let params = grid.params;
    let make_job = |idx: usize| -> Box<dyn FnOnce() -> ServeCurve + Send + 'static> {
        let (model, max_batch, scheme) = cell_of(idx);
        Box::new(move || run_cell(model, max_batch, &params, scheme))
    };
    let run = run_cells("serve", items, fingerprint, opts, key_of, make_job)?;

    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    #[cfg(feature = "trace")]
    {
        registry.incr("serve.retries", run.report.retries);
        registry.incr("serve.resume_skips", run.report.resume_skips as u64);
        registry.incr("serve.quarantined", run.report.quarantined.len() as u64);
        if let Some(fabric) = &run.report.fabric {
            registry.incr("fabric.claims", fabric.claims);
            registry.incr("fabric.reclaims", fabric.reclaims);
            registry.incr("fabric.fenced_rejections", fabric.fenced_rejections);
            registry.incr("fabric.drains", fabric.drains);
        }
    }
    let result = assemble(
        grid,
        run.outcomes,
        run.report.quarantined.clone(),
        #[cfg(feature = "trace")]
        &mut registry,
    );
    Ok(SweepOutcome {
        result,
        supervision: run.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// A cheap real-simulator grid: ResNet-32 maps are tiny, so the
    /// service-time sims run in milliseconds. (The default grid's
    /// compressed>uncompressed claim is asserted by `serve_run --smoke`
    /// on GoogLeNet, not here — ResNet-32 is deliberately the network
    /// where compression does *not* pay.)
    fn tiny_grid() -> ServeGridSpec {
        ServeGridSpec {
            networks: vec![(ModelId::Resnet32, 4)],
            params: ServeParams {
                tenants: 2,
                arrivals_per_tenant: 150,
                drift_epochs: 1,
                bisect_iters: 3,
                ..ServeParams::default()
            },
        }
    }

    fn quick() -> &'static ServeResult {
        static RESULT: OnceLock<ServeResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&tiny_grid()))
    }

    #[test]
    fn grid_produces_positive_knees_per_scheme() {
        let r = quick();
        assert_eq!(r.rows.len(), 1);
        let row = &r.rows[0];
        assert!(row.uncompressed.knee_qps > 0.0);
        assert!(row.compressed.knee_qps > 0.0);
        assert_eq!(row.uncompressed.scheme, Scheme::None);
        assert_eq!(row.compressed.scheme, Scheme::Zcomp);
        // Same SLO bound on both sides — that is what makes the knee
        // comparison meaningful.
        assert_eq!(row.uncompressed.slo_p99_us, row.compressed.slo_p99_us);
        assert!(row.uncompressed.slo_p99_us > 0.0);
    }

    #[test]
    fn curves_carry_registry_percentiles() {
        let r = quick();
        for curve in [&r.rows[0].uncompressed, &r.rows[0].compressed] {
            assert!(!curve.points.is_empty());
            for p in &curve.points {
                let hist = p
                    .metrics
                    .histograms
                    .iter()
                    .find(|h| h.name == zcomp_trace::serve::names::LATENCY_US)
                    .expect("latency histogram present");
                assert_eq!(hist.p99, p.p99_us, "p99 comes from the registry");
            }
        }
    }

    #[test]
    fn serial_run_is_deterministic() {
        let a = quick();
        let b = run(&tiny_grid());
        assert_eq!(
            serde_json::to_string(&a.rows).unwrap(),
            serde_json::to_string(&b.rows).unwrap()
        );
    }

    #[test]
    fn sweep_matches_serial_run() {
        let reference = quick();
        let sweep =
            run_sweep(&tiny_grid(), &SweepOpts::default().with_threads(2)).expect("sweep succeeds");
        assert!(sweep.result.quarantined.is_empty());
        assert_eq!(
            serde_json::to_string(&reference.rows).unwrap(),
            serde_json::to_string(&sweep.result.rows).unwrap()
        );
    }

    #[test]
    fn table_renders() {
        assert!(quick().table().render().contains("resnet-32"));
    }
}
