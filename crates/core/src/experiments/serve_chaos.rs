//! Chaos serving experiment: goodput and per-class p99 under instance
//! crashes and codec faults, compressed vs uncompressed vs degraded.
//!
//! The robustness question PR-1 answered at layer level — *a codec fault
//! need not fail the computation, it can brown out to uncompressed* — is
//! restated here at serving level. For each codec fault rate in the grid,
//! three identically-loaded serving nodes run the same seeded crash
//! schedule and the same arrival traces at the same offered rate (a fixed
//! fraction of the uncompressed capacity estimate):
//!
//! * **uncompressed** — `Scheme::None`; codec faults cannot strike, the
//!   crash process still does. The resilience baseline.
//! * **hard-fail** — `Scheme::Zcomp` with [`DegradePolicy::HardFail`]:
//!   the naive integration where any detected stream corruption fails
//!   every request in the batch.
//! * **degraded** — `Scheme::Zcomp` with [`DegradePolicy::Degrade`]: the
//!   PR-1 retry-then-uncompressed policy. Transient faults clear on a
//!   retry read; persistent faults brown the batch out to the
//!   uncompressed service profile. No request hard-fails.
//!
//! The headline claim: degraded-mode goodput tracks the uncompressed
//! baseline as the fault rate rises, while hard-fail goodput collapses —
//! compression's serving win (the PR-8 knee gap) does not have to be paid
//! back in fragility.
//!
//! A second, smaller comparison runs the knee search itself under chaos
//! (crashes + mid-grid fault rate, degrade policy) with a fixed fleet vs
//! a reactive autoscaler, reporting both capacity estimates.

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_replay::config_fingerprint;
use zcomp_sim::config::SimConfig;

use crate::report::Table;
use crate::serve::admission::AdmissionConfig;
use crate::serve::autoscale::AutoscaleConfig;
use crate::serve::chaos::{ChaosConfig, DegradePolicy};
use crate::serve::engine::{simulate, RatePoint};
use crate::serve::knee::{derive_slo, find_knee, KneeOpts, ServeCurve};
use crate::serve::service::ServiceModel;
use crate::serve::slo::SloClass;
use crate::serve::ServeConfig;
use crate::supervise::{CellFailure, CellOutcome};
use crate::sweep::{run_cells, SweepError, SweepOpts, SweepOutcome};

/// The three serving modes compared at every fault rate, in column order.
pub const MODES: [ChaosMode; 3] = [
    ChaosMode::Uncompressed,
    ChaosMode::HardFail,
    ChaosMode::Degraded,
];

/// One column of the chaos grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChaosMode {
    /// `Scheme::None`: immune to codec faults, exposed to crashes.
    Uncompressed,
    /// `Scheme::Zcomp`, any stream fault fails the batch.
    HardFail,
    /// `Scheme::Zcomp`, PR-1 retry-then-uncompressed brownout.
    Degraded,
}

impl ChaosMode {
    /// Feature-map scheme this mode serves with.
    pub fn scheme(self) -> Scheme {
        match self {
            ChaosMode::Uncompressed => Scheme::None,
            ChaosMode::HardFail | ChaosMode::Degraded => Scheme::Zcomp,
        }
    }

    /// Degradation policy this mode applies to detected codec faults.
    pub fn policy(self) -> DegradePolicy {
        match self {
            // Irrelevant for the uncompressed node (no compressed stream
            // to fault); Degrade keeps the config honest.
            ChaosMode::Uncompressed | ChaosMode::Degraded => DegradePolicy::Degrade,
            ChaosMode::HardFail => DegradePolicy::HardFail,
        }
    }

    /// Short stable label for keys and tables.
    pub fn label(self) -> &'static str {
        match self {
            ChaosMode::Uncompressed => "uncompressed",
            ChaosMode::HardFail => "hard_fail",
            ChaosMode::Degraded => "degraded",
        }
    }
}

/// Grid-wide chaos-serving knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosParams {
    /// Network served (one network — the grid axis is the fault rate).
    pub model: ModelId,
    /// Admission batch cap.
    pub max_batch: usize,
    /// Tenants sharing the node (truncates the default mix).
    pub tenants: usize,
    /// Arrivals per tenant.
    pub arrivals_per_tenant: usize,
    /// Sparsity drift epochs.
    pub drift_epochs: usize,
    /// SLO as a multiple of the uncompressed solo full-batch latency.
    pub slo_factor: f64,
    /// Offered rate as a fraction of the uncompressed capacity estimate
    /// (identical across modes so the curves compare like for like).
    pub offered_fraction: f64,
    /// Mean time to instance failure, seconds.
    pub mttf_s: f64,
    /// Mean time to instance recovery, seconds.
    pub mttr_s: f64,
    /// Fraction of codec faults that are transient.
    pub transient_fraction: f64,
    /// Retry-read cost as a fraction of the compressed service time.
    pub retry_cost_frac: f64,
    /// Codec fault rate used by the fixed-vs-autoscaled knee comparison.
    pub knee_fault_rate: f64,
    /// Knee bisection iterations for the autoscale comparison.
    pub bisect_iters: usize,
    /// Master arrival/drift seed.
    pub seed: u64,
    /// Independent chaos seed (crash schedules and fault probes).
    pub chaos_seed: u64,
}

impl Default for ChaosParams {
    fn default() -> Self {
        ChaosParams {
            model: ModelId::Googlenet,
            max_batch: 8,
            tenants: 3,
            arrivals_per_tenant: 600,
            drift_epochs: 2,
            slo_factor: 3.0,
            offered_fraction: 0.6,
            mttf_s: 0.25,
            mttr_s: 0.05,
            transient_fraction: 0.25,
            retry_cost_frac: 0.25,
            knee_fault_rate: 0.05,
            bisect_iters: 4,
            seed: 0x5eed_5e12e,
            chaos_seed: 0xc4a0_5eed,
        }
    }
}

/// The chaos grid: codec fault rates × three modes, plus the
/// fixed-vs-autoscaled knee comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosGridSpec {
    /// Per-batch codec fault probabilities swept.
    pub fault_rates: Vec<f64>,
    /// Shared knobs.
    pub params: ChaosParams,
}

impl ChaosGridSpec {
    /// Default grid: five fault rates from healthy to heavily faulted.
    pub fn default_grid() -> Self {
        ChaosGridSpec {
            fault_rates: vec![0.0, 0.02, 0.05, 0.1, 0.2],
            params: ChaosParams::default(),
        }
    }

    /// CI smoke grid: two fault rates, two tenants, short traces. Still
    /// real crash schedules and fault probes on the real simulator.
    pub fn smoke_grid() -> Self {
        ChaosGridSpec {
            fault_rates: vec![0.0, 0.1],
            params: ChaosParams {
                tenants: 2,
                arrivals_per_tenant: 250,
                drift_epochs: 1,
                bisect_iters: 3,
                ..ChaosParams::default()
            },
        }
    }

    /// Divides trace lengths by `scale` (floored) for quick local runs.
    pub fn scaled(mut self, scale: usize) -> Self {
        self.params.arrivals_per_tenant = (self.params.arrivals_per_tenant / scale.max(1)).max(120);
        self
    }

    /// Total supervised cells: one rate point per (fault rate, mode),
    /// plus the two knee-comparison cells.
    pub fn cell_count(&self) -> usize {
        self.fault_rates.len() * MODES.len() + 2
    }
}

/// One supervised cell's payload: a rate point for grid cells, a knee
/// curve for the two autoscale-comparison cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Grid-cell payload.
    pub point: Option<RatePoint>,
    /// Knee-cell payload.
    pub curve: Option<ServeCurve>,
}

/// One (fault rate, mode) observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCellResult {
    /// Codec fault rate of this cell.
    pub fault_rate: f64,
    /// Serving mode.
    pub mode: ChaosMode,
    /// The simulated rate point (`None` if the cell was quarantined).
    pub point: Option<RatePoint>,
}

/// Fixed-fleet vs autoscaled knee search under chaos.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleComparison {
    /// Knee with the fleet pinned at the configured instance count.
    pub fixed: Option<ServeCurve>,
    /// Knee with the reactive autoscaler enabled.
    pub autoscaled: Option<ServeCurve>,
}

/// Complete chaos-serving result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Grid observations, grouped by fault rate then [`MODES`] order.
    pub cells: Vec<ChaosCellResult>,
    /// The knee comparison.
    pub autoscale: AutoscaleComparison,
    /// Cells the supervised sweep quarantined (their payload slots hold
    /// `None`). Always empty for the serial runner.
    pub quarantined: Vec<CellFailure>,
    /// Run metrics, embedded only when the trace feature is compiled in
    /// so trace-free reports stay byte-identical.
    #[cfg(feature = "trace")]
    pub metrics: zcomp_trace::metrics::MetricsSummary,
}

impl ChaosResult {
    /// The rate point of one (fault rate, mode) cell, if it completed.
    pub fn point(&self, fault_rate: f64, mode: ChaosMode) -> Option<&RatePoint> {
        self.cells
            .iter()
            .find(|c| c.fault_rate == fault_rate && c.mode == mode)
            .and_then(|c| c.point.as_ref())
    }

    /// Invariant: degraded mode never hard-fails a request — every codec
    /// fault resolves to a retry or an uncompressed brownout.
    pub fn degraded_never_hard_fails(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.mode == ChaosMode::Degraded)
            .filter_map(|c| c.point.as_ref())
            .all(|p| p.failed == 0)
    }

    /// Invariant: at every fault rate, degraded goodput is at least
    /// hard-fail goodput (hard-fail loses whole batches to faults that
    /// degrade merely slows down).
    pub fn degraded_goodput_dominates(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.mode == ChaosMode::Degraded)
            .all(|c| {
                match (
                    c.point.as_ref(),
                    self.point(c.fault_rate, ChaosMode::HardFail),
                ) {
                    (Some(degraded), Some(hard)) => degraded.goodput_qps >= hard.goodput_qps,
                    _ => true, // quarantined cells cannot fail the invariant
                }
            })
    }

    /// The headline table: goodput and per-class p99 per (fault rate,
    /// mode).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Goodput and per-class p99 under chaos (crashes + codec faults)",
            &[
                "fault rate",
                "mode",
                "goodput (qps)",
                "completed",
                "failed",
                "fallbacks",
                "p99 inter (ms)",
                "p99 batch (ms)",
                "crashes",
            ],
        );
        for cell in &self.cells {
            let Some(p) = &cell.point else {
                t.row([
                    format!("{:.3}", cell.fault_rate),
                    cell.mode.label().to_string(),
                    "quarantined".to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            };
            let class_p99 = |class: SloClass| {
                p.classes
                    .iter()
                    .find(|c| c.class == class)
                    .map_or(0.0, |c| c.p99_us / 1_000.0)
            };
            t.row([
                format!("{:.3}", cell.fault_rate),
                cell.mode.label().to_string(),
                format!("{:.1}", p.goodput_qps),
                p.completed.to_string(),
                p.failed.to_string(),
                p.codec_fallbacks.to_string(),
                format!("{:.2}", class_p99(SloClass::Interactive)),
                format!("{:.2}", class_p99(SloClass::Batch)),
                p.crashes.to_string(),
            ]);
        }
        t
    }

    /// The fixed-vs-autoscaled knee table.
    pub fn autoscale_table(&self) -> Table {
        let mut t = Table::new(
            "Knee under chaos: fixed fleet vs reactive autoscaler",
            &["fleet", "knee (qps)", "outcome", "points probed"],
        );
        for (label, curve) in [
            ("fixed", &self.autoscale.fixed),
            ("autoscaled", &self.autoscale.autoscaled),
        ] {
            match curve {
                Some(c) => t.row([
                    label.to_string(),
                    format!("{:.1}", c.knee_qps),
                    c.outcome.label().to_string(),
                    c.points.len().to_string(),
                ]),
                None => t.row([
                    label.to_string(),
                    "quarantined".to_string(),
                    String::new(),
                    String::new(),
                ]),
            };
        }
        t
    }
}

/// Chaos process for one cell at `fault_rate`.
fn chaos_config(p: &ChaosParams, fault_rate: f64, policy: DegradePolicy) -> ChaosConfig {
    ChaosConfig {
        seed: p.chaos_seed,
        mttf_s: p.mttf_s,
        mttr_s: p.mttr_s,
        codec_fault_rate: fault_rate,
        transient_fraction: p.transient_fraction,
        retry_cost_frac: p.retry_cost_frac,
        policy,
    }
}

/// Builds one cell's serving config (SLO fields still zero).
fn cell_config(p: &ChaosParams, scheme: Scheme) -> ServeConfig {
    let mut cfg = ServeConfig::new(p.model, scheme, p.max_batch);
    cfg.tenants.truncate(p.tenants.max(1));
    cfg.arrivals_per_tenant = p.arrivals_per_tenant;
    cfg.drift_epochs = p.drift_epochs;
    cfg.seed = p.seed;
    cfg.admission = AdmissionConfig::protective();
    cfg
}

/// Derives the shared SLO and capacity anchor from the *uncompressed*
/// node, exactly as the PR-8 serve experiment does, so every mode holds
/// to the identical bound and offered rate.
fn slo_and_offered(p: &ChaosParams) -> (u64, u64, f64, ServiceModel) {
    let base_cfg = cell_config(p, Scheme::None);
    let mut base_service = ServiceModel::for_network(&base_cfg);
    let (slo_ns, max_wait_ns) = derive_slo(&mut base_service, p.max_batch, p.slo_factor);
    let solo_s = base_service.solo_ns(0, 0, p.max_batch) as f64 / 1e9;
    let capacity = (base_cfg.instances * p.max_batch) as f64 / solo_s;
    (
        slo_ns,
        max_wait_ns,
        capacity * p.offered_fraction,
        base_service,
    )
}

/// Runs one (fault rate, mode) grid cell.
fn run_point_cell(p: &ChaosParams, fault_rate: f64, mode: ChaosMode) -> ChaosCell {
    let (slo_ns, max_wait_ns, offered_qps, base_service) = slo_and_offered(p);
    let mut cfg = cell_config(p, mode.scheme());
    cfg.slo_ns = slo_ns;
    cfg.max_wait_ns = max_wait_ns;
    cfg.chaos = Some(chaos_config(p, fault_rate, mode.policy()));
    let mut service = if mode.scheme() == Scheme::None {
        base_service
    } else {
        ServiceModel::for_network(&cfg)
    };
    ChaosCell {
        point: Some(simulate(&cfg, &mut service, offered_qps)),
        curve: None,
    }
}

/// Runs one knee-comparison cell (fixed fleet or autoscaled), chaos on,
/// degrade policy, at the mid-grid fault rate.
fn run_knee_cell(p: &ChaosParams, autoscaled: bool) -> ChaosCell {
    let (slo_ns, max_wait_ns, _, _) = slo_and_offered(p);
    let mut cfg = cell_config(p, Scheme::Zcomp);
    cfg.slo_ns = slo_ns;
    cfg.max_wait_ns = max_wait_ns;
    cfg.chaos = Some(chaos_config(p, p.knee_fault_rate, DegradePolicy::Degrade));
    if autoscaled {
        // Floor at the baseline fleet (an autoscaler that shrinks to one
        // instance under a crash process cannot hold any p99 bound — the
        // single enabled instance's repairs dominate the tail) and give
        // it burst headroom to twice the fixed size.
        cfg.autoscale = Some(AutoscaleConfig {
            min_instances: cfg.instances,
            max_instances: cfg.instances * 2,
            ..AutoscaleConfig::default()
        });
    }
    let mut service = ServiceModel::for_network(&cfg);
    let opts = KneeOpts {
        bisect_iters: p.bisect_iters,
        ..KneeOpts::default()
    };
    ChaosCell {
        point: None,
        curve: Some(find_knee(&cfg, &mut service, &opts)),
    }
}

/// Flat cell index → work description.
enum CellSpec {
    Point { fault_rate: f64, mode: ChaosMode },
    Knee { autoscaled: bool },
}

fn cell_of(grid: &ChaosGridSpec, idx: usize) -> CellSpec {
    let grid_cells = grid.fault_rates.len() * MODES.len();
    if idx < grid_cells {
        CellSpec::Point {
            fault_rate: grid.fault_rates[idx / MODES.len()],
            mode: MODES[idx % MODES.len()],
        }
    } else {
        CellSpec::Knee {
            autoscaled: idx - grid_cells == 1,
        }
    }
}

fn cell_key(grid: &ChaosGridSpec, idx: usize) -> String {
    let p = &grid.params;
    let common = format!(
        "model={};mb={};tenants={};arr={};epochs={};slofac={};off={};mttf={};mttr={};tf={};rcf={};seed={:#x};chaos={:#x}",
        p.model,
        p.max_batch,
        p.tenants,
        p.arrivals_per_tenant,
        p.drift_epochs,
        p.slo_factor,
        p.offered_fraction,
        p.mttf_s,
        p.mttr_s,
        p.transient_fraction,
        p.retry_cost_frac,
        p.seed,
        p.chaos_seed
    );
    match cell_of(grid, idx) {
        CellSpec::Point { fault_rate, mode } => {
            format!("chaos;{common};rate={fault_rate};mode={}", mode.label())
        }
        CellSpec::Knee { autoscaled } => format!(
            "chaos-knee;{common};rate={};bisect={};autoscaled={autoscaled}",
            p.knee_fault_rate, p.bisect_iters
        ),
    }
}

fn run_cell(grid: &ChaosGridSpec, idx: usize) -> ChaosCell {
    match cell_of(grid, idx) {
        CellSpec::Point { fault_rate, mode } => run_point_cell(&grid.params, fault_rate, mode),
        CellSpec::Knee { autoscaled } => run_knee_cell(&grid.params, autoscaled),
    }
}

fn assemble(
    grid: &ChaosGridSpec,
    outcomes: Vec<CellOutcome<ChaosCell>>,
    quarantined: Vec<CellFailure>,
    #[cfg(feature = "trace")] registry: &mut zcomp_trace::metrics::MetricsRegistry,
) -> ChaosResult {
    let mut cells = Vec::with_capacity(grid.fault_rates.len() * MODES.len());
    let mut autoscale = AutoscaleComparison {
        fixed: None,
        autoscaled: None,
    };
    for (idx, outcome) in outcomes.into_iter().enumerate() {
        let payload = match outcome {
            CellOutcome::Completed { value, .. } => {
                #[cfg(feature = "trace")]
                {
                    registry.incr("serve_chaos.cells", 1);
                    if let Some(p) = &value.point {
                        registry.observe("serve_chaos.goodput_qps", p.goodput_qps);
                    }
                }
                Some(value)
            }
            CellOutcome::Quarantined(_) => None,
        };
        match cell_of(grid, idx) {
            CellSpec::Point { fault_rate, mode } => cells.push(ChaosCellResult {
                fault_rate,
                mode,
                point: payload.and_then(|c| c.point),
            }),
            CellSpec::Knee { autoscaled } => {
                let curve = payload.and_then(|c| c.curve);
                if autoscaled {
                    autoscale.autoscaled = curve;
                } else {
                    autoscale.fixed = curve;
                }
            }
        }
    }
    ChaosResult {
        cells,
        autoscale,
        quarantined,
        #[cfg(feature = "trace")]
        metrics: registry.summary(),
    }
}

/// Runs the grid serially in-process (no supervision, no cache).
pub fn run(grid: &ChaosGridSpec) -> ChaosResult {
    let _span = zcomp_trace::tracer::span("experiment", "serve_chaos");
    let outcomes = (0..grid.cell_count())
        .map(|idx| CellOutcome::Completed {
            value: run_cell(grid, idx),
            attempts: 1,
        })
        .collect();
    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    assemble(
        grid,
        outcomes,
        Vec::new(),
        #[cfg(feature = "trace")]
        &mut registry,
    )
}

/// Runs the grid as a supervised sweep via [`run_cells`]: panic
/// quarantine, retries, `--resume` and the multi-process fabric all
/// apply. Equivalent to [`run`] cell for cell when nothing is
/// quarantined.
pub fn run_sweep(
    grid: &ChaosGridSpec,
    opts: &SweepOpts,
) -> Result<SweepOutcome<ChaosResult>, SweepError> {
    let _span = zcomp_trace::tracer::span("experiment", "serve_chaos-sweep");
    let fingerprint = config_fingerprint(&SimConfig::table1());
    let key_of = |idx: usize| cell_key(grid, idx);
    let grid_for_jobs = grid.clone();
    let make_job = move |idx: usize| -> Box<dyn FnOnce() -> ChaosCell + Send + 'static> {
        let grid = grid_for_jobs.clone();
        Box::new(move || run_cell(&grid, idx))
    };
    let run = run_cells(
        "serve_chaos",
        grid.cell_count(),
        fingerprint,
        opts,
        key_of,
        make_job,
    )?;

    #[cfg(feature = "trace")]
    let mut registry = zcomp_trace::metrics::MetricsRegistry::new();
    #[cfg(feature = "trace")]
    {
        registry.incr("serve_chaos.retries", run.report.retries);
        registry.incr("serve_chaos.resume_skips", run.report.resume_skips as u64);
        registry.incr(
            "serve_chaos.quarantined",
            run.report.quarantined.len() as u64,
        );
    }
    let result = assemble(
        grid,
        run.outcomes,
        run.report.quarantined.clone(),
        #[cfg(feature = "trace")]
        &mut registry,
    );
    Ok(SweepOutcome {
        result,
        supervision: run.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// A cheap real-simulator grid: ResNet-32 service sims run in
    /// milliseconds, and two fault rates exercise both the clean and the
    /// heavily-faulted paths.
    fn tiny_grid() -> ChaosGridSpec {
        ChaosGridSpec {
            fault_rates: vec![0.0, 0.2],
            params: ChaosParams {
                model: ModelId::Resnet32,
                max_batch: 4,
                tenants: 2,
                arrivals_per_tenant: 150,
                drift_epochs: 1,
                bisect_iters: 2,
                ..ChaosParams::default()
            },
        }
    }

    fn quick() -> &'static ChaosResult {
        static RESULT: OnceLock<ChaosResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&tiny_grid()))
    }

    #[test]
    fn grid_covers_every_mode_and_rate() {
        let r = quick();
        assert_eq!(r.cells.len(), 6);
        for cell in &r.cells {
            let p = cell.point.as_ref().expect("serial run completes cells");
            assert!(p.completed > 0, "{:?} at {}", cell.mode, cell.fault_rate);
            assert!(p.crashes > 0, "the crash process must actually run");
        }
        // Codec faults strike only compressed modes at nonzero rates.
        let un = r.point(0.2, ChaosMode::Uncompressed).unwrap();
        assert_eq!(un.codec_faults, 0);
        let deg = r.point(0.2, ChaosMode::Degraded).unwrap();
        assert!(deg.codec_faults > 0);
    }

    #[test]
    fn degrade_invariants_hold() {
        let r = quick();
        assert!(r.degraded_never_hard_fails());
        assert!(r.degraded_goodput_dominates());
        let hard = r.point(0.2, ChaosMode::HardFail).unwrap();
        assert!(hard.failed > 0, "hard-fail must actually fail requests");
    }

    #[test]
    fn knee_comparison_produces_both_curves() {
        let r = quick();
        let fixed = r.autoscale.fixed.as_ref().expect("fixed knee");
        let scaled = r.autoscale.autoscaled.as_ref().expect("autoscaled knee");
        assert!(fixed.knee_qps > 0.0);
        assert!(scaled.knee_qps > 0.0);
        // The autoscaled node reacted: some rate point scaled up.
        assert!(scaled
            .points
            .iter()
            .any(|p| p.scale_ups > 0 || p.peak_instances > 0));
    }

    #[test]
    fn serial_run_is_deterministic() {
        let a = quick();
        let b = run(&tiny_grid());
        crate::serve::determinism::require_byte_identical(a, &b)
            .expect("chaos grid must replay byte-identically");
    }

    #[test]
    fn sweep_matches_serial_run() {
        let reference = quick();
        let sweep =
            run_sweep(&tiny_grid(), &SweepOpts::default().with_threads(2)).expect("sweep succeeds");
        assert!(sweep.result.quarantined.is_empty());
        crate::serve::determinism::require_byte_identical(reference, &sweep.result)
            .expect("sweep must match the serial run");
    }

    #[test]
    fn tables_render() {
        let r = quick();
        assert!(r.table().render().contains("degraded"));
        assert!(r.autoscale_table().render().contains("autoscaled"));
    }
}
