//! Extension sweeps beyond the paper's figures.
//!
//! * [`sparsity_sweep`] — how the three schemes' traffic and runtime react
//!   as feature-map sparsity varies. The paper evaluates at its measured
//!   ~53%; the sweep exposes the crossover where compression stops paying
//!   (related to the §4.1 break-even analysis).
//! * [`batch_sweep`] — feature-map vs weight footprint share as the batch
//!   grows, supporting §2.3: "the use of larger batch sizes will cause
//!   further increases in the feature map footprint relative to the
//!   weight footprint".

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_dnn::training::training_footprint;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::relu::{run_relu, ReluOpts, ReluScheme};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

use crate::report::{pct, Table};

/// One sparsity point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityPoint {
    /// Input sparsity.
    pub sparsity: f64,
    /// Baseline runtime in cycles.
    pub baseline_cycles: f64,
    /// zcomp runtime in cycles.
    pub zcomp_cycles: f64,
    /// avx512-comp runtime in cycles.
    pub avx_cycles: f64,
    /// zcomp core-traffic reduction vs baseline.
    pub zcomp_traffic_reduction: f64,
}

/// Result of the sparsity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsitySweepResult {
    /// Points in increasing sparsity.
    pub points: Vec<SparsityPoint>,
}

impl SparsitySweepResult {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension: scheme sensitivity to feature-map sparsity",
            &[
                "sparsity",
                "baseline_cycles",
                "avx512comp_cycles",
                "zcomp_cycles",
                "zcomp_speedup",
                "traffic_cut",
            ],
        );
        for p in &self.points {
            t.row([
                format!("{:.0}%", p.sparsity * 100.0),
                format!("{:.0}", p.baseline_cycles),
                format!("{:.0}", p.avx_cycles),
                format!("{:.0}", p.zcomp_cycles),
                format!("{:.2}x", p.baseline_cycles / p.zcomp_cycles),
                pct(p.zcomp_traffic_reduction),
            ]);
        }
        t
    }
}

/// Sweeps ReLU-layer performance across input sparsities.
pub fn sparsity_sweep(elements: usize, sparsities: &[f64]) -> SparsitySweepResult {
    let points = sparsities
        .iter()
        .map(|&s| {
            let nnz = nnz_synthetic(elements, s, 6.0, 0x5EE9);
            let run = |scheme| {
                let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
                let r = run_relu(&mut machine, scheme, &nnz, &ReluOpts::default());
                (r.total_cycles(), machine.summary().traffic.core_bytes())
            };
            let (base_cycles, base_traffic) = run(ReluScheme::Avx512Vec);
            let (avx_cycles, _) = run(ReluScheme::Avx512Comp);
            let (zcomp_cycles, zcomp_traffic) = run(ReluScheme::Zcomp);
            SparsityPoint {
                sparsity: s,
                baseline_cycles: base_cycles,
                zcomp_cycles,
                avx_cycles,
                zcomp_traffic_reduction: 1.0 - zcomp_traffic as f64 / base_traffic as f64,
            }
        })
        .collect();
    SparsitySweepResult { points }
}

/// One batch point of the footprint sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPoint {
    /// Batch size.
    pub batch: usize,
    /// Feature-map bytes (training, forward accumulation).
    pub feature_map_bytes: u64,
    /// Weight bytes (batch-independent).
    pub weight_bytes: u64,
    /// Feature-map share of the training footprint.
    pub feature_map_share: f64,
}

/// Result of the batch sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSweepResult {
    /// Swept network.
    pub model: ModelId,
    /// Points in increasing batch size.
    pub points: Vec<BatchPoint>,
}

impl BatchSweepResult {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Extension: batch-size effect on {} footprints", self.model),
            &["batch", "feature_maps_mb", "weights_mb", "fm_share"],
        );
        for p in &self.points {
            t.row([
                p.batch.to_string(),
                (p.feature_map_bytes >> 20).to_string(),
                (p.weight_bytes >> 20).to_string(),
                pct(p.feature_map_share),
            ]);
        }
        t
    }
}

/// Sweeps the feature-map/weight footprint balance across batch sizes.
pub fn batch_sweep(model: ModelId, batches: &[usize]) -> BatchSweepResult {
    let points = batches
        .iter()
        .map(|&batch| {
            let net = model.build(batch);
            let fp = training_footprint(&net);
            BatchPoint {
                batch,
                feature_map_bytes: fp.feature_maps_bytes,
                weight_bytes: fp.weights_bytes,
                feature_map_share: fp.feature_map_fraction(),
            }
        })
        .collect();
    BatchSweepResult { model, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcomp_gain_grows_with_sparsity() {
        // 8 MB keeps the steady-state iterations bandwidth-bound (smaller
        // maps become launch-overhead-dominated and the speedups tie).
        let r = sparsity_sweep(2 << 20, &[0.1, 0.5, 0.9]);
        let speedup = |p: &SparsityPoint| p.baseline_cycles / p.zcomp_cycles;
        assert!(
            speedup(&r.points[2]) > speedup(&r.points[0]),
            "s=0.9 {} vs s=0.1 {}",
            speedup(&r.points[2]),
            speedup(&r.points[0])
        );
        assert!(r.points[2].zcomp_traffic_reduction > r.points[0].zcomp_traffic_reduction);
    }

    #[test]
    fn feature_map_share_grows_with_batch() {
        // §2.3's claim, on the FC-heavy network where it is most visible.
        let r = batch_sweep(ModelId::Alexnet, &[1, 16, 64, 256]);
        let shares: Vec<f64> = r.points.iter().map(|p| p.feature_map_share).collect();
        assert!(
            shares.windows(2).all(|w| w[1] > w[0]),
            "shares must increase: {shares:?}"
        );
    }

    #[test]
    fn weights_are_batch_independent() {
        let r = batch_sweep(ModelId::Vgg16, &[1, 8]);
        assert_eq!(r.points[0].weight_bytes, r.points[1].weight_bytes);
        assert!(r.points[1].feature_map_bytes > r.points[0].feature_map_bytes);
    }

    #[test]
    fn tables_render() {
        assert!(sparsity_sweep(64 * 1024, &[0.5])
            .table()
            .render()
            .contains("50%"));
        assert!(batch_sweep(ModelId::Resnet32, &[1, 2])
            .table()
            .render()
            .contains("resnet-32"));
    }
}
