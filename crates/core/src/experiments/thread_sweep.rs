//! Extension: thread-count scalability of the ReLU kernels.
//!
//! §4.3 argues the partitioned strategy scales because "with enough
//! chunks that can sustain the available cache/memory bandwidth, the
//! throughput problem can be mitigated" — this sweep measures where each
//! scheme saturates (issue-bound schemes scale further; DRAM-bound
//! configurations flatten once bandwidth saturates).

use serde::{Deserialize, Serialize};
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::relu::{run_relu, ReluOpts, ReluScheme};
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

use crate::report::Table;

/// One (threads, scheme) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Scheme measured.
    pub scheme: ReluScheme,
    /// Runtime in cycles.
    pub cycles: f64,
}

/// Result of the thread sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadSweepResult {
    /// Feature-map elements simulated.
    pub elements: usize,
    /// All measurements.
    pub points: Vec<ThreadPoint>,
}

impl ThreadSweepResult {
    /// Cycles for a (threads, scheme) pair.
    pub fn cycles(&self, threads: usize, scheme: ReluScheme) -> f64 {
        self.points
            .iter()
            .find(|p| p.threads == threads && p.scheme == scheme)
            .expect("measured point")
            .cycles
    }

    /// Parallel speedup of a scheme from 1 thread to `threads`.
    pub fn scaling(&self, threads: usize, scheme: ReluScheme) -> f64 {
        self.cycles(1, scheme) / self.cycles(threads, scheme)
    }

    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Extension: thread scalability ({} MB feature map)",
                (self.elements * 4) >> 20
            ),
            &[
                "threads",
                "avx512-vec",
                "avx512-comp",
                "zcomp",
                "zcomp_scaling",
            ],
        );
        let threads: Vec<usize> = {
            let mut v: Vec<usize> = self.points.iter().map(|p| p.threads).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for &n in &threads {
            t.row([
                n.to_string(),
                format!("{:.0}", self.cycles(n, ReluScheme::Avx512Vec)),
                format!("{:.0}", self.cycles(n, ReluScheme::Avx512Comp)),
                format!("{:.0}", self.cycles(n, ReluScheme::Zcomp)),
                format!("{:.2}x", self.scaling(n, ReluScheme::Zcomp)),
            ]);
        }
        t
    }
}

/// Sweeps thread counts for all three schemes on one feature map.
pub fn run(elements: usize, thread_counts: &[usize]) -> ThreadSweepResult {
    let nnz = nnz_synthetic(elements, 0.53, 6.0, 0x7123);
    let mut points = Vec::new();
    for &threads in thread_counts {
        for scheme in [
            ReluScheme::Avx512Vec,
            ReluScheme::Avx512Comp,
            ReluScheme::Zcomp,
        ] {
            let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
            let opts = ReluOpts {
                threads,
                ..ReluOpts::default()
            };
            let cycles = run_relu(&mut machine, scheme, &nnz, &opts).total_cycles();
            points.push(ThreadPoint {
                threads,
                scheme,
                cycles,
            });
        }
    }
    ThreadSweepResult { elements, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_never_slower() {
        let r = run(256 * 1024, &[1, 4, 16]);
        for scheme in [
            ReluScheme::Avx512Vec,
            ReluScheme::Avx512Comp,
            ReluScheme::Zcomp,
        ] {
            let c1 = r.cycles(1, scheme);
            let c16 = r.cycles(16, scheme);
            assert!(c16 <= c1, "{scheme}: 16t {c16} vs 1t {c1}");
        }
    }

    #[test]
    fn cache_resident_work_scales_well() {
        let r = run(256 * 1024, &[1, 8]);
        assert!(
            r.scaling(8, ReluScheme::Zcomp) > 3.0,
            "zcomp 8-thread scaling {}",
            r.scaling(8, ReluScheme::Zcomp)
        );
    }

    #[test]
    fn table_renders() {
        let r = run(64 * 1024, &[1, 2]);
        assert!(r.table().render().contains("zcomp_scaling"));
    }
}
