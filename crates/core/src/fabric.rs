//! Crash-safe multi-process sweep fabric: a coordinator-less, file-locked
//! work queue layered over the trace-cache directory tree.
//!
//! PR-5 supervision made a *single process* survive panics, hangs and
//! SIGKILL. The fabric generalizes that discipline to *many cooperating
//! worker processes* sharing one filesystem, with no coordinator and no
//! IPC beyond atomic filesystem operations:
//!
//! * **Leases** — each sweep cell maps to one lease file under
//!   `<dir>/<experiment>/leases/`, claimed via atomic create
//!   ([`std::fs::OpenOptions::create_new`], i.e. `O_EXCL`): exactly one
//!   worker wins a cell, no matter how many race for it.
//! * **Heartbeats** — a claimed lease carries the worker id and is
//!   re-written on a watchdog thread every quarter-TTL, refreshing its
//!   mtime. A lease whose mtime age exceeds the TTL belongs to a dead
//!   (or stalled) worker.
//! * **Fencing tokens** — every claim carries a monotonically increasing
//!   per-cell token. Reclaiming an expired lease first *renames* it to a
//!   token-stamped tombstone (`<hash>.lease.t<N>.expired`) — rename(2)
//!   resolves races to exactly one winner — and the next claim takes
//!   token `N+1`. A revived zombie fails the ownership check before its
//!   journal commit, and even a commit that slips through loses the
//!   merge, which keeps the highest token per cell.
//! * **Journals** — each worker commits to its own CRC-guarded JSONL
//!   journal (`journal.<worker>.jsonl`, tmp + atomic rename), so no two
//!   processes ever write one file. The merged view across all journals
//!   is what defines sweep completion.
//! * **Drain** — SIGTERM/SIGINT set a drain flag: workers stop claiming,
//!   release unexecuted leases as `.released` tombstones, and exit with
//!   a typed [`SweepError::FabricDrained`] so a supervisor can resume
//!   the fabric later without losing completed cells.
//! * **Deterministic merge** — once every cell is journalled, each
//!   worker reconstructs the outcome vector in index order from the
//!   merged view, so the final report is byte-identical to a 1-worker
//!   (or plain single-process) run regardless of worker count, crash
//!   history, or scheduling.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, SystemTime};

use serde::{Deserialize, Serialize};
use zcomp_trace::events::{self, FleetEvent};
use zcomp_trace::log_warn;
use zcomp_trace::metrics::{Histogram, MetricsRegistry};

use crate::supervise::{CellFailure, CellOutcome, FailureReason, Journal, JournalEntry};
use crate::sweep::{run_sharded, CellsRun, SupervisionReport, SweepError, SweepOpts};

/// Fabric participation policy of one worker process.
#[derive(Debug, Clone)]
pub struct FabricOpts {
    /// Shared fabric directory (leases and per-worker journals live in
    /// per-experiment subdirectories of it). Every cooperating worker
    /// must point at the same directory.
    pub dir: PathBuf,
    /// This worker's id — stamped into leases, journals and quarantine
    /// sidecars. Defaults to `w<pid>`.
    pub worker: String,
    /// Lease time-to-live: a lease whose heartbeat mtime is older than
    /// this is considered dead and reclaimable.
    pub lease_ttl: Duration,
    /// How long a worker with nothing claimable sleeps before re-scanning
    /// the merged journal view.
    pub poll: Duration,
}

impl FabricOpts {
    /// Fabric options rooted at `dir` with a pid-derived worker id, a
    /// 30 s lease TTL and a 50 ms poll interval.
    pub fn new(dir: impl Into<PathBuf>) -> FabricOpts {
        FabricOpts {
            dir: dir.into(),
            worker: format!("w{}", std::process::id()),
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(50),
        }
    }

    /// Sets this worker's id.
    pub fn with_worker(mut self, worker: impl Into<String>) -> FabricOpts {
        self.worker = worker.into();
        self
    }

    /// Sets the lease TTL (clamped to at least 10 ms).
    pub fn with_lease_ttl(mut self, ttl: Duration) -> FabricOpts {
        self.lease_ttl = ttl.max(Duration::from_millis(10));
        self
    }

    /// Sets the idle poll interval (clamped to at least 1 ms).
    pub fn with_poll(mut self, poll: Duration) -> FabricOpts {
        self.poll = poll.max(Duration::from_millis(1));
        self
    }
}

/// What one worker observed across a fabric run. Serialized next to the
/// [`SupervisionReport`] so operators can audit contention and recovery.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricReport {
    /// This worker's id.
    pub worker: String,
    /// Leases this worker won (fresh claims plus reclaims).
    pub claims: u64,
    /// Expired (dead-worker) leases this worker reclaimed.
    pub reclaims: u64,
    /// Commits this worker withheld because it no longer owned the lease
    /// (it had been fenced off by a reclaimer).
    pub fenced_rejections: u64,
    /// Claimed-but-unexecuted leases released during a graceful drain.
    pub drains: u64,
    /// Cells this worker executed and committed.
    pub completed: u64,
    /// Redundant journal records observed at merge (a fenced zombie's
    /// stale commit that lost highest-token-wins).
    pub duplicates: u64,
}

impl FabricReport {
    /// One-line human summary (for binaries' stderr).
    pub fn summary(&self) -> String {
        format!(
            "fabric worker {}: {} claims ({} reclaimed), {} completed, \
             {} fenced, {} drained, {} duplicate record(s)",
            self.worker,
            self.claims,
            self.reclaims,
            self.completed,
            self.fenced_rejections,
            self.drains,
            self.duplicates
        )
    }
}

// ---------------------------------------------------------------------------
// Drain flag and signal handling
// ---------------------------------------------------------------------------

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Whether a graceful drain has been requested (by signal or
/// [`request_drain`]).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Requests a graceful drain: workers stop claiming cells, release
/// unexecuted leases and return [`SweepError::FabricDrained`].
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Clears the drain flag (tests and multi-sweep processes).
pub fn reset_drain() {
    DRAIN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn drain_on_signal(_signum: i32) {
    // An atomic store is async-signal-safe; everything else (lease
    // release, journal flush) happens on the worker threads once they
    // observe the flag.
    DRAIN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handler that turns those signals into a
/// graceful drain. Idempotent; a no-op on non-unix targets.
pub fn install_drain_handler() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        #[cfg(unix)]
        {
            extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            }
            // 2 = SIGINT, 15 = SIGTERM on every unix this builds on.
            unsafe {
                signal(2, drain_on_signal);
                signal(15, drain_on_signal);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------------

/// Lifecycle state recorded inside a lease file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// The owning worker is (supposedly) executing the cell.
    Running,
    /// The owning worker committed the cell's journal record.
    Done,
}

/// The on-disk claim on one sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Cell descriptor (the trace-cache / journal cell key).
    pub cell: String,
    /// Machine-config fingerprint of the sweep.
    pub fingerprint: u32,
    /// Owning worker id.
    pub worker: String,
    /// Fencing token of this claim (monotonically increasing per cell).
    pub token: u64,
    /// Lifecycle state.
    pub state: LeaseState,
}

/// What a lease file currently holds.
#[derive(Debug, Clone, PartialEq)]
pub enum LeaseView {
    /// No lease file: the cell is claimable.
    Free,
    /// A parseable lease, with the age of its last heartbeat.
    Held(Lease, Duration),
    /// An unparseable lease file (a writer died mid-write), with its age.
    Torn(Duration),
}

/// FNV-1a 64-bit — names lease files from cell descriptors.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Maps a worker id onto a filesystem-safe journal-file stem.
fn sanitize_worker(worker: &str) -> String {
    worker
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The lease directory of one experiment's fabric: lease files named by
/// cell hash, plus token-stamped tombstones of expired/released claims.
#[derive(Debug, Clone)]
pub struct LeaseDir {
    root: PathBuf,
}

impl LeaseDir {
    /// Opens (creating if needed) the lease directory under `dir`.
    pub fn open(dir: &Path) -> io::Result<LeaseDir> {
        let root = dir.join("leases");
        fs::create_dir_all(&root)?;
        Ok(LeaseDir { root })
    }

    /// The stable lease hash of `(experiment, cell, fingerprint)`.
    pub fn hash(experiment: &str, cell: &str, fingerprint: u32) -> u64 {
        let mut bytes = Vec::with_capacity(experiment.len() + cell.len() + 6);
        bytes.extend_from_slice(experiment.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(cell.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&fingerprint.to_le_bytes());
        fnv1a64(&bytes)
    }

    fn lease_path(&self, hash: u64) -> PathBuf {
        self.root.join(format!("{hash:016x}.lease"))
    }

    /// Reads the current state of cell `hash`'s lease.
    pub fn read(&self, hash: u64) -> LeaseView {
        let path = self.lease_path(hash);
        let meta = match fs::metadata(&path) {
            Ok(meta) => meta,
            Err(_) => return LeaseView::Free,
        };
        let age = meta
            .modified()
            .ok()
            .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
            .unwrap_or(Duration::ZERO);
        match fs::read(&path) {
            Ok(bytes) => match serde_json::from_str::<Lease>(&String::from_utf8_lossy(&bytes)) {
                Ok(lease) => LeaseView::Held(lease, age),
                Err(_) => LeaseView::Torn(age),
            },
            // Deleted (tombstoned) between the metadata and read calls.
            Err(_) => LeaseView::Free,
        }
    }

    /// The next fencing token for cell `hash`: one above the highest
    /// token recorded in its tombstones (1 for a never-claimed cell).
    /// Tombstones are never deleted while a fabric run is live, so this
    /// stays monotonic across any worker's crash.
    pub fn next_token(&self, hash: u64) -> u64 {
        let prefix = format!("{hash:016x}.lease.t");
        let mut max_token = 0u64;
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(rest) = name.strip_prefix(&prefix) else {
                    continue;
                };
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                if let Ok(token) = digits.parse::<u64>() {
                    max_token = max_token.max(token);
                }
            }
        }
        max_token + 1
    }

    /// Claims cell `hash` with `lease` via atomic create (`O_EXCL`).
    /// Returns `false` if another worker holds the lease.
    pub fn try_claim(&self, hash: u64, lease: &Lease) -> io::Result<bool> {
        let text = serde_json::to_string(lease).map_err(io::Error::other)?;
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.lease_path(hash))
        {
            Ok(mut file) => {
                file.write_all(text.as_bytes())?;
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Heartbeat: rewrites the lease file (refreshing its mtime) if this
    /// worker still owns it. Returns whether the renewal happened.
    pub fn renew(&self, hash: u64, lease: &Lease) -> bool {
        if !self.owns(hash, &lease.worker, lease.token) {
            return false;
        }
        let Ok(text) = serde_json::to_string(lease) else {
            return false;
        };
        fs::write(self.lease_path(hash), text).is_ok()
    }

    /// Marks this worker's lease `Done` after its journal commit landed
    /// (observability only — completion truth lives in the journals).
    pub fn mark_done(&self, hash: u64, lease: &Lease) {
        if !self.owns(hash, &lease.worker, lease.token) {
            return;
        }
        let done = Lease {
            state: LeaseState::Done,
            ..lease.clone()
        };
        if let Ok(text) = serde_json::to_string(&done) {
            let _ = fs::write(self.lease_path(hash), text);
        }
    }

    /// Releases a claimed-but-unexecuted lease during a drain by
    /// tombstoning it, so the cell is immediately reclaimable (at a
    /// higher token) by any surviving worker.
    pub fn release(&self, hash: u64, lease: &Lease) {
        let tomb = self
            .root
            .join(format!("{hash:016x}.lease.t{}.released", lease.token));
        let _ = fs::rename(self.lease_path(hash), tomb);
    }

    /// Reclaims an expired lease by renaming it to an `.expired`
    /// tombstone stamped with its token. rename(2) makes this race-free:
    /// exactly one of the competing reclaimers succeeds.
    pub fn try_reclaim(&self, hash: u64, token: u64) -> bool {
        let tomb = self
            .root
            .join(format!("{hash:016x}.lease.t{token}.expired"));
        fs::rename(self.lease_path(hash), tomb).is_ok()
    }

    /// Whether `(worker, token)` currently owns cell `hash`'s lease —
    /// checked immediately before a journal commit so a fenced-off
    /// zombie withholds its stale result.
    pub fn owns(&self, hash: u64, worker: &str, token: u64) -> bool {
        match self.read(hash) {
            LeaseView::Held(lease, _) => lease.worker == worker && lease.token == token,
            _ => false,
        }
    }

    /// All currently-parseable leases with their heartbeat ages, sorted
    /// by cell. Read-only — fleet status tools tail this alongside the
    /// event streams without perturbing the claim protocol.
    pub fn snapshot(&self) -> Vec<(Lease, Duration)> {
        let mut held = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(stem) = name.strip_suffix(".lease") else {
                    continue;
                };
                let Ok(hash) = u64::from_str_radix(stem, 16) else {
                    continue;
                };
                if let LeaseView::Held(lease, age) = self.read(hash) {
                    held.push((lease, age));
                }
            }
        }
        held.sort_by(|a, b| a.0.cell.cmp(&b.0.cell));
        held
    }

    /// Tombstone count by suffix (`expired` / `released`), for tests and
    /// smoke assertions.
    pub fn tombstones(&self, suffix: &str) -> usize {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.contains(".lease.t") && n.ends_with(suffix))
            })
            .count()
    }
}

/// The result of one acquisition attempt.
enum Acquire {
    /// This worker now holds the lease (and whether it was a reclaim).
    Won(Lease, bool),
    /// Another worker holds a live lease (or won the race).
    Busy,
}

/// Tries to acquire cell `hash`: claim it if free, reclaim it if its
/// owner's heartbeat expired, tombstone it if torn and stale.
fn try_acquire(
    leases: &LeaseDir,
    hash: u64,
    cell: &str,
    fingerprint: u32,
    worker: &str,
    ttl: Duration,
) -> io::Result<Acquire> {
    let mut reclaimed = false;
    match leases.read(hash) {
        LeaseView::Free => {}
        LeaseView::Held(held, age) => {
            // `Done` leases linger for observability; a Done lease whose
            // cell is still unjournalled after several TTLs means the
            // commit was lost — reclaim it as a safety net.
            let expiry = match held.state {
                LeaseState::Running => ttl,
                LeaseState::Done => ttl * 4,
            };
            if age <= expiry || !leases.try_reclaim(hash, held.token) {
                return Ok(Acquire::Busy);
            }
            reclaimed = true;
        }
        LeaseView::Torn(age) => {
            // A torn lease older than the TTL belongs to a writer that
            // died mid-write. Its token is unreadable, so tombstone it
            // at the current token ceiling — that keeps the next token
            // strictly above anything the dead writer could have held.
            if age <= ttl {
                return Ok(Acquire::Busy);
            }
            let ceiling = leases.next_token(hash);
            if !leases.try_reclaim(hash, ceiling) {
                return Ok(Acquire::Busy);
            }
            reclaimed = true;
        }
    }
    let lease = Lease {
        cell: cell.to_string(),
        fingerprint,
        worker: worker.to_string(),
        token: leases.next_token(hash),
        state: LeaseState::Running,
    };
    if leases.try_claim(hash, &lease)? {
        Ok(Acquire::Won(lease, reclaimed))
    } else {
        Ok(Acquire::Busy)
    }
}

// ---------------------------------------------------------------------------
// Heartbeat watchdog
// ---------------------------------------------------------------------------

/// Live counters of one fabric worker, shared between the executor
/// threads and the heartbeat thread. The same values become the final
/// [`FabricReport`] *and* are snapshotted into the event stream with
/// every heartbeat as a [`zcomp_trace::metrics::MetricsDelta`] — so a
/// SIGKILLed worker's counts survive to its last beat instead of being
/// lost with the never-printed report.
#[derive(Debug, Default)]
struct FabricCounters {
    claims: AtomicU64,
    reclaims: AtomicU64,
    fenced: AtomicU64,
    drains: AtomicU64,
    completed: AtomicU64,
    duplicates: AtomicU64,
    retries: AtomicU64,
    /// Wall time per executed cell, microseconds. Only recorded while an
    /// event stream is armed.
    latency_us: Mutex<Histogram>,
}

impl FabricCounters {
    /// Current values as a metrics registry — the heartbeat time-series
    /// snapshot. Counter names match what experiments embed in their
    /// end-of-run reports (`fabric.*`).
    fn registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.incr("fabric.claims", self.claims.load(Ordering::Relaxed));
        reg.incr("fabric.reclaims", self.reclaims.load(Ordering::Relaxed));
        reg.incr(
            "fabric.fenced_rejections",
            self.fenced.load(Ordering::Relaxed),
        );
        reg.incr("fabric.drains", self.drains.load(Ordering::Relaxed));
        reg.incr("fabric.completed", self.completed.load(Ordering::Relaxed));
        reg.incr("fabric.retries", self.retries.load(Ordering::Relaxed));
        let latency = self.latency_us.lock().unwrap_or_else(|p| p.into_inner());
        reg.merge_histogram("fabric.cell_latency_us", &latency);
        reg
    }
}

/// Background thread renewing every registered lease each quarter-TTL,
/// so a healthy worker's leases never expire no matter how long a cell
/// takes. An optional `on_beat` callback runs once per beat — the event
/// stream uses it to emit heartbeat records with metrics deltas.
struct Heartbeat {
    registry: Arc<Mutex<HashMap<u64, Lease>>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(
        leases: LeaseDir,
        ttl: Duration,
        mut on_beat: Option<Box<dyn FnMut() + Send>>,
    ) -> Heartbeat {
        let registry: Arc<Mutex<HashMap<u64, Lease>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let interval = (ttl / 4).max(Duration::from_millis(2));
        let thread_registry = Arc::clone(&registry);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("zcomp-fabric-heartbeat".to_string())
            .spawn(move || {
                let step = interval.min(Duration::from_millis(20));
                let mut elapsed = Duration::ZERO;
                while !thread_stop.load(Ordering::SeqCst) {
                    std::thread::sleep(step);
                    elapsed += step;
                    if elapsed < interval {
                        continue;
                    }
                    elapsed = Duration::ZERO;
                    let held: Vec<(u64, Lease)> = {
                        let reg = thread_registry.lock().unwrap_or_else(|p| p.into_inner());
                        reg.iter().map(|(h, l)| (*h, l.clone())).collect()
                    };
                    for (hash, lease) in held {
                        leases.renew(hash, &lease);
                    }
                    if let Some(beat) = on_beat.as_mut() {
                        beat();
                    }
                }
            })
            .ok();
        Heartbeat {
            registry,
            stop,
            handle,
        }
    }

    fn register(&self, hash: u64, lease: Lease) {
        self.registry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(hash, lease);
    }

    fn unregister(&self, hash: u64) {
        self.registry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&hash);
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Journal payloads and the merged view
// ---------------------------------------------------------------------------

/// What a fabric journal record's payload holds: either the completed
/// cell value (pre-serialized, with the attempts it consumed) or a
/// terminal quarantine. Quarantines are journalled too — otherwise
/// surviving workers would reclaim and re-execute a poisoned cell
/// forever.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FabricCellPayload {
    /// The cell completed; `value` is the result's JSON document.
    Completed {
        /// Attempts the executing worker consumed.
        attempts: u32,
        /// The serialized cell result.
        value: String,
    },
    /// The cell exhausted its attempt budget on the executing worker.
    Quarantined(CellFailure),
}

/// Loads every per-worker journal under `dir` and keeps, per cell, the
/// record with the highest `(token, worker)` — the fencing order. Extra
/// records (a fenced zombie's stale commit) are counted as duplicates.
fn merged_view(
    dir: &Path,
    keys: &[String],
    fingerprint: u32,
    duplicates: &AtomicU64,
) -> Result<Vec<Option<JournalEntry>>, SweepError> {
    let mut view: Vec<Option<JournalEntry>> = keys.iter().map(|_| None).collect();
    let mut journal_paths: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("journal.") && name.ends_with(".jsonl") {
                journal_paths.push(entry.path());
            }
        }
    }
    // Deterministic load order (read_dir order is filesystem-dependent).
    journal_paths.sort();
    let mut extra = 0u64;
    for path in journal_paths {
        let journal = Journal::load(&path).map_err(|source| SweepError::Journal {
            path: path.clone(),
            source,
        })?;
        for (index, key) in keys.iter().enumerate() {
            let Some(entry) = journal.entry(key, fingerprint) else {
                continue;
            };
            match &mut view[index] {
                Some(best) => {
                    extra += 1;
                    if (entry.token, entry.worker.as_str()) > (best.token, best.worker.as_str()) {
                        *best = entry.clone();
                    }
                }
                slot => *slot = Some(entry.clone()),
            }
        }
    }
    duplicates.store(extra, Ordering::SeqCst);
    Ok(view)
}

/// Serializes a supervised outcome into a fabric journal payload.
fn fabric_payload<T: Serialize>(index: usize, cell: &str, outcome: &CellOutcome<T>) -> String {
    let payload = match outcome {
        CellOutcome::Completed { value, attempts } => match serde_json::to_string(value) {
            Ok(value) => FabricCellPayload::Completed {
                attempts: *attempts,
                value,
            },
            // An unserializable result can never reach the merged view;
            // journal it as a terminal quarantine so the fabric cannot
            // livelock re-executing it.
            Err(e) => FabricCellPayload::Quarantined(CellFailure {
                index,
                cell: cell.to_string(),
                attempts: *attempts,
                reason: FailureReason::Panicked {
                    message: format!("result does not serialize: {e}"),
                },
            }),
        },
        CellOutcome::Quarantined(failure) => FabricCellPayload::Quarantined(failure.clone()),
    };
    serde_json::to_string(&payload).expect("fabric payload serializes")
}

/// Decodes one merged journal entry back into a cell outcome.
/// `ran_here` keeps the executing worker's attempt count; every other
/// worker sees the cell as journal-restored (attempts 0), mirroring the
/// single-process resume semantics.
fn decode_cell<T: Deserialize>(
    index: usize,
    cell: &str,
    entry: &JournalEntry,
    ran_here: bool,
) -> CellOutcome<T> {
    let broken = |message: String| {
        CellOutcome::Quarantined(CellFailure {
            index,
            cell: cell.to_string(),
            attempts: 0,
            reason: FailureReason::Panicked { message },
        })
    };
    match serde_json::from_str::<FabricCellPayload>(&entry.payload) {
        Ok(FabricCellPayload::Completed { attempts, value }) => {
            match serde_json::from_str::<T>(&value) {
                Ok(value) => CellOutcome::Completed {
                    value,
                    attempts: if ran_here { attempts } else { 0 },
                },
                Err(e) => broken(format!("journalled value does not decode: {e}")),
            }
        }
        Ok(FabricCellPayload::Quarantined(failure)) => CellOutcome::Quarantined(failure),
        Err(e) => broken(format!("journalled payload does not decode: {e}")),
    }
}

// ---------------------------------------------------------------------------
// The fabric executor
// ---------------------------------------------------------------------------

/// Runs `items` cells as one worker of a multi-process fabric rooted at
/// [`FabricOpts::dir`]. Called by
/// [`run_cells`](crate::sweep::run_cells) when [`SweepOpts::fabric`] is
/// set; see the module docs for the protocol.
pub(crate) fn run_fabric<T, K, J>(
    experiment: &str,
    items: usize,
    fingerprint: u32,
    opts: &SweepOpts,
    key_of: K,
    make_job: J,
) -> Result<CellsRun<T>, SweepError>
where
    T: Serialize + Deserialize + Send + 'static,
    K: Fn(usize) -> String + Sync,
    J: Fn(usize) -> Box<dyn FnOnce() -> T + Send + 'static> + Sync,
{
    let fabric = opts.fabric.as_ref().expect("run_fabric needs fabric opts");
    let dir = fabric.dir.join(experiment);
    let leases = LeaseDir::open(&dir).map_err(|source| SweepError::Fabric {
        dir: dir.clone(),
        source,
    })?;
    // Validate the trace-cache root up front, exactly like plain sweeps.
    opts.cache()?;
    install_drain_handler();

    let worker = fabric.worker.clone();
    let journal_path = dir.join(format!("journal.{}.jsonl", sanitize_worker(&worker)));
    // Always *load* (never start fresh): a revived worker must see its
    // own pre-crash commits, and other workers' journals are merged in
    // anyway. A fresh fabric run starts from an empty fabric dir — the
    // spawner (or operator) wipes it.
    let journal = Journal::load(&journal_path).map_err(|source| SweepError::Journal {
        path: journal_path.clone(),
        source,
    })?;
    let journal = Mutex::new(journal);

    let keys: Vec<String> = (0..items).map(&key_of).collect();
    let hashes: Vec<u64> = keys
        .iter()
        .map(|k| LeaseDir::hash(experiment, k, fingerprint))
        .collect();

    let ttl = fabric.lease_ttl;
    let counters = Arc::new(FabricCounters::default());

    // Arm the per-worker event stream (a no-op refusal when the `events`
    // feature is off, a warning — never a failure — on I/O trouble:
    // observability must not kill a sweep).
    let events_path = dir
        .join("events")
        .join(format!("{}.jsonl", sanitize_worker(&worker)));
    match events::stream_open(&events_path) {
        Ok(epoch_us) => events::emit(FleetEvent::WorkerStart {
            worker: worker.clone(),
            experiment: experiment.to_string(),
            cells: items as u64,
            fingerprint,
            lease_ttl_ms: ttl.as_millis() as u64,
            epoch_us,
            version: events::STREAM_VERSION,
        }),
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {}
        Err(e) => log_warn!("fabric: event stream unavailable ({e}); continuing without it"),
    }
    let on_beat: Option<Box<dyn FnMut() + Send>> = if events::armed() {
        let counters = Arc::clone(&counters);
        let mut prev = MetricsRegistry::new();
        Some(Box::new(move || {
            // Emit even when the delta is empty: the beat itself is the
            // liveness signal readers age against.
            let cur = counters.registry();
            events::emit(FleetEvent::Heartbeat {
                metrics: cur.delta_since(&prev),
            });
            prev = cur;
        }))
    } else {
        None
    };

    let heartbeat = Heartbeat::start(leases.clone(), ttl, on_beat);
    let ran_by_me: Vec<AtomicBool> = (0..items).map(|_| AtomicBool::new(false)).collect();

    let mut drained = false;
    loop {
        if drain_requested() {
            drained = true;
            break;
        }
        let view = merged_view(&dir, &keys, fingerprint, &counters.duplicates)?;
        let todo: Vec<usize> = (0..items).filter(|&i| view[i].is_none()).collect();
        if todo.is_empty() {
            break;
        }
        let progressed = AtomicBool::new(false);
        run_sharded(todo.len(), opts.threads.max(1), |j| {
            if drain_requested() {
                return;
            }
            let index = todo[j];
            let key = &keys[index];
            let hash = hashes[index];
            let acquire = match try_acquire(&leases, hash, key, fingerprint, &worker, ttl) {
                Ok(acquire) => acquire,
                Err(e) => {
                    log_warn!("fabric: acquiring cell {index} [{key}] failed ({e}); will retry");
                    return;
                }
            };
            let Acquire::Won(lease, was_reclaim) = acquire else {
                return;
            };
            counters.claims.fetch_add(1, Ordering::Relaxed);
            zcomp_trace::tracer::counter("fabric.claims", 1.0);
            if events::armed() {
                events::emit(FleetEvent::CellClaimed {
                    index: index as u64,
                    cell: key.clone(),
                    token: lease.token,
                    reclaimed: was_reclaim,
                });
            }
            if was_reclaim {
                counters.reclaims.fetch_add(1, Ordering::Relaxed);
                zcomp_trace::tracer::instant("sweep", "fabric.reclaim");
                zcomp_trace::tracer::counter("fabric.reclaims", 1.0);
                log_warn!(
                    "fabric: worker {worker} reclaimed cell {index} [{key}] \
                     at token {}",
                    lease.token
                );
            }
            if drain_requested() {
                // Claimed but not yet executed: hand the cell back.
                leases.release(hash, &lease);
                counters.drains.fetch_add(1, Ordering::Relaxed);
                if events::armed() {
                    events::emit(FleetEvent::LeaseReleased {
                        index: index as u64,
                        cell: key.clone(),
                        token: lease.token,
                    });
                }
                return;
            }
            heartbeat.register(hash, lease.clone());
            let cell_start = std::time::Instant::now();
            let outcome =
                crate::supervise::run_cell(&opts.supervise, index, key, || make_job(index));
            let elapsed_us = cell_start.elapsed().as_micros() as u64;
            counters
                .retries
                .fetch_add(outcome.retries(), Ordering::Relaxed);
            if events::armed() {
                counters
                    .latency_us
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .record(elapsed_us as f64);
            }
            let payload = fabric_payload(index, key, &outcome);
            heartbeat.unregister(hash);
            // The fencing check: commit only while still owning the
            // lease. A worker paused past its TTL finds a reclaimer's
            // higher token here and withholds its stale result.
            if !leases.owns(hash, &worker, lease.token) {
                counters.fenced.fetch_add(1, Ordering::Relaxed);
                zcomp_trace::tracer::instant("sweep", "fabric.fenced");
                zcomp_trace::tracer::counter("fabric.fenced_rejections", 1.0);
                if events::armed() {
                    events::emit(FleetEvent::CellFenced {
                        index: index as u64,
                        cell: key.clone(),
                        token: lease.token,
                    });
                }
                log_warn!(
                    "fabric: worker {worker} lost cell {index} [{key}] to a \
                     reclaimer; stale commit withheld"
                );
                return;
            }
            let committed = {
                let mut journal = journal.lock().unwrap_or_else(|p| p.into_inner());
                journal.commit_fenced(
                    key.clone(),
                    fingerprint,
                    payload,
                    worker.clone(),
                    lease.token,
                )
            };
            match committed {
                Ok(()) => {
                    leases.mark_done(hash, &lease);
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    ran_by_me[index].store(true, Ordering::SeqCst);
                    progressed.store(true, Ordering::SeqCst);
                    if events::armed() {
                        let attempts = match &outcome {
                            CellOutcome::Completed { attempts, .. } => *attempts,
                            CellOutcome::Quarantined(failure) => failure.attempts,
                        };
                        events::emit(FleetEvent::CellCommitted {
                            index: index as u64,
                            cell: key.clone(),
                            token: lease.token,
                            attempts,
                            elapsed_us,
                        });
                    }
                }
                Err(e) => {
                    // Release so the cell is retried (here or elsewhere)
                    // instead of deadlocking behind a live lease.
                    log_warn!("fabric: journal commit for cell {index} [{key}] failed ({e})");
                    leases.release(hash, &lease);
                    if events::armed() {
                        events::emit(FleetEvent::LeaseReleased {
                            index: index as u64,
                            cell: key.clone(),
                            token: lease.token,
                        });
                    }
                }
            }
        });
        if drain_requested() {
            drained = true;
            break;
        }
        if !progressed.load(Ordering::SeqCst) {
            // Everything left is leased to live peers: wait for their
            // commits (or their leases' expiry) to show up.
            std::thread::sleep(fabric.poll);
        }
    }
    heartbeat.stop();

    let view = merged_view(&dir, &keys, fingerprint, &counters.duplicates)?;
    let done = view.iter().filter(|slot| slot.is_some()).count();
    let fabric_report = FabricReport {
        worker: worker.clone(),
        claims: counters.claims.load(Ordering::SeqCst),
        reclaims: counters.reclaims.load(Ordering::SeqCst),
        fenced_rejections: counters.fenced.load(Ordering::SeqCst),
        drains: counters.drains.load(Ordering::SeqCst),
        completed: counters.completed.load(Ordering::SeqCst),
        duplicates: counters.duplicates.load(Ordering::SeqCst),
    };
    if events::armed() {
        if drained {
            events::emit(FleetEvent::Drain);
        }
        events::emit(FleetEvent::WorkerDone {
            completed: fabric_report.completed,
            claims: fabric_report.claims,
            reclaims: fabric_report.reclaims,
            fenced: fabric_report.fenced_rejections,
            drains: fabric_report.drains,
            duplicates: fabric_report.duplicates,
        });
        events::stream_close();
    }
    if drained && done < items {
        log_warn!(
            "fabric: worker {worker} drained with {done}/{items} cells journalled \
             ({})",
            fabric_report.summary()
        );
        return Err(SweepError::FabricDrained {
            completed: done,
            total: items,
        });
    }

    // Deterministic merge: reconstruct every outcome, in index order,
    // from the merged journal view — identical on every worker and
    // identical to a 1-worker run.
    let mut outcomes: Vec<CellOutcome<T>> = Vec::with_capacity(items);
    let mut report = SupervisionReport {
        cells: items,
        retries: counters.retries.load(Ordering::SeqCst),
        fabric: Some(fabric_report),
        ..SupervisionReport::default()
    };
    for (index, slot) in view.iter().enumerate() {
        let entry = slot.as_ref().expect("merged view is complete");
        let ran_here = ran_by_me[index].load(Ordering::SeqCst);
        if ran_here {
            report.executed += 1;
        } else {
            report.resume_skips += 1;
        }
        let outcome = decode_cell::<T>(index, &keys[index], entry, ran_here);
        if let CellOutcome::Quarantined(failure) = &outcome {
            report.quarantined.push(failure.clone());
        }
        outcomes.push(outcome);
    }
    Ok(CellsRun { outcomes, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("zfabric-{}-{name}", std::process::id()))
    }

    fn lease(cell: &str, worker: &str, token: u64) -> Lease {
        Lease {
            cell: cell.to_string(),
            fingerprint: 7,
            worker: worker.to_string(),
            token,
            state: LeaseState::Running,
        }
    }

    #[test]
    fn claim_is_exclusive_and_readable() {
        let dir = temp_dir("claim");
        let _ = fs::remove_dir_all(&dir);
        let leases = LeaseDir::open(&dir).unwrap();
        let hash = LeaseDir::hash("exp", "cell-a", 7);
        assert_eq!(leases.read(hash), LeaseView::Free);
        assert_eq!(leases.next_token(hash), 1);
        let l = lease("cell-a", "w1", 1);
        assert!(leases.try_claim(hash, &l).unwrap());
        assert!(!leases.try_claim(hash, &l).unwrap(), "second claim loses");
        match leases.read(hash) {
            LeaseView::Held(held, age) => {
                assert_eq!(held, l);
                assert!(age < Duration::from_secs(5));
            }
            other => panic!("expected held lease, got {other:?}"),
        }
        assert!(leases.owns(hash, "w1", 1));
        assert!(!leases.owns(hash, "w2", 1));
        assert!(!leases.owns(hash, "w1", 2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn release_and_reclaim_advance_the_fencing_token() {
        let dir = temp_dir("token");
        let _ = fs::remove_dir_all(&dir);
        let leases = LeaseDir::open(&dir).unwrap();
        let hash = LeaseDir::hash("exp", "cell-b", 7);

        let l1 = lease("cell-b", "w1", leases.next_token(hash));
        assert_eq!(l1.token, 1);
        assert!(leases.try_claim(hash, &l1).unwrap());
        leases.release(hash, &l1);
        assert_eq!(leases.read(hash), LeaseView::Free);
        assert_eq!(leases.next_token(hash), 2, "released tombstone counts");

        let l2 = lease("cell-b", "w2", leases.next_token(hash));
        assert!(leases.try_claim(hash, &l2).unwrap());
        assert!(leases.try_reclaim(hash, l2.token));
        assert!(!leases.try_reclaim(hash, l2.token), "reclaim wins once");
        assert_eq!(leases.next_token(hash), 3, "expired tombstone counts");
        assert_eq!(leases.tombstones(".released"), 1);
        assert_eq!(leases.tombstones(".expired"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn renew_refreshes_only_the_owners_lease() {
        let dir = temp_dir("renew");
        let _ = fs::remove_dir_all(&dir);
        let leases = LeaseDir::open(&dir).unwrap();
        let hash = LeaseDir::hash("exp", "cell-c", 7);
        let mine = lease("cell-c", "w1", 1);
        assert!(leases.try_claim(hash, &mine).unwrap());
        assert!(leases.renew(hash, &mine));
        let stale = lease("cell-c", "w0", 1);
        assert!(!leases.renew(hash, &stale), "non-owner cannot renew");
        let zombie = lease("cell-c", "w1", 0);
        assert!(!leases.renew(hash, &zombie), "old token cannot renew");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lease_is_reclaimed_only_after_ttl() {
        let dir = temp_dir("torn");
        let _ = fs::remove_dir_all(&dir);
        let leases = LeaseDir::open(&dir).unwrap();
        let hash = LeaseDir::hash("exp", "cell-d", 7);
        fs::write(leases.lease_path(hash), "{\"cell\":\"to").unwrap();
        match leases.read(hash) {
            LeaseView::Torn(_) => {}
            other => panic!("expected torn lease, got {other:?}"),
        }
        // Fresh torn lease (a writer mid-write): busy.
        let got = try_acquire(&leases, hash, "cell-d", 7, "w2", Duration::from_secs(30)).unwrap();
        assert!(matches!(got, Acquire::Busy));
        // Past the TTL it is tombstoned and re-claimed.
        std::thread::sleep(Duration::from_millis(30));
        let got = try_acquire(&leases, hash, "cell-d", 7, "w2", Duration::from_millis(10)).unwrap();
        match got {
            Acquire::Won(l, reclaimed) => {
                assert!(reclaimed);
                assert_eq!(l.worker, "w2");
                assert!(l.token >= 2, "token rises past the torn ceiling");
            }
            Acquire::Busy => panic!("stale torn lease must be reclaimable"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_lease_is_reclaimed_with_a_higher_token() {
        let dir = temp_dir("expire");
        let _ = fs::remove_dir_all(&dir);
        let leases = LeaseDir::open(&dir).unwrap();
        let hash = LeaseDir::hash("exp", "cell-e", 7);
        let dead = lease("cell-e", "w-dead", 1);
        assert!(leases.try_claim(hash, &dead).unwrap());
        // Within TTL: busy.
        let got = try_acquire(
            &leases,
            hash,
            "cell-e",
            7,
            "w-live",
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(matches!(got, Acquire::Busy));
        std::thread::sleep(Duration::from_millis(30));
        let got = try_acquire(
            &leases,
            hash,
            "cell-e",
            7,
            "w-live",
            Duration::from_millis(10),
        )
        .unwrap();
        match got {
            Acquire::Won(l, reclaimed) => {
                assert!(reclaimed);
                assert_eq!(l.token, 2);
                assert!(!leases.owns(hash, "w-dead", 1), "zombie is fenced off");
                assert!(leases.owns(hash, "w-live", 2));
            }
            Acquire::Busy => panic!("expired lease must be reclaimable"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_flag_round_trips() {
        reset_drain();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_drain();
        assert!(!drain_requested());
    }

    #[test]
    fn fabric_payload_round_trips_both_arms() {
        let done: CellOutcome<u64> = CellOutcome::Completed {
            value: 42,
            attempts: 2,
        };
        let text = fabric_payload(3, "cell-x", &done);
        match serde_json::from_str::<FabricCellPayload>(&text).unwrap() {
            FabricCellPayload::Completed { attempts, value } => {
                assert_eq!(attempts, 2);
                assert_eq!(serde_json::from_str::<u64>(&value).unwrap(), 42);
            }
            other => panic!("expected completed payload, got {other:?}"),
        }
        let failure = CellFailure {
            index: 3,
            cell: "cell-x".into(),
            attempts: 1,
            reason: FailureReason::Panicked {
                message: "boom".into(),
            },
        };
        let quarantined: CellOutcome<u64> = CellOutcome::Quarantined(failure.clone());
        let text = fabric_payload(3, "cell-x", &quarantined);
        match serde_json::from_str::<FabricCellPayload>(&text).unwrap() {
            FabricCellPayload::Quarantined(f) => assert_eq!(f, failure),
            other => panic!("expected quarantined payload, got {other:?}"),
        }
    }

    #[test]
    fn decode_cell_keeps_attempts_only_for_the_executor() {
        let payload = fabric_payload(
            0,
            "c",
            &CellOutcome::Completed {
                value: 9u64,
                attempts: 3,
            },
        );
        let entry = JournalEntry {
            payload,
            worker: "w1".into(),
            token: 1,
        };
        match decode_cell::<u64>(0, "c", &entry, true) {
            CellOutcome::Completed { value, attempts } => {
                assert_eq!((value, attempts), (9, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
        match decode_cell::<u64>(0, "c", &entry, false) {
            CellOutcome::Completed { value, attempts } => {
                assert_eq!((value, attempts), (9, 0), "peers see a resume");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn worker_ids_sanitize_to_safe_file_stems() {
        assert_eq!(sanitize_worker("w-1_a9"), "w-1_a9");
        assert_eq!(sanitize_worker("a/b c:d"), "a_b_c_d");
    }
}
