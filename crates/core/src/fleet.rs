//! Read-only fleet observability over a sweep-fabric directory.
//!
//! A running fabric ([`crate::fabric`]) leaves three kinds of state on
//! disk per experiment: per-worker event streams under `events/`
//! ([`zcomp_trace::events`]), per-worker CRC-guarded journals
//! (`journal.<worker>.jsonl`), and the lease directory with its
//! tombstones. This module reconstructs fleet status from those artifacts
//! without ever writing to them, so a status tool can run alongside (or
//! after) the workers it is watching:
//!
//! * [`scan`] / [`scan_experiment`] — a [`FleetStatus`] snapshot:
//!   per-worker liveness (heartbeat age vs. lease TTL), cells
//!   done/in-flight/quarantined, replayed heartbeat metrics, cell-latency
//!   percentiles, throughput and ETA. This is what `fabric_top` renders.
//! * [`merged_trace`] — merges every worker's stream into one Chrome
//!   trace ([`zcomp_trace::chrome::export_merged`]): one process per
//!   worker, clocks aligned via each stream's wall-clock epoch anchor,
//!   lease lifecycles as async spans, heartbeat counters as counter
//!   tracks. This is what `fleet_report` writes.
//! * [`markdown`] — a per-worker summary table for `results/`.
//!
//! Everything degrades gracefully: a fabric run executed without the
//! `events` feature has journals and leases but no streams — counts from
//! journals still work, and stream-derived fields stay empty. A SIGKILLed
//! worker's stream is read up to its last CRC-valid record and flagged
//! [`WorkerStatus::truncated`].

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};
use zcomp_trace::chrome::{self, AsyncSpan, TracePart};
use zcomp_trace::events::{read_stream, FleetEvent};
use zcomp_trace::log_warn;
use zcomp_trace::metrics::{Histogram, HistogramSummary, MetricsRegistry, MetricsSummary};
use zcomp_trace::tracer::{Event, EventKind};

use crate::fabric::{FabricCellPayload, LeaseDir, LeaseState};
use crate::supervise::Journal;

/// Microseconds since the Unix epoch, now.
fn now_epoch_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Everything known about one worker, reconstructed from its event
/// stream (all zeros / `started == false` when the worker ran without
/// the `events` feature).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStatus {
    /// Worker id (from its `WorkerStart`, else the stream file stem).
    pub worker: String,
    /// Wall-clock anchor of the stream (µs since the Unix epoch).
    pub epoch_us: u64,
    /// Lease TTL the worker declared, ms — liveness threshold.
    pub lease_ttl_ms: u64,
    /// Whether a valid `WorkerStart` was read.
    pub started: bool,
    /// Whether a `WorkerDone` was read (clean shutdown).
    pub done: bool,
    /// Whether the worker observed a drain request.
    pub drained: bool,
    /// Whether the stream ends in a torn/corrupt line — the signature of
    /// a SIGKILL mid-write.
    pub truncated: bool,
    /// Valid records read from the stream.
    pub events: u64,
    /// Wall-clock age of the last valid event, ms (`None` without a
    /// `WorkerStart` anchor). A live worker heartbeats every quarter
    /// TTL, so an age beyond `lease_ttl_ms` means dead or stalled.
    pub last_event_age_ms: Option<u64>,
    /// Leases claimed (from `CellClaimed` events).
    pub claims: u64,
    /// Expired leases reclaimed.
    pub reclaims: u64,
    /// Commits withheld by the fencing check.
    pub fenced: u64,
    /// Leases released unexecuted (drain or commit failure).
    pub released: u64,
    /// Cells committed.
    pub completed: u64,
    /// Attempt retries.
    pub retries: u64,
    /// Cells quarantined.
    pub quarantined: u64,
    /// Claims not yet resolved by a commit/fence/release — cells this
    /// worker is executing right now.
    pub in_flight: u64,
    /// Cell-latency percentiles from this worker's `CellCommitted`
    /// events.
    pub latency: Option<HistogramSummary>,
    /// The worker's metrics registry replayed from its heartbeat deltas
    /// — counters and histograms as of the last beat, surviving SIGKILL.
    pub metrics: MetricsSummary,
}

/// Aggregated status of one experiment's fabric.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentStatus {
    /// Experiment name (fabric subdirectory).
    pub experiment: String,
    /// Total sweep cells (0 when no stream declared it).
    pub cells: u64,
    /// Sweep fingerprint (0 when unknown).
    pub fingerprint: u32,
    /// Whether any stream declared cells/fingerprint.
    pub grid_known: bool,
    /// Distinct cells journalled (completed + quarantined) — the
    /// fabric's definition of progress.
    pub done: u64,
    /// Journalled quarantines among `done`.
    pub quarantined: u64,
    /// `Running` leases for cells not yet journalled — work actually
    /// executing right now. (A worker killed between its journal commit
    /// and the lease's `Done` mark leaves a stale `Running` lease behind;
    /// those are excluded, the journal is the truth.)
    pub in_flight: u64,
    /// `.expired` tombstones (dead-worker reclaims).
    pub expired_tombstones: u64,
    /// `.released` tombstones (drains / commit failures).
    pub released_tombstones: u64,
    /// Committed cells per wall-clock second across the fleet (0 when
    /// not derivable from streams).
    pub throughput_cps: f64,
    /// Remaining-cells estimate at the observed throughput, seconds.
    pub eta_s: Option<f64>,
    /// Fleet-wide cell-latency percentiles (merged commit events).
    pub latency: Option<HistogramSummary>,
    /// Per-worker breakdowns, sorted by worker id.
    pub workers: Vec<WorkerStatus>,
}

impl ExperimentStatus {
    /// Whether every declared cell is journalled and nothing is running.
    pub fn complete(&self) -> bool {
        self.grid_known && self.done >= self.cells && self.in_flight == 0
    }
}

/// One scan over a whole fabric directory.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStatus {
    /// The fabric root scanned.
    pub root: String,
    /// Scan time, µs since the Unix epoch.
    pub scanned_epoch_us: u64,
    /// Per-experiment status, sorted by name.
    pub experiments: Vec<ExperimentStatus>,
}

/// Lists the experiment subdirectories of a fabric root (anything
/// holding leases, journals or event streams).
fn experiment_dirs(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let has_fabric_state = path.join("leases").is_dir()
            || path.join("events").is_dir()
            || fs::read_dir(&path)?.flatten().any(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("journal.") && n.ends_with(".jsonl"))
            });
        if has_fabric_state {
            found.push((name.to_string(), path));
        }
    }
    found.sort();
    Ok(found)
}

/// Per-worker stream analysis: counts, liveness, latency, replayed
/// metrics.
fn worker_status(
    stem: &str,
    stream: &zcomp_trace::events::StreamRead,
    now_us: u64,
) -> WorkerStatus {
    let mut status = WorkerStatus {
        worker: stem.to_string(),
        truncated: stream.truncated,
        events: stream.records.len() as u64,
        ..WorkerStatus::default()
    };
    let mut latency = Histogram::default();
    let mut replayed = MetricsRegistry::new();
    let mut last_ts_us = 0u64;
    for record in &stream.records {
        last_ts_us = last_ts_us.max(record.ts_us);
        match &record.event {
            FleetEvent::WorkerStart {
                worker,
                lease_ttl_ms,
                epoch_us,
                ..
            } => {
                status.worker = worker.clone();
                status.lease_ttl_ms = *lease_ttl_ms;
                status.epoch_us = *epoch_us;
                status.started = true;
            }
            FleetEvent::CellClaimed { reclaimed, .. } => {
                status.claims += 1;
                if *reclaimed {
                    status.reclaims += 1;
                }
            }
            FleetEvent::CellRetried { .. } => status.retries += 1,
            FleetEvent::CellCommitted { elapsed_us, .. } => {
                status.completed += 1;
                latency.record(*elapsed_us as f64);
            }
            FleetEvent::CellQuarantined { .. } => status.quarantined += 1,
            FleetEvent::CellFenced { .. } => status.fenced += 1,
            FleetEvent::LeaseReleased { .. } => status.released += 1,
            FleetEvent::Heartbeat { metrics } => replayed.apply_delta(metrics),
            FleetEvent::Drain => status.drained = true,
            FleetEvent::WorkerDone { .. } => status.done = true,
        }
    }
    status.in_flight = status
        .claims
        .saturating_sub(status.completed + status.fenced + status.released);
    if status.started {
        let last_wall_us = status.epoch_us.saturating_add(last_ts_us);
        status.last_event_age_ms = Some(now_us.saturating_sub(last_wall_us) / 1000);
    }
    if latency.count() > 0 {
        status.latency = Some(latency.summary("cell_latency_us"));
    }
    status.metrics = replayed.summary();
    status
}

/// Scans one experiment's fabric state.
pub fn scan_experiment(root: &Path, experiment: &str) -> io::Result<ExperimentStatus> {
    let dir = root.join(experiment);
    let now_us = now_epoch_us();
    let mut status = ExperimentStatus {
        experiment: experiment.to_string(),
        ..ExperimentStatus::default()
    };

    // 1. Event streams → per-worker status.
    let events_dir = dir.join("events");
    if events_dir.is_dir() {
        let mut stream_files: Vec<PathBuf> = fs::read_dir(&events_dir)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        stream_files.sort();
        for path in stream_files {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("worker")
                .to_string();
            match read_stream(&path) {
                Ok(stream) => status.workers.push(worker_status(&stem, &stream, now_us)),
                Err(e) => log_warn!("fleet: unreadable stream {}: {e}", path.display()),
            }
        }
        status.workers.sort_by(|a, b| a.worker.cmp(&b.worker));
    }
    status.grid_known = status.workers.iter().any(|w| w.started);
    // All streams of one fabric run share the grid; take cells and
    // fingerprint from the first WorkerStart found (WorkerStatus itself
    // deliberately stays lean, so re-read one stream here).
    if status.grid_known {
        'outer: for path in stream_paths(&events_dir)? {
            if let Ok(stream) = read_stream(&path) {
                for record in &stream.records {
                    if let FleetEvent::WorkerStart {
                        cells, fingerprint, ..
                    } = &record.event
                    {
                        status.cells = *cells;
                        status.fingerprint = *fingerprint;
                        break 'outer;
                    }
                }
            }
        }
    }

    // 2. Journals → done / quarantined. Distinct (cell, fingerprint)
    // keys across all workers' journals are the fabric's progress truth.
    let mut done_keys: BTreeSet<(String, u32)> = BTreeSet::new();
    let mut quarantined_keys: BTreeSet<(String, u32)> = BTreeSet::new();
    if dir.is_dir() {
        let mut journal_paths: Vec<PathBuf> = fs::read_dir(&dir)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("journal.") && n.ends_with(".jsonl"))
            })
            .collect();
        journal_paths.sort();
        for path in journal_paths {
            let journal = match Journal::load(&path) {
                Ok(journal) => journal,
                Err(e) => {
                    log_warn!("fleet: unreadable journal {}: {e}", path.display());
                    continue;
                }
            };
            for (cell, fp, entry) in journal.iter() {
                if status.grid_known && fp != status.fingerprint {
                    continue;
                }
                done_keys.insert((cell.to_string(), fp));
                if let Ok(FabricCellPayload::Quarantined(_)) =
                    serde_json::from_str::<FabricCellPayload>(&entry.payload)
                {
                    quarantined_keys.insert((cell.to_string(), fp));
                }
            }
        }
    }
    status.done = done_keys.len() as u64;
    status.quarantined = quarantined_keys.len() as u64;

    // 3. Leases → in-flight and tombstones. Opened only when the
    // directory already exists so a scan never mutates the fabric.
    if dir.join("leases").is_dir() {
        let leases = LeaseDir::open(&dir)?;
        status.in_flight = leases
            .snapshot()
            .iter()
            .filter(|(lease, _)| lease.state == LeaseState::Running)
            .filter(|(lease, _)| !status.grid_known || lease.fingerprint == status.fingerprint)
            .filter(|(lease, _)| !done_keys.contains(&(lease.cell.clone(), lease.fingerprint)))
            .count() as u64;
        status.expired_tombstones = leases.tombstones(".expired") as u64;
        status.released_tombstones = leases.tombstones(".released") as u64;
    }

    // 4. Fleet-wide latency, throughput and ETA from the streams.
    let mut merged_latency = Histogram::default();
    let mut first_claim_wall: Option<u64> = None;
    let mut last_commit_wall: Option<u64> = None;
    let mut commits = 0u64;
    for path in stream_paths(&events_dir)? {
        let Ok(stream) = read_stream(&path) else {
            continue;
        };
        let mut epoch = 0u64;
        for record in &stream.records {
            match &record.event {
                FleetEvent::WorkerStart { epoch_us, .. } => epoch = *epoch_us,
                FleetEvent::CellClaimed { .. } => {
                    let wall = epoch.saturating_add(record.ts_us);
                    first_claim_wall = Some(first_claim_wall.map_or(wall, |w| w.min(wall)));
                }
                FleetEvent::CellCommitted { elapsed_us, .. } => {
                    merged_latency.record(*elapsed_us as f64);
                    commits += 1;
                    let wall = epoch.saturating_add(record.ts_us);
                    last_commit_wall = Some(last_commit_wall.map_or(wall, |w| w.max(wall)));
                }
                _ => {}
            }
        }
    }
    if merged_latency.count() > 0 {
        status.latency = Some(merged_latency.summary("cell_latency_us"));
    }
    if let (Some(first), Some(last)) = (first_claim_wall, last_commit_wall) {
        let span_s = last.saturating_sub(first) as f64 / 1e6;
        if span_s > 0.0 && commits > 0 {
            status.throughput_cps = commits as f64 / span_s;
            let remaining = status.cells.saturating_sub(status.done);
            if status.grid_known && remaining > 0 && !status.complete() {
                status.eta_s = Some(remaining as f64 / status.throughput_cps);
            }
        }
    }
    Ok(status)
}

fn stream_paths(events_dir: &Path) -> io::Result<Vec<PathBuf>> {
    if !events_dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(events_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Scans every experiment under a fabric root.
pub fn scan(root: &Path) -> io::Result<FleetStatus> {
    let mut status = FleetStatus {
        root: root.display().to_string(),
        scanned_epoch_us: now_epoch_us(),
        experiments: Vec::new(),
    };
    for (name, _path) in experiment_dirs(root)? {
        status.experiments.push(scan_experiment(root, &name)?);
    }
    Ok(status)
}

/// Builds one merged Chrome trace from every worker stream of an
/// experiment: pid = worker index (sorted by id), clocks aligned via
/// each stream's epoch anchor, lease lifecycles (claim → commit / fence
/// / release) as async spans, heartbeat counters as counter tracks, and
/// retries/quarantines/drains as instants. A truncated stream's open
/// spans close at its last valid event, so the trace always validates.
pub fn merged_trace(root: &Path, experiment: &str) -> io::Result<String> {
    let events_dir = root.join(experiment).join("events");
    let mut streams: Vec<(String, zcomp_trace::events::StreamRead)> = Vec::new();
    for path in stream_paths(&events_dir)? {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("worker")
            .to_string();
        match read_stream(&path) {
            Ok(stream) => streams.push((stem, stream)),
            Err(e) => log_warn!("fleet: unreadable stream {}: {e}", path.display()),
        }
    }
    streams.sort_by(|a, b| a.0.cmp(&b.0));

    // Clock alignment: offset each stream by its epoch distance from the
    // earliest stream, so one shared timeline covers the fleet.
    let epoch_of = |stream: &zcomp_trace::events::StreamRead| {
        stream.records.iter().find_map(|r| match &r.event {
            FleetEvent::WorkerStart { epoch_us, .. } => Some(*epoch_us),
            _ => None,
        })
    };
    let min_epoch = streams
        .iter()
        .filter_map(|(_, s)| epoch_of(s))
        .min()
        .unwrap_or(0);

    let mut parts = Vec::new();
    for (pid0, (stem, stream)) in streams.iter().enumerate() {
        let mut part = TracePart {
            pid: pid0 as i128 + 1,
            label: stem.clone(),
            clock_offset_us: epoch_of(stream).map_or(0, |e| e.saturating_sub(min_epoch)),
            events: Vec::new(),
            async_spans: Vec::new(),
        };
        let instant = |name: String, ts_us: u64| Event {
            kind: EventKind::Instant,
            ts_us,
            tid: 0,
            cat: "fleet",
            name,
            value: 0.0,
        };
        // Open claims by (index, token) → (cell, begin ts).
        type OpenClaims = Vec<((u64, u64), (String, u64))>;
        let mut open: OpenClaims = Vec::new();
        let close =
            |open: &mut OpenClaims, part: &mut TracePart, index: u64, token: u64, end_us: u64| {
                if let Some(pos) = open.iter().position(|(key, _)| *key == (index, token)) {
                    let (_, (cell, begin_us)) = open.remove(pos);
                    part.async_spans.push(AsyncSpan {
                        // Token in the high bits keeps reclaim generations of
                        // one cell distinct across processes.
                        id: (token << 32) | (index & 0xFFFF_FFFF),
                        cat: "cell".to_string(),
                        name: cell,
                        begin_us,
                        end_us,
                    });
                }
            };
        let mut counters = MetricsRegistry::new();
        let mut last_ts = 0u64;
        for record in &stream.records {
            last_ts = last_ts.max(record.ts_us);
            match &record.event {
                FleetEvent::WorkerStart { worker, .. } => {
                    part.label = worker.clone();
                }
                FleetEvent::CellClaimed {
                    index, cell, token, ..
                } => open.push(((*index, *token), (cell.clone(), record.ts_us))),
                FleetEvent::CellCommitted { index, token, .. }
                | FleetEvent::CellFenced { index, token, .. }
                | FleetEvent::LeaseReleased { index, token, .. } => {
                    close(&mut open, &mut part, *index, *token, record.ts_us);
                }
                FleetEvent::CellRetried { cell, attempt, .. } => {
                    part.events
                        .push(instant(format!("retry#{attempt} {cell}"), record.ts_us));
                }
                FleetEvent::CellQuarantined { cell, .. } => {
                    part.events
                        .push(instant(format!("quarantine {cell}"), record.ts_us));
                }
                FleetEvent::Heartbeat { metrics } => {
                    counters.apply_delta(metrics);
                    for (name, value) in counters.summary().counters {
                        part.events.push(Event {
                            kind: EventKind::Counter,
                            ts_us: record.ts_us,
                            tid: 0,
                            cat: "fleet",
                            name,
                            value: value as f64,
                        });
                    }
                }
                FleetEvent::Drain => part.events.push(instant("drain".to_string(), record.ts_us)),
                FleetEvent::WorkerDone { .. } => {
                    part.events
                        .push(instant("worker.done".to_string(), record.ts_us));
                }
            }
        }
        // A SIGKILLed worker leaves claims open; close them at the
        // stream's truncation point so the merged trace stays valid.
        while let Some(((index, token), _)) = open.first().cloned() {
            close(&mut open, &mut part, index, token, last_ts);
        }
        parts.push(part);
    }
    Ok(chrome::export_merged(&parts))
}

/// Renders a fleet status as a markdown summary (the table
/// `fleet_report` writes under `results/`).
pub fn markdown(status: &FleetStatus) -> String {
    let mut out = String::new();
    out.push_str("# Fleet report\n\n");
    out.push_str(&format!("Fabric root: `{}`\n", status.root));
    for exp in &status.experiments {
        out.push_str(&format!("\n## {}\n\n", exp.experiment));
        let cells = if exp.grid_known {
            format!("{}/{}", exp.done, exp.cells)
        } else {
            format!("{} journalled", exp.done)
        };
        out.push_str(&format!(
            "cells {cells} · quarantined {} · in-flight {} · reclaim tombstones {} expired / {} released\n",
            exp.quarantined, exp.in_flight, exp.expired_tombstones, exp.released_tombstones
        ));
        if exp.throughput_cps > 0.0 {
            out.push_str(&format!("throughput {:.2} cells/s", exp.throughput_cps));
            if let Some(eta) = exp.eta_s {
                out.push_str(&format!(" · ETA {eta:.0} s"));
            }
            out.push('\n');
        }
        if let Some(latency) = &exp.latency {
            out.push_str(&format!(
                "cell latency p50/p95/p99: {:.1}/{:.1}/{:.1} ms\n",
                latency.p50 / 1e3,
                latency.p95 / 1e3,
                latency.p99 / 1e3
            ));
        }
        if exp.workers.is_empty() {
            out.push_str("\n(no event streams — fabric ran without the `events` feature)\n");
            continue;
        }
        out.push_str(
            "\n| worker | state | claims | reclaims | completed | fenced | retries \
             | quarantined | p50 ms | p99 ms |\n\
             |---|---|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for w in &exp.workers {
            let state = if w.done {
                if w.drained {
                    "drained"
                } else {
                    "done"
                }
            } else if w.truncated {
                "truncated"
            } else {
                "running"
            };
            let (p50, p99) = w
                .latency
                .as_ref()
                .map_or((0.0, 0.0), |l| (l.p50 / 1e3, l.p99 / 1e3));
            out.push_str(&format!(
                "| {} | {state} | {} | {} | {} | {} | {} | {} | {p50:.1} | {p99:.1} |\n",
                w.worker, w.claims, w.reclaims, w.completed, w.fenced, w.retries, w.quarantined
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zcomp_trace::events::{EventStream, STREAM_VERSION};
    use zcomp_trace::metrics::MetricsDelta;

    fn temp_root(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("zfleet-{}-{name}", std::process::id()))
    }

    fn start_event(worker: &str, cells: u64) -> FleetEvent {
        FleetEvent::WorkerStart {
            worker: worker.to_string(),
            experiment: "exp".to_string(),
            cells,
            fingerprint: 7,
            lease_ttl_ms: 1000,
            epoch_us: 1_000_000,
            version: STREAM_VERSION,
        }
    }

    fn write_stream(root: &Path, file: &str, events: Vec<FleetEvent>) {
        let path = root.join("exp").join("events").join(file);
        let mut stream = EventStream::create(&path).expect("create stream");
        for ev in events {
            stream.emit(ev).expect("emit");
        }
    }

    fn claim(index: u64, token: u64) -> FleetEvent {
        FleetEvent::CellClaimed {
            index,
            cell: format!("cell-{index}"),
            token,
            reclaimed: false,
        }
    }

    fn commit(index: u64, token: u64) -> FleetEvent {
        FleetEvent::CellCommitted {
            index,
            cell: format!("cell-{index}"),
            token,
            attempts: 1,
            elapsed_us: 1500,
        }
    }

    #[test]
    fn scan_reads_streams_journals_and_leases() {
        let root = temp_root("scan");
        let _ = fs::remove_dir_all(&root);
        write_stream(
            &root,
            "w1.jsonl",
            vec![
                start_event("w1", 3),
                claim(0, 1),
                FleetEvent::Heartbeat {
                    metrics: MetricsDelta::default(),
                },
                commit(0, 1),
                FleetEvent::WorkerDone {
                    completed: 1,
                    claims: 1,
                    reclaims: 0,
                    fenced: 0,
                    drains: 0,
                    duplicates: 0,
                },
            ],
        );
        // w2 claimed but never committed — its stream just stops.
        write_stream(&root, "w2.jsonl", vec![start_event("w2", 3), claim(1, 1)]);

        // Journal: cell-0 completed by w1.
        let dir = root.join("exp");
        let mut journal = Journal::load(dir.join("journal.w1.jsonl")).expect("journal");
        journal
            .commit_fenced(
                "cell-0".to_string(),
                7,
                serde_json::to_string(&FabricCellPayload::Completed {
                    attempts: 1,
                    value: "42".to_string(),
                })
                .expect("payload"),
                "w1".to_string(),
                1,
            )
            .expect("commit");

        // Lease: cell-1 running under w2.
        let leases = LeaseDir::open(&dir).expect("leases");
        let hash = LeaseDir::hash("exp", "cell-1", 7);
        assert!(leases
            .try_claim(
                hash,
                &crate::fabric::Lease {
                    cell: "cell-1".to_string(),
                    fingerprint: 7,
                    worker: "w2".to_string(),
                    token: 1,
                    state: LeaseState::Running,
                },
            )
            .expect("claim"));

        let status = scan(&root).expect("scan");
        assert_eq!(status.experiments.len(), 1);
        let exp = &status.experiments[0];
        assert_eq!(exp.experiment, "exp");
        assert!(exp.grid_known);
        assert_eq!((exp.cells, exp.fingerprint), (3, 7));
        assert_eq!(exp.done, 1);
        assert_eq!(exp.quarantined, 0);
        assert_eq!(exp.in_flight, 1);
        assert!(!exp.complete());
        assert_eq!(exp.workers.len(), 2);
        let (w1, w2) = (&exp.workers[0], &exp.workers[1]);
        assert_eq!(w1.worker, "w1");
        assert!(w1.done && w1.started && !w1.truncated);
        assert_eq!((w1.claims, w1.completed, w1.in_flight), (1, 1, 0));
        assert!(w1.latency.is_some());
        assert_eq!(w2.worker, "w2");
        assert!(!w2.done);
        assert_eq!((w2.claims, w2.completed, w2.in_flight), (1, 0, 1));
        // Status round-trips through JSON (what `fabric_top --json` prints).
        let json = serde_json::to_string_pretty(&status).expect("status serializes");
        let back: FleetStatus = serde_json::from_str(&json).expect("status parses");
        assert_eq!(back, status);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn heartbeat_metrics_replay_into_worker_status() {
        let root = temp_root("beat");
        let _ = fs::remove_dir_all(&root);
        let mut live = MetricsRegistry::new();
        let mut prev = live.clone();
        let mut events = vec![start_event("w1", 2)];
        for round in 1..=3u64 {
            live.incr("fabric.claims", 1);
            live.observe("fabric.cell_latency_us", (round * 1000) as f64);
            events.push(FleetEvent::Heartbeat {
                metrics: live.delta_since(&prev),
            });
            prev = live.clone();
        }
        write_stream(&root, "w1.jsonl", events);
        let status = scan_experiment(&root, "exp").expect("scan");
        let worker = &status.workers[0];
        assert_eq!(worker.metrics, live.summary(), "replay is exact");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn merged_trace_covers_all_workers_and_validates() {
        let root = temp_root("trace");
        let _ = fs::remove_dir_all(&root);
        write_stream(
            &root,
            "w1.jsonl",
            vec![
                start_event("w1", 2),
                claim(0, 1),
                FleetEvent::CellRetried {
                    index: 0,
                    cell: "cell-0".to_string(),
                    attempt: 1,
                    reason: "panic".to_string(),
                },
                commit(0, 1),
                FleetEvent::Drain,
            ],
        );
        // w2: claim with no terminal event (killed) — span must still
        // close at the truncation point.
        write_stream(&root, "w2.jsonl", vec![start_event("w2", 2), claim(1, 2)]);
        let json = merged_trace(&root, "exp").expect("merge");
        let check = zcomp_trace::chrome::validate(&json).expect("merged trace validates");
        assert_eq!(check.pids, 2, "one process per worker");
        assert_eq!(check.metadata, 2);
        assert_eq!(check.async_spans, 2, "killed worker's span closes");
        assert!(check.instants >= 2, "retry + drain instants");
        assert!(json.contains("\"w1\"") && json.contains("\"w2\""));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn markdown_table_lists_workers() {
        let root = temp_root("md");
        let _ = fs::remove_dir_all(&root);
        write_stream(
            &root,
            "w1.jsonl",
            vec![start_event("w1", 1), claim(0, 1), commit(0, 1)],
        );
        let status = scan(&root).expect("scan");
        let md = markdown(&status);
        assert!(md.contains("# Fleet report"));
        assert!(md.contains("## exp"));
        assert!(md.contains("| w1 |"), "{md}");
        assert!(md.contains("| worker | state |"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_or_missing_root_scans_cleanly() {
        let root = temp_root("empty");
        let _ = fs::remove_dir_all(&root);
        assert!(scan(&root).is_err(), "missing root is an I/O error");
        fs::create_dir_all(&root).expect("mkdir");
        let status = scan(&root).expect("scan");
        assert!(status.experiments.is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
