//! Top-level library of the ZCOMP reproduction.
//!
//! This crate ties the substrates together and exposes one experiment
//! runner per figure of *"ZCOMP: Reducing DNN Cross-Layer Memory Footprint
//! Using Vector Extensions"* (MICRO-52, 2019):
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Table 1 (machine) | [`zcomp_sim::config::SimConfig::table1`] |
//! | Fig. 1 (VGG-16 sparsity & footprints) | [`experiments::fig01`] |
//! | Fig. 2 (cycle breakdown) | [`experiments::fig02`] |
//! | Fig. 3 (data-structure footprints) | [`experiments::fig03`] |
//! | Fig. 12 (DeepBench ReLU study) | [`experiments::fig12`] |
//! | Fig. 13/14 (full networks) | [`experiments::fullnet`] |
//! | Fig. 15 (vs cache compression) | [`experiments::fig15`] |
//! | §3.3/§4.1/§4.3 ablations | [`experiments::ablations`] |
//!
//! The underlying pieces are re-exported: the ZCOMP ISA model
//! ([`zcomp_isa`]), the multicore simulator ([`zcomp_sim`]), the DNN
//! workload substrate ([`zcomp_dnn`]), the cache-compression baselines
//! ([`zcomp_cachecomp`]) and the workload kernels ([`zcomp_kernels`]).
//!
//! # Example
//!
//! ```
//! // Reproduce a scaled-down Figure 15 and check the paper's ordering.
//! let fig15 = zcomp::experiments::fig15::run(2, 32 * 1024);
//! let (zcomp, limitcc, twotag) = fig15.geomeans();
//! assert!(zcomp > limitcc && limitcc > twotag);
//! ```

pub mod experiments;
pub mod fabric;
pub mod fleet;
pub mod report;
pub mod serve;
pub mod supervise;
pub mod sweep;

pub use zcomp_cachecomp;
pub use zcomp_dnn;
pub use zcomp_isa;
pub use zcomp_kernels;
pub use zcomp_replay;
pub use zcomp_sim;
