//! Result tables: typed rows rendered as aligned text or CSV.

use serde::{Deserialize, Serialize};

/// A rectangular result table with named columns.
///
/// # Example
///
/// ```
/// use zcomp::report::Table;
///
/// let mut t = Table::new("demo", &["net", "speedup"]);
/// t.row(["alexnet", "1.11"]);
/// let text = t.render();
/// assert!(text.contains("alexnet"));
/// assert!(t.to_csv().starts_with("net,speedup"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `Figure 12(a)`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Geometric mean of a non-empty slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice (0.0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Formats a fraction as a percentage string (`0.314` → `31.4%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count with a binary unit suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.row(["xxxx", "y"]);
        let text = t.render();
        assert!(text.contains("== t =="));
        assert!(text.contains("a     bbbb"));
        assert!(text.contains("xxxx  y"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("t", &["a"]).row(["1", "2"]);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn geomean_matches_paper_style() {
        // Fig. 15 reports geometric means.
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.314), "31.4%");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(560 << 20), "560.0 MiB");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
