//! Admission control: per-tenant token-bucket rate limiting with
//! capped-exponential retry-after hints, class-bounded queues, and the
//! deadline-aware shedder configuration.
//!
//! Overload safety is layered, cheapest rejection first:
//!
//! 1. **Rate limiter** — a token bucket per tenant, refilled at a multiple
//!    of the tenant's share of the node's capacity. A request arriving to an
//!    empty bucket is rejected before touching any queue, and the tenant
//!    is handed a retry-after hint that doubles per consecutive rejection
//!    up to a cap (the standard backpressure signal an open-loop client
//!    would honor; the simulator records the hints it would have sent).
//! 2. **Class-bounded queue** — each tenant's queue is capped at
//!    `queue_cap × class.queue_fraction()`, so BestEffort backlog cannot
//!    crowd out memory/latency budget that Interactive traffic needs.
//! 3. **Deadline shedder** — at dispatch time, queued requests already
//!    older than their class deadline budget (`slo_ns × deadline_factor`)
//!    are dropped instead of served: completing them would burn instance
//!    time on replies the caller has stopped waiting for, which is
//!    exactly how a latency collapse turns into a goodput collapse.
//!
//! Everything here is deterministic arithmetic on the simulated clock —
//! no RNG — so admission decisions replay byte-identically.

use serde::{Deserialize, Serialize};

use super::arrival::NS_PER_SEC;

/// Token-bucket rate-limiter knobs (per tenant; rates derive from the
/// tenant's share of the node's ideal capacity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Bucket refill rate as a multiple of the tenant's share of the
    /// node's ideal capacity (2.0 = a tenant may sustain twice its
    /// capacity share before rejection). Anchored to capacity, not
    /// offered load, so the limiter keeps protecting the node however
    /// hard the open loop pushes.
    pub share_factor: f64,
    /// Bucket capacity, requests.
    pub burst: f64,
    /// First retry-after hint, milliseconds.
    pub retry_after_base_ms: f64,
    /// Retry-after cap, milliseconds (hints double per consecutive
    /// rejection until they hit this).
    pub retry_after_cap_ms: f64,
}

impl Default for RateLimit {
    fn default() -> Self {
        RateLimit {
            share_factor: 2.0,
            burst: 32.0,
            retry_after_base_ms: 5.0,
            retry_after_cap_ms: 640.0,
        }
    }
}

/// Admission-control policy of one serving node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Per-tenant token-bucket rate limiter; `None` admits everything the
    /// queues can hold (the PR-8 behavior).
    pub rate_limit: Option<RateLimit>,
    /// Drop queued requests already past their class deadline budget at
    /// dispatch time instead of serving them.
    pub deadline_shed: bool,
}

impl AdmissionConfig {
    /// PR-8-compatible policy: no limiter, no shedder (queue bounds still
    /// apply, scaled by the class queue fraction).
    pub fn permissive() -> Self {
        AdmissionConfig {
            rate_limit: None,
            deadline_shed: false,
        }
    }

    /// Full overload-safe policy with default limiter knobs.
    pub fn protective() -> Self {
        AdmissionConfig {
            rate_limit: Some(RateLimit::default()),
            deadline_shed: true,
        }
    }

    /// Checks the knobs the engine assumes.
    ///
    /// # Panics
    ///
    /// Panics on non-positive limiter parameters or a cap below the base.
    pub fn validate(&self) {
        if let Some(rl) = &self.rate_limit {
            assert!(rl.share_factor > 0.0, "share_factor must be positive");
            assert!(rl.burst >= 1.0, "burst must hold at least one request");
            assert!(
                rl.retry_after_base_ms > 0.0 && rl.retry_after_cap_ms >= rl.retry_after_base_ms,
                "retry-after hints must be positive and capped above the base"
            );
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::permissive()
    }
}

/// Runtime token bucket for one tenant.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_ns: f64,
    burst: f64,
    tokens: f64,
    last_refill: u64,
    /// Consecutive rejections since the last admitted request (drives the
    /// exponential retry-after hint).
    streak: u32,
    base_ms: f64,
    cap_ms: f64,
}

impl TokenBucket {
    /// Builds a full bucket refilled at `rate_per_s` requests per second.
    pub fn new(cfg: &RateLimit, rate_per_s: f64) -> Self {
        TokenBucket {
            rate_per_ns: rate_per_s / NS_PER_SEC,
            burst: cfg.burst,
            tokens: cfg.burst,
            last_refill: 0,
            streak: 0,
            base_ms: cfg.retry_after_base_ms,
            cap_ms: cfg.retry_after_cap_ms,
        }
    }

    /// Admits or rejects one arrival at simulated time `now`. On
    /// rejection, returns the capped-exponential retry-after hint in
    /// milliseconds.
    pub fn admit(&mut self, now: u64) -> Result<(), f64> {
        let elapsed = now.saturating_sub(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed as f64 * self.rate_per_ns).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.streak = 0;
            Ok(())
        } else {
            self.streak = self.streak.saturating_add(1);
            let exp = f64::from(self.streak.saturating_sub(1).min(30));
            Err((self.base_ms * 2.0f64.powf(exp)).min(self.cap_ms))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_rejects() {
        let cfg = RateLimit {
            burst: 4.0,
            ..RateLimit::default()
        };
        let mut b = TokenBucket::new(&cfg, 1000.0);
        for _ in 0..4 {
            assert!(b.admit(0).is_ok());
        }
        assert!(b.admit(0).is_err(), "empty bucket rejects");
    }

    #[test]
    fn refill_tracks_elapsed_time() {
        let cfg = RateLimit {
            burst: 1.0,
            ..RateLimit::default()
        };
        // 1000 req/s = one token per millisecond.
        let mut b = TokenBucket::new(&cfg, 1000.0);
        assert!(b.admit(0).is_ok());
        assert!(b.admit(500_000).is_err(), "half a token after 0.5 ms");
        assert!(b.admit(1_500_000).is_ok(), "full token after another 1 ms");
    }

    #[test]
    fn retry_after_doubles_then_caps() {
        let cfg = RateLimit {
            burst: 1.0,
            retry_after_base_ms: 10.0,
            retry_after_cap_ms: 40.0,
            ..RateLimit::default()
        };
        let mut b = TokenBucket::new(&cfg, 0.001);
        b.admit(0).unwrap();
        assert_eq!(b.admit(0).unwrap_err(), 10.0);
        assert_eq!(b.admit(0).unwrap_err(), 20.0);
        assert_eq!(b.admit(0).unwrap_err(), 40.0);
        assert_eq!(b.admit(0).unwrap_err(), 40.0, "capped");
    }

    #[test]
    fn admission_resets_the_rejection_streak() {
        let cfg = RateLimit {
            burst: 1.0,
            retry_after_base_ms: 10.0,
            retry_after_cap_ms: 640.0,
            ..RateLimit::default()
        };
        // 1e6 req/s: refills instantly on any elapsed ns.
        let mut b = TokenBucket::new(&cfg, 1_000_000.0);
        b.admit(0).unwrap();
        assert_eq!(b.admit(0).unwrap_err(), 10.0);
        assert_eq!(b.admit(0).unwrap_err(), 20.0);
        b.admit(10_000).unwrap();
        assert_eq!(b.admit(10_000).unwrap_err(), 10.0, "streak reset");
    }

    #[test]
    #[should_panic(expected = "share_factor")]
    fn validate_rejects_bad_limiter() {
        AdmissionConfig {
            rate_limit: Some(RateLimit {
                share_factor: 0.0,
                ..RateLimit::default()
            }),
            deadline_shed: false,
        }
        .validate();
    }
}
