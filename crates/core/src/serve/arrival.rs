//! Seeded open-loop request-arrival processes.
//!
//! Serving load is *open-loop*: users issue requests on their own clock,
//! indifferent to whether the server is keeping up — which is exactly what
//! makes the latency knee sharp. This module generates per-tenant arrival
//! timestamp streams (nanoseconds, non-decreasing) from a seed, so a whole
//! rate sweep replays byte-identically.
//!
//! Three trace shapes stand in for production traffic:
//!
//! * [`ArrivalShape::Poisson`] — memoryless arrivals at rate λ, the
//!   classic open-loop baseline.
//! * [`ArrivalShape::Bursty`] — a Markov-modulated on/off process: inside
//!   an ON window arrivals come at `λ / on_fraction`, OFF windows are
//!   silent, and dwell times are exponential. The time-average rate is
//!   exactly λ, so a bursty tenant offers the same total load as a Poisson
//!   one while stressing queues much harder.
//! * [`ArrivalShape::Diurnal`] — Poisson thinning against a sinusoidal
//!   intensity `λ(t) = λ·(1 + amplitude·sin(2πt/period))`, the day/night
//!   swing of user traffic compressed to the simulated horizon. The mean
//!   intensity over whole periods is λ, preserving total expected load.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Nanoseconds per second; the engine's simulated clock unit.
pub const NS_PER_SEC: f64 = 1.0e9;

/// Arrival trace shape for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalShape {
    /// Memoryless arrivals at the configured rate.
    Poisson,
    /// Markov-modulated on/off arrivals.
    Bursty {
        /// Fraction of time spent in the ON state, in `(0, 1]`. ON-state
        /// rate is `rate / on_fraction` so the time-average stays `rate`.
        on_fraction: f64,
        /// Mean number of arrivals per ON window (sets the burst length).
        mean_on_arrivals: f64,
    },
    /// Sinusoidally modulated arrivals (day/night swing).
    Diurnal {
        /// Peak-to-mean swing, in `[0, 1)`: intensity varies over
        /// `λ·(1 ± amplitude)`.
        amplitude: f64,
        /// Number of whole sine periods across the expected trace
        /// duration `n / rate`.
        periods: f64,
    },
}

impl ArrivalShape {
    /// Short stable label for keys and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalShape::Poisson => "poisson",
            ArrivalShape::Bursty { .. } => "bursty",
            ArrivalShape::Diurnal { .. } => "diurnal",
        }
    }
}

/// One exponential inter-arrival draw at `rate` events/sec.
fn exp_sample(rng: &mut SmallRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate
}

/// Generates `n` arrival timestamps (nanoseconds, non-decreasing) for one
/// tenant at time-average rate `rate_per_s`, deterministically from
/// `seed`.
///
/// # Panics
///
/// Panics if `rate_per_s` is not positive or the shape parameters are out
/// of range (`on_fraction` in `(0, 1]`, `mean_on_arrivals >= 1`,
/// `amplitude` in `[0, 1)`, `periods > 0`).
pub fn generate(shape: ArrivalShape, rate_per_s: f64, n: usize, seed: u64) -> Vec<u64> {
    assert!(
        rate_per_s > 0.0 && rate_per_s.is_finite(),
        "arrival rate must be positive"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    match shape {
        ArrivalShape::Poisson => {
            let mut t = 0.0;
            for _ in 0..n {
                t += exp_sample(&mut rng, rate_per_s);
                out.push((t * NS_PER_SEC) as u64);
            }
        }
        ArrivalShape::Bursty {
            on_fraction,
            mean_on_arrivals,
        } => {
            assert!(
                on_fraction > 0.0 && on_fraction <= 1.0,
                "on_fraction must be in (0, 1]"
            );
            assert!(mean_on_arrivals >= 1.0, "mean_on_arrivals must be >= 1");
            let on_rate = rate_per_s / on_fraction;
            let mean_on_secs = mean_on_arrivals / on_rate;
            let mean_off_secs = mean_on_secs * (1.0 - on_fraction) / on_fraction;
            let mut t = 0.0;
            'outer: loop {
                let on_end = t + exp_sample(&mut rng, 1.0 / mean_on_secs);
                loop {
                    let dt = exp_sample(&mut rng, on_rate);
                    if t + dt > on_end {
                        t = on_end;
                        break;
                    }
                    t += dt;
                    out.push((t * NS_PER_SEC) as u64);
                    if out.len() == n {
                        break 'outer;
                    }
                }
                if mean_off_secs > 0.0 {
                    t += exp_sample(&mut rng, 1.0 / mean_off_secs);
                }
            }
        }
        ArrivalShape::Diurnal { amplitude, periods } => {
            assert!(
                (0.0..1.0).contains(&amplitude),
                "amplitude must be in [0, 1)"
            );
            assert!(periods > 0.0, "periods must be positive");
            // Thinning: draw from a homogeneous process at the peak
            // intensity, accept proportionally to the instantaneous one.
            let peak = rate_per_s * (1.0 + amplitude);
            let period_secs = (n as f64 / rate_per_s) / periods;
            let omega = 2.0 * std::f64::consts::PI / period_secs;
            let mut t = 0.0;
            while out.len() < n {
                t += exp_sample(&mut rng, peak);
                let intensity = 1.0 + amplitude * (omega * t).sin();
                let accept = intensity / (1.0 + amplitude);
                if rng.gen_bool(accept.clamp(0.0, 1.0)) {
                    out.push((t * NS_PER_SEC) as u64);
                }
            }
        }
    }
    out
}

/// Empirical time-average rate of an arrival stream, events/sec.
///
/// Returns 0 for streams with fewer than two events or a zero span.
pub fn empirical_rate(arrivals: &[u64]) -> f64 {
    match (arrivals.first(), arrivals.last()) {
        (Some(&first), Some(&last)) if last > first => {
            (arrivals.len() - 1) as f64 / ((last - first) as f64 / NS_PER_SEC)
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_sorted_and_deterministic() {
        let shapes = [
            ArrivalShape::Poisson,
            ArrivalShape::Bursty {
                on_fraction: 0.4,
                mean_on_arrivals: 12.0,
            },
            ArrivalShape::Diurnal {
                amplitude: 0.6,
                periods: 2.0,
            },
        ];
        for shape in shapes {
            let a = generate(shape, 500.0, 1000, 0x5eed);
            let b = generate(shape, 500.0, 1000, 0x5eed);
            assert_eq!(a, b, "{}", shape.label());
            assert_eq!(a.len(), 1000);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{}", shape.label());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(ArrivalShape::Poisson, 500.0, 200, 1);
        let b = generate(ArrivalShape::Poisson, 500.0, 200, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn on_fraction_one_degenerates_to_poisson_rate() {
        let stream = generate(
            ArrivalShape::Bursty {
                on_fraction: 1.0,
                mean_on_arrivals: 10.0,
            },
            800.0,
            4000,
            7,
        );
        let rate = empirical_rate(&stream);
        assert!((rate - 800.0).abs() / 800.0 < 0.15, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        generate(ArrivalShape::Poisson, 0.0, 10, 0);
    }
}
