//! Reactive autoscaler: instance count tracks queue depth with
//! hysteresis and a cold-start delay.
//!
//! The autoscaler is evaluated on a fixed simulated-time cadence. Each
//! evaluation looks at one signal — total queued requests per enabled
//! instance — and moves the enabled-instance count one step at a time:
//!
//! * **Scale up** immediately when depth-per-instance exceeds the high
//!   watermark (queues grow fast past the knee; waiting costs tail
//!   latency). The new instance only starts serving after the cold-start
//!   delay, which is what makes overload + autoscaling interesting: the
//!   capacity you ask for under pressure arrives late.
//! * **Scale down** only after the depth has sat below the low watermark
//!   for `down_after_evals` consecutive evaluations (hysteresis, so a
//!   bursty tenant's off-period does not flap the fleet), and only by
//!   disabling an instance that is currently idle.
//!
//! The state machine is pure integer/float arithmetic on the simulated
//! clock — deterministic by construction.

use serde::{Deserialize, Serialize};

/// Autoscaler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Fleet floor (never scale below).
    pub min_instances: usize,
    /// Fleet ceiling (never scale above; also sizes the engine's
    /// instance-slot vector).
    pub max_instances: usize,
    /// Scale up when queued requests per enabled instance exceed this.
    pub hi_depth_per_instance: f64,
    /// Scale down only while queued requests per enabled instance stay
    /// below this.
    pub lo_depth_per_instance: f64,
    /// Evaluation cadence, simulated nanoseconds.
    pub eval_interval_ns: u64,
    /// Delay before a newly enabled instance can serve, nanoseconds.
    pub cold_start_ns: u64,
    /// Consecutive below-low evaluations required before one scale-down.
    pub down_after_evals: u32,
}

impl AutoscaleConfig {
    /// Checks the knobs the engine assumes.
    ///
    /// # Panics
    ///
    /// Panics on an empty instance range, inverted watermarks, or a zero
    /// evaluation interval.
    pub fn validate(&self) {
        assert!(
            self.min_instances >= 1 && self.min_instances <= self.max_instances,
            "instance range must satisfy 1 <= min <= max"
        );
        assert!(
            self.lo_depth_per_instance < self.hi_depth_per_instance,
            "watermarks must satisfy lo < hi"
        );
        assert!(self.eval_interval_ns > 0, "eval interval must be positive");
        assert!(self.down_after_evals >= 1, "down_after_evals must be >= 1");
    }
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_instances: 1,
            max_instances: 8,
            hi_depth_per_instance: 8.0,
            lo_depth_per_instance: 1.0,
            eval_interval_ns: 2_000_000, // 2 ms
            cold_start_ns: 10_000_000,   // 10 ms
            down_after_evals: 5,
        }
    }
}

/// One autoscaler verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Enable one more instance.
    Up,
    /// Disable one idle instance.
    Down,
    /// Leave the fleet as is.
    Hold,
}

/// Runtime autoscaler state machine.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    low_streak: u32,
}

impl Autoscaler {
    /// Builds the state machine (validating the config).
    pub fn new(cfg: AutoscaleConfig) -> Self {
        cfg.validate();
        Autoscaler { cfg, low_streak: 0 }
    }

    /// Configured knobs.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// One evaluation: `queued` requests across all tenants, `enabled`
    /// instances currently in the fleet (up or crashed — the autoscaler
    /// manages capacity it *asked for*, not capacity chaos took away).
    pub fn decide(&mut self, queued: usize, enabled: usize) -> ScaleDecision {
        let per_instance = queued as f64 / enabled.max(1) as f64;
        if per_instance > self.cfg.hi_depth_per_instance {
            self.low_streak = 0;
            if enabled < self.cfg.max_instances {
                return ScaleDecision::Up;
            }
        } else if per_instance < self.cfg.lo_depth_per_instance {
            if enabled > self.cfg.min_instances {
                self.low_streak += 1;
                if self.low_streak >= self.cfg.down_after_evals {
                    self.low_streak = 0;
                    return ScaleDecision::Down;
                }
            } else {
                self.low_streak = 0;
            }
        } else {
            self.low_streak = 0;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler(down_after: u32) -> Autoscaler {
        Autoscaler::new(AutoscaleConfig {
            min_instances: 1,
            max_instances: 4,
            hi_depth_per_instance: 8.0,
            lo_depth_per_instance: 1.0,
            down_after_evals: down_after,
            ..AutoscaleConfig::default()
        })
    }

    #[test]
    fn deep_queues_scale_up_until_the_ceiling() {
        let mut s = scaler(3);
        assert_eq!(s.decide(100, 2), ScaleDecision::Up);
        assert_eq!(s.decide(100, 3), ScaleDecision::Up);
        assert_eq!(s.decide(100, 4), ScaleDecision::Hold, "at max");
    }

    #[test]
    fn scale_down_needs_a_sustained_low_streak() {
        let mut s = scaler(3);
        assert_eq!(s.decide(0, 3), ScaleDecision::Hold);
        assert_eq!(s.decide(0, 3), ScaleDecision::Hold);
        assert_eq!(s.decide(0, 3), ScaleDecision::Down, "third low eval");
        assert_eq!(s.decide(0, 2), ScaleDecision::Hold, "streak restarts");
    }

    #[test]
    fn mid_band_resets_the_streak() {
        let mut s = scaler(2);
        assert_eq!(s.decide(0, 2), ScaleDecision::Hold);
        assert_eq!(s.decide(8, 2), ScaleDecision::Hold, "4/instance: mid band");
        assert_eq!(s.decide(0, 2), ScaleDecision::Hold, "streak was reset");
        assert_eq!(s.decide(0, 2), ScaleDecision::Down);
    }

    #[test]
    fn floor_is_respected() {
        let mut s = scaler(1);
        assert_eq!(s.decide(0, 1), ScaleDecision::Hold);
        assert_eq!(s.decide(0, 1), ScaleDecision::Hold);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn inverted_watermarks_panic() {
        Autoscaler::new(AutoscaleConfig {
            hi_depth_per_instance: 1.0,
            lo_depth_per_instance: 2.0,
            ..AutoscaleConfig::default()
        });
    }
}
