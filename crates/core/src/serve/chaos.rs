//! Seeded chaos: instance crash/recovery schedules and codec-fault
//! injection for the serving engine.
//!
//! Two failure processes run against a serving node, both derived
//! deterministically from one seed so a chaos sweep replays
//! byte-identically:
//!
//! * **Instance crashes.** Each instance slot gets an alternating
//!   up/down renewal process with exponential dwell times (MTTF up, MTTR
//!   down), pre-generated over twice the trace horizon. A crash kills the
//!   in-flight batch — its requests requeue at the head of their tenant
//!   queue with their original arrival timestamps, so the crash shows up
//!   as tail latency, not as silent loss.
//! * **Codec faults.** Admitted *compressed* batches roll the same
//!   [`FaultProbe`] Bernoulli machinery the cycle-level simulator uses
//!   (PR 1), split between a persistent site ([`FaultSite::DramBurst`])
//!   and a transient one ([`FaultSite::NocFlit`]). What happens next is
//!   the PR-1 retry-then-uncompressed policy, shared with
//!   [`zcomp_kernels::degrade`] via
//!   [`resolve_stream_fault`](zcomp_kernels::degrade::resolve_stream_fault):
//!   transient faults clear on one retry; persistent faults survive
//!   retries and — under [`DegradePolicy::Degrade`] — brown the batch out
//!   to the uncompressed service profile instead of failing its requests.
//!   [`DegradePolicy::HardFail`] models the naive integration where any
//!   detected stream corruption fails the batch.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use zcomp_kernels::degrade::{resolve_stream_fault, LayerOutcome};
use zcomp_sim::config::LINE_BYTES;
use zcomp_sim::faults::{FaultConfig, FaultProbe, FaultSite};

use super::arrival::NS_PER_SEC;

/// What a detected codec fault does to the batch that hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradePolicy {
    /// Any detected stream corruption fails every request in the batch
    /// (the instance still burns the attempt's service time).
    HardFail,
    /// PR-1 policy: retry the read once; persistent corruption falls back
    /// to uncompressed service for the batch, so requests complete at
    /// degraded cost instead of failing.
    Degrade,
}

impl DegradePolicy {
    /// Short stable label for keys and tables.
    pub fn label(self) -> &'static str {
        match self {
            DegradePolicy::HardFail => "hard_fail",
            DegradePolicy::Degrade => "degrade",
        }
    }
}

/// Chaos-process configuration for one serving simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Chaos seed; crash schedules and fault probes derive from it (keep
    /// it independent of the arrival seed so failure patterns can vary
    /// against a fixed workload).
    pub seed: u64,
    /// Mean time to failure per instance, seconds (0 disables crashes).
    pub mttf_s: f64,
    /// Mean time to recovery, seconds.
    pub mttr_s: f64,
    /// Per-batch probability that a compressed batch's stream read hits a
    /// codec fault (0 disables codec faults).
    pub codec_fault_rate: f64,
    /// Fraction of codec faults that are transient in-flight flips
    /// (NoC-style) rather than persistent array corruption (DRAM-style).
    pub transient_fraction: f64,
    /// Cost of one retry read as a fraction of the batch's compressed
    /// service time (a retry re-streams the stored bytes but does not
    /// recompute the layer).
    pub retry_cost_frac: f64,
    /// Degradation policy applied after detection.
    pub policy: DegradePolicy,
}

impl ChaosConfig {
    /// Crash-free, fault-free placeholder (useful for isolating one
    /// process in tests).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            mttf_s: 0.0,
            mttr_s: 0.05,
            codec_fault_rate: 0.0,
            transient_fraction: 0.25,
            retry_cost_frac: 0.25,
            policy: DegradePolicy::Degrade,
        }
    }

    /// Checks the knobs the engine assumes.
    ///
    /// # Panics
    ///
    /// Panics on negative rates, a non-positive MTTR with crashes
    /// enabled, or fractions outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.mttf_s >= 0.0, "mttf_s must be non-negative");
        assert!(
            self.mttf_s == 0.0 || self.mttr_s > 0.0,
            "mttr_s must be positive when crashes are enabled"
        );
        assert!(
            (0.0..=1.0).contains(&self.codec_fault_rate),
            "codec_fault_rate must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.transient_fraction),
            "transient_fraction must be in [0, 1]"
        );
        assert!(
            self.retry_cost_frac >= 0.0,
            "retry_cost_frac must be non-negative"
        );
    }
}

/// One scheduled up/down transition of an instance slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosTransition {
    /// Simulated time of the transition, nanoseconds.
    pub at: u64,
    /// Instance slot affected.
    pub instance: usize,
    /// `true` for a crash, `false` for a recovery.
    pub crash: bool,
}

/// How a codec fault on one batch resolved (costing inputs for the
/// engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFault {
    /// Site the injected flip modeled.
    pub site: FaultSite,
    /// Retry reads charged before resolution.
    pub retries: u32,
    /// Shared PR-1 disposition: [`LayerOutcome::Recovered`] (transient,
    /// retry read clean) or [`LayerOutcome::Fallback`] (persistent,
    /// uncompressed re-execution) under [`DegradePolicy::Degrade`];
    /// always [`LayerOutcome::Fallback`]-shaped failure under
    /// [`DegradePolicy::HardFail`] (the engine maps it to hard failure).
    pub outcome: LayerOutcome,
}

/// Runtime chaos state: the pre-generated crash schedule plus the codec
/// fault probes rolled per admitted compressed batch.
pub struct ChaosState {
    persistent: FaultProbe,
    transient: FaultProbe,
    policy: DegradePolicy,
    retry_cost_frac: f64,
}

impl ChaosState {
    /// Builds the runtime state and the crash schedule for `instances`
    /// slots over `horizon_ns × 2` (the drain after the last arrival is
    /// covered as long as it is no longer than the trace itself; beyond
    /// that the fleet stays in whatever state it last reached).
    pub fn new(
        cfg: &ChaosConfig,
        instances: usize,
        horizon_ns: u64,
    ) -> (Self, Vec<ChaosTransition>) {
        cfg.validate();
        let faults = FaultConfig::off(cfg.seed)
            .with_rate(
                FaultSite::DramBurst,
                cfg.codec_fault_rate * (1.0 - cfg.transient_fraction),
            )
            .with_rate(
                FaultSite::NocFlit,
                cfg.codec_fault_rate * cfg.transient_fraction,
            );
        let state = ChaosState {
            persistent: FaultProbe::new(&faults, FaultSite::DramBurst, 0),
            transient: FaultProbe::new(&faults, FaultSite::NocFlit, 0),
            policy: cfg.policy,
            retry_cost_frac: cfg.retry_cost_frac,
        };
        (
            state,
            crash_schedule(cfg, instances, horizon_ns.saturating_mul(2)),
        )
    }

    /// Degradation policy in force.
    pub fn policy(&self) -> DegradePolicy {
        self.policy
    }

    /// Retry-read cost fraction in force.
    pub fn retry_cost_frac(&self) -> f64 {
        self.retry_cost_frac
    }

    /// Rolls the codec-fault trial for one admitted compressed batch
    /// (`batch_index` spreads the modeled flip addresses across lines).
    /// Returns how the fault resolved, or `None` for a clean batch.
    /// Persistent corruption takes precedence when both sites fire.
    pub fn roll_batch_fault(&mut self, batch_index: u64) -> Option<BatchFault> {
        let addr = batch_index * LINE_BYTES as u64;
        self.persistent.observe(addr);
        self.transient.observe(addr);
        let mut events = Vec::new();
        self.persistent.drain_into(&mut events);
        let persistent_hit = !events.is_empty();
        events.clear();
        self.transient.drain_into(&mut events);
        let transient_hit = !events.is_empty();

        let site = if persistent_hit {
            FaultSite::DramBurst
        } else if transient_hit {
            FaultSite::NocFlit
        } else {
            return None;
        };
        // The serving engine mirrors the layer-level DegradeOpts default:
        // one retry read before giving up on the stream.
        let (retries, outcome) = resolve_stream_fault(site, 1);
        Some(BatchFault {
            site,
            retries,
            outcome,
        })
    }
}

/// One exponential dwell-time draw with mean `mean_s` seconds.
fn exp_sample(rng: &mut SmallRng, mean_s: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() * mean_s
}

/// Pre-generates the alternating crash/recover schedule for every
/// instance slot, sorted by time (ties break on instance index).
fn crash_schedule(cfg: &ChaosConfig, instances: usize, horizon_ns: u64) -> Vec<ChaosTransition> {
    let mut out = Vec::new();
    if cfg.mttf_s <= 0.0 {
        return out;
    }
    for instance in 0..instances {
        let mut rng = SmallRng::seed_from_u64(
            cfg.seed ^ (instance as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let mut t = 0.0f64;
        loop {
            t += exp_sample(&mut rng, cfg.mttf_s);
            let at = (t * NS_PER_SEC) as u64;
            if at >= horizon_ns {
                break;
            }
            out.push(ChaosTransition {
                at,
                instance,
                crash: true,
            });
            t += exp_sample(&mut rng, cfg.mttr_s);
            let at = (t * NS_PER_SEC) as u64;
            if at >= horizon_ns {
                break;
            }
            out.push(ChaosTransition {
                at,
                instance,
                crash: false,
            });
        }
    }
    out.sort_by_key(|tr| (tr.at, tr.instance, tr.crash));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos(mttf_s: f64, fault_rate: f64) -> ChaosConfig {
        ChaosConfig {
            mttf_s,
            codec_fault_rate: fault_rate,
            ..ChaosConfig::quiet(0xC4A0)
        }
    }

    #[test]
    fn schedule_alternates_and_is_deterministic() {
        let cfg = chaos(0.01, 0.0);
        let horizon = (0.5 * NS_PER_SEC) as u64;
        let (_, a) = ChaosState::new(&cfg, 3, horizon / 2);
        let (_, b) = ChaosState::new(&cfg, 3, horizon / 2);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "0.5 s at 10 ms MTTF must crash");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        for instance in 0..3 {
            let mine: Vec<bool> = a
                .iter()
                .filter(|t| t.instance == instance)
                .map(|t| t.crash)
                .collect();
            assert!(mine.first().copied().unwrap_or(true), "starts with a crash");
            assert!(
                mine.windows(2).all(|w| w[0] != w[1]),
                "crash/recover alternate"
            );
        }
    }

    #[test]
    fn mttf_zero_disables_crashes() {
        let (_, schedule) = ChaosState::new(&chaos(0.0, 0.5), 4, u64::MAX / 4);
        assert!(schedule.is_empty());
    }

    #[test]
    fn fault_rolls_are_deterministic_and_rate_shaped() {
        let cfg = chaos(0.0, 0.2);
        let roll_all = || {
            let (mut s, _) = ChaosState::new(&cfg, 1, 0);
            (0..2_000u64)
                .map(|i| s.roll_batch_fault(i))
                .collect::<Vec<_>>()
        };
        let a = roll_all();
        assert_eq!(a, roll_all());
        let hits = a.iter().flatten().count();
        let rate = hits as f64 / 2_000.0;
        assert!((rate - 0.2).abs() < 0.05, "observed fault rate {rate}");
        for f in a.iter().flatten() {
            match f.site {
                FaultSite::NocFlit => {
                    assert_eq!(f.outcome, LayerOutcome::Recovered);
                    assert_eq!(f.retries, 1);
                }
                FaultSite::DramBurst => {
                    assert_eq!(f.outcome, LayerOutcome::Fallback);
                    assert_eq!(f.retries, 1);
                }
                other => panic!("unexpected site {other}"),
            }
        }
    }

    #[test]
    fn zero_rate_rolls_cleanly() {
        let (mut s, _) = ChaosState::new(&chaos(0.0, 0.0), 1, 0);
        assert!((0..500).all(|i| s.roll_batch_fault(i).is_none()));
    }

    #[test]
    #[should_panic(expected = "mttr_s")]
    fn validate_rejects_zero_mttr_with_crashes() {
        ChaosConfig {
            mttf_s: 1.0,
            mttr_s: 0.0,
            ..ChaosConfig::quiet(1)
        }
        .validate();
    }
}
