//! Non-panicking byte-level determinism self-checks.
//!
//! Chaos sweeps lean hard on "same seed ⇒ byte-identical report": the
//! supervised journal, the fabric merge and the `--resume` path all
//! compare serialized cell payloads. The self-checks that guard this
//! invariant (in tests, in `serve_run --smoke`, and anywhere a cell wants
//! to double-run itself) used to be `serde_json::to_string(..).unwrap()`
//! comparisons — a serialization failure would *panic*, and inside a
//! supervised cell a panic reads as a quarantinable workload failure
//! rather than what it is: a harness bug. This module does the same
//! comparison without the panic, reporting a typed error either way.

use std::fmt;

use serde::Serialize;

/// Why a determinism self-check failed.
#[derive(Debug)]
pub enum DeterminismError {
    /// One of the two values failed to serialize at all.
    Serialize(serde_json::Error),
    /// The serialized byte streams differ.
    Mismatch {
        /// Length of the first serialization, bytes.
        len_a: usize,
        /// Length of the second serialization, bytes.
        len_b: usize,
        /// Offset of the first differing byte (the shorter length when
        /// one stream is a prefix of the other).
        first_diff: usize,
    },
}

impl fmt::Display for DeterminismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeterminismError::Serialize(e) => {
                write!(f, "determinism check could not serialize: {e:?}")
            }
            DeterminismError::Mismatch {
                len_a,
                len_b,
                first_diff,
            } => write!(
                f,
                "serialized replays differ: {len_a} vs {len_b} bytes, first divergence at byte {first_diff}"
            ),
        }
    }
}

impl std::error::Error for DeterminismError {}

/// Compares the serialized bytes of two replays of the same computation.
///
/// Returns `Ok(())` when the two values serialize to identical bytes.
///
/// # Errors
///
/// [`DeterminismError::Serialize`] if either value fails to serialize;
/// [`DeterminismError::Mismatch`] (with the first divergent offset) if
/// the byte streams differ.
pub fn require_byte_identical<T: Serialize>(a: &T, b: &T) -> Result<(), DeterminismError> {
    let a = serde_json::to_string(a).map_err(DeterminismError::Serialize)?;
    let b = serde_json::to_string(b).map_err(DeterminismError::Serialize)?;
    if a == b {
        return Ok(());
    }
    let first_diff = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    Err(DeterminismError::Mismatch {
        len_a: a.len(),
        len_b: b.len(),
        first_diff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_pass() {
        require_byte_identical(&vec![1u64, 2, 3], &vec![1u64, 2, 3]).unwrap();
    }

    #[test]
    fn mismatch_reports_offset_without_panicking() {
        let err = require_byte_identical(&vec![1u64, 2, 3], &vec![1u64, 9, 3]).unwrap_err();
        match err {
            DeterminismError::Mismatch { first_diff, .. } => assert_eq!(first_diff, 3),
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn prefix_mismatch_points_at_the_shorter_length() {
        let err = require_byte_identical(&vec![1u64, 2], &vec![1u64, 2, 3]).unwrap_err();
        match err {
            DeterminismError::Mismatch {
                len_a,
                len_b,
                first_diff,
            } => {
                assert!(len_a < len_b);
                assert_eq!(first_diff, len_a - 1, "diverges at the closing bracket");
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn error_formats_and_is_std_error() {
        let err: Box<dyn std::error::Error> =
            Box::new(require_byte_identical(&1u64, &2u64).unwrap_err());
        assert!(err.to_string().contains("first divergence"));
    }
}
