//! Discrete-event simulation of one rate point.
//!
//! Everything runs on a simulated nanosecond clock — there is no
//! wall-clock anywhere, so a rate point is a pure function of
//! `(ServeConfig, offered QPS)` and replays byte-identically. Events are
//! ordered by `(time, sequence)`; the sequence number breaks ties
//! deterministically in insertion order.
//!
//! The scheduler is the standard serving policy pair, made class-aware:
//!
//! * **max-batch**: an instance takes up to `max_batch` requests from one
//!   tenant's queue (batches never mix tenants — they run different
//!   drifted checkpoints);
//! * **max-wait**: a queue head older than `max_wait_ns` flushes a
//!   partial batch rather than waiting for a full one;
//! * among dispatchable tenants, [`ClassScheduler`] applies strict
//!   priority across SLO classes and weighted deficit within one.
//!
//! Overload safety happens in three layers (see [`super::admission`]):
//! token-bucket rejection at arrival, class-bounded queues, and the
//! deadline shedder at dispatch. Failure resilience is driven by the
//! chaos process (see [`super::chaos`]): instances crash and recover on a
//! pre-generated seeded schedule (crashes preempt the in-flight batch
//! back to the queue head), and compressed batches roll codec faults that
//! resolve through the PR-1 retry-then-uncompressed policy. A reactive
//! [`Autoscaler`] can grow and shrink the enabled fleet between
//! `min_instances` and `max_instances` with hysteresis and a cold-start
//! delay.
//!
//! Request latency is `batch completion − arrival`; completions price the
//! batch through [`ServiceModel::batch_cost`] with the number of busy
//! instances at admission, which is where shared-bandwidth contention
//! bites. Every generated request is accounted for exactly once:
//! `arrivals == completed + dropped + rejected + shed + failed +
//! stranded` (preemptions requeue and resolve later, so they are not a
//! terminal state).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};
use zcomp_kernels::degrade::LayerOutcome;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_trace::metrics::{MetricsRegistry, MetricsSummary};
use zcomp_trace::serve as trace_serve;
use zcomp_trace::serve::names;

use super::admission::TokenBucket;
use super::arrival::{self, NS_PER_SEC};
use super::autoscale::{Autoscaler, ScaleDecision};
use super::chaos::{ChaosState, ChaosTransition, DegradePolicy};
use super::service::ServiceModel;
use super::slo::{ClassScheduler, ReadyTenant, SloClass};
use super::ServeConfig;

/// Per-SLO-class slice of one rate point (always reported for all three
/// classes, in [`SloClass::ALL`] order, even when a class has no tenant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// The class this row describes.
    pub class: SloClass,
    /// Requests generated for tenants of this class.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at a full class-bounded queue.
    pub dropped: u64,
    /// Requests rejected by the token-bucket rate limiter.
    pub rejected: u64,
    /// Requests shed past their class deadline budget.
    pub shed: u64,
    /// Requests hard-failed by codec faults.
    pub failed: u64,
    /// Completed requests that exceeded the node SLO.
    pub slo_violations: u64,
    /// Median latency of this class, microseconds.
    pub p50_us: f64,
    /// 99th percentile latency of this class, microseconds.
    pub p99_us: f64,
}

/// Outcome of simulating one offered rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Offered load, queries per second (all tenants combined).
    pub offered_qps: f64,
    /// Requests generated.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at full queues.
    pub dropped: u64,
    /// Requests rejected by the rate limiter before queueing.
    pub rejected: u64,
    /// Requests shed by the deadline shedder at dispatch.
    pub shed: u64,
    /// Requests hard-failed by codec faults (hard-fail policy only).
    pub failed: u64,
    /// Requests still queued when the simulation drained (no
    /// serving-capable instance ever came back for them).
    pub stranded: u64,
    /// In-flight requests requeued by instance crashes (not terminal —
    /// they resolve as one of the other counters later).
    pub preempted: u64,
    /// Completed requests that exceeded the SLO.
    pub slo_violations: u64,
    /// Batches admitted.
    pub batches: u64,
    /// Instance crashes injected by the chaos process.
    pub crashes: u64,
    /// Instance recoveries injected by the chaos process.
    pub recoveries: u64,
    /// Codec faults rolled on admitted compressed batches.
    pub codec_faults: u64,
    /// Retry reads charged to faulted batches.
    pub codec_retries: u64,
    /// Faulted batches that fell back to uncompressed service.
    pub codec_fallbacks: u64,
    /// Autoscaler scale-up decisions taken.
    pub scale_ups: u64,
    /// Autoscaler scale-down decisions taken.
    pub scale_downs: u64,
    /// Time-averaged enabled-and-up instance count.
    pub mean_instances: f64,
    /// Peak enabled-and-up instance count.
    pub peak_instances: u64,
    /// Latency percentiles, microseconds (from the registry histogram).
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Completed-within-SLO requests per second of simulated time.
    pub goodput_qps: f64,
    /// Mean admitted batch size.
    pub mean_batch: f64,
    /// Peak total queue depth observed at an arrival.
    pub max_queue_depth: u64,
    /// Worst per-batch contention slowdown.
    pub peak_slowdown: f64,
    /// Whether this rate meets the SLO: completions happened, total lost
    /// requests (dropped + rejected + shed + failed + stranded) are
    /// within tolerance, and p99 is under the bound.
    pub sustainable: bool,
    /// Per-class breakdown in [`SloClass::ALL`] order.
    pub classes: Vec<ClassStats>,
    /// Full metrics snapshot (latency/queue/batch histograms, counters).
    pub metrics: MetricsSummary,
}

/// One admitted batch, as seen by the scheduling-invariant audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAudit {
    /// Tenant the batch was taken from.
    pub tenant: usize,
    /// Simulated admission time, nanoseconds.
    pub admitted_at: u64,
    /// Arrival timestamp of the batch's oldest request.
    pub head: u64,
    /// Requests taken.
    pub take: usize,
    /// Whether the batch was full (`take == max_batch`).
    pub full: bool,
    /// Time the dispatching instance last became serving-capable and
    /// idle. A non-full batch must dispatch by
    /// `max(head + max_wait, free_since)` (± one event tick): partial
    /// batches wait for the flush deadline or for capacity, never longer.
    pub free_since: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A request for `tenant` arrives (its timestamp is the event time).
    Arrival { tenant: usize },
    /// An instance finishes its batch. Stale tokens (the instance crashed
    /// and preempted the batch since) are ignored.
    Done { instance: usize, token: u64 },
    /// A tenant's max-wait deadline fires; re-examine its queue.
    Flush { tenant: usize },
    /// Chaos: the instance crashes (preempting any in-flight batch).
    Crash { instance: usize },
    /// Chaos: the instance comes back up.
    Recover { instance: usize },
    /// Autoscaler evaluation tick.
    ScaleEval,
    /// A cold-started instance becomes serving-capable; re-run dispatch.
    Poke,
}

type Event = (u64, u64, EventKind);

/// In-flight batch on one instance slot.
struct Inflight {
    tenant: usize,
    /// Original arrival timestamps, oldest first.
    arrivals: Vec<u64>,
    /// Hard-fail policy verdict: the batch burns its service time but
    /// every request fails instead of completing.
    failed: bool,
}

/// One instance slot: the autoscaler enables/disables it, the chaos
/// process crashes/recovers it, and it serves while enabled, up, warm and
/// idle.
struct Slot {
    /// The autoscaler wants this slot in the fleet.
    enabled: bool,
    /// Not currently crashed.
    up: bool,
    /// Serving-capable no earlier than this (cold start).
    cold_until: u64,
    busy: Option<Inflight>,
    /// Generation token: bumped on crash preemption so stale `Done`
    /// events are ignored.
    token: u64,
    /// Time the slot last became serving-capable and idle.
    free_since: u64,
}

impl Slot {
    fn serving_capable(&self, now: u64) -> bool {
        self.enabled && self.up && now >= self.cold_until
    }

    fn free(&self, now: u64) -> bool {
        self.serving_capable(now) && self.busy.is_none()
    }
}

/// Simulates one offered rate through `service`, returning the rate
/// point's statistics.
pub fn simulate(cfg: &ServeConfig, service: &mut ServiceModel, offered_qps: f64) -> RatePoint {
    simulate_inner(cfg, service, offered_qps, None)
}

/// [`simulate`], additionally recording one [`BatchAudit`] per admitted
/// batch — the raw material for the scheduling-invariant property tests.
pub fn simulate_audited(
    cfg: &ServeConfig,
    service: &mut ServiceModel,
    offered_qps: f64,
) -> (RatePoint, Vec<BatchAudit>) {
    let mut audits = Vec::new();
    let point = simulate_inner(cfg, service, offered_qps, Some(&mut audits));
    (point, audits)
}

fn simulate_inner(
    cfg: &ServeConfig,
    service: &mut ServiceModel,
    offered_qps: f64,
    mut audit: Option<&mut Vec<BatchAudit>>,
) -> RatePoint {
    cfg.validate();
    assert!(offered_qps > 0.0, "offered rate must be positive");
    assert!(cfg.slo_ns > 0, "derive the SLO before simulating");
    let _span = trace_serve::rate_point_span();

    let weight_sum: f64 = cfg.tenants.iter().map(|t| t.weight).sum();
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut first_arrival = u64::MAX;
    for (ti, tenant) in cfg.tenants.iter().enumerate() {
        let rate = offered_qps * tenant.weight / weight_sum;
        let stream = arrival::generate(
            tenant.shape,
            rate,
            cfg.arrivals_per_tenant,
            cfg.seed ^ (ti as u64).wrapping_mul(0x9E37_79B9),
        );
        first_arrival = first_arrival.min(stream[0]);
        for t in stream {
            heap.push(Reverse((t, seq, EventKind::Arrival { tenant: ti })));
            seq += 1;
        }
    }

    // Drift epochs split the expected trace horizon evenly; simulated
    // time beyond the horizon stays in the last epoch.
    let horizon_ns = (cfg.total_arrivals() as f64 / offered_qps * NS_PER_SEC) as u64;
    let epoch_len = (horizon_ns / cfg.drift_epochs as u64).max(1);
    let epoch_of = |now: u64| ((now / epoch_len) as usize).min(cfg.drift_epochs - 1);

    // Instance slots: the configured fleet enabled, autoscale headroom
    // disabled until asked for.
    let slots_total = cfg.instance_slots();
    let mut slots: Vec<Slot> = (0..slots_total)
        .map(|i| Slot {
            enabled: i < cfg.instances,
            up: true,
            cold_until: 0,
            busy: None,
            token: 0,
            free_since: 0,
        })
        .collect();
    let mut busy_now = 0usize;

    // Chaos: pre-generated crash/recover schedule plus per-batch codec
    // fault probes. Codec faults only strike compressed streams.
    let mut chaos_state = cfg.chaos.as_ref().map(|c| {
        let (state, schedule) = ChaosState::new(c, slots_total, horizon_ns);
        for ChaosTransition {
            at,
            instance,
            crash,
        } in schedule
        {
            let kind = if crash {
                EventKind::Crash { instance }
            } else {
                EventKind::Recover { instance }
            };
            heap.push(Reverse((at, seq, kind)));
            seq += 1;
        }
        state
    });
    let compressed = cfg.scheme != Scheme::None;

    // Autoscaler evaluation ticks over twice the trace horizon (the drain
    // is covered as long as it is no longer than the trace itself).
    let mut autoscaler = cfg.autoscale.as_ref().map(|s| {
        let mut at = s.eval_interval_ns;
        while at <= horizon_ns.saturating_mul(2) {
            heap.push(Reverse((at, seq, EventKind::ScaleEval)));
            seq += 1;
            at += s.eval_interval_ns;
        }
        Autoscaler::new(*s)
    });

    // Admission: one token bucket per tenant, refilled at a multiple of
    // the tenant's share of the node's ideal capacity (anchoring to
    // capacity rather than offered load is the point — the limiter
    // protects the node, it must not scale with the overload).
    let mut buckets: Option<Vec<TokenBucket>> = cfg.admission.rate_limit.as_ref().map(|rl| {
        let solo_s = service.solo_ns(0, 0, cfg.max_batch) as f64 / NS_PER_SEC;
        let capacity_qps = (cfg.instances * cfg.max_batch) as f64 / solo_s;
        cfg.tenants
            .iter()
            .map(|t| TokenBucket::new(rl, capacity_qps * t.weight / weight_sum * rl.share_factor))
            .collect()
    });

    let scheduler_template = ClassScheduler::new(&cfg.tenants);
    let mut scheduler = scheduler_template.clone();
    let class_caps: Vec<usize> = cfg
        .tenants
        .iter()
        .map(|t| ((cfg.queue_cap as f64 * t.class.queue_fraction()) as usize).max(1))
        .collect();
    let deadlines: Vec<u64> = cfg
        .tenants
        .iter()
        .map(|t| (cfg.slo_ns as f64 * t.class.deadline_factor()) as u64)
        .collect();

    let mut registry = MetricsRegistry::new();
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.tenants.len()];
    let mut flush_at: Vec<Option<u64>> = vec![None; cfg.tenants.len()];
    let (mut completed, mut dropped, mut violations, mut batches) = (0u64, 0u64, 0u64, 0u64);
    let (mut rejected, mut shed, mut failed, mut preempted) = (0u64, 0u64, 0u64, 0u64);
    let (mut crashes, mut recoveries) = (0u64, 0u64);
    let (mut codec_faults, mut codec_retries, mut codec_fallbacks) = (0u64, 0u64, 0u64);
    let (mut scale_ups, mut scale_downs) = (0u64, 0u64);
    let mut class_counts = [[0u64; 3]; 7]; // [stat][class]
    const CA: usize = 0; // arrivals
    const CC: usize = 1; // completed
    const CD: usize = 2; // dropped
    const CR: usize = 3; // rejected
    const CS: usize = 4; // shed
    const CF: usize = 5; // failed
    const CV: usize = 6; // slo violations
    let mut batch_requests = 0u64;
    let mut within_slo = 0u64;
    let mut max_depth = 0u64;
    let mut peak_slowdown = 1.0f64;
    let mut last_completion = 0u64;
    // Time integral of the enabled-and-up instance count.
    let mut capacity_integral = 0.0f64;
    let mut capacity_now = slots.iter().filter(|s| s.enabled && s.up).count();
    let mut peak_instances = capacity_now as u64;
    let mut last_event_t = 0u64;

    while let Some(Reverse((now, _, kind))) = heap.pop() {
        capacity_integral += (now - last_event_t) as f64 * capacity_now as f64;
        last_event_t = now;
        match kind {
            EventKind::Arrival { tenant } => {
                let ci = cfg.tenants[tenant].class.index();
                class_counts[CA][ci] += 1;
                let admitted = match buckets.as_mut() {
                    Some(b) => match b[tenant].admit(now) {
                        Ok(()) => true,
                        Err(hint_ms) => {
                            rejected += 1;
                            class_counts[CR][ci] += 1;
                            registry.observe(names::RETRY_AFTER_MS, hint_ms);
                            false
                        }
                    },
                    None => true,
                };
                if admitted {
                    if queues[tenant].len() >= class_caps[tenant] {
                        dropped += 1;
                        class_counts[CD][ci] += 1;
                    } else {
                        queues[tenant].push_back(now);
                    }
                }
                let depth: usize = queues.iter().map(VecDeque::len).sum();
                max_depth = max_depth.max(depth as u64);
                registry.observe(names::QUEUE_DEPTH, depth as f64);
                trace_serve::queue_depth(depth as f64);
            }
            EventKind::Done { instance, token } => {
                let slot = &mut slots[instance];
                if slot.token == token {
                    if let Some(batch) = slot.busy.take() {
                        busy_now -= 1;
                        slot.free_since = now;
                        let ci = cfg.tenants[batch.tenant].class.index();
                        for arrived in batch.arrivals {
                            if batch.failed {
                                failed += 1;
                                class_counts[CF][ci] += 1;
                                continue;
                            }
                            let latency_ns = now - arrived;
                            let latency_us = latency_ns as f64 / 1_000.0;
                            registry.observe(names::LATENCY_US, latency_us);
                            registry.observe(
                                cfg.tenants[batch.tenant].class.latency_metric(),
                                latency_us,
                            );
                            if latency_ns > cfg.slo_ns {
                                violations += 1;
                                class_counts[CV][ci] += 1;
                            } else {
                                within_slo += 1;
                            }
                            completed += 1;
                            class_counts[CC][ci] += 1;
                            last_completion = last_completion.max(now);
                        }
                    }
                }
            }
            EventKind::Flush { tenant } => {
                if flush_at[tenant] == Some(now) {
                    flush_at[tenant] = None;
                }
            }
            EventKind::Crash { instance } => {
                let slot = &mut slots[instance];
                if slot.up {
                    slot.up = false;
                    crashes += 1;
                    trace_serve::chaos_crash();
                    if let Some(batch) = slot.busy.take() {
                        busy_now -= 1;
                        slot.token += 1;
                        preempted += batch.arrivals.len() as u64;
                        // Requeue at the front with original timestamps,
                        // oldest ending up at the head: a crash is tail
                        // latency, not loss. The requeue may transiently
                        // exceed the class queue bound — these requests
                        // were already admitted once.
                        for &arrived in batch.arrivals.iter().rev() {
                            queues[batch.tenant].push_front(arrived);
                        }
                    }
                }
            }
            EventKind::Recover { instance } => {
                let slot = &mut slots[instance];
                if !slot.up {
                    slot.up = true;
                    slot.free_since = now;
                    recoveries += 1;
                    trace_serve::chaos_recover();
                }
            }
            EventKind::ScaleEval => {
                if let Some(scaler) = autoscaler.as_mut() {
                    let queued: usize = queues.iter().map(VecDeque::len).sum();
                    let enabled = slots.iter().filter(|s| s.enabled).count();
                    match scaler.decide(queued, enabled) {
                        ScaleDecision::Up => {
                            if let Some(i) = slots.iter().position(|s| !s.enabled) {
                                slots[i].enabled = true;
                                slots[i].cold_until = now + scaler.config().cold_start_ns;
                                slots[i].free_since = slots[i].cold_until;
                                scale_ups += 1;
                                trace_serve::scale_up();
                                heap.push(Reverse((slots[i].cold_until, seq, EventKind::Poke)));
                                seq += 1;
                            }
                        }
                        ScaleDecision::Down => {
                            // Only an idle enabled slot may be retired;
                            // prefer the highest index so the base fleet
                            // stays stable.
                            if let Some(i) =
                                slots.iter().rposition(|s| s.enabled && s.busy.is_none())
                            {
                                slots[i].enabled = false;
                                scale_downs += 1;
                                trace_serve::scale_down();
                            }
                        }
                        ScaleDecision::Hold => {}
                    }
                    let up_now = slots.iter().filter(|s| s.enabled && s.up).count();
                    registry.observe(names::INSTANCES_UP, up_now as f64);
                    trace_serve::instances_up(up_now as f64);
                }
            }
            EventKind::Poke => {}
        }
        capacity_now = slots.iter().filter(|s| s.enabled && s.up).count();
        peak_instances = peak_instances.max(capacity_now as u64);

        // Admit batches while instances are free; otherwise arm the
        // earliest max-wait deadline so partial batches still flush.
        while let Some(slot_idx) = slots.iter().position(|s| s.free(now)) {
            // Deadline shedder: queued requests already past their class
            // budget are dropped at dispatch time instead of served.
            if cfg.admission.deadline_shed {
                for (ti, q) in queues.iter_mut().enumerate() {
                    let ci = cfg.tenants[ti].class.index();
                    while q.front().is_some_and(|&head| now > head + deadlines[ti]) {
                        q.pop_front();
                        shed += 1;
                        class_counts[CS][ci] += 1;
                    }
                }
            }
            let mut ready = Vec::new();
            for (ti, q) in queues.iter().enumerate() {
                if let Some(&head) = q.front() {
                    if q.len() >= cfg.max_batch || now >= head + cfg.max_wait_ns {
                        ready.push(ReadyTenant { tenant: ti, head });
                    }
                }
            }
            let Some(ti) = scheduler.pick(&ready) else {
                break;
            };
            let take = queues[ti].len().min(cfg.max_batch);
            let head = *queues[ti].front().expect("ready tenant has a head");
            scheduler.on_dispatch(ti, take);
            let occupied = busy_now + 1;
            let base = service.batch_cost(ti, epoch_of(now), take, occupied);
            let mut cost_ns = base.ns;
            let mut slowdown = base.slowdown;
            let mut batch_failed = false;

            // Codec faults strike compressed stream reads only; the
            // disposition is the shared PR-1 policy.
            if compressed {
                if let Some(fault) = chaos_state
                    .as_mut()
                    .and_then(|c| c.roll_batch_fault(batches))
                {
                    codec_faults += 1;
                    trace_serve::codec_fault();
                    let chaos = chaos_state.as_ref().expect("fault implies chaos");
                    match chaos.policy() {
                        DegradePolicy::HardFail => {
                            // The attempt's service time is burned, every
                            // request in the batch fails.
                            batch_failed = true;
                        }
                        DegradePolicy::Degrade => {
                            codec_retries += u64::from(fault.retries);
                            let retry_ns = (base.ns as f64
                                * chaos.retry_cost_frac()
                                * f64::from(fault.retries))
                                as u64;
                            match fault.outcome {
                                LayerOutcome::Recovered => {
                                    // Transient: retry read clean, batch
                                    // completes compressed.
                                    cost_ns = base.ns + retry_ns;
                                }
                                _ => {
                                    // Persistent: detection read + retry
                                    // reads, then the batch browns out to
                                    // the uncompressed service profile.
                                    codec_fallbacks += 1;
                                    let fb = service.fallback_batch_cost(
                                        ti,
                                        epoch_of(now),
                                        take,
                                        occupied,
                                    );
                                    let detect_ns =
                                        (base.ns as f64 * chaos.retry_cost_frac()) as u64;
                                    cost_ns = detect_ns + retry_ns + fb.ns;
                                    slowdown = slowdown.max(fb.slowdown);
                                }
                            }
                        }
                    }
                }
            }
            cost_ns = cost_ns.max(1);

            if let Some(audits) = audit.as_deref_mut() {
                audits.push(BatchAudit {
                    tenant: ti,
                    admitted_at: now,
                    head,
                    take,
                    full: take == cfg.max_batch,
                    free_since: slots[slot_idx].free_since,
                });
            }

            let mut arrivals = Vec::with_capacity(take);
            for _ in 0..take {
                arrivals.push(queues[ti].pop_front().expect("batch within queue length"));
            }
            peak_slowdown = peak_slowdown.max(slowdown);
            let done_at = now + cost_ns;
            busy_now += 1;
            let token = slots[slot_idx].token;
            slots[slot_idx].busy = Some(Inflight {
                tenant: ti,
                arrivals,
                failed: batch_failed,
            });
            batches += 1;
            batch_requests += take as u64;
            registry.observe(names::BATCH_SIZE, take as f64);
            registry.observe(names::SLOWDOWN_MILLI, slowdown * 1000.0);
            trace_serve::slowdown(slowdown);
            heap.push(Reverse((
                done_at,
                seq,
                EventKind::Done {
                    instance: slot_idx,
                    token,
                },
            )));
            seq += 1;
        }

        // Arm one flush deadline per still-waiting head, but only while
        // an instance could actually take the flushed batch.
        if slots.iter().any(|s| s.free(now)) {
            for (ti, q) in queues.iter().enumerate() {
                if let Some(&head) = q.front() {
                    let deadline = (head + cfg.max_wait_ns).max(now + 1);
                    if flush_at[ti].is_none_or(|d| d > deadline) {
                        flush_at[ti] = Some(deadline);
                        heap.push(Reverse((deadline, seq, EventKind::Flush { tenant: ti })));
                        seq += 1;
                    }
                }
            }
        }
    }

    // Whatever is still queued when the event heap drains had no
    // serving-capable instance left to take it (and none scheduled to
    // come back): stranded, not silently lost.
    let stranded: u64 = queues.iter().map(|q| q.len() as u64).sum();

    registry.incr(names::COMPLETED, completed);
    registry.incr(names::DROPPED, dropped);
    registry.incr(names::SLO_VIOLATIONS, violations);
    registry.incr(names::BATCHES, batches);
    registry.incr(names::REJECTED, rejected);
    registry.incr(names::SHED, shed);
    registry.incr(names::FAILED, failed);
    registry.incr(names::STRANDED, stranded);
    registry.incr(names::PREEMPTED, preempted);
    registry.incr(names::CRASHES, crashes);
    registry.incr(names::RECOVERIES, recoveries);
    registry.incr(names::CODEC_FAULTS, codec_faults);
    registry.incr(names::CODEC_RETRIES, codec_retries);
    registry.incr(names::CODEC_FALLBACKS, codec_fallbacks);
    registry.incr(names::SCALE_UPS, scale_ups);
    registry.incr(names::SCALE_DOWNS, scale_downs);

    let (p50, p95, p99, mean) = registry
        .histogram(names::LATENCY_US)
        .map(|h| {
            (
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                h.mean(),
            )
        })
        .unwrap_or((0.0, 0.0, 0.0, 0.0));
    let classes = SloClass::ALL
        .iter()
        .map(|&class| {
            let ci = class.index();
            let (c50, c99) = registry
                .histogram(class.latency_metric())
                .map(|h| (h.percentile(0.50), h.percentile(0.99)))
                .unwrap_or((0.0, 0.0));
            ClassStats {
                class,
                arrivals: class_counts[CA][ci],
                completed: class_counts[CC][ci],
                dropped: class_counts[CD][ci],
                rejected: class_counts[CR][ci],
                shed: class_counts[CS][ci],
                failed: class_counts[CF][ci],
                slo_violations: class_counts[CV][ci],
                p50_us: c50,
                p99_us: c99,
            }
        })
        .collect();
    let arrivals = cfg.total_arrivals() as u64;
    let span_s = (last_completion.saturating_sub(first_arrival)).max(1) as f64 / NS_PER_SEC;
    let lost = dropped + rejected + shed + failed + stranded;
    let sustainable = completed > 0
        && (lost as f64) <= cfg.drop_tolerance * arrivals as f64
        && p99 <= cfg.slo_ns as f64 / 1_000.0;
    let mean_instances = if last_event_t == 0 {
        capacity_now as f64
    } else {
        capacity_integral / last_event_t as f64
    };

    RatePoint {
        offered_qps,
        arrivals,
        completed,
        dropped,
        rejected,
        shed,
        failed,
        stranded,
        preempted,
        slo_violations: violations,
        batches,
        crashes,
        recoveries,
        codec_faults,
        codec_retries,
        codec_fallbacks,
        scale_ups,
        scale_downs,
        mean_instances,
        peak_instances,
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
        mean_us: mean,
        goodput_qps: within_slo as f64 / span_s,
        mean_batch: if batches == 0 {
            0.0
        } else {
            batch_requests as f64 / batches as f64
        },
        max_queue_depth: max_depth,
        peak_slowdown,
        sustainable,
        classes,
        metrics: registry.summary(),
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::super::admission::AdmissionConfig;
    use super::super::autoscale::AutoscaleConfig;
    use super::super::chaos::ChaosConfig;
    use super::super::determinism::require_byte_identical;
    use super::super::service::ServiceProfile;
    use super::super::TenantSpec;
    use super::*;
    use zcomp_dnn::models::ModelId;
    use zcomp_kernels::layer_exec::Scheme;

    /// 1 ms/batch fixed-cost node: 1 GHz clock, batch-independent cost.
    fn test_cfg(instances: usize, max_batch: usize) -> (ServeConfig, ServiceModel) {
        let mut cfg = ServeConfig::new(ModelId::Googlenet, Scheme::None, max_batch);
        cfg.instances = instances;
        cfg.arrivals_per_tenant = 400;
        cfg.tenants = vec![TenantSpec {
            shape: super::super::arrival::ArrivalShape::Poisson,
            weight: 1.0,
            class: SloClass::Interactive,
        }];
        cfg.slo_ns = 3_000_000; // 3 ms
        cfg.max_wait_ns = 750_000;
        let mut profiles = BTreeMap::new();
        for padded in [1usize, 2, 4, 8, 16] {
            profiles.insert(
                padded,
                ServiceProfile {
                    base_cycles: 1_000_000.0, // 1 ms at 1 GHz
                    dram_bytes: 0.0,
                    noc_bytes: 0.0,
                },
            );
        }
        (cfg, ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles))
    }

    fn accounted(p: &RatePoint) -> u64 {
        p.completed + p.dropped + p.rejected + p.shed + p.failed + p.stranded
    }

    #[test]
    fn light_load_completes_everything_under_slo() {
        let (cfg, mut service) = test_cfg(1, 1);
        // Capacity is 1000 qps; offer 100.
        let p = simulate(&cfg, &mut service, 100.0);
        assert_eq!(p.completed, p.arrivals);
        assert_eq!(p.dropped, 0);
        assert_eq!(p.slo_violations, 0);
        assert!(p.sustainable, "p99 {} us", p.p99_us);
        // Service alone is 1 ms; p99 must be at least that.
        assert!(p.p99_us >= 1_000.0);
    }

    #[test]
    fn overload_violates_slo_or_drops() {
        let (mut cfg, mut service) = test_cfg(1, 1);
        cfg.queue_cap = 16;
        let p = simulate(&cfg, &mut service, 5_000.0);
        assert!(!p.sustainable);
        assert!(p.dropped > 0 || p.slo_violations > 0);
    }

    #[test]
    fn batching_aggregates_under_pressure() {
        let (cfg, mut service) = test_cfg(1, 8);
        // At 2x the unbatched capacity the scheduler must batch.
        let p = simulate(&cfg, &mut service, 2_000.0);
        assert!(p.mean_batch > 1.5, "mean batch {}", p.mean_batch);
    }

    #[test]
    fn rate_points_replay_byte_identically() {
        let (cfg, mut s1) = test_cfg(2, 4);
        let (_, mut s2) = test_cfg(2, 4);
        let a = simulate(&cfg, &mut s1, 900.0);
        let b = simulate(&cfg, &mut s2, 900.0);
        require_byte_identical(&a, &b).expect("same seed must replay byte-identically");
    }

    #[test]
    fn contention_shows_up_in_peak_slowdown() {
        let (cfg, _) = test_cfg(4, 1);
        // DRAM-heavy profile: 2 M bytes at 1 B/cyc vs 1 M compute cycles —
        // bandwidth-bound even solo; with 4 instances busy it stretches 4x.
        let mut profiles = BTreeMap::new();
        for padded in [1usize, 2, 4, 8, 16] {
            profiles.insert(
                padded,
                ServiceProfile {
                    base_cycles: 1_000_000.0,
                    dram_bytes: 2_000_000.0,
                    noc_bytes: 0.0,
                },
            );
        }
        let mut service = ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles);
        let mut cfg = cfg;
        cfg.slo_ns = 30_000_000;
        let p = simulate(&cfg, &mut service, 1_500.0);
        assert!(p.peak_slowdown > 2.0, "peak slowdown {}", p.peak_slowdown);
    }

    #[test]
    fn flush_deadline_bounds_partial_batch_wait() {
        let (cfg, mut service) = test_cfg(1, 8);
        // 20 qps: batches never fill; max-wait must flush singles. Worst
        // case latency ≈ max_wait + service + small queueing.
        let p = simulate(&cfg, &mut service, 20.0);
        assert_eq!(p.completed, p.arrivals);
        assert!(p.mean_batch < 2.0);
        assert!(
            p.p99_us <= (cfg.max_wait_ns as f64 / 1_000.0) + 1_000.0 + 2_000.0,
            "p99 {} us",
            p.p99_us
        );
    }

    #[test]
    fn class_stats_partition_the_totals() {
        let (mut cfg, mut service) = test_cfg(2, 4);
        cfg.tenants = ServeConfig::new(ModelId::Googlenet, Scheme::None, 4).tenants;
        let p = simulate(&cfg, &mut service, 1_500.0);
        assert_eq!(p.classes.len(), 3);
        let sum = |f: fn(&ClassStats) -> u64| p.classes.iter().map(f).sum::<u64>();
        assert_eq!(sum(|c| c.arrivals), p.arrivals);
        assert_eq!(sum(|c| c.completed), p.completed);
        assert_eq!(sum(|c| c.dropped), p.dropped);
        assert_eq!(sum(|c| c.slo_violations), p.slo_violations);
    }

    #[test]
    fn protective_admission_rejects_and_sheds_under_overload() {
        let (mut cfg, mut service) = test_cfg(1, 1);
        cfg.admission = AdmissionConfig::protective();
        let p = simulate(&cfg, &mut service, 20_000.0);
        assert!(p.rejected > 0, "token bucket must reject at 20x capacity");
        assert_eq!(accounted(&p), p.arrivals);
        // Retry-after hints were recorded for the rejected tenants.
        assert!(p
            .metrics
            .histograms
            .iter()
            .any(|h| h.name == names::RETRY_AFTER_MS && h.count > 0));
    }

    #[test]
    fn deadline_shedder_drops_stale_queue_heads() {
        let (mut cfg, mut service) = test_cfg(1, 1);
        cfg.queue_cap = 4_096; // deep queue: let requests age instead of dropping
        cfg.admission.deadline_shed = true;
        let p = simulate(&cfg, &mut service, 5_000.0);
        assert!(p.shed > 0, "5x overload must shed stale heads");
        assert_eq!(accounted(&p), p.arrivals);
    }

    #[test]
    fn crashes_preempt_and_requeue_without_losing_requests() {
        let (mut cfg, mut service) = test_cfg(2, 4);
        cfg.slo_ns = 400_000_000;
        cfg.chaos = Some(ChaosConfig {
            mttf_s: 0.05,
            mttr_s: 0.01,
            ..ChaosConfig::quiet(7)
        });
        let p = simulate(&cfg, &mut service, 800.0);
        assert!(p.crashes > 0, "50 ms MTTF over ~1 s must crash");
        assert!(p.preempted > 0, "a busy fleet must lose in-flight batches");
        assert_eq!(accounted(&p), p.arrivals);
        assert!(p.completed > 0);
    }

    #[test]
    fn dead_fleet_strands_the_backlog() {
        let (mut cfg, mut service) = test_cfg(1, 1);
        // Crash almost immediately, never recover within the horizon.
        cfg.chaos = Some(ChaosConfig {
            mttf_s: 1e-6,
            mttr_s: 1e6,
            ..ChaosConfig::quiet(3)
        });
        let p = simulate(&cfg, &mut service, 1_000.0);
        assert!(p.stranded > 0, "no instance left ⇒ stranded backlog");
        assert_eq!(accounted(&p), p.arrivals);
        assert!(!p.sustainable);
    }

    /// Flat 1 ms compressed profile whose uncompressed fallback costs 2x.
    fn scaled_fallback_model() -> ServiceModel {
        let profiles = (0..5)
            .map(|i| {
                (
                    1usize << i,
                    ServiceProfile {
                        base_cycles: 1_000_000.0,
                        dram_bytes: 0.0,
                        noc_bytes: 0.0,
                    },
                )
            })
            .collect();
        ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles).with_fallback_scale(2.0)
    }

    #[test]
    fn degrade_completes_what_hard_fail_fails() {
        let (mut cfg, _) = test_cfg(2, 4);
        cfg.scheme = Scheme::Zcomp; // codec faults only strike compressed streams
        cfg.slo_ns = 60_000_000;
        let chaos = ChaosConfig {
            codec_fault_rate: 0.3,
            transient_fraction: 0.0, // every fault persistent ⇒ fallback
            ..ChaosConfig::quiet(11)
        };
        cfg.chaos = Some(ChaosConfig {
            policy: DegradePolicy::Degrade,
            ..chaos
        });
        let degraded = simulate(&cfg, &mut scaled_fallback_model(), 700.0);
        assert!(degraded.codec_faults > 0);
        assert_eq!(degraded.codec_fallbacks, degraded.codec_faults);
        assert_eq!(degraded.failed, 0, "degrade mode never hard-fails requests");
        assert_eq!(accounted(&degraded), degraded.arrivals);

        cfg.chaos = Some(ChaosConfig {
            policy: DegradePolicy::HardFail,
            ..chaos
        });
        let hard = simulate(&cfg, &mut scaled_fallback_model(), 700.0);
        assert!(hard.failed > 0, "hard-fail mode fails faulted batches");
        assert_eq!(accounted(&hard), hard.arrivals);
        assert!(
            degraded.completed > hard.completed,
            "degrade ({}) must complete more than hard-fail ({})",
            degraded.completed,
            hard.completed
        );
    }

    #[test]
    fn transient_faults_recover_with_retries_not_fallbacks() {
        let (mut cfg, mut service) = test_cfg(2, 4);
        cfg.scheme = Scheme::Zcomp;
        cfg.slo_ns = 60_000_000;
        cfg.chaos = Some(ChaosConfig {
            codec_fault_rate: 0.3,
            transient_fraction: 1.0,
            ..ChaosConfig::quiet(13)
        });
        let p = simulate(&cfg, &mut service, 700.0);
        assert!(p.codec_faults > 0);
        assert_eq!(p.codec_fallbacks, 0, "transient faults never fall back");
        assert_eq!(p.codec_retries, p.codec_faults, "one retry per transient");
        assert_eq!(p.failed, 0);
    }

    #[test]
    fn autoscaler_grows_the_fleet_under_load() {
        let (mut cfg, mut service) = test_cfg(1, 1);
        cfg.slo_ns = 200_000_000;
        cfg.autoscale = Some(AutoscaleConfig {
            min_instances: 1,
            max_instances: 4,
            cold_start_ns: 2_000_000,
            eval_interval_ns: 1_000_000,
            ..AutoscaleConfig::default()
        });
        // 3x the single-instance capacity: depth builds, the scaler reacts.
        let p = simulate(&cfg, &mut service, 3_000.0);
        assert!(p.scale_ups > 0, "sustained overload must scale up");
        assert!(p.peak_instances > 1);
        assert!(p.mean_instances > 1.0, "mean {}", p.mean_instances);
        assert_eq!(accounted(&p), p.arrivals);
    }

    #[test]
    fn chaos_runs_replay_byte_identically() {
        let mk = || {
            let (mut cfg, service) = test_cfg(2, 4);
            cfg.scheme = Scheme::Zcomp;
            cfg.slo_ns = 100_000_000;
            cfg.admission = AdmissionConfig::protective();
            cfg.chaos = Some(ChaosConfig {
                mttf_s: 0.05,
                mttr_s: 0.01,
                codec_fault_rate: 0.1,
                ..ChaosConfig::quiet(21)
            });
            cfg.autoscale = Some(AutoscaleConfig {
                max_instances: 4,
                ..AutoscaleConfig::default()
            });
            (cfg, service)
        };
        let (cfg, mut s1) = mk();
        let (_, mut s2) = mk();
        let a = simulate(&cfg, &mut s1, 1_200.0);
        let b = simulate(&cfg, &mut s2, 1_200.0);
        require_byte_identical(&a, &b).expect("chaos runs must replay byte-identically");
        assert!(a.crashes > 0 && a.codec_faults > 0, "chaos actually ran");
    }

    #[test]
    fn audited_run_matches_unaudited_point() {
        let (cfg, mut s1) = test_cfg(2, 4);
        let (_, mut s2) = test_cfg(2, 4);
        let plain = simulate(&cfg, &mut s1, 900.0);
        let (audited, audits) = simulate_audited(&cfg, &mut s2, 900.0);
        require_byte_identical(&plain, &audited).expect("audit must not perturb the simulation");
        assert_eq!(audits.len() as u64, plain.batches);
    }
}
