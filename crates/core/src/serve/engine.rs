//! Discrete-event simulation of one rate point.
//!
//! Everything runs on a simulated nanosecond clock — there is no
//! wall-clock anywhere, so a rate point is a pure function of
//! `(ServeConfig, offered QPS)` and replays byte-identically. Events are
//! ordered by `(time, sequence)`; the sequence number breaks ties
//! deterministically in insertion order.
//!
//! The scheduler is the standard serving policy pair:
//!
//! * **max-batch**: an instance takes up to `max_batch` requests from one
//!   tenant's queue (batches never mix tenants — they run different
//!   drifted checkpoints);
//! * **max-wait**: a queue head older than `max_wait_ns` flushes a
//!   partial batch rather than waiting for a full one.
//!
//! Among dispatchable tenants the oldest queue head wins (oldest-first
//! avoids starving low-rate tenants). Request latency is
//! `batch completion − arrival`; completions price the batch through
//! [`ServiceModel::batch_cost`] with the number of busy instances at
//! admission, which is where shared-bandwidth contention bites.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};
use zcomp_trace::metrics::{MetricsRegistry, MetricsSummary};
use zcomp_trace::serve as trace_serve;
use zcomp_trace::serve::names;

use super::arrival::{self, NS_PER_SEC};
use super::service::ServiceModel;
use super::ServeConfig;

/// Outcome of simulating one offered rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Offered load, queries per second (all tenants combined).
    pub offered_qps: f64,
    /// Requests generated.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at full queues.
    pub dropped: u64,
    /// Completed requests that exceeded the SLO.
    pub slo_violations: u64,
    /// Batches admitted.
    pub batches: u64,
    /// Latency percentiles, microseconds (from the registry histogram).
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Completed-within-SLO requests per second of simulated time.
    pub goodput_qps: f64,
    /// Mean admitted batch size.
    pub mean_batch: f64,
    /// Peak total queue depth observed at an arrival.
    pub max_queue_depth: u64,
    /// Worst per-batch contention slowdown.
    pub peak_slowdown: f64,
    /// Whether this rate meets the SLO: completions happened, drops are
    /// within tolerance, and p99 is under the bound.
    pub sustainable: bool,
    /// Full metrics snapshot (latency/queue/batch histograms, counters).
    pub metrics: MetricsSummary,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A request for `tenant` arrives (its timestamp is the event time).
    Arrival { tenant: usize },
    /// An instance finishes its batch.
    Done,
    /// A tenant's max-wait deadline fires; re-examine its queue.
    Flush { tenant: usize },
}

type Event = (u64, u64, EventKind);

/// Simulates one offered rate through `service`, returning the rate
/// point's statistics.
pub fn simulate(cfg: &ServeConfig, service: &mut ServiceModel, offered_qps: f64) -> RatePoint {
    cfg.validate();
    assert!(offered_qps > 0.0, "offered rate must be positive");
    assert!(cfg.slo_ns > 0, "derive the SLO before simulating");
    let _span = trace_serve::rate_point_span();

    let weight_sum: f64 = cfg.tenants.iter().map(|t| t.weight).sum();
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut first_arrival = u64::MAX;
    for (ti, tenant) in cfg.tenants.iter().enumerate() {
        let rate = offered_qps * tenant.weight / weight_sum;
        let stream = arrival::generate(
            tenant.shape,
            rate,
            cfg.arrivals_per_tenant,
            cfg.seed ^ (ti as u64).wrapping_mul(0x9E37_79B9),
        );
        first_arrival = first_arrival.min(stream[0]);
        for t in stream {
            heap.push(Reverse((t, seq, EventKind::Arrival { tenant: ti })));
            seq += 1;
        }
    }

    // Drift epochs split the expected trace horizon evenly; simulated
    // time beyond the horizon stays in the last epoch.
    let horizon_ns = (cfg.total_arrivals() as f64 / offered_qps * NS_PER_SEC) as u64;
    let epoch_len = (horizon_ns / cfg.drift_epochs as u64).max(1);
    let epoch_of = |now: u64| ((now / epoch_len) as usize).min(cfg.drift_epochs - 1);

    let mut registry = MetricsRegistry::new();
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.tenants.len()];
    let mut flush_at: Vec<Option<u64>> = vec![None; cfg.tenants.len()];
    let mut busy = 0usize;
    let (mut completed, mut dropped, mut violations, mut batches) = (0u64, 0u64, 0u64, 0u64);
    let mut batch_requests = 0u64;
    let mut within_slo = 0u64;
    let mut max_depth = 0u64;
    let mut peak_slowdown = 1.0f64;
    let mut last_completion = 0u64;

    while let Some(Reverse((now, _, kind))) = heap.pop() {
        match kind {
            EventKind::Arrival { tenant } => {
                if queues[tenant].len() >= cfg.queue_cap {
                    dropped += 1;
                } else {
                    queues[tenant].push_back(now);
                }
                let depth: usize = queues.iter().map(VecDeque::len).sum();
                max_depth = max_depth.max(depth as u64);
                registry.observe(names::QUEUE_DEPTH, depth as f64);
                trace_serve::queue_depth(depth as f64);
            }
            EventKind::Done => busy -= 1,
            EventKind::Flush { tenant } => {
                if flush_at[tenant] == Some(now) {
                    flush_at[tenant] = None;
                }
            }
        }

        // Admit batches while instances are free; otherwise arm the
        // earliest max-wait deadline so partial batches still flush.
        while busy < cfg.instances {
            let mut pick: Option<(u64, usize)> = None;
            for (ti, q) in queues.iter().enumerate() {
                if let Some(&head) = q.front() {
                    let ready = q.len() >= cfg.max_batch || now >= head + cfg.max_wait_ns;
                    if ready && pick.is_none_or(|(h, _)| head < h) {
                        pick = Some((head, ti));
                    }
                }
            }
            let Some((_, ti)) = pick else { break };
            let take = queues[ti].len().min(cfg.max_batch);
            busy += 1;
            let cost = service.batch_cost(ti, epoch_of(now), take, busy);
            peak_slowdown = peak_slowdown.max(cost.slowdown);
            let done_at = now + cost.ns;
            last_completion = last_completion.max(done_at);
            for _ in 0..take {
                let arrived = queues[ti].pop_front().expect("batch within queue length");
                let latency_ns = done_at - arrived;
                registry.observe(names::LATENCY_US, latency_ns as f64 / 1_000.0);
                if latency_ns > cfg.slo_ns {
                    violations += 1;
                } else {
                    within_slo += 1;
                }
                completed += 1;
            }
            batches += 1;
            batch_requests += take as u64;
            registry.observe(names::BATCH_SIZE, take as f64);
            registry.observe(names::SLOWDOWN_MILLI, cost.slowdown * 1000.0);
            trace_serve::slowdown(cost.slowdown);
            heap.push(Reverse((done_at, seq, EventKind::Done)));
            seq += 1;
        }

        // Arm one flush deadline for the earliest still-waiting head.
        if busy < cfg.instances {
            for (ti, q) in queues.iter().enumerate() {
                if let Some(&head) = q.front() {
                    let deadline = (head + cfg.max_wait_ns).max(now + 1);
                    if flush_at[ti].is_none_or(|d| d > deadline) {
                        flush_at[ti] = Some(deadline);
                        heap.push(Reverse((deadline, seq, EventKind::Flush { tenant: ti })));
                        seq += 1;
                    }
                }
            }
        }
    }

    registry.incr(names::COMPLETED, completed);
    registry.incr(names::DROPPED, dropped);
    registry.incr(names::SLO_VIOLATIONS, violations);
    registry.incr(names::BATCHES, batches);

    let (p50, p95, p99, mean) = registry
        .histogram(names::LATENCY_US)
        .map(|h| {
            (
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                h.mean(),
            )
        })
        .unwrap_or((0.0, 0.0, 0.0, 0.0));
    let arrivals = cfg.total_arrivals() as u64;
    let span_s = (last_completion.saturating_sub(first_arrival)).max(1) as f64 / NS_PER_SEC;
    let sustainable = completed > 0
        && (dropped as f64) <= cfg.drop_tolerance * arrivals as f64
        && p99 <= cfg.slo_ns as f64 / 1_000.0;

    RatePoint {
        offered_qps,
        arrivals,
        completed,
        dropped,
        slo_violations: violations,
        batches,
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
        mean_us: mean,
        goodput_qps: within_slo as f64 / span_s,
        mean_batch: if batches == 0 {
            0.0
        } else {
            batch_requests as f64 / batches as f64
        },
        max_queue_depth: max_depth,
        peak_slowdown,
        sustainable,
        metrics: registry.summary(),
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::super::service::ServiceProfile;
    use super::super::TenantSpec;
    use super::*;
    use zcomp_dnn::models::ModelId;
    use zcomp_kernels::layer_exec::Scheme;

    /// 1 ms/batch fixed-cost node: 1 GHz clock, batch-independent cost.
    fn test_cfg(instances: usize, max_batch: usize) -> (ServeConfig, ServiceModel) {
        let mut cfg = ServeConfig::new(ModelId::Googlenet, Scheme::None, max_batch);
        cfg.instances = instances;
        cfg.arrivals_per_tenant = 400;
        cfg.tenants = vec![TenantSpec {
            shape: super::super::arrival::ArrivalShape::Poisson,
            weight: 1.0,
        }];
        cfg.slo_ns = 3_000_000; // 3 ms
        cfg.max_wait_ns = 750_000;
        let mut profiles = BTreeMap::new();
        for padded in [1usize, 2, 4, 8, 16] {
            profiles.insert(
                padded,
                ServiceProfile {
                    base_cycles: 1_000_000.0, // 1 ms at 1 GHz
                    dram_bytes: 0.0,
                    noc_bytes: 0.0,
                },
            );
        }
        (cfg, ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles))
    }

    #[test]
    fn light_load_completes_everything_under_slo() {
        let (cfg, mut service) = test_cfg(1, 1);
        // Capacity is 1000 qps; offer 100.
        let p = simulate(&cfg, &mut service, 100.0);
        assert_eq!(p.completed, p.arrivals);
        assert_eq!(p.dropped, 0);
        assert_eq!(p.slo_violations, 0);
        assert!(p.sustainable, "p99 {} us", p.p99_us);
        // Service alone is 1 ms; p99 must be at least that.
        assert!(p.p99_us >= 1_000.0);
    }

    #[test]
    fn overload_violates_slo_or_drops() {
        let (mut cfg, mut service) = test_cfg(1, 1);
        cfg.queue_cap = 16;
        let p = simulate(&cfg, &mut service, 5_000.0);
        assert!(!p.sustainable);
        assert!(p.dropped > 0 || p.slo_violations > 0);
    }

    #[test]
    fn batching_aggregates_under_pressure() {
        let (cfg, mut service) = test_cfg(1, 8);
        // At 2x the unbatched capacity the scheduler must batch.
        let p = simulate(&cfg, &mut service, 2_000.0);
        assert!(p.mean_batch > 1.5, "mean batch {}", p.mean_batch);
    }

    #[test]
    fn rate_points_replay_byte_identically() {
        let (cfg, mut s1) = test_cfg(2, 4);
        let (_, mut s2) = test_cfg(2, 4);
        let a = simulate(&cfg, &mut s1, 900.0);
        let b = simulate(&cfg, &mut s2, 900.0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn contention_shows_up_in_peak_slowdown() {
        let (cfg, _) = test_cfg(4, 1);
        // DRAM-heavy profile: 2 M bytes at 1 B/cyc vs 1 M compute cycles —
        // bandwidth-bound even solo; with 4 instances busy it stretches 4x.
        let mut profiles = BTreeMap::new();
        for padded in [1usize, 2, 4, 8, 16] {
            profiles.insert(
                padded,
                ServiceProfile {
                    base_cycles: 1_000_000.0,
                    dram_bytes: 2_000_000.0,
                    noc_bytes: 0.0,
                },
            );
        }
        let mut service = ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles);
        let mut cfg = cfg;
        cfg.slo_ns = 30_000_000;
        let p = simulate(&cfg, &mut service, 1_500.0);
        assert!(p.peak_slowdown > 2.0, "peak slowdown {}", p.peak_slowdown);
    }

    #[test]
    fn flush_deadline_bounds_partial_batch_wait() {
        let (cfg, mut service) = test_cfg(1, 8);
        // 20 qps: batches never fill; max-wait must flush singles. Worst
        // case latency ≈ max_wait + service + small queueing.
        let p = simulate(&cfg, &mut service, 20.0);
        assert_eq!(p.completed, p.arrivals);
        assert!(p.mean_batch < 2.0);
        assert!(
            p.p99_us <= (cfg.max_wait_ns as f64 / 1_000.0) + 1_000.0 + 2_000.0,
            "p99 {} us",
            p.p99_us
        );
    }
}
