//! Rate sweep and SLO-knee bisection.
//!
//! An open-loop latency curve is flat until the offered rate approaches
//! capacity, then queueing delay blows up super-linearly — the *knee*.
//! [`find_knee`] locates it with a doubling scan (bracket the first
//! unsustainable rate) followed by geometric bisection (latency grows
//! multiplicatively near saturation, so midpoints in log space converge
//! evenly). The knee is the highest offered QPS whose rate point is
//! sustainable: completions happened, drops within tolerance, p99 under
//! the SLO — all read from the `MetricsRegistry` latency histogram.

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_kernels::layer_exec::Scheme;

use super::arrival::NS_PER_SEC;
use super::engine::{simulate, RatePoint};
use super::service::ServiceModel;
use super::ServeConfig;

/// Knee-search controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KneeOpts {
    /// Geometric bisection iterations after bracketing (each narrows the
    /// bracket by its square root).
    pub bisect_iters: usize,
    /// First probed rate, as a fraction of the node's ideal capacity
    /// (instances × max_batch / solo batch time).
    pub start_fraction: f64,
    /// Cap on doubling/halving steps while bracketing.
    pub max_scan_steps: usize,
}

impl Default for KneeOpts {
    fn default() -> Self {
        KneeOpts {
            bisect_iters: 6,
            start_fraction: 0.05,
            max_scan_steps: 12,
        }
    }
}

/// How the knee search terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KneeOutcome {
    /// The doubling scan bracketed an unsustainable rate and bisection
    /// converged — `knee_qps` is a real capacity estimate.
    Converged,
    /// Every probed rate stayed sustainable through `max_scan_steps`
    /// doublings: `knee_qps` is only a *lower bound*. The scan used to
    /// silently saturate here and report the last probe as the knee; the
    /// outcome makes the unfinished bracket visible so callers can widen
    /// the scan instead of publishing a too-small capacity.
    Unbounded,
    /// No probed rate was sustainable, even after halving down
    /// `max_scan_steps` times — `knee_qps` is zero.
    Infeasible,
}

impl KneeOutcome {
    /// Short stable label for tables and JSON-adjacent text.
    pub fn label(self) -> &'static str {
        match self {
            KneeOutcome::Converged => "converged",
            KneeOutcome::Unbounded => "unbounded",
            KneeOutcome::Infeasible => "infeasible",
        }
    }
}

/// A full rate-sweep curve for one (model, scheme) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCurve {
    /// Network served.
    pub model: ModelId,
    /// Compression scheme.
    pub scheme: Scheme,
    /// p99 SLO the knee is held to, microseconds.
    pub slo_p99_us: f64,
    /// Ideal capacity estimate (instances × max_batch / solo batch
    /// seconds), QPS; the scan's scale anchor.
    pub capacity_estimate_qps: f64,
    /// Highest sustainable offered QPS found.
    pub knee_qps: f64,
    /// Whether the search converged, saturated its scan (knee is a lower
    /// bound), or found nothing sustainable.
    pub outcome: KneeOutcome,
    /// Every rate point probed, sorted by offered QPS.
    pub points: Vec<RatePoint>,
}

/// Derives the latency SLO for a serving cell: `slo_factor` × the solo
/// *uncompressed* full-batch service time, so compressed and uncompressed
/// cells are held to the identical bound. Returns `(slo_ns, max_wait_ns)`
/// with the batching deadline at a quarter of the SLO.
pub fn derive_slo(
    uncompressed: &mut ServiceModel,
    max_batch: usize,
    slo_factor: f64,
) -> (u64, u64) {
    let solo = uncompressed.solo_ns(0, 0, max_batch);
    let slo_ns = (slo_factor * solo as f64) as u64;
    (slo_ns, slo_ns / 4)
}

/// Sweeps offered rate for `cfg`, returning the probed curve and knee.
pub fn find_knee(cfg: &ServeConfig, service: &mut ServiceModel, opts: &KneeOpts) -> ServeCurve {
    cfg.validate();
    let _span = zcomp_trace::serve::knee_span();
    let solo_ns = service.solo_ns(0, 0, cfg.max_batch);
    let capacity = (cfg.instances * cfg.max_batch) as f64 / (solo_ns as f64 / NS_PER_SEC);

    let mut points: Vec<RatePoint> = Vec::new();
    let mut eval = |qps: f64, points: &mut Vec<RatePoint>| -> bool {
        let p = simulate(cfg, service, qps);
        let ok = p.sustainable;
        points.push(p);
        ok
    };

    // Bracket: double from the start rate until unsustainable (or halve
    // until sustainable if the start already blows the SLO).
    let start = (capacity * opts.start_fraction).max(1.0);
    let mut lo: Option<f64> = None;
    let mut hi: Option<f64> = None;
    let mut q = start;
    if eval(q, &mut points) {
        lo = Some(q);
        for _ in 0..opts.max_scan_steps {
            q *= 2.0;
            if eval(q, &mut points) {
                lo = Some(q);
            } else {
                hi = Some(q);
                break;
            }
        }
    } else {
        hi = Some(q);
        for _ in 0..opts.max_scan_steps {
            q /= 2.0;
            if eval(q, &mut points) {
                lo = Some(q);
                break;
            } else {
                hi = Some(q);
            }
        }
    }

    let (knee, outcome) = match (lo, hi) {
        (Some(mut lo), Some(mut hi)) => {
            for _ in 0..opts.bisect_iters {
                let mid = (lo * hi).sqrt();
                if eval(mid, &mut points) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (lo, KneeOutcome::Converged)
        }
        // Never became unsustainable within the scan: the last
        // sustainable rate is only a lower bound — surface that instead
        // of silently saturating.
        (Some(lo), None) => (lo, KneeOutcome::Unbounded),
        // Nothing sustainable at any probed rate.
        (None, _) => (0.0, KneeOutcome::Infeasible),
    };

    points.sort_by(|a, b| a.offered_qps.total_cmp(&b.offered_qps));
    ServeCurve {
        model: cfg.model,
        scheme: cfg.scheme,
        slo_p99_us: cfg.slo_ns as f64 / 1_000.0,
        capacity_estimate_qps: capacity,
        knee_qps: knee,
        outcome,
        points,
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::super::arrival::ArrivalShape;
    use super::super::determinism::require_byte_identical;
    use super::super::service::ServiceProfile;
    use super::super::slo::SloClass;
    use super::super::TenantSpec;
    use super::*;

    fn one_ms_cfg() -> (ServeConfig, impl Fn() -> ServiceModel) {
        let mut cfg = ServeConfig::new(ModelId::Googlenet, Scheme::None, 1);
        cfg.instances = 2;
        cfg.arrivals_per_tenant = 500;
        cfg.tenants = vec![TenantSpec {
            shape: ArrivalShape::Poisson,
            weight: 1.0,
            class: SloClass::Interactive,
        }];
        let mut profiles = BTreeMap::new();
        profiles.insert(
            1usize,
            ServiceProfile {
                base_cycles: 1_000_000.0,
                dram_bytes: 0.0,
                noc_bytes: 0.0,
            },
        );
        let make_service = move || ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles.clone());
        (cfg, make_service)
    }

    #[test]
    fn knee_lands_between_half_and_full_capacity() {
        // 1 ms fixed batches, 2 instances, no batching: ideal capacity
        // 2000 qps. The knee must land in a sane band below it.
        let (mut cfg, make_service) = one_ms_cfg();
        let (slo, wait) = derive_slo(&mut make_service(), 1, 3.0);
        cfg.slo_ns = slo;
        cfg.max_wait_ns = wait;
        assert_eq!(slo, 3_000_000);

        let mut service = make_service();
        let curve = find_knee(&cfg, &mut service, &KneeOpts::default());
        assert!((curve.capacity_estimate_qps - 2000.0).abs() < 1.0);
        assert_eq!(curve.outcome, KneeOutcome::Converged);
        assert!(
            curve.knee_qps > 400.0 && curve.knee_qps <= 2100.0,
            "knee {}",
            curve.knee_qps
        );
        assert!(curve
            .points
            .windows(2)
            .all(|w| w[0].offered_qps <= w[1].offered_qps));

        // Byte-identical re-run.
        let again = find_knee(&cfg, &mut make_service(), &KneeOpts::default());
        require_byte_identical(&curve, &again).expect("knee search must replay byte-identically");
    }

    #[test]
    fn saturated_scan_reports_unbounded_not_a_knee() {
        // One doubling step from 5% of capacity can never reach the
        // saturation point: the scan must say so instead of passing the
        // last probe off as the knee.
        let (mut cfg, make_service) = one_ms_cfg();
        let (slo, wait) = derive_slo(&mut make_service(), 1, 3.0);
        cfg.slo_ns = slo;
        cfg.max_wait_ns = wait;
        let opts = KneeOpts {
            max_scan_steps: 1,
            ..KneeOpts::default()
        };
        let curve = find_knee(&cfg, &mut make_service(), &opts);
        assert_eq!(curve.outcome, KneeOutcome::Unbounded);
        assert!(
            curve.knee_qps < curve.capacity_estimate_qps / 2.0,
            "the reported lower bound ({}) is far from capacity ({})",
            curve.knee_qps,
            curve.capacity_estimate_qps
        );
    }

    #[test]
    fn impossible_slo_reports_infeasible() {
        let (mut cfg, make_service) = one_ms_cfg();
        // 1 ms service time against a 1 µs SLO: nothing can ever pass.
        cfg.slo_ns = 1_000;
        cfg.max_wait_ns = 250;
        let curve = find_knee(&cfg, &mut make_service(), &KneeOpts::default());
        assert_eq!(curve.outcome, KneeOutcome::Infeasible);
        assert_eq!(curve.knee_qps, 0.0);
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(KneeOutcome::Converged.label(), "converged");
        assert_eq!(KneeOutcome::Unbounded.label(), "unbounded");
        assert_eq!(KneeOutcome::Infeasible.label(), "infeasible");
    }
}
