//! Open-loop multi-tenant serving simulator.
//!
//! Restates the paper's Fig. 13/14 story — compression turns saved
//! DRAM/NoC traffic into end-to-end speedup — in serving terms:
//! *compression raises the sustainable QPS at a fixed p99 latency*. The
//! pipeline is
//!
//! ```text
//! arrival traces ─▶ per-tenant queues ─▶ batching scheduler ─▶ N instances
//!   (open loop)        (bounded)        (max-batch/max-wait)  (shared machine)
//! ```
//!
//! * [`arrival`] generates seeded open-loop request streams (Poisson,
//!   bursty, diurnal) per tenant.
//! * [`service`] prices each admitted batch by actually running
//!   `network_exec` on the Table-1 machine at the instance's thread
//!   share, with per-tenant sparsity drift, then applies a roofline
//!   contention model for the DRAM/NoC budgets the co-resident instances
//!   share.
//! * [`engine`] is the discrete-event loop: arrivals, queueing, batch
//!   admission, completion — entirely on a simulated nanosecond clock, so
//!   every rate point is byte-reproducible from the seed. Latency,
//!   queue-depth and batch-size distributions go through
//!   [`zcomp_trace::metrics::MetricsRegistry`] histograms.
//! * [`knee`] sweeps the offered rate and bisects the *knee*: the highest
//!   QPS whose p99 stays under the SLO with negligible drops.
//!
//! The resilience layer (see DESIGN.md "Serving resilience") sits on top:
//!
//! * [`slo`] — per-tenant SLO classes and the strict-priority +
//!   weighted-deficit batching scheduler.
//! * [`admission`] — per-tenant token-bucket rate limiting with
//!   capped-exponential retry-after hints, class-bounded queues, and the
//!   deadline-aware shedder policy.
//! * [`chaos`] — seeded instance crash/recovery schedules plus codec
//!   faults resolved through the PR-1 retry-then-uncompressed policy.
//! * [`autoscale`] — a reactive instance-count controller with
//!   hysteresis and cold-start delay.
//! * [`determinism`] — non-panicking byte-identity self-checks for the
//!   "same seed ⇒ same report" invariant.
//!
//! The grid experiments on top live in [`crate::experiments::serve`] and
//! [`crate::experiments::serve_chaos`]; the CLI driver is the `serve_run`
//! binary in `zcomp-bench`.

pub mod admission;
pub mod arrival;
pub mod autoscale;
pub mod chaos;
pub mod determinism;
pub mod engine;
pub mod knee;
pub mod service;
pub mod slo;

use serde::{Deserialize, Serialize};
use zcomp_dnn::models::ModelId;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_sim::config::SimConfig;

use admission::AdmissionConfig;
use arrival::ArrivalShape;
use autoscale::AutoscaleConfig;
use chaos::ChaosConfig;
use slo::SloClass;

/// One tenant of the serving node: an arrival shape, the share of the
/// total offered rate it receives, and its SLO class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Arrival trace shape.
    pub shape: ArrivalShape,
    /// Relative share of the total offered QPS (normalized over tenants).
    pub weight: f64,
    /// Service class: scheduling priority, queue bound and deadline
    /// budget (see [`slo::SloClass`]).
    pub class: SloClass,
}

/// Full configuration of one serving simulation (one model, one scheme,
/// one machine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Network being served.
    pub model: ModelId,
    /// Compression scheme for feature maps ([`Scheme::None`] vs
    /// [`Scheme::Zcomp`]).
    pub scheme: Scheme,
    /// Tenants sharing the node.
    pub tenants: Vec<TenantSpec>,
    /// Concurrent model instances; each runs with `cores / instances`
    /// threads.
    pub instances: usize,
    /// Maximum batch size admitted per instance (power of two; smaller
    /// batches are padded to the next power of two for costing).
    pub max_batch: usize,
    /// Per-tenant queue capacity; arrivals beyond it are dropped.
    pub queue_cap: usize,
    /// Arrivals generated per tenant at each rate point.
    pub arrivals_per_tenant: usize,
    /// Number of sparsity drift epochs the trace horizon is split into.
    pub drift_epochs: usize,
    /// Fraction of the machine's DRAM bandwidth available to the serving
    /// pool (the rest is pinned by co-located dense tenants; see
    /// DESIGN.md "Serving scenario").
    pub dram_share: f64,
    /// Fraction of the aggregate L3/NoC fill bandwidth available to the
    /// pool.
    pub noc_share: f64,
    /// p99 latency SLO, nanoseconds.
    pub slo_ns: u64,
    /// Batching deadline: a queue head older than this is flushed even if
    /// the batch is not full.
    pub max_wait_ns: u64,
    /// Fraction of arrivals that may be dropped while still counting as
    /// sustainable.
    pub drop_tolerance: f64,
    /// Master seed; tenant streams and drift derive from it.
    pub seed: u64,
    /// Simulated machine.
    pub sim: SimConfig,
    /// Admission control: token-bucket rate limiting and deadline
    /// shedding (defaults to the permissive PR-8 policy).
    pub admission: AdmissionConfig,
    /// Chaos process: instance crashes and codec faults. `None` runs a
    /// healthy fleet.
    pub chaos: Option<ChaosConfig>,
    /// Reactive autoscaler. `None` keeps the fleet fixed at `instances`.
    pub autoscale: Option<AutoscaleConfig>,
}

impl ServeConfig {
    /// A serving node for `model` under `scheme` on the Table-1 machine
    /// with the default tenant mix and knobs. `slo_ns`/`max_wait_ns`
    /// start at zero — derive them with
    /// [`knee::derive_slo`](crate::serve::knee::derive_slo) before
    /// simulating.
    pub fn new(model: ModelId, scheme: Scheme, max_batch: usize) -> Self {
        ServeConfig {
            model,
            scheme,
            tenants: vec![
                TenantSpec {
                    shape: ArrivalShape::Poisson,
                    weight: 0.5,
                    class: SloClass::Interactive,
                },
                TenantSpec {
                    shape: ArrivalShape::Bursty {
                        on_fraction: 0.4,
                        mean_on_arrivals: 12.0,
                    },
                    weight: 0.3,
                    class: SloClass::Batch,
                },
                TenantSpec {
                    shape: ArrivalShape::Diurnal {
                        amplitude: 0.6,
                        periods: 2.0,
                    },
                    weight: 0.2,
                    class: SloClass::BestEffort,
                },
            ],
            instances: 4,
            max_batch,
            queue_cap: 512,
            arrivals_per_tenant: 600,
            drift_epochs: 2,
            dram_share: 0.08,
            noc_share: 0.5,
            slo_ns: 0,
            max_wait_ns: 0,
            drop_tolerance: 0.01,
            seed: 0x5eed_5e12e,
            sim: SimConfig::table1(),
            admission: AdmissionConfig::permissive(),
            chaos: None,
            autoscale: None,
        }
    }

    /// Threads each instance runs with (the machine's cores split evenly).
    pub fn threads_per_instance(&self) -> usize {
        (self.sim.cores / self.instances).max(1)
    }

    /// Checks structural invariants the engine assumes.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant list, non-positive weights, a
    /// non-power-of-two `max_batch`, zero instances, or shares outside
    /// `(0, 1]`.
    pub fn validate(&self) {
        assert!(!self.tenants.is_empty(), "at least one tenant required");
        assert!(
            self.tenants.iter().all(|t| t.weight > 0.0),
            "tenant weights must be positive"
        );
        assert!(
            self.max_batch.is_power_of_two(),
            "max_batch must be a power of two (batches are padded to one)"
        );
        assert!(self.instances >= 1, "at least one instance required");
        assert!(
            self.dram_share > 0.0 && self.dram_share <= 1.0,
            "dram_share must be in (0, 1]"
        );
        assert!(
            self.noc_share > 0.0 && self.noc_share <= 1.0,
            "noc_share must be in (0, 1]"
        );
        assert!(self.arrivals_per_tenant > 0, "arrivals required");
        assert!(self.drift_epochs >= 1, "at least one drift epoch");
        self.admission.validate();
        if let Some(chaos) = &self.chaos {
            chaos.validate();
        }
        if let Some(scale) = &self.autoscale {
            scale.validate();
            assert!(
                self.instances >= scale.min_instances && self.instances <= scale.max_instances,
                "instances must start inside the autoscale range"
            );
        }
    }

    /// Instance slots the engine allocates: the configured fleet, plus
    /// headroom up to the autoscaler's ceiling.
    pub fn instance_slots(&self) -> usize {
        self.autoscale
            .as_ref()
            .map_or(self.instances, |s| s.max_instances.max(self.instances))
    }

    /// Total arrivals generated across tenants at one rate point.
    pub fn total_arrivals(&self) -> usize {
        self.arrivals_per_tenant * self.tenants.len()
    }
}
