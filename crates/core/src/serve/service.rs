//! Batch service-time model: solo cost from `network_exec`, shared-machine
//! cost from a roofline contention model.
//!
//! Each admitted batch is priced in two steps:
//!
//! 1. **Solo profile.** The batch's network (the tenant's drifted sparsity
//!    at the current drift epoch, padded to a power-of-two batch size) is
//!    actually executed once through the cycle-level simulator at the
//!    instance's thread share. That yields the solo wall cycles plus the
//!    batch's DRAM and L3-fill byte demand. Profiles are memoized per
//!    `(tenant, drift epoch, padded batch)` — the discrete-event loop then
//!    replays them thousands of times for free.
//!
//! 2. **Contention.** Co-resident instances share the machine's DRAM and
//!    NoC budgets. With `k` instances busy, each sees `1/k` of the pool's
//!    bandwidth, so a batch's effective time is the roofline
//!    `max(solo_cycles, k·dram_cycles, k·noc_cycles)` where `dram_cycles`
//!    is the time to move the batch's DRAM bytes at the pool's full
//!    bandwidth (`dram_share` of the machine), and likewise for the NoC.
//!    Compression lowers the byte terms — that, not the modest solo
//!    speedup, is what moves the serving knee.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use zcomp_dnn::network::Network;
use zcomp_dnn::sparsity::{SparsityModel, TenantDrift};
use zcomp_isa::uops::UopTable;
use zcomp_kernels::layer_exec::Scheme;
use zcomp_kernels::network_exec::{run_network, NetworkExecOpts};
use zcomp_sim::engine::Machine;

use super::ServeConfig;

/// Solo cost of one (tenant, drift-epoch, padded-batch) combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Wall cycles of the solo run at the instance's thread share.
    pub base_cycles: f64,
    /// DRAM bytes moved by the batch.
    pub dram_bytes: f64,
    /// L3 fill bytes (the NoC-side demand).
    pub noc_bytes: f64,
}

/// Cost of one admitted batch under contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCost {
    /// Simulated service time, nanoseconds.
    pub ns: u64,
    /// Effective / solo cycles (1.0 = no contention stretch).
    pub slowdown: f64,
}

/// Where solo profiles come from.
enum Backend {
    /// Real cycle-level simulation of the configured network.
    Network {
        cfg: Box<ServeConfig>,
        tenants: Vec<TenantDrift>,
        /// Built networks per padded batch size.
        nets: BTreeMap<usize, Network>,
    },
    /// Fixed profiles per padded batch size — unit-test backend, no
    /// simulator in the loop. Fallback (uncompressed) costs scale the
    /// primary profile by `fallback_scale`.
    Fixed {
        profiles: BTreeMap<usize, ServiceProfile>,
        fallback_scale: f64,
    },
}

/// Memoizing service-time model shared by all instances of one node.
pub struct ServiceModel {
    clock_hz: f64,
    /// Pool DRAM bandwidth, bytes per cycle.
    dram_budget: f64,
    /// Pool NoC (aggregate L3 fill) bandwidth, bytes per cycle.
    noc_budget: f64,
    threads: usize,
    backend: Backend,
    memo: BTreeMap<(usize, usize, usize), ServiceProfile>,
    /// Uncompressed-fallback profiles for degraded batches (only
    /// populated when the chaos path asks for them).
    fallback_memo: BTreeMap<(usize, usize, usize), ServiceProfile>,
}

impl ServiceModel {
    /// Builds the real-network model for `cfg`: per-tenant drift views of
    /// the shared default [`SparsityModel`], budgets carved out of the
    /// Table-1 machine by `dram_share`/`noc_share`.
    pub fn for_network(cfg: &ServeConfig) -> ServiceModel {
        cfg.validate();
        let model = SparsityModel::default();
        let tenants = (0..cfg.tenants.len() as u64)
            .map(|t| model.for_tenant(cfg.seed ^ t))
            .collect();
        let clock_hz = cfg.sim.clock_hz;
        let dram_budget = cfg.sim.dram.bytes_per_cycle(clock_hz) * cfg.dram_share;
        let noc_budget =
            cfg.sim.l3_bw_bytes_per_cycle_per_core * cfg.sim.cores as f64 * cfg.noc_share;
        ServiceModel {
            clock_hz,
            dram_budget,
            noc_budget,
            threads: cfg.threads_per_instance(),
            backend: Backend::Network {
                cfg: Box::new(cfg.clone()),
                tenants,
                nets: BTreeMap::new(),
            },
            memo: BTreeMap::new(),
            fallback_memo: BTreeMap::new(),
        }
    }

    /// Test backend: fixed solo profiles per padded batch size.
    pub fn fixed(
        clock_hz: f64,
        dram_budget: f64,
        noc_budget: f64,
        profiles: BTreeMap<usize, ServiceProfile>,
    ) -> ServiceModel {
        ServiceModel {
            clock_hz,
            dram_budget,
            noc_budget,
            threads: 1,
            backend: Backend::Fixed {
                profiles,
                fallback_scale: 1.0,
            },
            memo: BTreeMap::new(),
            fallback_memo: BTreeMap::new(),
        }
    }

    /// Scales the test backend's uncompressed-fallback profiles relative
    /// to the primary ones (no-op for the network backend, which prices
    /// fallback by actually re-running under [`Scheme::None`]).
    pub fn with_fallback_scale(mut self, scale: f64) -> ServiceModel {
        if let Backend::Fixed { fallback_scale, .. } = &mut self.backend {
            *fallback_scale = scale;
        }
        self
    }

    /// Solo profile for a batch, simulating on first use. With
    /// `fallback`, prices the batch under [`Scheme::None`] — the cost of
    /// the degraded (uncompressed) service a faulted stream browns out
    /// to.
    fn profile_at(
        &mut self,
        tenant: usize,
        epoch: usize,
        padded: usize,
        fallback: bool,
    ) -> ServiceProfile {
        let key = (tenant, epoch, padded);
        let memo = if fallback {
            &self.fallback_memo
        } else {
            &self.memo
        };
        if let Some(&p) = memo.get(&key) {
            return p;
        }
        let profile = match &mut self.backend {
            Backend::Fixed {
                profiles,
                fallback_scale,
            } => {
                let base = *profiles
                    .get(&padded)
                    .unwrap_or_else(|| panic!("no fixed profile for padded batch {padded}"));
                if fallback {
                    ServiceProfile {
                        base_cycles: base.base_cycles * *fallback_scale,
                        dram_bytes: base.dram_bytes * *fallback_scale,
                        noc_bytes: base.noc_bytes * *fallback_scale,
                    }
                } else {
                    base
                }
            }
            Backend::Network { cfg, tenants, nets } => {
                let _span = zcomp_trace::serve::profile_span();
                let net = nets
                    .entry(padded)
                    .or_insert_with(|| cfg.model.build(padded));
                let sparsity = tenants[tenant].profile(net, epoch);
                let mut machine = Machine::new(cfg.sim.clone(), UopTable::skylake_x());
                let scheme = if fallback { Scheme::None } else { cfg.scheme };
                let result = run_network(
                    &mut machine,
                    net,
                    &sparsity,
                    &NetworkExecOpts {
                        scheme,
                        training: false,
                        threads: self.threads,
                        ..NetworkExecOpts::default()
                    },
                );
                ServiceProfile {
                    base_cycles: result.summary.wall_cycles,
                    dram_bytes: result.summary.traffic.dram_bytes as f64,
                    noc_bytes: result.summary.traffic.l3_fill_bytes as f64,
                }
            }
        };
        if fallback {
            self.fallback_memo.insert(key, profile);
        } else {
            self.memo.insert(key, profile);
        }
        profile
    }

    /// Cost of a `batch`-request batch for `tenant` at drift `epoch` with
    /// `busy` instances running concurrently (including this one). The
    /// batch is padded to the next power of two for costing.
    pub fn batch_cost(
        &mut self,
        tenant: usize,
        epoch: usize,
        batch: usize,
        busy: usize,
    ) -> BatchCost {
        self.cost_at(tenant, epoch, batch, busy, false)
    }

    /// Cost of the same batch served through the *uncompressed* fallback
    /// path (the brownout a persistently faulted compressed stream
    /// degrades to). Identical contention model, [`Scheme::None`]
    /// profile.
    pub fn fallback_batch_cost(
        &mut self,
        tenant: usize,
        epoch: usize,
        batch: usize,
        busy: usize,
    ) -> BatchCost {
        self.cost_at(tenant, epoch, batch, busy, true)
    }

    fn cost_at(
        &mut self,
        tenant: usize,
        epoch: usize,
        batch: usize,
        busy: usize,
        fallback: bool,
    ) -> BatchCost {
        assert!(batch >= 1, "empty batch");
        let padded = batch.next_power_of_two();
        let p = self.profile_at(tenant, epoch, padded, fallback);
        let k = busy.max(1) as f64;
        let dram_cycles = p.dram_bytes / self.dram_budget;
        let noc_cycles = p.noc_bytes / self.noc_budget;
        let cycles = p.base_cycles.max(k * dram_cycles).max(k * noc_cycles);
        BatchCost {
            ns: (cycles / self.clock_hz * super::arrival::NS_PER_SEC).round() as u64,
            slowdown: cycles / p.base_cycles,
        }
    }

    /// Solo (uncontended) service time of a padded batch, nanoseconds.
    /// Used to derive SLOs and capacity estimates.
    pub fn solo_ns(&mut self, tenant: usize, epoch: usize, batch: usize) -> u64 {
        self.batch_cost(tenant, epoch, batch, 1).ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_model(base: f64, dram: f64, noc: f64) -> ServiceModel {
        let mut profiles = BTreeMap::new();
        for padded in [1usize, 2, 4, 8] {
            profiles.insert(
                padded,
                ServiceProfile {
                    base_cycles: base * padded as f64,
                    dram_bytes: dram * padded as f64,
                    noc_bytes: noc * padded as f64,
                },
            );
        }
        // 1 GHz clock, 1 B/cyc budgets: cycles == bytes, easy arithmetic.
        ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles)
    }

    #[test]
    fn uncontended_batch_is_compute_bound() {
        let mut m = fixed_model(1000.0, 100.0, 50.0);
        let c = m.batch_cost(0, 0, 1, 1);
        assert_eq!(c.ns, 1000);
        assert!((c.slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_stretches_bandwidth_bound_batches() {
        // Solo 1000 cycles of compute vs 600 of DRAM: 2 busy instances
        // keep it compute-bound, 4 tip it to 4×600 = 2400.
        let mut m = fixed_model(1000.0, 600.0, 50.0);
        assert_eq!(m.batch_cost(0, 0, 1, 2).ns, 1200);
        let c = m.batch_cost(0, 0, 1, 4);
        assert_eq!(c.ns, 2400);
        assert!((c.slowdown - 2.4).abs() < 1e-12);
    }

    #[test]
    fn batches_are_padded_to_powers_of_two() {
        let mut m = fixed_model(1000.0, 0.0, 0.0);
        // A 3-request batch is costed as a padded 4-batch.
        assert_eq!(m.batch_cost(0, 0, 3, 1).ns, m.batch_cost(0, 0, 4, 1).ns);
    }

    #[test]
    fn memo_is_keyed_by_tenant_and_epoch() {
        let mut m = fixed_model(1000.0, 0.0, 0.0);
        m.batch_cost(0, 0, 1, 1);
        m.batch_cost(1, 1, 1, 1);
        assert_eq!(m.memo.len(), 2);
    }
}
