//! Per-tenant SLO classes and the class-aware batching scheduler.
//!
//! Every tenant belongs to one of three service classes. The scheduler is
//! **strict priority across classes** — an Interactive tenant with a
//! dispatchable batch always goes before a Batch tenant, which always goes
//! before BestEffort — and **weighted deficit within a class**: among
//! equal-priority tenants the one with the least service received per unit
//! of configured weight dispatches next (ties break on the older queue
//! head, then the lower tenant index, so scheduling is a pure function of
//! queue state).
//!
//! Classes also parameterize the admission layer: each class gets its own
//! bounded-queue fraction (BestEffort arrivals are rejected earlier than
//! Interactive ones) and its own deadline budget as a multiple of the
//! node's p99 SLO (the deadline-aware shedder drops a queued request once
//! `now > arrival + slo_ns × deadline_factor`).

use serde::{Deserialize, Serialize};

use super::TenantSpec;

/// Service class of a tenant, ordered from most to least latency-critical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloClass {
    /// User-facing traffic: strict top priority, tightest deadline.
    Interactive,
    /// Throughput-oriented offline work: mid priority, relaxed deadline.
    Batch,
    /// Scavenger traffic: lowest priority, smallest queue share, served
    /// only when nothing better is dispatchable.
    BestEffort,
}

impl SloClass {
    /// Every class, most critical first.
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Batch, SloClass::BestEffort];

    /// Strict scheduling priority (lower dispatches first).
    pub fn priority(self) -> u8 {
        match self {
            SloClass::Interactive => 0,
            SloClass::Batch => 1,
            SloClass::BestEffort => 2,
        }
    }

    /// Weighted-deficit weight multiplier within a priority tier (only
    /// meaningful between tenants of the same class, but kept distinct so
    /// mixed-class deficit accounting stays interpretable).
    pub fn weight(self) -> f64 {
        match self {
            SloClass::Interactive => 4.0,
            SloClass::Batch => 2.0,
            SloClass::BestEffort => 1.0,
        }
    }

    /// Fraction of the node's per-tenant queue capacity this class may
    /// occupy before arrivals are rejected at admission.
    pub fn queue_fraction(self) -> f64 {
        match self {
            SloClass::Interactive => 1.0,
            SloClass::Batch => 1.0,
            SloClass::BestEffort => 0.5,
        }
    }

    /// Deadline budget as a multiple of the node's p99 SLO: a queued
    /// request older than `slo_ns × deadline_factor` is shed rather than
    /// served (its reply would be useless to the caller anyway).
    pub fn deadline_factor(self) -> f64 {
        match self {
            SloClass::Interactive => 1.0,
            SloClass::Batch => 4.0,
            SloClass::BestEffort => 16.0,
        }
    }

    /// Short stable label for keys, tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Batch => "batch",
            SloClass::BestEffort => "best_effort",
        }
    }

    /// Per-class latency-histogram metric name.
    pub fn latency_metric(self) -> &'static str {
        match self {
            SloClass::Interactive => zcomp_trace::serve::names::LATENCY_US_INTERACTIVE,
            SloClass::Batch => zcomp_trace::serve::names::LATENCY_US_BATCH,
            SloClass::BestEffort => zcomp_trace::serve::names::LATENCY_US_BEST_EFFORT,
        }
    }

    /// Stable dense index into per-class arrays.
    pub fn index(self) -> usize {
        self.priority() as usize
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A tenant's queue as the scheduler sees it at one instant: the head
/// arrival time of a dispatchable (full or deadline-expired) batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyTenant {
    /// Tenant index.
    pub tenant: usize,
    /// Arrival timestamp of the tenant's queue head, nanoseconds.
    pub head: u64,
}

/// Strict-priority + weighted-deficit scheduler state.
///
/// The scheduler is deliberately tiny: per-tenant service accounting plus
/// a pure [`pick`](ClassScheduler::pick) over the currently dispatchable
/// tenants. Keeping `pick` side-effect free is what makes the scheduling
/// invariants directly property-testable.
#[derive(Debug, Clone)]
pub struct ClassScheduler {
    classes: Vec<SloClass>,
    /// Deficit weight per tenant: configured arrival share × class weight.
    weights: Vec<f64>,
    /// Requests dispatched per unit weight (the deficit counter).
    credits: Vec<f64>,
}

impl ClassScheduler {
    /// Builds the scheduler for one tenant set.
    ///
    /// # Panics
    ///
    /// Panics if any tenant weight is non-positive.
    pub fn new(tenants: &[TenantSpec]) -> Self {
        let classes: Vec<SloClass> = tenants.iter().map(|t| t.class).collect();
        let weights: Vec<f64> = tenants
            .iter()
            .map(|t| {
                assert!(t.weight > 0.0, "tenant weights must be positive");
                t.weight * t.class.weight()
            })
            .collect();
        ClassScheduler {
            credits: vec![0.0; tenants.len()],
            classes,
            weights,
        }
    }

    /// Class of one tenant.
    pub fn class_of(&self, tenant: usize) -> SloClass {
        self.classes[tenant]
    }

    /// Chooses the next tenant to dispatch among `ready`: lowest class
    /// priority first, then least service-per-weight received, then the
    /// oldest queue head, then the lowest tenant index. Returns `None`
    /// for an empty ready set.
    pub fn pick(&self, ready: &[ReadyTenant]) -> Option<usize> {
        ready
            .iter()
            .min_by(|a, b| {
                let pa = self.classes[a.tenant].priority();
                let pb = self.classes[b.tenant].priority();
                pa.cmp(&pb)
                    .then_with(|| self.credits[a.tenant].total_cmp(&self.credits[b.tenant]))
                    .then_with(|| a.head.cmp(&b.head))
                    .then_with(|| a.tenant.cmp(&b.tenant))
            })
            .map(|r| r.tenant)
    }

    /// Charges a dispatched batch of `take` requests against `tenant`'s
    /// deficit counter.
    pub fn on_dispatch(&mut self, tenant: usize, take: usize) {
        self.credits[tenant] += take as f64 / self.weights[tenant];
    }
}

#[cfg(test)]
mod tests {
    use super::super::arrival::ArrivalShape;
    use super::*;

    fn tenants(classes: &[(SloClass, f64)]) -> Vec<TenantSpec> {
        classes
            .iter()
            .map(|&(class, weight)| TenantSpec {
                shape: ArrivalShape::Poisson,
                weight,
                class,
            })
            .collect()
    }

    #[test]
    fn strict_priority_beats_age_and_deficit() {
        let sched = ClassScheduler::new(&tenants(&[
            (SloClass::BestEffort, 10.0),
            (SloClass::Interactive, 0.1),
        ]));
        // The best-effort head is far older; Interactive still wins.
        let ready = [
            ReadyTenant { tenant: 0, head: 0 },
            ReadyTenant {
                tenant: 1,
                head: 1_000_000,
            },
        ];
        assert_eq!(sched.pick(&ready), Some(1));
    }

    #[test]
    fn deficit_alternates_equal_weight_tenants() {
        let mut sched =
            ClassScheduler::new(&tenants(&[(SloClass::Batch, 1.0), (SloClass::Batch, 1.0)]));
        let ready = [
            ReadyTenant { tenant: 0, head: 5 },
            ReadyTenant { tenant: 1, head: 5 },
        ];
        let first = sched.pick(&ready).unwrap();
        sched.on_dispatch(first, 4);
        let second = sched.pick(&ready).unwrap();
        assert_ne!(first, second, "equal-weight tenants must alternate");
    }

    #[test]
    fn weights_bias_service_share() {
        let mut sched =
            ClassScheduler::new(&tenants(&[(SloClass::Batch, 3.0), (SloClass::Batch, 1.0)]));
        let ready = [
            ReadyTenant { tenant: 0, head: 0 },
            ReadyTenant { tenant: 1, head: 0 },
        ];
        let mut served = [0usize; 2];
        for _ in 0..400 {
            let t = sched.pick(&ready).unwrap();
            sched.on_dispatch(t, 1);
            served[t] += 1;
        }
        let share = served[0] as f64 / 400.0;
        assert!((share - 0.75).abs() < 0.05, "3:1 weights → share {share}");
    }

    #[test]
    fn empty_ready_set_picks_nothing() {
        let sched = ClassScheduler::new(&tenants(&[(SloClass::Interactive, 1.0)]));
        assert_eq!(sched.pick(&[]), None);
    }

    #[test]
    fn class_tables_are_ordered() {
        for w in SloClass::ALL.windows(2) {
            assert!(w[0].priority() < w[1].priority());
            assert!(w[0].weight() > w[1].weight());
            assert!(w[0].deadline_factor() < w[1].deadline_factor());
        }
        for class in SloClass::ALL {
            assert_eq!(SloClass::ALL[class.index()], class);
            assert!(class.queue_fraction() > 0.0 && class.queue_fraction() <= 1.0);
            assert!(class.latency_metric().starts_with("serve.latency_us."));
        }
    }
}
