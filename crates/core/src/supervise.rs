//! Supervised cell execution: panic isolation, deadline watchdogs,
//! deterministic retry/backoff, quarantine, and a crash-safe completion
//! journal.
//!
//! The paper's results are multi-hour sweeps over hundreds of independent
//! cells (44 DeepBench shapes × 3 schemes, 5 networks × 2 modes × 3
//! schemes). Before this module, one panicking cell aborted the whole
//! sweep and discarded every completed cell; one hung cell stalled it
//! forever. The supervisor gives each cell the discipline a production
//! batch runtime has:
//!
//! * **Isolation** — every attempt runs under
//!   [`std::panic::catch_unwind`]; a panic becomes a typed
//!   [`FailureReason::Panicked`], never a sweep abort.
//! * **Watchdog** — with a deadline configured, the attempt runs on a
//!   dedicated watchdog-monitored thread; exceeding the deadline yields
//!   [`FailureReason::DeadlineExceeded`] and the runaway thread is
//!   abandoned (it cannot be killed, but it no longer blocks the sweep).
//! * **Retry** — failed attempts are retried up to
//!   [`SuperviseOpts::max_attempts`] with capped exponential backoff and
//!   *seeded, deterministic* jitter, so two runs of the same failing
//!   sweep wait the same amounts of time.
//! * **Quarantine** — a cell that exhausts its attempts is recorded as a
//!   structured [`CellFailure`] instead of poisoning the run; the merged
//!   sweep output marks the quarantined index explicitly so partial
//!   results stay byte-deterministic.
//! * **Journal** — [`Journal`] is an append-only, CRC-guarded completion
//!   log (`journal.jsonl` under the trace-cache root) persisted with the
//!   tmp+atomic-rename idiom; a resumed sweep skips every
//!   verified-complete cell and reproduces the identical final report.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use zcomp_isa::integrity::crc32;
use zcomp_trace::{log_info, log_warn};

/// Retry, deadline and backoff policy of a supervised sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperviseOpts {
    /// Attempts per cell before quarantine (at least 1).
    pub max_attempts: u32,
    /// Per-cell wall-clock deadline enforced by a watchdog thread; `None`
    /// runs attempts inline with panic isolation only.
    pub deadline: Option<Duration>,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff (before jitter).
    pub backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for SuperviseOpts {
    fn default() -> Self {
        SuperviseOpts {
            max_attempts: 2,
            deadline: None,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            seed: 0x5AFE_5EED,
        }
    }
}

impl SuperviseOpts {
    /// One attempt, no watchdog: panic isolation and quarantine only.
    pub fn single() -> Self {
        SuperviseOpts {
            max_attempts: 1,
            ..SuperviseOpts::default()
        }
    }

    /// Sets the attempt budget (clamped to at least 1).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Arms the per-cell watchdog deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the backoff base and cap.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The delay before retry number `retry` (1-based) of cell `index`:
    /// capped exponential backoff plus up to +50% seeded jitter. Pure in
    /// `(seed, index, retry)`, so a re-run of the same failing sweep
    /// backs off identically.
    pub fn backoff_delay(&self, index: usize, retry: u32) -> Duration {
        let doublings = retry.saturating_sub(1).min(20);
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.backoff_cap);
        let r = splitmix64(
            self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(retry),
        );
        // 24 bits of jitter mapped onto [0, 0.5).
        let jitter = (r >> 40) as f64 / (1u64 << 24) as f64 * 0.5;
        exp + exp.mul_f64(jitter)
    }
}

/// Finalizer of splitmix64 — a tiny, seedable, statistically fine mixer
/// for backoff jitter (not cryptographic).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Why one cell attempt (or the cell as a whole) failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureReason {
    /// The cell panicked; the payload message is preserved.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The watchdog deadline elapsed before the cell finished.
    DeadlineExceeded {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
    },
    /// The watchdog thread itself could not be spawned.
    SpawnFailed {
        /// The OS error, stringified.
        message: String,
    },
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::Panicked { message } => write!(f, "panicked: {message}"),
            FailureReason::DeadlineExceeded { limit_ms } => {
                write!(f, "deadline exceeded ({limit_ms} ms)")
            }
            FailureReason::SpawnFailed { message } => {
                write!(f, "watchdog thread spawn failed: {message}")
            }
        }
    }
}

/// Structured report of a quarantined cell: which cell, how many attempts
/// it was given, and why the last one failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    /// Flat cell index within the sweep.
    pub index: usize,
    /// The cell's descriptor string (the same key the trace cache and
    /// journal use).
    pub cell: String,
    /// Attempts consumed before quarantine.
    pub attempts: u32,
    /// Why the final attempt failed.
    pub reason: FailureReason,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} [{}] quarantined after {} attempt(s): {}",
            self.index, self.cell, self.attempts, self.reason
        )
    }
}

/// How one supervised cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<T> {
    /// The cell produced a value. `attempts` is the number of attempts
    /// consumed (1 = first try); 0 means the value was restored from a
    /// resume journal without executing.
    Completed {
        /// The cell's result.
        value: T,
        /// Attempts consumed; 0 for journal-restored cells.
        attempts: u32,
    },
    /// The cell exhausted its attempt budget.
    Quarantined(CellFailure),
}

impl<T> CellOutcome<T> {
    /// The completed value, if any.
    pub fn value(&self) -> Option<&T> {
        match self {
            CellOutcome::Completed { value, .. } => Some(value),
            CellOutcome::Quarantined(_) => None,
        }
    }

    /// Retries this outcome consumed (attempts beyond the first).
    pub fn retries(&self) -> u64 {
        match self {
            CellOutcome::Completed { attempts, .. } => u64::from(attempts.saturating_sub(1)),
            CellOutcome::Quarantined(f) => u64::from(f.attempts.saturating_sub(1)),
        }
    }
}

/// Stringifies a panic payload (the `&str`/`String` cases cover every
/// `panic!`/`assert!` in this workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job attempt with panic isolation and, when `deadline` is set,
/// a watchdog thread.
///
/// The watchdog path runs the job on a dedicated thread and waits on a
/// channel with a timeout. A timed-out thread is *abandoned*, not killed
/// (Rust has no safe thread cancellation): it keeps running detached
/// until it finishes or the process exits, but the sweep moves on. Cells
/// are pure functions of their inputs writing only tmp-then-renamed
/// files, so an abandoned straggler cannot corrupt shared state.
fn run_attempt<T: Send + 'static>(
    job: Box<dyn FnOnce() -> T + Send + 'static>,
    deadline: Option<Duration>,
) -> Result<T, FailureReason> {
    let Some(limit) = deadline else {
        return catch_unwind(AssertUnwindSafe(job)).map_err(|p| FailureReason::Panicked {
            message: panic_message(p.as_ref()),
        });
    };
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("zcomp-sweep-cell".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(job)).map_err(|p| panic_message(p.as_ref()));
            let _ = tx.send(result);
        });
    if let Err(e) = spawned {
        return Err(FailureReason::SpawnFailed {
            message: e.to_string(),
        });
    }
    match rx.recv_timeout(limit) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(message)) => Err(FailureReason::Panicked { message }),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(FailureReason::DeadlineExceeded {
            limit_ms: limit.as_millis() as u64,
        }),
        // The sender was dropped without sending — only possible if the
        // runtime tore the thread down; report it as a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(FailureReason::Panicked {
            message: "cell thread exited without a result".to_string(),
        }),
    }
}

/// Runs one cell under the full supervision policy: isolate, watch,
/// retry with deterministic backoff, quarantine.
///
/// `make_job` is called once per attempt and must hand back a fresh
/// self-contained (`'static`) closure — the watchdog path cannot borrow
/// from the caller's stack because an abandoned attempt may outlive it.
pub fn run_cell<T, F>(opts: &SuperviseOpts, index: usize, cell: &str, make_job: F) -> CellOutcome<T>
where
    T: Send + 'static,
    F: Fn() -> Box<dyn FnOnce() -> T + Send + 'static>,
{
    let budget = opts.max_attempts.max(1);
    let mut last: Option<FailureReason> = None;
    for attempt in 1..=budget {
        if let Some(reason) = &last {
            let delay = opts.backoff_delay(index, attempt - 1);
            zcomp_trace::tracer::instant("sweep", "supervise.retry");
            zcomp_trace::tracer::counter("supervise.retries", 1.0);
            if zcomp_trace::events::armed() {
                zcomp_trace::events::emit(zcomp_trace::events::FleetEvent::CellRetried {
                    index: index as u64,
                    cell: cell.to_string(),
                    attempt: attempt - 1,
                    reason: reason.to_string(),
                });
            }
            log_warn!(
                "cell {index} [{cell}] failed ({reason}); retry {}/{} in {:.1} ms",
                attempt - 1,
                budget - 1,
                delay.as_secs_f64() * 1e3
            );
            std::thread::sleep(delay);
        }
        match run_attempt(make_job(), opts.deadline) {
            Ok(value) => {
                return CellOutcome::Completed {
                    value,
                    attempts: attempt,
                }
            }
            Err(reason) => last = Some(reason),
        }
    }
    let failure = CellFailure {
        index,
        cell: cell.to_string(),
        attempts: budget,
        reason: last.unwrap_or(FailureReason::Panicked {
            message: "no attempt ran".to_string(),
        }),
    };
    zcomp_trace::tracer::instant("sweep", "supervise.quarantine");
    zcomp_trace::tracer::counter("supervise.quarantined", 1.0);
    if zcomp_trace::events::armed() {
        zcomp_trace::events::emit(zcomp_trace::events::FleetEvent::CellQuarantined {
            index: index as u64,
            cell: cell.to_string(),
            attempts: failure.attempts,
            reason: failure.reason.to_string(),
        });
    }
    log_warn!("{failure}");
    CellOutcome::Quarantined(failure)
}

// ---------------------------------------------------------------------------
// Completion journal
// ---------------------------------------------------------------------------

/// One journal line: a completed cell keyed by its descriptor and the
/// machine-config fingerprint, carrying the serialized cell result, the
/// committing worker's identity and fencing token (both zero-valued for
/// plain single-process sweeps), and a CRC32 over all of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Cell descriptor (the trace-cache cell key).
    pub cell: String,
    /// Machine-config fingerprint the result was produced under.
    pub fingerprint: u32,
    /// The cell result as a JSON document.
    pub payload: String,
    /// Id of the worker that committed the record (`""` outside fabric
    /// runs).
    pub worker: String,
    /// Fencing token the committing worker held for this cell (`0`
    /// outside fabric runs). The fabric merge keeps the highest token per
    /// cell, so a zombie's stale duplicate never wins.
    pub token: u64,
    /// CRC32 over
    /// `cell ‖ 0 ‖ fingerprint_le ‖ 0 ‖ worker ‖ 0 ‖ token_le ‖ 0 ‖ payload`.
    pub crc: u32,
}

impl JournalRecord {
    fn compute_crc(cell: &str, fingerprint: u32, worker: &str, token: u64, payload: &str) -> u32 {
        let mut bytes = Vec::with_capacity(cell.len() + worker.len() + payload.len() + 16);
        bytes.extend_from_slice(cell.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&fingerprint.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(worker.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&token.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(payload.as_bytes());
        crc32(&bytes)
    }

    /// Builds a plain (unfenced) record with its CRC filled in.
    pub fn new(cell: String, fingerprint: u32, payload: String) -> JournalRecord {
        JournalRecord::new_fenced(cell, fingerprint, payload, String::new(), 0)
    }

    /// Builds a fenced record — a fabric worker's commit stamped with its
    /// identity and fencing token — with its CRC filled in.
    pub fn new_fenced(
        cell: String,
        fingerprint: u32,
        payload: String,
        worker: String,
        token: u64,
    ) -> JournalRecord {
        let crc = JournalRecord::compute_crc(&cell, fingerprint, &worker, token, &payload);
        JournalRecord {
            cell,
            fingerprint,
            payload,
            worker,
            token,
            crc,
        }
    }

    /// Whether the stored CRC matches the record contents.
    pub fn verify(&self) -> bool {
        JournalRecord::compute_crc(
            &self.cell,
            self.fingerprint,
            &self.worker,
            self.token,
            &self.payload,
        ) == self.crc
    }
}

/// The verified value held for one journalled cell: the payload plus the
/// provenance (worker, fencing token) it was committed under.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The cell result as a JSON document.
    pub payload: String,
    /// Committing worker id (`""` outside fabric runs).
    pub worker: String,
    /// Fencing token of the commit (`0` outside fabric runs).
    pub token: u64,
}

/// Crash-safe sweep-completion journal: one JSONL file of
/// [`JournalRecord`]s, persisted whole with tmp+atomic-rename on every
/// commit so a SIGKILL at any instant leaves either the previous or the
/// new journal — never a torn one. Records that fail their CRC or do not
/// parse (e.g. after manual tampering or filesystem rot) are dropped on
/// load, so resume only ever skips *verified-complete* cells.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: BTreeMap<(String, u32), JournalEntry>,
}

impl Journal {
    /// Loads (or starts) the journal at `path`. A missing file is an
    /// empty journal; unreadable or CRC-failing lines are discarded with
    /// a warning and healed away on the next commit.
    pub fn load(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        let mut records = BTreeMap::new();
        // Lossy decode: a flipped byte that breaks UTF-8 must cost one
        // record, not the whole resume (the CRC rejects the mangled line).
        let text = match fs::read(&path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut dropped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalRecord>(line) {
                Ok(rec) if rec.verify() => {
                    records.insert(
                        (rec.cell, rec.fingerprint),
                        JournalEntry {
                            payload: rec.payload,
                            worker: rec.worker,
                            token: rec.token,
                        },
                    );
                }
                _ => dropped += 1,
            }
        }
        if dropped > 0 {
            log_warn!(
                "journal {}: dropped {dropped} corrupt record(s); only verified cells resume",
                path.display()
            );
        } else if !records.is_empty() {
            log_info!(
                "journal {}: {} verified completed cell(s)",
                path.display(),
                records.len()
            );
        }
        Ok(Journal { path, records })
    }

    /// Starts a fresh journal at `path`, ignoring any records already on
    /// disk (a non-resume sweep must not inherit a previous run's
    /// completions — the first commit overwrites the old file whole).
    pub fn fresh(path: impl Into<PathBuf>) -> Journal {
        Journal {
            path: path.into(),
            records: BTreeMap::new(),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Verified-complete records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The payload journalled for `(cell, fingerprint)`, if any.
    pub fn lookup(&self, cell: &str, fingerprint: u32) -> Option<&str> {
        self.entry(cell, fingerprint).map(|e| e.payload.as_str())
    }

    /// The full entry (payload plus worker/token provenance) journalled
    /// for `(cell, fingerprint)`, if any.
    pub fn entry(&self, cell: &str, fingerprint: u32) -> Option<&JournalEntry> {
        self.records.get(&(cell.to_string(), fingerprint))
    }

    /// Iterates every verified record as `(cell, fingerprint, entry)`, in
    /// key order. Fleet status tools use this to count done/quarantined
    /// cells without knowing the sweep grid.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32, &JournalEntry)> {
        self.records
            .iter()
            .map(|((cell, fp), entry)| (cell.as_str(), *fp, entry))
    }

    /// Records a completed cell and persists the journal atomically
    /// (write everything to `<path>.tmp`, rename over `<path>`).
    pub fn commit(&mut self, cell: String, fingerprint: u32, payload: String) -> io::Result<()> {
        self.commit_fenced(cell, fingerprint, payload, String::new(), 0)
    }

    /// Records a completed cell with fabric provenance (worker id and
    /// fencing token) and persists the journal atomically.
    pub fn commit_fenced(
        &mut self,
        cell: String,
        fingerprint: u32,
        payload: String,
        worker: String,
        token: u64,
    ) -> io::Result<()> {
        self.records.insert(
            (cell, fingerprint),
            JournalEntry {
                payload,
                worker,
                token,
            },
        );
        self.persist()
    }

    fn persist(&self) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut text = String::new();
        for ((cell, fingerprint), entry) in &self.records {
            let rec = JournalRecord::new_fenced(
                cell.clone(),
                *fingerprint,
                entry.payload.clone(),
                entry.worker.clone(),
                entry.token,
            );
            text.push_str(&serde_json::to_string(&rec).map_err(io::Error::other)?);
            text.push('\n');
        }
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn boxed<T: Send + 'static>(
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Box<dyn FnOnce() -> T + Send + 'static> {
        Box::new(f)
    }

    #[test]
    fn clean_cell_completes_first_try() {
        let out = run_cell(&SuperviseOpts::default(), 0, "ok", || boxed(|| 42));
        assert_eq!(
            out,
            CellOutcome::Completed {
                value: 42,
                attempts: 1
            }
        );
        assert_eq!(out.retries(), 0);
    }

    #[test]
    fn panicking_cell_is_quarantined_with_its_message() {
        let opts = SuperviseOpts::default()
            .with_attempts(3)
            .with_backoff(Duration::from_micros(10), Duration::from_micros(50));
        let out: CellOutcome<u32> =
            run_cell(&opts, 7, "boom", || boxed(|| panic!("cell exploded")));
        match out {
            CellOutcome::Quarantined(f) => {
                assert_eq!(f.index, 7);
                assert_eq!(f.cell, "boom");
                assert_eq!(f.attempts, 3);
                assert_eq!(
                    f.reason,
                    FailureReason::Panicked {
                        message: "cell exploded".to_string()
                    }
                );
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn transient_failure_recovers_on_retry() {
        static TRIES: AtomicU32 = AtomicU32::new(0);
        TRIES.store(0, Ordering::SeqCst);
        let opts = SuperviseOpts::default()
            .with_attempts(3)
            .with_backoff(Duration::from_micros(10), Duration::from_micros(50));
        let out = run_cell(&opts, 1, "flaky", || {
            boxed(|| {
                if TRIES.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                99
            })
        });
        assert_eq!(
            out,
            CellOutcome::Completed {
                value: 99,
                attempts: 2
            }
        );
        assert_eq!(out.retries(), 1);
    }

    #[test]
    fn hung_cell_trips_the_watchdog() {
        let opts = SuperviseOpts::default()
            .with_attempts(2)
            .with_deadline(Duration::from_millis(30))
            .with_backoff(Duration::from_micros(10), Duration::from_micros(50));
        let out: CellOutcome<u32> = run_cell(&opts, 3, "hang", || {
            boxed(|| {
                std::thread::sleep(Duration::from_secs(600));
                0
            })
        });
        match out {
            CellOutcome::Quarantined(f) => {
                assert_eq!(f.reason, FailureReason::DeadlineExceeded { limit_ms: 30 });
                assert_eq!(f.attempts, 2);
            }
            other => panic!("expected deadline quarantine, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_passes_fast_cells_through() {
        let opts = SuperviseOpts::default().with_deadline(Duration::from_secs(30));
        let out = run_cell(&opts, 0, "fast", || boxed(|| "done"));
        assert_eq!(
            out,
            CellOutcome::Completed {
                value: "done",
                attempts: 1
            }
        );
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let opts = SuperviseOpts::default()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(80))
            .with_seed(42);
        let a1 = opts.backoff_delay(5, 1);
        assert_eq!(a1, opts.backoff_delay(5, 1), "same inputs, same delay");
        assert_ne!(a1, opts.backoff_delay(6, 1), "different cells jitter apart");
        // Base 10ms: retry 1 in [10,15)ms, retry 4+ capped at [80,120)ms.
        assert!(a1 >= Duration::from_millis(10) && a1 < Duration::from_millis(15));
        let a4 = opts.backoff_delay(5, 4);
        assert!(a4 >= Duration::from_millis(80) && a4 < Duration::from_millis(120));
        assert!(
            opts.backoff_delay(5, 20) < Duration::from_millis(120),
            "cap holds"
        );
    }

    #[test]
    fn journal_round_trips_and_survives_reload() {
        let path = std::env::temp_dir().join(format!("zj-basic-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        let mut j = Journal::load(&path).unwrap();
        assert!(j.is_empty());
        j.commit("cell-a".into(), 7, "{\"x\":1}".into()).unwrap();
        j.commit("cell-b".into(), 7, "{\"x\":2}".into()).unwrap();
        drop(j);
        let j = Journal::load(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.lookup("cell-a", 7), Some("{\"x\":1}"));
        assert_eq!(j.lookup("cell-b", 7), Some("{\"x\":2}"));
        assert_eq!(j.lookup("cell-a", 8), None, "fingerprint keys the record");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_journal_lines_are_dropped_not_fatal() {
        let path = std::env::temp_dir().join(format!("zj-corrupt-{}.jsonl", std::process::id()));
        let mut j = Journal::load(&path).unwrap();
        j.commit("good".into(), 1, "{}".into()).unwrap();
        // Append a line with a bad CRC and a truncated line.
        let mut text = fs::read_to_string(&path).unwrap();
        let forged = JournalRecord {
            cell: "forged".into(),
            fingerprint: 1,
            payload: "{}".into(),
            worker: String::new(),
            token: 0,
            crc: 0xDEAD_BEEF,
        };
        text.push_str(&serde_json::to_string(&forged).unwrap());
        text.push('\n');
        text.push_str("{\"cell\":\"torn");
        fs::write(&path, text).unwrap();

        let j = Journal::load(&path).unwrap();
        assert_eq!(j.len(), 1, "only the verified record survives");
        assert!(j.lookup("good", 1).is_some());
        assert!(j.lookup("forged", 1).is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fenced_commits_round_trip_worker_and_token() {
        let path = std::env::temp_dir().join(format!("zj-fenced-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        let mut j = Journal::load(&path).unwrap();
        j.commit_fenced("cell".into(), 3, "{\"x\":1}".into(), "w-a".into(), 2)
            .unwrap();
        let j = Journal::load(&path).unwrap();
        let entry = j.entry("cell", 3).expect("fenced entry resumes");
        assert_eq!(entry.payload, "{\"x\":1}");
        assert_eq!(entry.worker, "w-a");
        assert_eq!(entry.token, 2);
        // Plain commits carry the zero provenance.
        let mut j = Journal::load(&path).unwrap();
        j.commit("plain".into(), 3, "{}".into()).unwrap();
        let j = Journal::load(&path).unwrap();
        let plain = j.entry("plain", 3).unwrap();
        assert_eq!((plain.worker.as_str(), plain.token), ("", 0));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tampered_token_fails_verification() {
        let rec = JournalRecord::new_fenced("c".into(), 1, "{}".into(), "w".into(), 5);
        assert!(rec.verify());
        let mut bad = rec.clone();
        bad.token = 6;
        assert!(!bad.verify(), "a forged fencing token must not verify");
        let mut bad = rec;
        bad.worker = "z".into();
        assert!(!bad.verify(), "a forged worker id must not verify");
    }

    #[test]
    fn commit_is_atomic_no_tmp_left_behind() {
        let dir = std::env::temp_dir().join(format!("zj-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("journal.jsonl");
        let mut j = Journal::load(&path).unwrap();
        j.commit("c".into(), 9, "{}".into()).unwrap();
        assert!(path.exists());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_reasons_render_and_serialize() {
        let f = CellFailure {
            index: 3,
            cell: "cfg=x".into(),
            attempts: 2,
            reason: FailureReason::DeadlineExceeded { limit_ms: 1500 },
        };
        let text = f.to_string();
        assert!(text.contains("cfg=x") && text.contains("1500"));
        let json = serde_json::to_string(&f).unwrap();
        let back: CellFailure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
