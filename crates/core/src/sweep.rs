//! Sharded, *supervised* sweep execution: spreads independent experiment
//! cells across OS threads with a deterministic merge, carries the
//! trace-cache policy the cell runners use, and wraps every cell in the
//! [`supervise`](crate::supervise) runtime — panic isolation, watchdog
//! deadlines, deterministic retry, quarantine, and a crash-safe
//! completion journal for `--resume`.
//!
//! Every cell of the Fig. 12 and full-network sweeps builds its own
//! [`Machine`](zcomp_sim::Machine) from a fixed seed, so cells are
//! embarrassingly parallel; the only subtlety is keeping results
//! *deterministic* regardless of scheduling. [`run_sharded`] hands out
//! work-stealing indices through an atomic counter, tags each result with
//! its index, and sorts on merge — the output vector is byte-for-byte the
//! one a serial loop would produce. [`run_cells`] layers supervision on
//! top without disturbing that property: quarantined indices carry an
//! explicit [`CellFailure`] marker, journal-restored cells decode to the
//! exact value the original execution produced, and the merged report of
//! a resumed sweep is byte-identical to an uninterrupted one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use zcomp_replay::{CacheMode, TraceCache, TraceError};
use zcomp_trace::log_warn;

use crate::fabric::{FabricOpts, FabricReport};
use crate::supervise::{CellFailure, CellOutcome, Journal, SuperviseOpts};

/// A sweep-level failure detected *before* any cell runs (as opposed to
/// per-cell failures, which are quarantined, not raised).
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// The trace-cache root cannot be created or written. Surfaced at
    /// sweep start so a bad `--traces` path fails in milliseconds, not
    /// per-cell over hours.
    CacheRoot {
        /// The offending root directory.
        root: PathBuf,
        /// The underlying cache error.
        source: TraceError,
    },
    /// The resume journal exists but cannot be read.
    Journal {
        /// The journal file path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The fabric directory (leases, per-worker journals) cannot be
    /// created or written.
    Fabric {
        /// The offending fabric directory.
        dir: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A graceful drain (SIGTERM/SIGINT) stopped this fabric worker
    /// before every cell was journalled. Completed cells are safely
    /// committed; re-running the same fabric resumes from them.
    FabricDrained {
        /// Cells journalled across the whole fabric at drain time.
        completed: usize,
        /// Total cells in the sweep.
        total: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::CacheRoot { root, source } => write!(
                f,
                "trace cache root {} is unusable: {source}",
                root.display()
            ),
            SweepError::Journal { path, source } => {
                write!(
                    f,
                    "sweep journal {} is unreadable: {source}",
                    path.display()
                )
            }
            SweepError::Fabric { dir, source } => {
                write!(
                    f,
                    "fabric directory {} is unusable: {source}",
                    dir.display()
                )
            }
            SweepError::FabricDrained { completed, total } => {
                write!(
                    f,
                    "fabric worker drained after {completed}/{total} cells; \
                     re-run with the same fabric dir to resume"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::CacheRoot { source, .. } => Some(source),
            SweepError::Journal { source, .. } => Some(source),
            SweepError::Fabric { source, .. } => Some(source),
            SweepError::FabricDrained { .. } => None,
        }
    }
}

/// Options of a sharded, trace-cached, supervised sweep.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Worker threads; `0` or `1` runs serially on the calling thread.
    pub threads: usize,
    /// Trace-cache root; `None` disables capture/replay entirely and every
    /// cell simulates in-process. The root also hosts the per-experiment
    /// resume journal.
    pub cache_root: Option<PathBuf>,
    /// Cache policy (replay hits vs forced re-capture).
    pub cache_mode: CacheMode,
    /// Per-cell supervision policy (attempts, deadline, backoff).
    pub supervise: SuperviseOpts,
    /// Skip cells recorded as complete in the journal instead of starting
    /// over. Requires `cache_root`; ignored without one.
    pub resume: bool,
    /// Multi-process fabric participation: when set, [`run_cells`] joins
    /// the lease-based work queue under
    /// [`FabricOpts::dir`](crate::fabric::FabricOpts) as one cooperating
    /// worker instead of executing every cell itself.
    pub fabric: Option<FabricOpts>,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_root: None,
            cache_mode: CacheMode::Auto,
            supervise: SuperviseOpts::default(),
            resume: false,
            fabric: None,
        }
    }
}

impl SweepOpts {
    /// Serial, uncached execution — behaviourally identical to the plain
    /// experiment runners.
    pub fn serial() -> Self {
        SweepOpts {
            threads: 1,
            ..SweepOpts::default()
        }
    }

    /// Enables the trace cache (and resume journal) under `root`.
    pub fn with_cache(mut self, root: impl Into<PathBuf>) -> Self {
        self.cache_root = Some(root.into());
        self
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the cache policy.
    pub fn with_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Sets the per-cell supervision policy.
    pub fn with_supervise(mut self, supervise: SuperviseOpts) -> Self {
        self.supervise = supervise;
        self
    }

    /// Enables (or disables) journal-based resume.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Joins the multi-process fabric rooted at `fabric.dir`.
    pub fn with_fabric(mut self, fabric: FabricOpts) -> Self {
        self.fabric = Some(fabric);
        self
    }

    /// The cache handle, if caching is enabled. The root is validated
    /// (created and write-probed) here, so an unusable `--traces` path is
    /// a typed [`SweepError::CacheRoot`] at sweep start rather than a
    /// per-cell failure mid-run. In fabric runs the handle is stamped
    /// with the worker id so quarantine sidecars record who produced
    /// them.
    pub(crate) fn cache(&self) -> Result<Option<TraceCache>, SweepError> {
        match &self.cache_root {
            None => Ok(None),
            Some(root) => TraceCache::open_validated(root)
                .map(|cache| match &self.fabric {
                    Some(fabric) => Some(cache.with_worker(&fabric.worker)),
                    None => Some(cache),
                })
                .map_err(|source| SweepError::CacheRoot {
                    root: root.clone(),
                    source,
                }),
        }
    }
}

/// What the supervisor observed across one sweep: counts plus the
/// structured failure report of every quarantined cell. Serialized next
/// to (never inside) the experiment result, so the scientific JSON stays
/// byte-identical whether or not cells were retried or resumed.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SupervisionReport {
    /// Total cells in the sweep.
    pub cells: usize,
    /// Cells actually executed this run (not restored from the journal).
    pub executed: usize,
    /// Cells restored from the resume journal without executing.
    pub resume_skips: usize,
    /// Retry attempts consumed beyond each cell's first try.
    pub retries: u64,
    /// Cells that exhausted their attempt budget, in index order.
    pub quarantined: Vec<CellFailure>,
    /// What this process observed as a fabric worker (`None` outside
    /// fabric runs).
    pub fabric: Option<FabricReport>,
}

impl SupervisionReport {
    /// One-line human summary (for binaries' stderr).
    pub fn summary(&self) -> String {
        let mut text = format!(
            "{} cells: {} executed, {} resumed, {} retries, {} quarantined",
            self.cells,
            self.executed,
            self.resume_skips,
            self.retries,
            self.quarantined.len()
        );
        if let Some(fabric) = &self.fabric {
            text.push_str("; ");
            text.push_str(&fabric.summary());
        }
        text
    }
}

/// An experiment result bundled with its [`SupervisionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome<R> {
    /// The experiment's scientific result.
    pub result: R,
    /// What the supervisor observed producing it.
    pub supervision: SupervisionReport,
}

/// The raw product of [`run_cells`]: per-index outcomes in index order,
/// plus the aggregated supervision report.
#[derive(Debug)]
pub struct CellsRun<T> {
    /// One outcome per cell index.
    pub outcomes: Vec<CellOutcome<T>>,
    /// The aggregated supervision report.
    pub report: SupervisionReport,
}

/// Runs `items` supervised cells, sharded over `opts.threads`, journalling
/// completions under the cache root and honouring `opts.resume`.
///
/// `key_of(i)` names cell `i` — the same descriptor string the trace
/// cache uses, which (with `fingerprint`) keys the journal record.
/// `make_job(i)` builds a fresh self-contained closure per attempt; see
/// [`supervise::run_cell`](crate::supervise::run_cell) for why it must be
/// `'static`.
///
/// Determinism: outcomes come back in index order; journal-restored cells
/// decode the exact JSON payload the original execution committed, so a
/// resumed sweep merges to the identical result an uninterrupted run
/// produces.
pub fn run_cells<T, K, J>(
    experiment: &str,
    items: usize,
    fingerprint: u32,
    opts: &SweepOpts,
    key_of: K,
    make_job: J,
) -> Result<CellsRun<T>, SweepError>
where
    T: Serialize + Deserialize + Send + 'static,
    K: Fn(usize) -> String + Sync,
    J: Fn(usize) -> Box<dyn FnOnce() -> T + Send + 'static> + Sync,
{
    // Fabric runs hand the whole sweep to the lease-based multi-process
    // executor; everything below is the single-process path.
    if opts.fabric.is_some() {
        return crate::fabric::run_fabric(experiment, items, fingerprint, opts, key_of, make_job);
    }

    // Validate the cache root up front even though the caller holds its
    // own handle — a bad root must fail here, not mid-sweep.
    let journal: Option<Mutex<Journal>> = match &opts.cache_root {
        None => None,
        Some(root) => {
            opts.cache()?;
            let path = root.join(experiment).join("journal.jsonl");
            let journal = if opts.resume {
                Journal::load(&path).map_err(|source| SweepError::Journal {
                    path: path.clone(),
                    source,
                })?
            } else {
                Journal::fresh(&path)
            };
            Some(Mutex::new(journal))
        }
    };

    // Resume pass: restore verified-complete cells without executing.
    let mut outcomes: Vec<Option<CellOutcome<T>>> = (0..items).map(|_| None).collect();
    let mut resume_skips = 0usize;
    if opts.resume {
        if let Some(journal) = &journal {
            let journal = journal.lock().unwrap_or_else(|p| p.into_inner());
            for (index, slot) in outcomes.iter_mut().enumerate() {
                let key = key_of(index);
                if let Some(payload) = journal.lookup(&key, fingerprint) {
                    match serde_json::from_str::<T>(payload) {
                        Ok(value) => {
                            *slot = Some(CellOutcome::Completed { value, attempts: 0 });
                            resume_skips += 1;
                        }
                        Err(e) => {
                            log_warn!(
                                "journal payload for cell {index} [{key}] does not decode \
                                 ({e}); re-running"
                            );
                        }
                    }
                }
            }
        }
    }
    if resume_skips > 0 {
        zcomp_trace::tracer::counter("supervise.resume_skips", resume_skips as f64);
    }

    // Execute the remaining cells under supervision.
    let pending: Vec<usize> = (0..items).filter(|&i| outcomes[i].is_none()).collect();
    let ran = run_sharded(pending.len(), opts.threads, |j| {
        let index = pending[j];
        let key = key_of(index);
        let outcome = crate::supervise::run_cell(&opts.supervise, index, &key, || make_job(index));
        if let CellOutcome::Completed { value, attempts } = &outcome {
            if *attempts > 0 {
                if let Some(journal) = &journal {
                    match serde_json::to_string(value) {
                        Ok(payload) => {
                            let mut journal = journal.lock().unwrap_or_else(|p| p.into_inner());
                            if let Err(e) = journal.commit(key.clone(), fingerprint, payload) {
                                // The journal is an aid, not a dependency:
                                // losing a record only costs re-execution
                                // on a future resume.
                                log_warn!(
                                    "journal commit for cell {index} [{key}] failed ({e}); \
                                     continuing unjournalled"
                                );
                            }
                        }
                        Err(e) => {
                            log_warn!("cell {index} [{key}] result does not serialize: {e}");
                        }
                    }
                }
            }
        }
        outcome
    });
    for (j, outcome) in ran.into_iter().enumerate() {
        outcomes[pending[j]] = Some(outcome);
    }

    // Merge, in index order, and aggregate the report.
    let mut report = SupervisionReport {
        cells: items,
        resume_skips,
        ..SupervisionReport::default()
    };
    let mut merged = Vec::with_capacity(items);
    for outcome in outcomes.into_iter().flatten() {
        report.retries += outcome.retries();
        match &outcome {
            CellOutcome::Completed { attempts, .. } => {
                if *attempts > 0 {
                    report.executed += 1;
                }
            }
            CellOutcome::Quarantined(failure) => {
                report.executed += 1;
                report.quarantined.push(failure.clone());
            }
        }
        merged.push(outcome);
    }
    Ok(CellsRun {
        outcomes: merged,
        report,
    })
}

/// Runs `worker` for every index in `0..items` across up to `threads`
/// scoped OS threads and returns the results in index order.
///
/// Scheduling is work-stealing (an atomic next-index counter), so uneven
/// cell costs balance automatically; the index-sorted merge keeps the
/// output identical to a serial run. A panicking worker propagates the
/// panic to the caller once the scope joins (supervised sweeps never let
/// it get that far — cells panic inside `catch_unwind`).
pub fn run_sharded<T, F>(items: usize, threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || items <= 1 {
        return (0..items).map(worker).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                let result = worker(i);
                match slots.lock() {
                    Ok(mut v) => v.push((i, result)),
                    // Another worker panicked while holding the lock; the
                    // scope is about to propagate that panic anyway.
                    Err(poisoned) => poisoned.into_inner().push((i, result)),
                }
            });
        }
    });
    let mut v = match slots.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 7, 32] {
            let out = run_sharded(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_work_still_merges_deterministically() {
        // Later indices finish first; order must still hold.
        let out = run_sharded(20, 4, |i| {
            std::thread::sleep(std::time::Duration::from_micros((20 - i) as u64 * 50));
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_fine() {
        let out: Vec<usize> = run_sharded(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = run_sharded(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_opts_are_parallel_and_uncached() {
        let o = SweepOpts::default();
        assert!(o.threads >= 1);
        assert!(o.cache_root.is_none());
        assert_eq!(o.cache_mode, CacheMode::Auto);
        assert!(!o.resume);
        assert_eq!(o.supervise, SuperviseOpts::default());
    }

    fn temp_root(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("zsweep-{}-{name}", std::process::id()))
    }

    #[test]
    fn unwritable_cache_root_is_a_typed_error_at_start() {
        // A root whose parent is a *file* cannot be created.
        let blocker = temp_root("blocker");
        let _ = std::fs::remove_file(&blocker);
        std::fs::write(&blocker, b"file").unwrap();
        let opts = SweepOpts::serial().with_cache(blocker.join("nested"));
        let err = opts.cache().expect_err("root under a file must fail");
        let text = err.to_string();
        assert!(text.contains("unusable"), "got: {text}");
        assert!(std::error::Error::source(&err).is_some());
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn run_cells_quarantines_and_journals_then_resumes() {
        let root = temp_root("cells");
        let _ = std::fs::remove_dir_all(&root);
        let opts = SweepOpts::serial()
            .with_cache(&root)
            .with_supervise(SuperviseOpts::single());
        let key_of = |i: usize| format!("cell-{i}");
        let job = |i: usize| -> Box<dyn FnOnce() -> u64 + Send + 'static> {
            Box::new(move || {
                if i == 2 {
                    panic!("injected");
                }
                (i as u64) * 10
            })
        };
        let run = run_cells("unit", 4, 7, &opts, key_of, job).unwrap();
        assert_eq!(run.report.cells, 4);
        assert_eq!(run.report.executed, 4);
        assert_eq!(run.report.resume_skips, 0);
        assert_eq!(run.report.quarantined.len(), 1);
        assert_eq!(run.report.quarantined[0].index, 2);
        assert_eq!(run.outcomes[1].value(), Some(&10));
        assert!(run.outcomes[2].value().is_none());
        assert!(root.join("unit").join("journal.jsonl").exists());

        // Resume: completed cells restore (attempts == 0), only the
        // quarantined one re-runs — and this time it succeeds.
        let opts = opts.with_resume(true);
        let job = |i: usize| -> Box<dyn FnOnce() -> u64 + Send + 'static> {
            Box::new(move || (i as u64) * 10)
        };
        let run = run_cells("unit", 4, 7, &opts, key_of, job).unwrap();
        assert_eq!(run.report.resume_skips, 3);
        assert_eq!(run.report.executed, 1);
        assert!(run.report.quarantined.is_empty());
        let values: Vec<u64> = run.outcomes.iter().map(|o| *o.value().unwrap()).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprint_change_invalidates_journal_entries() {
        let root = temp_root("fp");
        let _ = std::fs::remove_dir_all(&root);
        let opts = SweepOpts::serial().with_cache(&root);
        let key_of = |i: usize| format!("c{i}");
        let job =
            |i: usize| -> Box<dyn FnOnce() -> u64 + Send + 'static> { Box::new(move || i as u64) };
        run_cells("fp", 2, 1, &opts, key_of, job).unwrap();
        let run = run_cells("fp", 2, 2, &opts.clone().with_resume(true), key_of, job).unwrap();
        assert_eq!(
            run.report.resume_skips, 0,
            "a different machine fingerprint must not resume stale cells"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
