//! Sharded sweep execution: spreads independent experiment cells across
//! OS threads with a deterministic merge, and carries the trace-cache
//! policy the cell runners use.
//!
//! Every cell of the Fig. 12 and full-network sweeps builds its own
//! [`Machine`](zcomp_sim::Machine) from a fixed seed, so cells are
//! embarrassingly parallel; the only subtlety is keeping results
//! *deterministic* regardless of scheduling. [`run_sharded`] hands out
//! work-stealing indices through an atomic counter, tags each result with
//! its index, and sorts on merge — the output vector is byte-for-byte the
//! one a serial loop would produce.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use zcomp_replay::{CacheMode, TraceCache};

/// Options of a sharded, trace-cached sweep.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Worker threads; `0` or `1` runs serially on the calling thread.
    pub threads: usize,
    /// Trace-cache root; `None` disables capture/replay entirely and every
    /// cell simulates in-process.
    pub cache_root: Option<PathBuf>,
    /// Cache policy (replay hits vs forced re-capture).
    pub cache_mode: CacheMode,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_root: None,
            cache_mode: CacheMode::Auto,
        }
    }
}

impl SweepOpts {
    /// Serial, uncached execution — behaviourally identical to the plain
    /// experiment runners.
    pub fn serial() -> Self {
        SweepOpts {
            threads: 1,
            cache_root: None,
            cache_mode: CacheMode::Auto,
        }
    }

    /// Enables the trace cache under `root`.
    pub fn with_cache(mut self, root: impl Into<PathBuf>) -> Self {
        self.cache_root = Some(root.into());
        self
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the cache policy.
    pub fn with_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// The cache handle, if caching is enabled.
    pub(crate) fn cache(&self) -> Option<TraceCache> {
        self.cache_root.as_ref().map(TraceCache::new)
    }
}

/// Runs `worker` for every index in `0..items` across up to `threads`
/// scoped OS threads and returns the results in index order.
///
/// Scheduling is work-stealing (an atomic next-index counter), so uneven
/// cell costs balance automatically; the index-sorted merge keeps the
/// output identical to a serial run. A panicking worker propagates the
/// panic to the caller once the scope joins.
pub fn run_sharded<T, F>(items: usize, threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || items <= 1 {
        return (0..items).map(worker).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                let result = worker(i);
                match slots.lock() {
                    Ok(mut v) => v.push((i, result)),
                    // Another worker panicked while holding the lock; the
                    // scope is about to propagate that panic anyway.
                    Err(poisoned) => poisoned.into_inner().push((i, result)),
                }
            });
        }
    });
    let mut v = match slots.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 7, 32] {
            let out = run_sharded(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_work_still_merges_deterministically() {
        // Later indices finish first; order must still hold.
        let out = run_sharded(20, 4, |i| {
            std::thread::sleep(std::time::Duration::from_micros((20 - i) as u64 * 50));
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_fine() {
        let out: Vec<usize> = run_sharded(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = run_sharded(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_opts_are_parallel_and_uncached() {
        let o = SweepOpts::default();
        assert!(o.threads >= 1);
        assert!(o.cache_root.is_none());
        assert_eq!(o.cache_mode, CacheMode::Auto);
    }
}
