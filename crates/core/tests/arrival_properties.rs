//! Property-based tests on the open-loop arrival processes.
//!
//! Pins the three properties the serving knee depends on: per-seed byte
//! determinism, empirical mean rate within tolerance of the configured λ,
//! and the bursty/diurnal shapes preserving total expected load (same λ
//! time-average as Poisson, just differently distributed).

use proptest::prelude::*;
use zcomp::serve::arrival::{empirical_rate, generate, ArrivalShape, NS_PER_SEC};

fn shape_from(index: usize, a: f64, b: f64) -> ArrivalShape {
    match index % 3 {
        0 => ArrivalShape::Poisson,
        1 => ArrivalShape::Bursty {
            // a in (0,1) → on_fraction in [0.2, 0.9]; b → burst length.
            on_fraction: 0.2 + 0.7 * a,
            mean_on_arrivals: 4.0 + 36.0 * b,
        },
        _ => ArrivalShape::Diurnal {
            amplitude: 0.9 * a,
            periods: 1.0 + 5.0 * b,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn per_seed_byte_determinism(
        seed in 0u64..(1 << 48),
        rate in 10.0f64..5_000.0,
        shape_idx in 0usize..3,
        a in 0.01f64..0.99,
        b in 0.01f64..0.99,
    ) {
        let shape = shape_from(shape_idx, a, b);
        let x = generate(shape, rate, 800, seed);
        let y = generate(shape, rate, 800, seed);
        prop_assert_eq!(&x, &y);
        // Byte-for-byte through serialization too — the form reports and
        // journals persist.
        prop_assert_eq!(
            serde_json::to_string(&x).unwrap(),
            serde_json::to_string(&y).unwrap()
        );
    }

    #[test]
    fn streams_are_nondecreasing_and_sized(
        seed in 0u64..(1 << 48),
        rate in 10.0f64..5_000.0,
        shape_idx in 0usize..3,
        a in 0.01f64..0.99,
        b in 0.01f64..0.99,
        n in 1usize..600,
    ) {
        let stream = generate(shape_from(shape_idx, a, b), rate, n, seed);
        prop_assert_eq!(stream.len(), n);
        prop_assert!(stream.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_mean_rate_matches_lambda(
        seed in 0u64..(1 << 48),
        rate in 20.0f64..2_000.0,
    ) {
        let n = 3_000;
        let stream = generate(ArrivalShape::Poisson, rate, n, seed);
        let got = empirical_rate(&stream);
        // Relative std of the mean is ~1/sqrt(n) ≈ 1.8%; 10% is > 5σ.
        prop_assert!(
            (got - rate).abs() / rate < 0.10,
            "configured {} got {}", rate, got
        );
    }

    #[test]
    fn bursty_preserves_total_expected_load(
        seed in 0u64..(1 << 48),
        rate in 50.0f64..2_000.0,
        on_fraction in 0.2f64..0.9,
        burst in 4.0f64..40.0,
    ) {
        // A bursty tenant must offer the same time-average load as a
        // Poisson one at the same λ — burstiness redistributes arrivals,
        // it does not add or remove any.
        let n = 4_000;
        let stream = generate(
            ArrivalShape::Bursty { on_fraction, mean_on_arrivals: burst },
            rate,
            n,
            seed,
        );
        let got = empirical_rate(&stream);
        // ≥ 100 on/off cycles at these parameters → ~10-15% std of the
        // span; 0.45 relative tolerance is ~3σ.
        prop_assert!(
            (got - rate).abs() / rate < 0.45,
            "configured {} got {}", rate, got
        );
    }

    #[test]
    fn diurnal_preserves_total_expected_load(
        seed in 0u64..(1 << 48),
        rate in 50.0f64..2_000.0,
        amplitude in 0.0f64..0.9,
        periods in 1.0f64..6.0,
    ) {
        let n = 4_000;
        let stream = generate(
            ArrivalShape::Diurnal { amplitude, periods },
            rate,
            n,
            seed,
        );
        let got = empirical_rate(&stream);
        prop_assert!(
            (got - rate).abs() / rate < 0.25,
            "configured {} got {}", rate, got
        );
    }

    #[test]
    fn bursty_is_burstier_than_poisson(
        seed in 0u64..(1 << 48),
        rate in 200.0f64..2_000.0,
    ) {
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, > 1 for the on/off process — the shape really does
        // stress queues harder at the same load.
        let cv2 = |stream: &[u64]| {
            let gaps: Vec<f64> = stream
                .windows(2)
                .map(|w| (w[1] - w[0]) as f64 / NS_PER_SEC)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>()
                / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = generate(ArrivalShape::Poisson, rate, 4_000, seed);
        let bursty = generate(
            ArrivalShape::Bursty { on_fraction: 0.3, mean_on_arrivals: 16.0 },
            rate,
            4_000,
            seed,
        );
        prop_assert!(cv2(&bursty) > cv2(&poisson));
    }
}
