//! Differential property tests: batched fast path vs reference path.
//!
//! The batched executor, the no-observer memory access path and the fused
//! synthetic-NNZ generator are pure optimizations — every observable
//! output must be bit-identical to the straightforward reference
//! implementations. These properties drive randomized tensors, sparsities,
//! thread counts, schemes, header placements and unroll factors through
//! both paths and compare the complete serialized results (which include
//! `CacheStats` and `TrafficStats` for every cache level), plus captured
//! `.ztrc` trace bytes.

use proptest::prelude::*;

use zcomp_isa::stream::HeaderMode;
use zcomp_isa::uops::UopTable;
use zcomp_kernels::nnz::nnz_synthetic;
use zcomp_kernels::relu::{run_relu_with_path, ExecPath, ReluOpts, ReluScheme};
use zcomp_replay::codec::TraceMeta;
use zcomp_replay::recorder::CaptureSession;
use zcomp_sim::config::SimConfig;
use zcomp_sim::engine::Machine;

const SCHEMES: [ReluScheme; 3] = [
    ReluScheme::Avx512Vec,
    ReluScheme::Avx512Comp,
    ReluScheme::Zcomp,
];

/// Runs one configuration through a path and returns the full serialized
/// observable state: kernel result plus machine summary (cycle counts,
/// per-level `CacheStats`, `TrafficStats`, uop totals).
fn run_path(scheme: ReluScheme, nnz: &[u8], opts: &ReluOpts, path: ExecPath) -> String {
    let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
    let result = run_relu_with_path(&mut machine, scheme, nnz, opts, path);
    serde_json::to_string(&(&result, &machine.summary())).expect("serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and reference execution agree on every statistic for random
    /// tensor sizes, sparsities, schemes, thread counts, header modes and
    /// unroll factors.
    #[test]
    fn batched_path_matches_reference(
        vectors in 1usize..3000,
        sparsity in 0.0f64..1.0,
        mean_run in 1.0f64..12.0,
        seed in 0u64..1 << 48,
        scheme_idx in 0usize..SCHEMES.len(),
        threads in 1usize..17,
        separate in 0u8..2,
        unroll in 1usize..5,
    ) {
        let nnz = nnz_synthetic(vectors * 16, sparsity, mean_run, seed);
        let opts = ReluOpts {
            threads,
            header_mode: if separate != 0 { HeaderMode::Separate } else { HeaderMode::Interleaved },
            unroll,
            ..ReluOpts::default()
        };
        let scheme = SCHEMES[scheme_idx];
        let fast = run_path(scheme, &nnz, &opts, ExecPath::Batched);
        let reference = run_path(scheme, &nnz, &opts, ExecPath::Reference);
        prop_assert_eq!(fast, reference, "scheme {} diverged", scheme);
    }

    /// With a trace observer attached, both paths capture byte-identical
    /// `.ztrc` files: the batched executor must emit the same operation
    /// stream the reference path does.
    #[test]
    fn trace_capture_is_path_invariant(
        vectors in 1usize..600,
        sparsity in 0.0f64..1.0,
        seed in 0u64..1 << 48,
        scheme_idx in 0usize..SCHEMES.len(),
        threads in 1usize..17,
    ) {
        let nnz = nnz_synthetic(vectors * 16, sparsity, 6.0, seed);
        let opts = ReluOpts { threads, ..ReluOpts::default() };
        let scheme = SCHEMES[scheme_idx];
        let dir = std::env::temp_dir().join(format!(
            "ztrc-diff-{}-{}",
            std::process::id(),
            seed & 0xffff_ffff,
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let capture = |path: ExecPath, name: &str| -> Vec<u8> {
            let file = dir.join(name);
            let mut machine = Machine::new(SimConfig::table1(), UopTable::skylake_x());
            let session =
                CaptureSession::begin(&file, TraceMeta::for_config(machine.config()))
                    .expect("begin capture");
            machine.set_observer(Some(session.observer()));
            run_relu_with_path(&mut machine, scheme, &nnz, &opts, path);
            machine.set_observer(None);
            session.finish("differential test").expect("finish capture");
            let bytes = std::fs::read(&file).expect("read trace");
            let _ = std::fs::remove_file(&file);
            bytes
        };
        let fast = capture(ExecPath::Batched, "batched.ztrc");
        let reference = capture(ExecPath::Reference, "reference.ztrc");
        let _ = std::fs::remove_dir(&dir);
        prop_assert_eq!(fast, reference, "trace capture diverged for {}", scheme);
    }
}
