//! End-to-end tests of the multi-process sweep fabric, driven through
//! [`zcomp::sweep::run_cells`] with [`zcomp::fabric::FabricOpts`] set.
//!
//! Everything here runs in one process but exercises the real on-disk
//! protocol — lease files, fencing tokens, per-worker journals and the
//! deterministic merge — by playing several workers against one fabric
//! directory. The drain flag is process-global, so the tests serialize
//! on a mutex.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use zcomp::fabric::{self, FabricOpts, Lease, LeaseDir, LeaseState};
use zcomp::supervise::{CellOutcome, Journal};
use zcomp::sweep::{run_cells, SweepError, SweepOpts};

const EXPERIMENT: &str = "fabric-test";
const FINGERPRINT: u32 = 0xF00D;
const ITEMS: usize = 6;

/// Serializes the tests: the drain flag is a process-global static.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zcomp-fabric-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn key_of(index: usize) -> String {
    format!("cell-{index}")
}

fn job_of(index: usize) -> Box<dyn FnOnce() -> u64 + Send + 'static> {
    Box::new(move || (index as u64 + 1) * 100)
}

fn fabric_opts(dir: &PathBuf, worker: &str) -> SweepOpts {
    SweepOpts::serial().with_fabric(
        FabricOpts::new(dir)
            .with_worker(worker)
            .with_lease_ttl(Duration::from_millis(60))
            .with_poll(Duration::from_millis(5)),
    )
}

fn run_worker(dir: &PathBuf, worker: &str) -> zcomp::sweep::CellsRun<u64> {
    run_cells(
        EXPERIMENT,
        ITEMS,
        FINGERPRINT,
        &fabric_opts(dir, worker),
        key_of,
        job_of,
    )
    .expect("fabric run succeeds")
}

fn values(run: &zcomp::sweep::CellsRun<u64>) -> Vec<u64> {
    run.outcomes
        .iter()
        .map(|o| match o {
            CellOutcome::Completed { value, .. } => *value,
            CellOutcome::Quarantined(f) => panic!("unexpected quarantine: {f}"),
        })
        .collect()
}

#[test]
fn fabric_run_matches_the_plain_run_and_reports_its_claims() {
    let _guard = lock();
    let dir = tmp_dir("plain-match");

    let plain = run_cells(
        EXPERIMENT,
        ITEMS,
        FINGERPRINT,
        &SweepOpts::serial(),
        key_of,
        job_of,
    )
    .expect("plain run succeeds");
    let fabric_run = run_worker(&dir, "solo");

    assert_eq!(values(&fabric_run), values(&plain));
    assert_eq!(fabric_run.report.executed, ITEMS);
    assert!(fabric_run.report.summary().contains("fabric worker solo"));
    let report = fabric_run.report.fabric.expect("fabric report attached");
    assert_eq!(report.worker, "solo");
    assert_eq!(report.claims, ITEMS as u64);
    assert_eq!(report.completed, ITEMS as u64);
    assert_eq!(report.reclaims, 0);
    assert_eq!(report.fenced_rejections, 0);
    assert_eq!(report.duplicates, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_late_worker_restores_everything_from_the_journals() {
    let _guard = lock();
    let dir = tmp_dir("late-worker");

    let first = run_worker(&dir, "first");
    let second = run_worker(&dir, "second");

    assert_eq!(values(&second), values(&first));
    let report = second.report.fabric.expect("fabric report attached");
    assert_eq!(report.claims, 0, "nothing left to claim");
    assert_eq!(second.report.executed, 0);
    assert_eq!(second.report.resume_skips, ITEMS);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dead_workers_stale_lease_is_reclaimed() {
    let _guard = lock();
    let dir = tmp_dir("reclaim");

    // A worker that died mid-cell: its lease file exists, heartbeats
    // stopped, and nothing was journalled.
    let exp_dir = dir.join(EXPERIMENT);
    let leases = LeaseDir::open(&exp_dir).expect("open lease dir");
    let victim_key = key_of(2);
    let hash = LeaseDir::hash(EXPERIMENT, &victim_key, FINGERPRINT);
    let dead = Lease {
        cell: victim_key,
        fingerprint: FINGERPRINT,
        worker: "dead".to_string(),
        token: leases.next_token(hash),
        state: LeaseState::Running,
    };
    assert!(leases.try_claim(hash, &dead).expect("claim"));
    std::thread::sleep(Duration::from_millis(150)); // > lease TTL

    let run = run_worker(&dir, "survivor");
    assert_eq!(values(&run).len(), ITEMS); // all cells completed
    let report = run.report.fabric.expect("fabric report attached");
    assert!(report.reclaims >= 1, "stale lease must be reclaimed");
    assert_eq!(report.completed, ITEMS as u64);
    assert_eq!(leases.tombstones("expired"), 1);
    assert!(
        leases.next_token(hash) > dead.token,
        "the fencing token must advance past the dead claim"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_fenced_zombies_late_commit_is_rejected_and_never_merged() {
    let _guard = lock();
    let dir = tmp_dir("fencing");
    let exp_dir = dir.join(EXPERIMENT);
    let leases = LeaseDir::open(&exp_dir).expect("open lease dir");

    // The zombie claims a cell, then stalls past its TTL (simulated by a
    // sleep — no heartbeat thread renews this lease).
    let victim_key = key_of(0);
    let hash = LeaseDir::hash(EXPERIMENT, &victim_key, FINGERPRINT);
    let zombie = Lease {
        cell: victim_key.clone(),
        fingerprint: FINGERPRINT,
        worker: "zombie".to_string(),
        token: leases.next_token(hash),
        state: LeaseState::Running,
    };
    assert!(leases.try_claim(hash, &zombie).expect("claim"));
    assert!(leases.owns(hash, "zombie", zombie.token));
    std::thread::sleep(Duration::from_millis(150)); // > lease TTL

    // A healthy worker sweeps the whole grid, reclaiming the zombie's
    // cell at a higher fencing token.
    let healthy = run_worker(&dir, "healthy");
    let report = healthy.report.fabric.clone().expect("fabric report");
    assert!(report.reclaims >= 1);

    // The zombie revives: the ownership check it would run right before
    // committing now fails — this is the fencing rejection.
    assert!(
        !leases.owns(hash, "zombie", zombie.token),
        "a reclaimed lease must not be owned by the zombie any more"
    );

    // Even a zombie that skips the check and force-appends its stale
    // record loses at merge time: the reclaimer's higher token wins, so
    // the merged sweep is unchanged and the extra record is counted as a
    // duplicate, not a torn or doubled cell.
    let zombie_journal = exp_dir.join("journal.zombie.jsonl");
    let mut journal = Journal::load(&zombie_journal).expect("load zombie journal");
    let stale = serde_json::to_string(&fabric::FabricCellPayload::Completed {
        attempts: 1,
        value: serde_json::to_string(&999_999u64).unwrap(),
    })
    .unwrap();
    journal
        .commit_fenced(
            zombie.cell.clone(),
            FINGERPRINT,
            stale,
            "zombie".to_string(),
            zombie.token,
        )
        .expect("append stale record");

    let merged = run_worker(&dir, "auditor");
    assert_eq!(values(&merged), values(&healthy), "stale value must lose");
    let report = merged.report.fabric.expect("fabric report");
    assert!(
        report.duplicates >= 1,
        "the zombie's stale record is visible only as a duplicate"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_drain_request_stops_the_worker_with_a_typed_error() {
    let _guard = lock();
    let dir = tmp_dir("drain");

    fabric::request_drain();
    let err = run_cells(
        EXPERIMENT,
        ITEMS,
        FINGERPRINT,
        &fabric_opts(&dir, "draining"),
        key_of,
        job_of,
    )
    .expect_err("a drained worker cannot return a full sweep");
    fabric::reset_drain();
    match err {
        SweepError::FabricDrained { completed, total } => {
            assert_eq!(completed, 0);
            assert_eq!(total, ITEMS);
        }
        other => panic!("expected FabricDrained, got {other}"),
    }

    // After the drain the same fabric dir resumes to a complete sweep.
    let resumed = run_worker(&dir, "resumer");
    assert_eq!(values(&resumed).len(), ITEMS);

    let _ = std::fs::remove_dir_all(&dir);
}
