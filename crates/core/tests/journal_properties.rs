//! Property tests for the crash-safe sweep-completion journal.
//!
//! The resume guarantee rests on one invariant: after ANY on-disk damage
//! (truncation from a SIGKILL mid-rename, a flipped byte from filesystem
//! rot, manual tampering), loading the journal yields only
//! verified-complete records — a cell either resumes with exactly the
//! payload that was committed for it, or it is dropped and re-executed.
//! These properties drive randomized record sets through commit/reload
//! cycles with injected truncation and corruption and check that no
//! damaged record is ever accepted.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec as pvec;
use proptest::prelude::*;

use zcomp::supervise::{Journal, JournalRecord};

static CASE: AtomicU64 = AtomicU64::new(0);

/// A unique journal path per generated case (cases run sequentially but
/// must not see each other's files).
fn case_path(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "zcomp-journal-prop-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

/// Commits one record per seed and returns the (cell, payload) pairs.
fn commit_all(path: &PathBuf, fingerprint: u32, seeds: &[u64]) -> Vec<(String, String)> {
    let mut journal = Journal::fresh(path);
    let mut committed = Vec::with_capacity(seeds.len());
    for (i, seed) in seeds.iter().enumerate() {
        let cell = format!("cfg={i};seed={seed:#x}");
        let payload = format!("{{\"cycles\":{seed},\"index\":{i}}}");
        journal
            .commit(cell.clone(), fingerprint, payload.clone())
            .expect("commit");
        committed.push((cell, payload));
    }
    committed
}

/// Asserts the resume invariant: every committed cell either resumes with
/// its exact payload or not at all.
fn assert_none_or_exact(
    journal: &Journal,
    fingerprint: u32,
    committed: &[(String, String)],
) -> Result<(), TestCaseError> {
    for (cell, payload) in committed {
        match journal.lookup(cell, fingerprint) {
            None => {}
            Some(found) => prop_assert_eq!(
                found,
                payload.as_str(),
                "cell {} resumed with a payload that was never committed",
                cell
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every committed record survives a reload byte-for-byte.
    #[test]
    fn journal_round_trips_every_committed_record(
        seeds in pvec(0u64..u64::MAX, 1..12),
        fingerprint in 0u32..u32::MAX,
    ) {
        let path = case_path("roundtrip");
        let committed = commit_all(&path, fingerprint, &seeds);
        let reloaded = Journal::load(&path).expect("reload");
        prop_assert_eq!(reloaded.len(), committed.len());
        for (cell, payload) in &committed {
            prop_assert_eq!(reloaded.lookup(cell, fingerprint), Some(payload.as_str()));
            // The same cell under a different fingerprint is a different
            // sweep and must not resume.
            prop_assert_eq!(reloaded.lookup(cell, fingerprint.wrapping_add(1)), None);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating the file anywhere (a crash mid-write of a non-atomic
    /// copy, `dd`-style damage) drops exactly the torn tail: the complete
    /// newline-terminated prefix lines resume, nothing else does.
    #[test]
    fn truncated_journal_resumes_only_the_intact_prefix(
        seeds in pvec(0u64..u64::MAX, 2..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = case_path("truncate");
        let committed = commit_all(&path, 7, &seeds);
        let bytes = std::fs::read(&path).expect("read journal");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let full_lines = String::from_utf8_lossy(&bytes[..cut])
            .split_inclusive('\n')
            .filter(|line| line.ends_with('\n'))
            .count();
        let reloaded = Journal::load(&path).expect("reload");
        // Every complete prefix line resumes; a cut that severed only the
        // trailing newline leaves one more record that is still whole.
        prop_assert!(reloaded.len() >= full_lines);
        prop_assert!(reloaded.len() <= full_lines + 1);
        assert_none_or_exact(&reloaded, 7, &committed)?;
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single byte never lets a damaged record resume: the
    /// CRC (or the JSON parse) rejects it, at most the touched line — or
    /// its two halves, when the flip hits a newline — is lost, and the
    /// next commit rewrites the file whole, healing the damage.
    #[test]
    fn corrupt_byte_is_rejected_and_healed_on_next_commit(
        seeds in pvec(0u64..u64::MAX, 1..8),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let path = case_path("corrupt");
        let committed = commit_all(&path, 9, &seeds);
        let mut bytes = std::fs::read(&path).expect("read journal");
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("corrupt");

        let reloaded = Journal::load(&path).expect("reload");
        // A flip inside one line kills that line; a flip that creates or
        // destroys a newline can take out two.
        prop_assert!(reloaded.len() >= committed.len().saturating_sub(2));
        prop_assert!(reloaded.len() <= committed.len());
        assert_none_or_exact(&reloaded, 9, &committed)?;

        // Healing: one more commit rewrites the file; a fresh load then
        // sees every surviving record plus the new one, all verified.
        let survivors = reloaded.len();
        let mut healing = reloaded;
        healing
            .commit("healer".to_string(), 9, "{\"ok\":true}".to_string())
            .expect("healing commit");
        let healed = Journal::load(&path).expect("reload healed");
        prop_assert_eq!(healed.len(), survivors + 1);
        prop_assert_eq!(healed.lookup("healer", 9), Some("{\"ok\":true}"));
        assert_none_or_exact(&healed, 9, &committed)?;
        let _ = std::fs::remove_file(&path);
    }

    /// `JournalRecord::verify` accepts a freshly built record and rejects
    /// any single-field perturbation.
    #[test]
    fn record_crc_detects_any_field_perturbation(
        seed in 0u64..u64::MAX,
        fingerprint in 0u32..u32::MAX,
        which in 0usize..4,
    ) {
        let rec = JournalRecord::new(
            format!("cell-{seed:#x}"),
            fingerprint,
            format!("{{\"v\":{seed}}}"),
        );
        prop_assert!(rec.verify(), "fresh record must verify");
        let mut bad = rec.clone();
        match which {
            0 => bad.cell.push('x'),
            1 => bad.fingerprint = bad.fingerprint.wrapping_add(1),
            2 => bad.payload.push('x'),
            _ => bad.crc = bad.crc.wrapping_add(1),
        }
        prop_assert!(!bad.verify(), "perturbed record must fail verification");
    }

    /// Fenced (fabric) records fold the worker id and fencing token into
    /// the CRC: both round-trip exactly, and perturbing either — the
    /// zombie-forgery surface — fails verification.
    #[test]
    fn fenced_record_crc_covers_worker_and_token(
        seed in 0u64..u64::MAX,
        fingerprint in 0u32..u32::MAX,
        token in 0u64..u64::MAX,
        which in 0usize..2,
    ) {
        let worker = format!("w-{:x}", seed & 0xFFFF);
        let rec = JournalRecord::new_fenced(
            format!("cell-{seed:#x}"),
            fingerprint,
            format!("{{\"v\":{seed}}}"),
            worker.clone(),
            token,
        );
        prop_assert!(rec.verify(), "fresh fenced record must verify");
        let mut bad = rec.clone();
        match which {
            0 => bad.worker.push('x'),
            _ => bad.token = bad.token.wrapping_add(1),
        }
        prop_assert!(!bad.verify(), "perturbed fenced record must fail verification");
    }

    /// Fenced commits round-trip the worker and token through disk, and a
    /// journal whose FINAL line is truncated mid-record (the exact shape a
    /// SIGKILLed fabric worker leaves behind) still loads every earlier
    /// cell — with its fencing metadata intact — and heals on the next
    /// fenced commit.
    #[test]
    fn truncated_final_fenced_record_keeps_the_prefix_and_heals(
        seeds in pvec(0u64..u64::MAX, 2..10),
        tokens in pvec(1u64..1000, 2..10),
        drop_bytes in 1usize..40,
    ) {
        let path = case_path("fenced-tail");
        let fingerprint = 11;
        let mut journal = Journal::fresh(&path);
        let n = seeds.len().min(tokens.len());
        let mut committed = Vec::with_capacity(n);
        for i in 0..n {
            let cell = format!("cell-{i}");
            let payload = format!("{{\"v\":{}}}", seeds[i]);
            let worker = format!("w{}", i % 3);
            journal
                .commit_fenced(cell.clone(), fingerprint, payload.clone(), worker.clone(), tokens[i])
                .expect("fenced commit");
            committed.push((cell, payload, worker, tokens[i]));
        }

        // Tear the final record: drop 1..40 bytes off the end of the file
        // (always severing the last line, never an earlier one).
        let bytes = std::fs::read(&path).expect("read journal");
        let last_line_start = bytes[..bytes.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let cut = (bytes.len() - drop_bytes).max(last_line_start + 1);
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let reloaded = Journal::load(&path).expect("reload");
        prop_assert_eq!(reloaded.len(), n - 1, "exactly the torn tail is lost");
        for (cell, payload, worker, token) in &committed[..n - 1] {
            let entry = reloaded.entry(cell, fingerprint).expect("prefix cell resumes");
            prop_assert_eq!(&entry.payload, payload);
            prop_assert_eq!(&entry.worker, worker);
            prop_assert_eq!(entry.token, *token);
        }
        prop_assert!(reloaded.entry(&committed[n - 1].0, fingerprint).is_none());

        // Healing: re-committing the torn cell rewrites the file whole.
        let (cell, payload, worker, token) = committed[n - 1].clone();
        let mut healing = reloaded;
        healing
            .commit_fenced(cell.clone(), fingerprint, payload.clone(), worker, token)
            .expect("healing fenced commit");
        let healed = Journal::load(&path).expect("reload healed");
        prop_assert_eq!(healed.len(), n);
        let entry = healed.entry(&cell, fingerprint).expect("healed cell resumes");
        prop_assert_eq!(&entry.payload, &payload);
        prop_assert_eq!(entry.token, token);
        let _ = std::fs::remove_file(&path);
    }
}
