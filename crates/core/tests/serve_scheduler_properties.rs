//! Property-based tests on the class-aware batching scheduler and the
//! serving engine's overload accounting.
//!
//! Pins the three invariants the resilience layer leans on:
//!
//! 1. **Max-wait**: no admitted batch dispatches later than its head's
//!    flush deadline or the moment capacity freed up, whichever is later
//!    — partial batches wait for the deadline or for an instance, never
//!    longer (checked against the engine's own [`BatchAudit`] trail).
//! 2. **Priority**: the pure class scheduler never inverts strict
//!    priority at identical arrival times, whatever deficit history
//!    preceded the pick.
//! 3. **Accounting**: every generated request ends in exactly one
//!    terminal bucket — completed, dropped, rejected, shed, hard-failed
//!    or stranded — under any mix of admission control, chaos and
//!    degradation policy, and the per-class rows partition the totals.

use std::collections::BTreeMap;

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use zcomp::serve::admission::AdmissionConfig;
use zcomp::serve::arrival::ArrivalShape;
use zcomp::serve::chaos::{ChaosConfig, DegradePolicy};
use zcomp::serve::engine::{simulate, simulate_audited, RatePoint};
use zcomp::serve::service::{ServiceModel, ServiceProfile};
use zcomp::serve::slo::{ClassScheduler, ReadyTenant, SloClass};
use zcomp::serve::{ServeConfig, TenantSpec};
use zcomp_dnn::models::ModelId;
use zcomp_kernels::layer_exec::Scheme;

fn class_from(idx: usize) -> SloClass {
    SloClass::ALL[idx % SloClass::ALL.len()]
}

/// A flat-cost service: every padded batch size costs `batch_us`
/// microseconds at a 1 GHz clock, no shared-bandwidth terms. Keeps each
/// proptest case in the microsecond-simulation regime.
fn flat_service(batch_us: f64) -> ServiceModel {
    let mut profiles = BTreeMap::new();
    for padded in [1usize, 2, 4, 8] {
        profiles.insert(
            padded,
            ServiceProfile {
                base_cycles: batch_us * 1_000.0,
                dram_bytes: 0.0,
                noc_bytes: 0.0,
            },
        );
    }
    ServiceModel::fixed(1.0e9, 1.0, 1.0, profiles)
}

/// A serving node over the flat-cost service: random tenant classes,
/// 0.5 ms batches, 4 ms SLO, 1 ms flush deadline.
fn flat_config(
    scheme: Scheme,
    instances: usize,
    max_batch: usize,
    arrivals: usize,
    class_seed: usize,
    tenants: usize,
    seed: u64,
) -> ServeConfig {
    let mut cfg = ServeConfig::new(ModelId::Googlenet, scheme, max_batch);
    cfg.instances = instances;
    cfg.arrivals_per_tenant = arrivals;
    cfg.drift_epochs = 1;
    cfg.queue_cap = 64;
    cfg.slo_ns = 4_000_000;
    cfg.max_wait_ns = 1_000_000;
    cfg.seed = seed;
    cfg.tenants = (0..tenants)
        .map(|t| TenantSpec {
            shape: ArrivalShape::Poisson,
            weight: 1.0 + t as f64,
            class: class_from(class_seed + t),
        })
        .collect();
    cfg
}

/// The six terminal buckets of one rate point.
fn accounted(p: &RatePoint) -> u64 {
    p.completed + p.dropped + p.rejected + p.shed + p.failed + p.stranded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No admitted batch outlives its flush deadline while capacity is
    /// free: every non-full batch dispatches by
    /// `max(head + max_wait, free_since)` (± one event tick), where
    /// `free_since` is when the dispatching instance last became idle and
    /// serving-capable.
    #[test]
    fn admitted_batches_never_outwait_the_flush_deadline(
        seed in 0u64..(1 << 48),
        qps in 200.0f64..4_000.0,
        batch_pow in 0u32..3,
        instances in 1usize..4,
        class_seed in 0usize..9,
        tenants in 1usize..4,
    ) {
        let cfg = flat_config(
            Scheme::None,
            instances,
            1 << batch_pow,
            120,
            class_seed,
            tenants,
            seed,
        );
        let mut service = flat_service(500.0);
        let (_, audits) = simulate_audited(&cfg, &mut service, qps);
        prop_assert!(!audits.is_empty(), "the run must admit batches");
        for a in &audits {
            if !a.full {
                let deadline = (a.head + cfg.max_wait_ns).max(a.free_since) + 1;
                prop_assert!(
                    a.admitted_at <= deadline,
                    "tenant {} batch admitted at {} past deadline {} \
                     (head {}, free_since {})",
                    a.tenant, a.admitted_at, deadline, a.head, a.free_since
                );
            }
        }
    }

    /// The pure scheduler never inverts strict priority: when every ready
    /// queue head carries the identical arrival timestamp, the pick is
    /// always from the most critical class present — regardless of the
    /// deficit history accumulated beforehand.
    #[test]
    fn priority_never_inverts_at_identical_arrival_times(
        class_seeds in pvec(0usize..3, 1..6),
        weights in pvec(0.1f64..8.0, 6),
        history in pvec((0usize..6, 1usize..9), 0..40),
        head in 0u64..1_000_000,
    ) {
        let tenants: Vec<TenantSpec> = class_seeds
            .iter()
            .enumerate()
            .map(|(t, &c)| TenantSpec {
                shape: ArrivalShape::Poisson,
                weight: weights[t],
                class: class_from(c),
            })
            .collect();
        let mut sched = ClassScheduler::new(&tenants);
        // Arbitrary prior service history: the invariant must survive any
        // deficit state, not just a fresh scheduler.
        for &(t, take) in &history {
            sched.on_dispatch(t % tenants.len(), take);
        }
        let ready: Vec<ReadyTenant> = (0..tenants.len())
            .map(|tenant| ReadyTenant { tenant, head })
            .collect();
        let picked = sched.pick(&ready).expect("non-empty ready set");
        let best = ready
            .iter()
            .map(|r| sched.class_of(r.tenant).priority())
            .min()
            .expect("non-empty ready set");
        prop_assert_eq!(
            sched.class_of(picked).priority(),
            best,
            "picked tenant {} of class {:?} while a higher class was ready",
            picked,
            sched.class_of(picked)
        );
    }

    /// Offered load is conserved under any overload response: admission
    /// control, crashes, codec faults under either degradation policy.
    /// Every arrival lands in exactly one terminal bucket and the
    /// per-class rows sum back to the totals.
    #[test]
    fn terminal_buckets_partition_the_offered_load(
        seed in 0u64..(1 << 48),
        chaos_seed in 0u64..(1 << 48),
        qps in 100.0f64..20_000.0,
        batch_pow in 0u32..3,
        instances in 1usize..4,
        class_seed in 0usize..9,
        tenants in 1usize..4,
        protective_sel in 0u32..2,
        chaos_sel in 0u32..2,
        policy_sel in 0u32..2,
        fault_rate in 0.0f64..0.5,
        mttf_s in 0.005f64..0.05,
        mttr_s in 0.001f64..0.01,
    ) {
        let mut cfg = flat_config(
            Scheme::Zcomp,
            instances,
            1 << batch_pow,
            100,
            class_seed,
            tenants,
            seed,
        );
        let (protective, with_chaos, hard_fail) =
            (protective_sel == 1, chaos_sel == 1, policy_sel == 1);
        if protective {
            cfg.admission = AdmissionConfig::protective();
        }
        if with_chaos {
            cfg.chaos = Some(ChaosConfig {
                seed: chaos_seed,
                mttf_s,
                mttr_s,
                codec_fault_rate: fault_rate,
                transient_fraction: 0.25,
                retry_cost_frac: 0.25,
                policy: if hard_fail {
                    DegradePolicy::HardFail
                } else {
                    DegradePolicy::Degrade
                },
            });
        }
        let mut service = flat_service(500.0);
        let p = simulate(&cfg, &mut service, qps);
        prop_assert_eq!(p.arrivals, cfg.total_arrivals() as u64);
        prop_assert_eq!(
            accounted(&p),
            p.arrivals,
            "buckets {} != arrivals {} (completed {} dropped {} rejected {} \
             shed {} failed {} stranded {})",
            accounted(&p), p.arrivals, p.completed, p.dropped, p.rejected,
            p.shed, p.failed, p.stranded
        );
        // Degrade policy turns codec faults into retries or fallbacks,
        // never request failures.
        if with_chaos && !hard_fail {
            prop_assert_eq!(p.failed, 0);
        }
        // Per-class rows partition every terminal bucket.
        let sum = |f: fn(&zcomp::serve::engine::ClassStats) -> u64| {
            p.classes.iter().map(f).sum::<u64>()
        };
        prop_assert_eq!(sum(|c| c.arrivals), p.arrivals);
        prop_assert_eq!(sum(|c| c.completed), p.completed);
        prop_assert_eq!(sum(|c| c.dropped), p.dropped);
        prop_assert_eq!(sum(|c| c.rejected), p.rejected);
        prop_assert_eq!(sum(|c| c.shed), p.shed);
        prop_assert_eq!(sum(|c| c.failed), p.failed);
    }
}
