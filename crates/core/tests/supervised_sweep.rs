//! End-to-end exercises of the supervised sweep runtime: the acceptance
//! scenario from the supervised-runtime work.
//!
//! A sweep containing a panicking cell, a hung cell, and a corrupted
//! cached trace must complete, with exactly those cells quarantined (or
//! healed) and everything else produced normally — and a corrupt `.ztrc`
//! must be moved aside, regenerated, and never silently replayed into the
//! results.

use std::path::{Path, PathBuf};
use std::time::Duration;

use zcomp::experiments::fig12;
use zcomp::supervise::{CellOutcome, FailureReason, SuperviseOpts};
use zcomp::sweep::{run_cells, SweepOpts};
use zcomp_dnn::deepbench::{suite_configs, Suite};

fn tmp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("zcomp-supervised-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn ztrc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(root)
        .expect("read cache root")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ztrc"))
        .collect();
    files.sort();
    files
}

/// Fault-campaign cross-check for the trace cache: corrupting a cached
/// trace between a cold and a warm sweep must (a) leave the warm results
/// identical to the cold ones — the cell regenerates instead of replaying
/// garbage — and (b) move the damaged file into `quarantine/` with a
/// reason sidecar, with a fresh trace taking its slot.
#[test]
fn corrupted_cached_trace_is_quarantined_and_regenerated() {
    let configs = &suite_configs(Suite::ConvTrain)[..2];
    let root = tmp_root("heal");
    let opts = SweepOpts::serial().with_cache(&root);

    let cold = fig12::run_sweep(configs, 4096, 0.53, &opts).expect("cold sweep");
    assert!(cold.supervision.quarantined.is_empty());
    let traces = ztrc_files(&root);
    assert_eq!(traces.len(), configs.len() * fig12::SCHEMES.len());

    // Flip one byte in the middle of a cached trace.
    let victim = &traces[traces.len() / 2];
    let mut bytes = std::fs::read(victim).expect("read trace");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5A;
    std::fs::write(victim, &bytes).expect("write corrupted trace");

    let warm = fig12::run_sweep(configs, 4096, 0.53, &opts).expect("warm sweep");
    assert!(warm.supervision.quarantined.is_empty());
    assert_eq!(
        warm.result.rows, cold.result.rows,
        "a corrupt cached trace must be regenerated, never silently replayed"
    );

    // Quarantined copies land in bounded history slots named
    // `<stem>.<slot>.ztrc`; a first-time failure takes slot 0.
    let stem = victim.file_stem().unwrap().to_str().unwrap();
    let qfile = root.join("quarantine").join(format!("{stem}.0.ztrc"));
    assert!(qfile.exists(), "damaged trace must land in quarantine/");
    let mut reason = qfile.clone().into_os_string();
    reason.push(".reason.txt");
    assert!(
        std::fs::read_to_string(reason)
            .expect("reason sidecar")
            .contains("verification"),
        "reason sidecar must explain the quarantine"
    );
    assert!(
        victim.exists(),
        "the cache slot must hold a regenerated trace"
    );
    assert_ne!(
        std::fs::read(victim).expect("reread trace"),
        bytes,
        "regenerated trace must not be the corrupted bytes"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// The acceptance sweep: ten cells where one always panics and one always
/// hangs. The sweep completes, the sick cells are quarantined with their
/// specific failure reasons, and every healthy cell's value is present in
/// index order.
#[test]
fn sweep_with_panicking_and_hung_cells_completes_with_them_quarantined() {
    const PANICKER: usize = 3;
    const SLEEPER: usize = 7;
    let root = tmp_root("sick-cells");
    let opts = SweepOpts::default()
        .with_threads(4)
        .with_cache(&root)
        .with_supervise(
            SuperviseOpts::default()
                .with_attempts(2)
                .with_deadline(Duration::from_millis(200))
                .with_backoff(Duration::from_millis(1), Duration::from_millis(2)),
        );

    let run = run_cells(
        "acceptance",
        10,
        0xBEEF,
        &opts,
        |i| format!("cell-{i}"),
        |i| {
            Box::new(move || match i {
                PANICKER => panic!("injected panic in cell {i}"),
                SLEEPER => {
                    std::thread::sleep(Duration::from_secs(600));
                    0u64
                }
                _ => (i as u64) * 11,
            })
        },
    )
    .expect("sweep must complete despite sick cells");

    assert_eq!(run.report.cells, 10);
    assert_eq!(run.report.executed, 10);
    assert_eq!(run.report.quarantined.len(), 2);
    // One retry each: both sick cells consumed their full attempt budget.
    assert_eq!(run.report.retries, 2);

    for (i, outcome) in run.outcomes.iter().enumerate() {
        match outcome {
            CellOutcome::Completed { value, .. } => {
                assert_ne!(i, PANICKER);
                assert_ne!(i, SLEEPER);
                assert_eq!(*value, (i as u64) * 11);
            }
            CellOutcome::Quarantined(failure) => {
                assert_eq!(failure.index, i);
                assert_eq!(failure.attempts, 2);
                match (i, &failure.reason) {
                    (PANICKER, FailureReason::Panicked { message }) => {
                        assert!(message.contains("injected panic in cell 3"))
                    }
                    (SLEEPER, FailureReason::DeadlineExceeded { limit_ms }) => {
                        assert_eq!(*limit_ms, 200)
                    }
                    other => panic!("unexpected quarantine: {other:?}"),
                }
            }
        }
    }

    // Quarantined cells are NOT journalled: a resume re-runs exactly the
    // sick cells and restores the healthy ones without executing them.
    let resumed = run_cells(
        "acceptance",
        10,
        0xBEEF,
        &SweepOpts {
            resume: true,
            ..opts.clone()
        },
        |i| format!("cell-{i}"),
        |i| {
            Box::new(move || {
                assert!(
                    i == PANICKER || i == SLEEPER,
                    "healthy cell {i} must resume from the journal, not re-run"
                );
                (i as u64) * 11 // the sick cells recover this time
            })
        },
    )
    .expect("resume");
    assert_eq!(resumed.report.resume_skips, 8);
    assert_eq!(resumed.report.executed, 2);
    assert!(resumed.report.quarantined.is_empty());
    for (i, outcome) in resumed.outcomes.iter().enumerate() {
        assert_eq!(outcome.value(), Some(&((i as u64) * 11)));
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// A flaky cell that fails on its first attempt and succeeds on retry is
/// NOT quarantined, and the retry is visible in the report.
#[test]
fn flaky_cell_recovers_on_retry_without_quarantine() {
    use std::sync::atomic::{AtomicU32, Ordering};
    static TRIES: AtomicU32 = AtomicU32::new(0);

    let opts = SweepOpts::serial().with_supervise(
        SuperviseOpts::default()
            .with_attempts(3)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(2)),
    );
    let run = run_cells(
        "flaky",
        3,
        0,
        &opts,
        |i| format!("cell-{i}"),
        |i| {
            Box::new(move || {
                if i == 1 && TRIES.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient failure");
                }
                i as u64
            })
        },
    )
    .expect("sweep");
    assert!(run.report.quarantined.is_empty());
    assert_eq!(run.report.retries, 1);
    assert_eq!(
        run.outcomes
            .iter()
            .map(|o| *o.value().unwrap())
            .collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
}
