//! Training datasets of the paper's evaluation (§5.3): Oxford Flowers
//! (1,360 images) and a 100,000-image ImageNet subset.

use serde::{Deserialize, Serialize};

/// A training dataset: enough structure to project epochs into steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// Number of training images.
    pub images: usize,
}

impl Dataset {
    /// Oxford Flowers-17: 1,360 images (§5.3).
    pub fn oxford_flowers() -> Self {
        Dataset {
            name: "oxford-flowers".into(),
            images: 1_360,
        }
    }

    /// The paper's 100,000-image ImageNet subset (§5.3).
    pub fn imagenet_subset() -> Self {
        Dataset {
            name: "imagenet-100k".into(),
            images: 100_000,
        }
    }

    /// Training steps (batches) per epoch at the given batch size,
    /// counting the final partial batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn steps_per_epoch(&self, batch: usize) -> usize {
        assert!(batch > 0, "batch must be positive");
        self.images.div_ceil(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_sizes() {
        assert_eq!(Dataset::oxford_flowers().images, 1_360);
        assert_eq!(Dataset::imagenet_subset().images, 100_000);
    }

    #[test]
    fn steps_per_epoch_rounds_up() {
        let d = Dataset::oxford_flowers();
        assert_eq!(d.steps_per_epoch(64), 22); // 1360/64 = 21.25
        assert_eq!(d.steps_per_epoch(1360), 1);
        assert_eq!(d.steps_per_epoch(1), 1360);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        Dataset::imagenet_subset().steps_per_epoch(0);
    }
}
