//! DeepBench tensor shapes for the ReLU activation-layer study (§5.2).
//!
//! The paper uses "a total of 44 inputs collected from training and
//! inference-server suites for convolutional and fully-connected layers"
//! of Baidu's DeepBench, with input tensor sizes "ranging from only few
//! KBs up to 560 MBs". This module encodes 44 configurations — eleven per
//! suite — whose shapes follow the published DeepBench convolution and
//! GEMM suites (DeepSpeech, VGG, ResNet and speaker-ID kernels); entries
//! are stored as the *ReLU input tensor shape* (the convolution/GEMM
//! output), which is what the activation-layer benchmark consumes. Where
//! the published suites did not include the extreme sizes the paper plots,
//! nearest-size entries were added so the size spectrum matches the
//! paper's few-KB–560 MB range.

use serde::{Deserialize, Serialize};

use crate::tensor::ELEM_BYTES;

/// The four DeepBench benchmark groups of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Convolution layers, training shapes.
    ConvTrain,
    /// Convolution layers, inference-server shapes (small batches, §5.2:
    /// feature maps almost always fit in caches).
    ConvInfer,
    /// Fully-connected (GEMM) layers, training shapes.
    FcTrain,
    /// Fully-connected (GEMM) layers, inference-server shapes.
    FcInfer,
}

impl Suite {
    /// All suites in the paper's plotting order.
    pub const ALL: [Suite; 4] = [
        Suite::ConvTrain,
        Suite::ConvInfer,
        Suite::FcTrain,
        Suite::FcInfer,
    ];
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::ConvTrain => "conv-train",
            Suite::ConvInfer => "conv-infer",
            Suite::FcTrain => "fc-train",
            Suite::FcInfer => "fc-infer",
        })
    }
}

/// One benchmark configuration: the ReLU layer's input tensor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DeepBenchConfig {
    /// Suite this entry belongs to.
    pub suite: Suite,
    /// Kernel name (source network and layer).
    pub name: &'static str,
    /// Elements in the ReLU input tensor.
    pub elements: usize,
}

impl DeepBenchConfig {
    /// Tensor footprint in bytes at fp32.
    pub fn bytes(&self) -> usize {
        self.elements * ELEM_BYTES
    }
}

const fn conv(
    suite: Suite,
    name: &'static str,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> DeepBenchConfig {
    DeepBenchConfig {
        suite,
        name,
        elements: n * c * h * w,
    }
}

const fn gemm(suite: Suite, name: &'static str, m: usize, n: usize) -> DeepBenchConfig {
    DeepBenchConfig {
        suite,
        name,
        elements: m * n,
    }
}

/// The 44 evaluated configurations, grouped by suite and sorted by size
/// within each group (the x-axis ordering of Fig. 12).
pub fn all_configs() -> Vec<DeepBenchConfig> {
    use Suite::*;
    let mut configs = vec![
        // --- conv-train: DeepSpeech2 / VGG / ResNet training shapes ---
        conv(ConvTrain, "resnet_conv5x", 16, 512, 7, 7),
        conv(ConvTrain, "resnet_conv4x", 16, 256, 14, 14),
        conv(ConvTrain, "resnet_conv3x", 16, 128, 28, 28),
        conv(ConvTrain, "resnet_conv2x", 16, 64, 56, 56),
        conv(ConvTrain, "ds2_conv3", 32, 32, 19, 83),
        conv(ConvTrain, "ds2_conv2", 32, 32, 38, 166),
        conv(ConvTrain, "vgg_conv3", 64, 256, 56, 56),
        conv(ConvTrain, "ds2_conv1", 32, 32, 79, 341),
        conv(ConvTrain, "vgg_conv2", 64, 128, 112, 112),
        conv(ConvTrain, "vgg_conv1_n32", 32, 64, 224, 224),
        conv(ConvTrain, "face_conv1", 64, 96, 151, 151),
        // --- conv-infer: server inference shapes (batch 1-4) ---
        conv(ConvInfer, "resnet_conv5x_n1", 1, 512, 7, 7),
        conv(ConvInfer, "resnet_conv4x_n1", 1, 256, 14, 14),
        conv(ConvInfer, "squeeze_fire9", 1, 512, 13, 13),
        conv(ConvInfer, "resnet_conv3x_n2", 2, 128, 28, 28),
        conv(ConvInfer, "ds2_conv3_n4", 4, 32, 19, 83),
        conv(ConvInfer, "resnet_conv2x_n4", 4, 64, 56, 56),
        conv(ConvInfer, "ds2_conv2_n4", 4, 32, 38, 166),
        conv(ConvInfer, "vgg_conv3_n4", 4, 256, 56, 56),
        conv(ConvInfer, "ds2_conv1_n4", 4, 32, 79, 341),
        conv(ConvInfer, "vgg_conv2_n4", 4, 128, 112, 112),
        conv(ConvInfer, "vgg_conv1_n4", 4, 64, 224, 224),
        // --- fc-train: GEMM training shapes (M x N outputs) ---
        gemm(FcTrain, "gemm_1760x16", 1760, 16),
        gemm(FcTrain, "gemm_2048x32", 2048, 32),
        gemm(FcTrain, "gemm_2560x64", 2560, 64),
        gemm(FcTrain, "gemm_4096x128", 4096, 128),
        gemm(FcTrain, "gemm_3072x1024", 3072, 1024),
        gemm(FcTrain, "gemm_7680x1500", 7680, 1500),
        gemm(FcTrain, "gemm_3072x7435", 3072, 7435),
        gemm(FcTrain, "gemm_5124x9124", 5124, 9124),
        gemm(FcTrain, "gemm_7680x9124", 7680, 9124),
        gemm(FcTrain, "gemm_8448x12288", 8448, 12288),
        gemm(FcTrain, "gemm_12288x12288", 12288, 11900),
        // --- fc-infer: GEMM inference-server shapes ---
        gemm(FcInfer, "gemm_35x700", 35, 700),
        gemm(FcInfer, "gemm_512x700", 512, 700),
        gemm(FcInfer, "gemm_1024x700", 1024, 700),
        gemm(FcInfer, "gemm_2560x700", 2560, 700),
        gemm(FcInfer, "gemm_4096x700", 4096, 700),
        gemm(FcInfer, "gemm_5124x700", 5124, 700),
        gemm(FcInfer, "gemm_3072x1500", 3072, 1500),
        gemm(FcInfer, "gemm_7680x1500i", 7680, 1500),
        gemm(FcInfer, "gemm_7680x2560", 7680, 2560),
        gemm(FcInfer, "gemm_10752x2560", 10752, 2560),
        gemm(FcInfer, "gemm_12288x5124", 12288, 5124),
    ];
    // Sort within each suite by size, preserving suite order.
    configs.sort_by_key(|c| (suite_rank(c.suite), c.elements));
    configs
}

/// Plotting-order rank of a suite; exhaustive so adding a suite is a
/// compile error here rather than a runtime `expect`.
const fn suite_rank(s: Suite) -> usize {
    match s {
        Suite::ConvTrain => 0,
        Suite::ConvInfer => 1,
        Suite::FcTrain => 2,
        Suite::FcInfer => 3,
    }
}

/// Configurations of one suite, sorted by size.
pub fn suite_configs(suite: Suite) -> Vec<DeepBenchConfig> {
    all_configs()
        .into_iter()
        .filter(|c| c.suite == suite)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_rank_matches_plotting_order() {
        for (i, &s) in Suite::ALL.iter().enumerate() {
            assert_eq!(suite_rank(s), i, "{s}");
        }
    }

    #[test]
    fn there_are_44_configs() {
        assert_eq!(all_configs().len(), 44);
        for suite in Suite::ALL {
            assert_eq!(suite_configs(suite).len(), 11, "{suite}");
        }
    }

    #[test]
    fn sizes_span_kb_to_560mb() {
        let configs = all_configs();
        let min = configs.iter().map(DeepBenchConfig::bytes).min().unwrap();
        let max = configs.iter().map(DeepBenchConfig::bytes).max().unwrap();
        assert!(min < 128 * 1024, "smallest is {min} bytes");
        assert!(
            (500 << 20..620 << 20).contains(&max),
            "largest is {} MB, paper says up to 560 MB",
            max >> 20
        );
    }

    #[test]
    fn each_suite_is_sorted_by_size() {
        for suite in Suite::ALL {
            let sizes: Vec<usize> = suite_configs(suite).iter().map(|c| c.elements).collect();
            let mut sorted = sizes.clone();
            sorted.sort_unstable();
            assert_eq!(sizes, sorted, "{suite}");
        }
    }

    #[test]
    fn inference_conv_shapes_are_cache_scale() {
        // §5.2: "for the conv-infer benchmark group, feature maps of a
        // single layer almost always fit in caches" (24 MB L3).
        let l3 = 24 << 20;
        let fitting = suite_configs(Suite::ConvInfer)
            .iter()
            .filter(|c| c.bytes() <= l3)
            .count();
        assert!(fitting >= 9, "only {fitting} of 11 fit the L3");
    }

    #[test]
    fn names_are_unique() {
        let configs = all_configs();
        let mut names: Vec<&str> = configs.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), configs.len());
    }
}
