//! Network layers: shape inference, parameter and FLOP accounting.

use serde::{Deserialize, Serialize};

use crate::tensor::{TensorShape, ELEM_BYTES};

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// MAX-POOL.
    Max,
    /// AVG-POOL (also used for global average pooling).
    Avg,
}

/// The kind of a network layer, with its hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution, optionally fused with a ReLU activation (the common
    /// CONV+ReLU pair of §2.1).
    Conv {
        /// Output channels (filter count).
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Whether a ReLU follows (determines output sparsity).
        relu: bool,
    },
    /// Pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding (inception pool branches use pad 1).
        pad: usize,
    },
    /// Fully-connected layer, optionally fused with ReLU.
    Fc {
        /// Output features.
        out_features: usize,
        /// Whether a ReLU follows.
        relu: bool,
    },
    /// Standalone ReLU activation (identity shape).
    Relu,
    /// Local response normalization (identity shape; carries sparsity
    /// through, §2.2).
    Lrn,
    /// Dropout (identity shape; adds zeros at the configured rate during
    /// training).
    Dropout {
        /// Drop probability.
        p: f64,
    },
    /// Channel-wise concatenation of this branch with earlier branches
    /// (inception modules). The layer's input shape is the concatenated
    /// shape.
    Concat,
    /// Residual elementwise addition (identity shape).
    Add,
    /// Softmax classifier head (identity shape, dense output).
    Softmax,
}

/// A layer instance inside a network, with resolved shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name (e.g. `conv3_2`).
    pub name: String,
    /// Kind and hyper-parameters.
    pub kind: LayerKind,
    /// Input activation shape.
    pub input: TensorShape,
    /// Output activation shape.
    pub output: TensorShape,
}

impl Layer {
    /// Infers the output shape of `kind` applied to `input`.
    ///
    /// # Panics
    ///
    /// Panics if a convolution/pool window does not fit the input (an
    /// ill-formed network description).
    pub fn infer(name: impl Into<String>, kind: LayerKind, input: TensorShape) -> Layer {
        let output = match &kind {
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
                ..
            } => {
                let h = conv_out(input.h, *kernel, *stride, *pad);
                let w = conv_out(input.w, *kernel, *stride, *pad);
                TensorShape::new(input.n, *out_channels, h, w)
            }
            LayerKind::Pool {
                size, stride, pad, ..
            } => {
                let h = pool_out(input.h, *size, *stride, *pad);
                let w = pool_out(input.w, *size, *stride, *pad);
                TensorShape::new(input.n, input.c, h, w)
            }
            LayerKind::Fc { out_features, .. } => TensorShape::features(input.n, *out_features),
            LayerKind::Relu
            | LayerKind::Lrn
            | LayerKind::Dropout { .. }
            | LayerKind::Concat
            | LayerKind::Add
            | LayerKind::Softmax => input,
        };
        Layer {
            name: name.into(),
            kind,
            input,
            output,
        }
    }

    /// Number of learned parameters (weights + biases).
    pub fn params(&self) -> usize {
        match &self.kind {
            LayerKind::Conv {
                out_channels,
                kernel,
                ..
            } => self.input.c * out_channels * kernel * kernel + out_channels,
            LayerKind::Fc { out_features, .. } => {
                self.input.per_item_elements() * out_features + out_features
            }
            _ => 0,
        }
    }

    /// Weight footprint in bytes at fp32.
    pub fn weight_bytes(&self) -> usize {
        self.params() * ELEM_BYTES
    }

    /// Forward-pass floating point operations (multiply and add counted
    /// separately).
    pub fn flops(&self) -> u64 {
        let out = self.output.elements() as u64;
        match &self.kind {
            LayerKind::Conv { kernel, .. } => 2 * out * (self.input.c * kernel * kernel) as u64,
            LayerKind::Fc { .. } => 2 * out * self.input.per_item_elements() as u64,
            LayerKind::Pool { size, .. } => out * (size * size) as u64,
            LayerKind::Relu | LayerKind::Dropout { .. } | LayerKind::Add => out,
            LayerKind::Lrn => 8 * out,
            LayerKind::Softmax => 5 * out,
            LayerKind::Concat => 0,
        }
    }

    /// Whether the layer's output passes through a ReLU (and therefore has
    /// ReLU-generated sparsity).
    pub fn has_relu(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::Conv { relu: true, .. } | LayerKind::Fc { relu: true, .. } | LayerKind::Relu
        )
    }

    /// Whether this layer only carries its input sparsity through (LRN,
    /// pooling and similar layers without their own activation, §2.2).
    pub fn carries_sparsity(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::Pool { .. } | LayerKind::Lrn | LayerKind::Dropout { .. }
        )
    }
}

fn conv_out(size: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = size + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than input {padded}"
    );
    (padded - kernel) / stride + 1
}

fn pool_out(size: usize, window: usize, stride: usize, pad: usize) -> usize {
    let padded = size + 2 * pad;
    assert!(
        padded >= window,
        "pool window {window} larger than input {padded}"
    );
    // Caffe-style ceil division for pooling.
    (padded - window).div_ceil(stride) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference_vgg_conv1() {
        let input = TensorShape::new(64, 3, 224, 224);
        let layer = Layer::infer(
            "conv1_1",
            LayerKind::Conv {
                out_channels: 64,
                kernel: 3,
                stride: 1,
                pad: 1,
                relu: true,
            },
            input,
        );
        assert_eq!(layer.output, TensorShape::new(64, 64, 224, 224));
        assert_eq!(layer.params(), 3 * 64 * 9 + 64);
    }

    #[test]
    fn conv_shape_inference_alexnet_conv1() {
        let input = TensorShape::new(1, 3, 227, 227);
        let layer = Layer::infer(
            "conv1",
            LayerKind::Conv {
                out_channels: 96,
                kernel: 11,
                stride: 4,
                pad: 0,
                relu: true,
            },
            input,
        );
        assert_eq!(layer.output.h, 55);
        assert_eq!(layer.output.w, 55);
    }

    #[test]
    fn pool_halves_spatial_dims() {
        let input = TensorShape::new(1, 64, 224, 224);
        let layer = Layer::infer(
            "pool1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                size: 2,
                stride: 2,
                pad: 0,
            },
            input,
        );
        assert_eq!(layer.output, TensorShape::new(1, 64, 112, 112));
        assert_eq!(layer.params(), 0);
    }

    #[test]
    fn fc_flattens() {
        let input = TensorShape::new(64, 512, 7, 7);
        let layer = Layer::infer(
            "fc6",
            LayerKind::Fc {
                out_features: 4096,
                relu: true,
            },
            input,
        );
        assert_eq!(layer.output, TensorShape::features(64, 4096));
        assert_eq!(layer.params(), 512 * 49 * 4096 + 4096);
    }

    #[test]
    fn conv_flops_formula() {
        let input = TensorShape::new(1, 3, 8, 8);
        let layer = Layer::infer(
            "c",
            LayerKind::Conv {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
                relu: false,
            },
            input,
        );
        // 2 * out_elems * Cin * K * K = 2 * (4*8*8) * 27
        assert_eq!(layer.flops(), 2 * 256 * 27);
    }

    #[test]
    fn relu_detection() {
        let input = TensorShape::new(1, 8, 4, 4);
        assert!(Layer::infer("r", LayerKind::Relu, input).has_relu());
        assert!(!Layer::infer("s", LayerKind::Softmax, input).has_relu());
        assert!(Layer::infer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Avg,
                size: 2,
                stride: 2,
                pad: 0,
            },
            input
        )
        .carries_sparsity());
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_kernel_panics() {
        Layer::infer(
            "bad",
            LayerKind::Conv {
                out_channels: 1,
                kernel: 9,
                stride: 1,
                pad: 0,
                relu: false,
            },
            TensorShape::new(1, 1, 4, 4),
        );
    }
}
