//! DNN workload substrate for the ZCOMP reproduction.
//!
//! Everything the paper's evaluation needs from the deep-learning side,
//! built from scratch:
//!
//! * [`tensor`] / [`layer`] / [`network`] — shapes, layers with
//!   shape/FLOP/parameter inference, and a network builder with branch
//!   support.
//! * [`models`] — the five evaluated networks (AlexNet, GoogLeNet,
//!   Inception-ResNet-v2, ResNet-32, VGG-16) with their published layer
//!   structures.
//! * [`sparsity`] — per-layer/per-epoch feature-map sparsity schedules
//!   calibrated to the paper's measurements, and a clustered-zero
//!   synthetic activation generator (the documented substitution for the
//!   paper's TensorFlow snapshots).
//! * [`deepbench`] — the 44 DeepBench tensor shapes of the ReLU study.
//! * [`training`] — memory-footprint accounting per data-structure class.
//!
//! # Example
//!
//! ```
//! use zcomp_dnn::models::vgg16;
//! use zcomp_dnn::sparsity::SparsityModel;
//!
//! let net = vgg16(64);
//! let profile = SparsityModel::default().profile(&net, 30);
//! assert_eq!(profile.per_layer.len(), net.layers.len());
//! ```

pub mod dataset;
pub mod deepbench;
pub mod layer;
pub mod models;
pub mod network;
pub mod sparsity;
pub mod tensor;
pub mod training;

pub use layer::{Layer, LayerKind, PoolKind};
pub use models::ModelId;
pub use network::{Network, NetworkBuilder};
pub use sparsity::{SparsityModel, SparsityProfile};
pub use tensor::TensorShape;
