//! AlexNet (Krizhevsky et al., NeurIPS 2012) — the Caffe single-tower
//! variant with 227x227 inputs.

use crate::network::Network;
use crate::tensor::TensorShape;

/// Builds AlexNet at the given batch size.
///
/// # Example
///
/// ```
/// let net = zcomp_dnn::models::alexnet(64);
/// // ~61M parameters in the single-tower variant.
/// assert!((57_000_000..66_000_000).contains(&net.params()));
/// ```
pub fn alexnet(batch: usize) -> Network {
    Network::builder("alexnet", TensorShape::new(batch, 3, 227, 227))
        .conv("conv1", 96, 11, 4, 0, true)
        .lrn("norm1")
        .max_pool("pool1", 3, 2)
        .conv("conv2", 256, 5, 1, 2, true)
        .lrn("norm2")
        .max_pool("pool2", 3, 2)
        .conv("conv3", 384, 3, 1, 1, true)
        .conv("conv4", 384, 3, 1, 1, true)
        .conv("conv5", 256, 3, 1, 1, true)
        .max_pool("pool5", 3, 2)
        .fc("fc6", 4096, true)
        .dropout("drop6", 0.5)
        .fc("fc7", 4096, true)
        .dropout("drop7", 0.5)
        .fc("fc8", 1000, false)
        .softmax("prob")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_shapes_match_published_architecture() {
        let net = alexnet(1);
        assert_eq!(net.layer("conv1").unwrap().output.h, 55);
        assert_eq!(net.layer("pool1").unwrap().output.h, 27);
        assert_eq!(net.layer("conv2").unwrap().output.h, 27);
        assert_eq!(net.layer("pool2").unwrap().output.h, 13);
        assert_eq!(net.layer("conv5").unwrap().output.c, 256);
        assert_eq!(net.layer("pool5").unwrap().output.h, 6);
        assert_eq!(net.layer("fc8").unwrap().output.c, 1000);
    }

    #[test]
    fn parameter_count_is_about_61m() {
        let net = alexnet(1);
        let p = net.params();
        assert!((57_000_000..66_000_000).contains(&p), "got {p}");
        // FC layers dominate AlexNet's weights.
        let fc: usize = ["fc6", "fc7", "fc8"]
            .iter()
            .map(|n| net.layer(n).unwrap().params())
            .sum();
        assert!(fc * 10 > p * 9, "fc must hold >90% of weights");
    }

    #[test]
    fn flops_are_about_1_5_gflops_per_image() {
        let f = alexnet(1).flops();
        assert!((1_000_000_000..3_000_000_000).contains(&f), "got {f}");
    }
}
