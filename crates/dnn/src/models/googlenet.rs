//! GoogLeNet / Inception-v1 (Szegedy et al., 2014).

use crate::network::{Network, NetworkBuilder};
use crate::tensor::TensorShape;

/// Channel configuration of one inception module:
/// `(b1, b2_reduce, b2, b3_reduce, b3, b4_pool_proj)`.
type InceptionCfg = (usize, usize, usize, usize, usize, usize);

/// The nine inception modules of GoogLeNet in order (3a..5b), with their
/// published channel configurations.
const MODULES: [(&str, InceptionCfg); 9] = [
    ("3a", (64, 96, 128, 16, 32, 32)),
    ("3b", (128, 128, 192, 32, 96, 64)),
    ("4a", (192, 96, 208, 16, 48, 64)),
    ("4b", (160, 112, 224, 24, 64, 64)),
    ("4c", (128, 128, 256, 24, 64, 64)),
    ("4d", (112, 144, 288, 32, 64, 64)),
    ("4e", (256, 160, 320, 32, 128, 128)),
    ("5a", (256, 160, 320, 32, 128, 128)),
    ("5b", (384, 192, 384, 48, 128, 128)),
];

/// Builds GoogLeNet at the given batch size.
///
/// # Example
///
/// ```
/// let net = zcomp_dnn::models::googlenet(64);
/// // ~7M parameters (excluding the auxiliary heads, as in inference
/// // deployments).
/// assert!((5_500_000..8_000_000).contains(&net.params()));
/// ```
pub fn googlenet(batch: usize) -> Network {
    let mut b = Network::builder("googlenet", TensorShape::new(batch, 3, 224, 224));
    // Stage pools use ceil-mode 3x3/2 without padding (Caffe semantics).
    b.conv("conv1", 64, 7, 2, 3, true)
        .max_pool("pool1", 3, 2)
        .lrn("norm1")
        .conv("conv2_reduce", 64, 1, 1, 0, true)
        .conv("conv2", 192, 3, 1, 1, true)
        .lrn("norm2")
        .max_pool("pool2", 3, 2);
    for (name, cfg) in MODULES {
        inception(&mut b, name, cfg);
        if name == "3b" || name == "4e" {
            b.max_pool(&format!("pool_{name}"), 3, 2);
        }
    }
    b.avg_pool("global_pool", 7, 1)
        .dropout("drop", 0.4)
        .fc("fc", 1000, false)
        .softmax("prob")
        .build()
}

/// Emits one inception module: four parallel branches over the trunk,
/// concatenated channel-wise.
fn inception(b: &mut NetworkBuilder, name: &str, cfg: InceptionCfg) {
    let (b1, b2r, b2, b3r, b3, b4) = cfg;
    b.begin_branch()
        .conv(&format!("inc{name}_1x1"), b1, 1, 1, 0, true)
        .end_branch();
    b.begin_branch()
        .conv(&format!("inc{name}_3x3_reduce"), b2r, 1, 1, 0, true)
        .conv(&format!("inc{name}_3x3"), b2, 3, 1, 1, true)
        .end_branch();
    b.begin_branch()
        .conv(&format!("inc{name}_5x5_reduce"), b3r, 1, 1, 0, true)
        .conv(&format!("inc{name}_5x5"), b3, 5, 1, 2, true)
        .end_branch();
    b.begin_branch()
        .max_pool_padded(&format!("inc{name}_pool"), 3, 1, 1)
        .conv(&format!("inc{name}_pool_proj"), b4, 1, 1, 0, true)
        .end_branch();
    b.merge_concat(&format!("inc{name}_concat"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_shapes() {
        let net = googlenet(1);
        assert_eq!(net.layer("conv1").unwrap().output.h, 112);
        assert_eq!(net.layer("pool1").unwrap().output.h, 56);
        assert_eq!(net.layer("conv2").unwrap().output.c, 192);
        assert_eq!(net.layer("pool2").unwrap().output.h, 28);
    }

    #[test]
    fn inception_concat_channels_match_paper() {
        let net = googlenet(1);
        assert_eq!(net.layer("inc3a_concat").unwrap().output.c, 256);
        assert_eq!(net.layer("inc3b_concat").unwrap().output.c, 480);
        assert_eq!(net.layer("inc4a_concat").unwrap().output.c, 512);
        assert_eq!(net.layer("inc4e_concat").unwrap().output.c, 832);
        assert_eq!(net.layer("inc5b_concat").unwrap().output.c, 1024);
    }

    #[test]
    fn spatial_reduction_through_stages() {
        let net = googlenet(1);
        assert_eq!(net.layer("inc3a_concat").unwrap().output.h, 28);
        assert_eq!(net.layer("inc4a_concat").unwrap().output.h, 14);
        assert_eq!(net.layer("inc5a_concat").unwrap().output.h, 7);
        assert_eq!(net.layer("global_pool").unwrap().output.h, 1);
    }

    #[test]
    fn parameter_count_is_about_7m() {
        let p = googlenet(1).params();
        assert!((5_500_000..8_000_000).contains(&p), "got {p}");
    }
}
