//! Inception-ResNet-v2 (Szegedy et al., 2016).
//!
//! The published network factorizes some convolutions asymmetrically
//! (1x7 / 7x1, 1x3 / 3x1). This model's layer vocabulary uses square
//! kernels, so each asymmetric pair is approximated by a pair of 3x3
//! convolutions with the same channel progression: feature-map shapes and
//! footprints (what the ZCOMP experiments measure) are exact, while FLOP
//! totals for those branches are within ~1.3x of the published network.

use crate::network::{Network, NetworkBuilder};
use crate::tensor::TensorShape;

/// Builds Inception-ResNet-v2 at the given batch size.
///
/// # Example
///
/// ```
/// let net = zcomp_dnn::models::inception_resnet_v2(4);
/// assert!(net.layers.len() > 200, "deep network");
/// ```
pub fn inception_resnet_v2(batch: usize) -> Network {
    let mut b = Network::builder("inception-resnet-v2", TensorShape::new(batch, 3, 299, 299));
    stem(&mut b);
    mixed_5b(&mut b);
    for i in 1..=10 {
        block35(&mut b, i);
    }
    reduction_a(&mut b);
    for i in 1..=20 {
        block17(&mut b, i);
    }
    reduction_b(&mut b);
    for i in 1..=10 {
        block8(&mut b, i);
    }
    b.conv("conv_final", 1536, 1, 1, 0, true)
        .avg_pool("global_pool", 8, 8)
        .dropout("drop", 0.2)
        .fc("fc", 1000, false)
        .softmax("prob")
        .build()
}

/// Stem: 299x299x3 → 35x35x384.
fn stem(b: &mut NetworkBuilder) {
    b.conv("stem_conv1", 32, 3, 2, 0, true) // 149
        .conv("stem_conv2", 32, 3, 1, 0, true) // 147
        .conv("stem_conv3", 64, 3, 1, 1, true); // 147
    b.begin_branch().max_pool("stem_pool1", 3, 2).end_branch();
    b.begin_branch()
        .conv("stem_conv4", 96, 3, 2, 0, true)
        .end_branch();
    b.merge_concat("stem_concat1"); // 73x73x160
    b.begin_branch()
        .conv("stem_b1a", 64, 1, 1, 0, true)
        .conv("stem_b1b", 96, 3, 1, 0, true)
        .end_branch();
    b.begin_branch()
        .conv("stem_b2a", 64, 1, 1, 0, true)
        .conv("stem_b2b", 64, 3, 1, 1, true) // approximates the 7x1/1x7 pair
        .conv("stem_b2c", 96, 3, 1, 0, true)
        .end_branch();
    b.merge_concat("stem_concat2"); // 71x71x192
    b.begin_branch()
        .conv("stem_conv5", 192, 3, 2, 0, true)
        .end_branch();
    b.begin_branch().max_pool("stem_pool2", 3, 2).end_branch();
    b.merge_concat("stem_concat3"); // 35x35x384
}

/// Mixed_5b (Inception-A): 35x35x384 → 35x35x320.
fn mixed_5b(b: &mut NetworkBuilder) {
    b.begin_branch()
        .conv("m5b_1x1", 96, 1, 1, 0, true)
        .end_branch();
    b.begin_branch()
        .conv("m5b_5x5_reduce", 48, 1, 1, 0, true)
        .conv("m5b_5x5", 64, 5, 1, 2, true)
        .end_branch();
    b.begin_branch()
        .conv("m5b_3x3_reduce", 64, 1, 1, 0, true)
        .conv("m5b_3x3a", 96, 3, 1, 1, true)
        .conv("m5b_3x3b", 96, 3, 1, 1, true)
        .end_branch();
    b.begin_branch()
        .avg_pool_padded("m5b_pool", 3, 1, 1)
        .conv("m5b_pool_proj", 64, 1, 1, 0, true)
        .end_branch();
    b.merge_concat("m5b_concat");
}

/// Block35 (Inception-ResNet-A), residual at 35x35x320.
fn block35(b: &mut NetworkBuilder, i: usize) {
    let p = format!("b35_{i}");
    b.begin_branch()
        .conv(&format!("{p}_b1"), 32, 1, 1, 0, true)
        .end_branch();
    b.begin_branch()
        .conv(&format!("{p}_b2a"), 32, 1, 1, 0, true)
        .conv(&format!("{p}_b2b"), 32, 3, 1, 1, true)
        .end_branch();
    b.begin_branch()
        .conv(&format!("{p}_b3a"), 32, 1, 1, 0, true)
        .conv(&format!("{p}_b3b"), 48, 3, 1, 1, true)
        .conv(&format!("{p}_b3c"), 64, 3, 1, 1, true)
        .end_branch();
    b.merge_concat(&format!("{p}_concat"));
    b.conv(&format!("{p}_up"), 320, 1, 1, 0, false)
        .residual_add(&format!("{p}_add"))
        .relu(&format!("{p}_relu"));
}

/// Reduction-A: 35x35x320 → 17x17x1088.
fn reduction_a(b: &mut NetworkBuilder) {
    b.begin_branch().max_pool("redA_pool", 3, 2).end_branch();
    b.begin_branch()
        .conv("redA_3x3", 384, 3, 2, 0, true)
        .end_branch();
    b.begin_branch()
        .conv("redA_b3a", 256, 1, 1, 0, true)
        .conv("redA_b3b", 256, 3, 1, 1, true)
        .conv("redA_b3c", 384, 3, 2, 0, true)
        .end_branch();
    b.merge_concat("redA_concat");
}

/// Block17 (Inception-ResNet-B), residual at 17x17x1088.
fn block17(b: &mut NetworkBuilder, i: usize) {
    let p = format!("b17_{i}");
    b.begin_branch()
        .conv(&format!("{p}_b1"), 192, 1, 1, 0, true)
        .end_branch();
    b.begin_branch()
        .conv(&format!("{p}_b2a"), 128, 1, 1, 0, true)
        .conv(&format!("{p}_b2b"), 160, 3, 1, 1, true) // approximates 1x7
        .conv(&format!("{p}_b2c"), 192, 3, 1, 1, true) // approximates 7x1
        .end_branch();
    b.merge_concat(&format!("{p}_concat"));
    b.conv(&format!("{p}_up"), 1088, 1, 1, 0, false)
        .residual_add(&format!("{p}_add"))
        .relu(&format!("{p}_relu"));
}

/// Reduction-B: 17x17x1088 → 8x8x2080.
fn reduction_b(b: &mut NetworkBuilder) {
    b.begin_branch().max_pool("redB_pool", 3, 2).end_branch();
    b.begin_branch()
        .conv("redB_b2a", 256, 1, 1, 0, true)
        .conv("redB_b2b", 384, 3, 2, 0, true)
        .end_branch();
    b.begin_branch()
        .conv("redB_b3a", 256, 1, 1, 0, true)
        .conv("redB_b3b", 288, 3, 2, 0, true)
        .end_branch();
    b.begin_branch()
        .conv("redB_b4a", 256, 1, 1, 0, true)
        .conv("redB_b4b", 288, 3, 1, 1, true)
        .conv("redB_b4c", 320, 3, 2, 0, true)
        .end_branch();
    b.merge_concat("redB_concat");
}

/// Block8 (Inception-ResNet-C), residual at 8x8x2080.
fn block8(b: &mut NetworkBuilder, i: usize) {
    let p = format!("b8_{i}");
    b.begin_branch()
        .conv(&format!("{p}_b1"), 192, 1, 1, 0, true)
        .end_branch();
    b.begin_branch()
        .conv(&format!("{p}_b2a"), 192, 1, 1, 0, true)
        .conv(&format!("{p}_b2b"), 224, 3, 1, 1, true) // approximates 1x3
        .conv(&format!("{p}_b2c"), 256, 3, 1, 1, true) // approximates 3x1
        .end_branch();
    b.merge_concat(&format!("{p}_concat"));
    b.conv(&format!("{p}_up"), 2080, 1, 1, 0, false)
        .residual_add(&format!("{p}_add"))
        .relu(&format!("{p}_relu"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_shapes_match_published_network() {
        let net = inception_resnet_v2(1);
        assert_eq!(net.layer("stem_concat1").unwrap().output.c, 160);
        assert_eq!(net.layer("stem_concat1").unwrap().output.h, 73);
        assert_eq!(net.layer("stem_concat2").unwrap().output.c, 192);
        assert_eq!(net.layer("stem_concat2").unwrap().output.h, 71);
        assert_eq!(net.layer("stem_concat3").unwrap().output.c, 384);
        assert_eq!(net.layer("stem_concat3").unwrap().output.h, 35);
        assert_eq!(net.layer("m5b_concat").unwrap().output.c, 320);
        assert_eq!(net.layer("redA_concat").unwrap().output.c, 1088);
        assert_eq!(net.layer("redA_concat").unwrap().output.h, 17);
        assert_eq!(net.layer("redB_concat").unwrap().output.c, 2080);
        assert_eq!(net.layer("redB_concat").unwrap().output.h, 8);
        assert_eq!(net.layer("global_pool").unwrap().output.h, 1);
    }

    #[test]
    fn has_all_residual_blocks() {
        let net = inception_resnet_v2(1);
        for i in 1..=10 {
            assert!(net.layer(&format!("b35_{i}_add")).is_some());
            assert!(net.layer(&format!("b8_{i}_add")).is_some());
        }
        for i in 1..=20 {
            assert!(net.layer(&format!("b17_{i}_add")).is_some());
        }
    }

    #[test]
    fn parameter_count_is_tens_of_millions() {
        // The published network has ~55M parameters; the square-kernel
        // approximation lands in the same range.
        let p = inception_resnet_v2(1).params();
        assert!((35_000_000..80_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn is_the_deepest_evaluated_network() {
        let net = inception_resnet_v2(1);
        assert!(net.layers.len() > crate::models::googlenet(1).layers.len());
        assert!(net.layers.len() > crate::models::vgg16(1).layers.len());
    }
}
