//! The five networks evaluated in the paper (§5.3): AlexNet, GoogLeNet,
//! Inception-ResNet-v2, ResNet-32 and VGG-16.
//!
//! Each builder reproduces the published layer structure — shapes,
//! parameter counts and FLOPs are checked against well-known totals in the
//! module tests. The paper trains with batch 64 (ResNet: 128) and infers
//! with batch 4; builders take the batch size as a parameter.

mod alexnet;
mod googlenet;
mod inception_resnet;
mod resnet;
mod vgg;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use inception_resnet::inception_resnet_v2;
pub use resnet::resnet32;
pub use vgg::vgg16;

use crate::network::Network;

/// Identifier of an evaluated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelId {
    /// AlexNet (ILSVRC'12).
    Alexnet,
    /// GoogLeNet (Inception v1).
    Googlenet,
    /// Inception-ResNet-v2.
    InceptionResnetV2,
    /// ResNet-32 (the CIFAR-scale residual network; the paper trains it
    /// with batch 128).
    Resnet32,
    /// VGG-16 (ILSVRC'14).
    Vgg16,
}

impl ModelId {
    /// All five evaluated networks, in the paper's plotting order.
    pub const ALL: [ModelId; 5] = [
        ModelId::Alexnet,
        ModelId::Googlenet,
        ModelId::InceptionResnetV2,
        ModelId::Resnet32,
        ModelId::Vgg16,
    ];

    /// Builds the network at the given batch size.
    pub fn build(self, batch: usize) -> Network {
        match self {
            ModelId::Alexnet => alexnet(batch),
            ModelId::Googlenet => googlenet(batch),
            ModelId::InceptionResnetV2 => inception_resnet_v2(batch),
            ModelId::Resnet32 => resnet32(batch),
            ModelId::Vgg16 => vgg16(batch),
        }
    }

    /// The paper's training batch size for this network (§5.3: 64 for all
    /// except ResNet, which uses 128).
    pub fn training_batch(self) -> usize {
        match self {
            ModelId::Resnet32 => 128,
            _ => 64,
        }
    }

    /// The paper's inference batch size (§5.3: 4 for all networks).
    pub fn inference_batch(self) -> usize {
        4
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelId::Alexnet => "alexnet",
            ModelId::Googlenet => "googlenet",
            ModelId::InceptionResnetV2 => "inception-resnet-v2",
            ModelId::Resnet32 => "resnet-32",
            ModelId::Vgg16 => "vgg-16",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_at_training_batch() {
        for id in ModelId::ALL {
            let net = id.build(id.training_batch());
            assert!(!net.layers.is_empty(), "{id}");
            assert!(net.params() > 0, "{id}");
            assert!(net.flops() > 0, "{id}");
        }
    }

    #[test]
    fn training_batches_match_paper() {
        assert_eq!(ModelId::Resnet32.training_batch(), 128);
        assert_eq!(ModelId::Vgg16.training_batch(), 64);
        for id in ModelId::ALL {
            assert_eq!(id.inference_batch(), 4);
        }
    }
}
