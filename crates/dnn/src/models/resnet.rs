//! ResNet-32 (He et al., 2015) — the CIFAR-scale residual network with
//! 3 stages of 5 basic blocks (6n+2 layers, n = 5).

use crate::network::{Network, NetworkBuilder};
use crate::tensor::TensorShape;

/// Builds ResNet-32 at the given batch size.
///
/// The paper trains this network with batch 128 (§2.3, §5.3), consistent
/// with its small 32x32 inputs.
///
/// # Example
///
/// ```
/// let net = zcomp_dnn::models::resnet32(128);
/// // 6*5+2 = 32 weighted layers plus the shortcut projections.
/// let weighted = net.layers.iter().filter(|l| l.params() > 0).count();
/// assert!(weighted >= 32);
/// ```
pub fn resnet32(batch: usize) -> Network {
    let mut b = Network::builder("resnet32", TensorShape::new(batch, 3, 32, 32));
    b.conv("conv1", 16, 3, 1, 1, true);
    stage(&mut b, 1, 16, false);
    stage(&mut b, 2, 32, true);
    stage(&mut b, 3, 64, true);
    b.avg_pool("global_pool", 8, 8)
        .fc("fc", 10, false)
        .softmax("prob")
        .build()
}

/// One stage of five basic residual blocks; the first block of stages 2/3
/// downsamples with stride 2 (and a projection shortcut).
fn stage(b: &mut NetworkBuilder, index: usize, channels: usize, downsample: bool) {
    for block in 1..=5 {
        let stride = if downsample && block == 1 { 2 } else { 1 };
        let prefix = format!("res{index}_{block}");
        b.conv(&format!("{prefix}a"), channels, 3, stride, 1, true);
        b.conv(&format!("{prefix}b"), channels, 3, 1, 1, false);
        if stride == 2 {
            // Projection shortcut: 1x1 stride-2 convolution on the trunk.
            // Modelled in-line (its traffic reads the block input again).
            b.residual_add(&format!("{prefix}_add_proj"));
        } else {
            b.residual_add(&format!("{prefix}_add"));
        }
        b.relu(&format!("{prefix}_relu"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_shapes() {
        let net = resnet32(1);
        assert_eq!(net.layer("res1_5b").unwrap().output.h, 32);
        assert_eq!(net.layer("res2_1a").unwrap().output.h, 16);
        assert_eq!(net.layer("res3_1a").unwrap().output.h, 8);
        assert_eq!(net.layer("res3_5b").unwrap().output.c, 64);
        assert_eq!(net.layer("global_pool").unwrap().output.h, 1);
        assert_eq!(net.layer("fc").unwrap().output.c, 10);
    }

    #[test]
    fn parameter_count_is_about_half_a_million() {
        // The published CIFAR ResNet-32 has ~0.46M parameters.
        let p = resnet32(1).params();
        assert!((400_000..600_000).contains(&p), "got {p}");
    }

    #[test]
    fn thirty_one_convolutions_plus_fc() {
        let net = resnet32(1);
        let weighted = net.layers.iter().filter(|l| l.params() > 0).count();
        assert_eq!(weighted, 32, "31 convs + 1 fc");
    }

    #[test]
    fn feature_maps_are_small_relative_to_imagenet_nets() {
        let net = resnet32(128);
        assert!(net.feature_map_bytes() < crate::models::vgg16(64).feature_map_bytes());
    }
}
