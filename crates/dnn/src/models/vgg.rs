//! VGG-16 (Simonyan & Zisserman, 2014) — configuration D.

use crate::network::Network;
use crate::tensor::TensorShape;

/// Builds VGG-16 at the given batch size.
///
/// Fig. 1 of the paper profiles this network at batch 64: the early wide
/// convolution layers generate hundreds of megabytes of cross-layer
/// feature-map data while weights only dominate in the FC layers.
///
/// # Example
///
/// ```
/// let net = zcomp_dnn::models::vgg16(64);
/// // ~138M parameters.
/// assert!((130_000_000..145_000_000).contains(&net.params()));
/// ```
pub fn vgg16(batch: usize) -> Network {
    Network::builder("vgg16", TensorShape::new(batch, 3, 224, 224))
        .conv("conv1_1", 64, 3, 1, 1, true)
        .conv("conv1_2", 64, 3, 1, 1, true)
        .max_pool("pool1", 2, 2)
        .conv("conv2_1", 128, 3, 1, 1, true)
        .conv("conv2_2", 128, 3, 1, 1, true)
        .max_pool("pool2", 2, 2)
        .conv("conv3_1", 256, 3, 1, 1, true)
        .conv("conv3_2", 256, 3, 1, 1, true)
        .conv("conv3_3", 256, 3, 1, 1, true)
        .max_pool("pool3", 2, 2)
        .conv("conv4_1", 512, 3, 1, 1, true)
        .conv("conv4_2", 512, 3, 1, 1, true)
        .conv("conv4_3", 512, 3, 1, 1, true)
        .max_pool("pool4", 2, 2)
        .conv("conv5_1", 512, 3, 1, 1, true)
        .conv("conv5_2", 512, 3, 1, 1, true)
        .conv("conv5_3", 512, 3, 1, 1, true)
        .max_pool("pool5", 2, 2)
        .fc("fc6", 4096, true)
        .dropout("drop6", 0.5)
        .fc("fc7", 4096, true)
        .dropout("drop7", 0.5)
        .fc("fc8", 1000, false)
        .softmax("prob")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_shape_progression() {
        let net = vgg16(1);
        assert_eq!(net.layer("conv1_2").unwrap().output.h, 224);
        assert_eq!(net.layer("pool1").unwrap().output.h, 112);
        assert_eq!(net.layer("pool2").unwrap().output.h, 56);
        assert_eq!(net.layer("pool3").unwrap().output.h, 28);
        assert_eq!(net.layer("pool4").unwrap().output.h, 14);
        assert_eq!(net.layer("pool5").unwrap().output.h, 7);
        assert_eq!(net.layer("pool5").unwrap().output.c, 512);
    }

    #[test]
    fn parameter_count_is_about_138m() {
        let p = vgg16(1).params();
        assert!((130_000_000..145_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn conv1_output_at_batch_64_is_hundreds_of_mb() {
        // Fig. 1(b): early layers generate hundreds of MB of feature maps.
        let net = vgg16(64);
        let conv1 = net.layer("conv1_1").unwrap().output.bytes();
        assert!(conv1 > 700 << 20, "conv1_1 output {conv1} bytes");
    }

    #[test]
    fn flops_are_about_31_gflops_per_image() {
        let f = vgg16(1).flops();
        assert!((28_000_000_000..34_000_000_000).contains(&f), "got {f}");
    }

    #[test]
    fn sixteen_weight_layers() {
        let net = vgg16(1);
        let weighted = net.layers.iter().filter(|l| l.params() > 0).count();
        assert_eq!(weighted, 16, "VGG-16 has 13 conv + 3 fc weight layers");
    }
}
