//! Network graphs: a builder and whole-network accounting.
//!
//! Networks are stored as a flat layer list in execution order. Branching
//! structures (inception modules, residual blocks) are expressed with the
//! builder's branch API: every branch layer records its own input/output
//! shape, and a final [`LayerKind::Concat`] / [`LayerKind::Add`] merge
//! restores the trunk shape. This is exactly the information the traffic
//! and footprint models need: which buffers are read and written, at what
//! sizes, in what order.

use serde::{Deserialize, Serialize};

use crate::layer::{Layer, LayerKind, PoolKind};
use crate::tensor::TensorShape;

/// A complete network description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Network name (e.g. `vgg16`).
    pub name: String,
    /// Input tensor shape (images).
    pub input: TensorShape,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Starts building a network from an input shape.
    pub fn builder(name: impl Into<String>, input: TensorShape) -> NetworkBuilder {
        NetworkBuilder {
            name: name.into(),
            input,
            current: input,
            branch_stack: Vec::new(),
            pending_branch_channels: Vec::new(),
            layers: Vec::new(),
        }
    }

    /// Total learned parameters.
    pub fn params(&self) -> usize {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Total weight footprint in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }

    /// Total forward-pass FLOPs.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Sum of all layer output footprints — the cross-layer feature-map
    /// data that accumulates in memory during a forward pass (§2.3).
    pub fn feature_map_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.output.bytes()).sum()
    }

    /// The largest single layer output.
    pub fn max_layer_output_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.output.bytes())
            .max()
            .unwrap_or(0)
    }

    /// Returns the network re-batched to a different batch size.
    pub fn with_batch(&self, n: usize) -> Network {
        let mut out = self.clone();
        out.input = self.input.with_batch(n);
        for l in &mut out.layers {
            l.input = l.input.with_batch(n);
            l.output = l.output.with_batch(n);
        }
        out
    }

    /// Looks a layer up by name.
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }
}

/// Incremental network builder.
///
/// # Example
///
/// ```
/// use zcomp_dnn::network::Network;
/// use zcomp_dnn::tensor::TensorShape;
///
/// let net = Network::builder("tiny", TensorShape::new(1, 3, 8, 8))
///     .conv("conv1", 16, 3, 1, 1, true)
///     .max_pool("pool1", 2, 2)
///     .fc("fc", 10, false)
///     .softmax("prob")
///     .build();
/// assert_eq!(net.layers.len(), 4);
/// assert_eq!(net.layers[1].output.h, 4);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input: TensorShape,
    current: TensorShape,
    /// Shapes to return to when a branch ends.
    branch_stack: Vec<TensorShape>,
    /// Output channel counts of completed branches awaiting a merge.
    pending_branch_channels: Vec<usize>,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Current running activation shape.
    pub fn shape(&self) -> TensorShape {
        self.current
    }

    fn push(&mut self, name: &str, kind: LayerKind) -> &mut Self {
        let layer = Layer::infer(name, kind, self.current);
        self.current = layer.output;
        self.layers.push(layer);
        self
    }

    /// Adds a convolution (optionally ReLU-fused).
    pub fn conv(
        &mut self,
        name: &str,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        relu: bool,
    ) -> &mut Self {
        self.push(
            name,
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
                relu,
            },
        )
    }

    /// Adds a max-pooling layer (no padding).
    pub fn max_pool(&mut self, name: &str, size: usize, stride: usize) -> &mut Self {
        self.max_pool_padded(name, size, stride, 0)
    }

    /// Adds a max-pooling layer with explicit padding.
    pub fn max_pool_padded(
        &mut self,
        name: &str,
        size: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        self.push(
            name,
            LayerKind::Pool {
                kind: PoolKind::Max,
                size,
                stride,
                pad,
            },
        )
    }

    /// Adds an average-pooling layer (no padding).
    pub fn avg_pool(&mut self, name: &str, size: usize, stride: usize) -> &mut Self {
        self.avg_pool_padded(name, size, stride, 0)
    }

    /// Adds an average-pooling layer with explicit padding.
    pub fn avg_pool_padded(
        &mut self,
        name: &str,
        size: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        self.push(
            name,
            LayerKind::Pool {
                kind: PoolKind::Avg,
                size,
                stride,
                pad,
            },
        )
    }

    /// Adds a fully-connected layer (optionally ReLU-fused).
    pub fn fc(&mut self, name: &str, out_features: usize, relu: bool) -> &mut Self {
        self.push(name, LayerKind::Fc { out_features, relu })
    }

    /// Adds a local response normalization layer.
    pub fn lrn(&mut self, name: &str) -> &mut Self {
        self.push(name, LayerKind::Lrn)
    }

    /// Adds a dropout layer.
    pub fn dropout(&mut self, name: &str, p: f64) -> &mut Self {
        self.push(name, LayerKind::Dropout { p })
    }

    /// Adds a standalone ReLU.
    pub fn relu(&mut self, name: &str) -> &mut Self {
        self.push(name, LayerKind::Relu)
    }

    /// Adds a softmax head.
    pub fn softmax(&mut self, name: &str) -> &mut Self {
        self.push(name, LayerKind::Softmax)
    }

    /// Opens a branch: subsequent layers consume the current trunk shape;
    /// [`end_branch`](Self::end_branch) returns to it.
    pub fn begin_branch(&mut self) -> &mut Self {
        self.branch_stack.push(self.current);
        self
    }

    /// Closes the current branch, remembering its output channels for the
    /// next [`merge_concat`](Self::merge_concat).
    ///
    /// # Panics
    ///
    /// Panics if no branch is open; see
    /// [`try_end_branch`](Self::try_end_branch) for the fallible form.
    pub fn end_branch(&mut self) -> &mut Self {
        self.try_end_branch().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`end_branch`](Self::end_branch): errors instead of
    /// panicking when no branch is open.
    pub fn try_end_branch(&mut self) -> Result<&mut Self, NetworkBuildError> {
        let trunk = self
            .branch_stack
            .pop()
            .ok_or(NetworkBuildError::UnbalancedEndBranch)?;
        self.pending_branch_channels.push(self.current.c);
        self.current = trunk;
        Ok(self)
    }

    /// Merges all completed branches channel-wise (inception concat).
    ///
    /// # Panics
    ///
    /// Panics if no branches are pending; see
    /// [`try_merge_concat`](Self::try_merge_concat) for the fallible form.
    pub fn merge_concat(&mut self, name: &str) -> &mut Self {
        self.try_merge_concat(name)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`merge_concat`](Self::merge_concat): errors instead of
    /// panicking when no completed branches are pending.
    pub fn try_merge_concat(&mut self, name: &str) -> Result<&mut Self, NetworkBuildError> {
        if self.pending_branch_channels.is_empty() {
            return Err(NetworkBuildError::MergeWithoutBranches);
        }
        let channels: usize = self.pending_branch_channels.drain(..).sum();
        // The concat layer's input is the trunk shape; its output has the
        // summed channel count at the branch spatial dimensions.
        let spatial = self.layers.last().map(|l| l.output).unwrap_or(self.current);
        let out = TensorShape::new(self.current.n, channels, spatial.h, spatial.w);
        let layer = Layer {
            name: name.into(),
            kind: LayerKind::Concat,
            input: self.current,
            output: out,
        };
        self.current = out;
        self.layers.push(layer);
        Ok(self)
    }

    /// Adds a residual elementwise addition with the trunk (identity
    /// shape; shapes must already match).
    pub fn residual_add(&mut self, name: &str) -> &mut Self {
        self.push(name, LayerKind::Add)
    }

    /// Finalizes the network.
    ///
    /// # Panics
    ///
    /// Panics if a branch is still open; see
    /// [`try_build`](Self::try_build) for the fallible form.
    pub fn build(&mut self) -> Network {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build): errors instead of panicking when
    /// branches are still open.
    pub fn try_build(&mut self) -> Result<Network, NetworkBuildError> {
        if !self.branch_stack.is_empty() {
            return Err(NetworkBuildError::UnclosedBranches {
                open: self.branch_stack.len(),
            });
        }
        Ok(Network {
            name: std::mem::take(&mut self.name),
            input: self.input,
            layers: std::mem::take(&mut self.layers),
        })
    }
}

/// Structural error from the fallible network-builder methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkBuildError {
    /// `end_branch` was called with no open branch.
    UnbalancedEndBranch,
    /// `merge_concat` was called with no completed branches pending.
    MergeWithoutBranches,
    /// `build` was called while branches were still open.
    UnclosedBranches {
        /// Number of branches left open.
        open: usize,
    },
}

impl std::fmt::Display for NetworkBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkBuildError::UnbalancedEndBranch => {
                write!(f, "end_branch without begin_branch")
            }
            NetworkBuildError::MergeWithoutBranches => {
                write!(f, "merge_concat without completed branches")
            }
            NetworkBuildError::UnclosedBranches { open } => {
                write!(f, "unclosed branch at build time ({open} open)")
            }
        }
    }
}

impl std::error::Error for NetworkBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_build_tracks_shape() {
        let net = Network::builder("t", TensorShape::new(2, 3, 32, 32))
            .conv("c1", 16, 3, 1, 1, true)
            .max_pool("p1", 2, 2)
            .conv("c2", 32, 3, 1, 1, true)
            .build();
        assert_eq!(net.layers[2].output, TensorShape::new(2, 32, 16, 16));
    }

    #[test]
    fn branch_and_concat_sums_channels() {
        let net = Network::builder("inc", TensorShape::new(1, 192, 28, 28))
            .begin_branch()
            .conv("b1", 64, 1, 1, 0, true)
            .end_branch()
            .begin_branch()
            .conv("b2a", 96, 1, 1, 0, true)
            .conv("b2b", 128, 3, 1, 1, true)
            .end_branch()
            .merge_concat("concat")
            .build();
        let concat = net.layer("concat").expect("concat layer");
        assert_eq!(concat.output.c, 64 + 128);
        assert_eq!(concat.output.h, 28);
    }

    #[test]
    fn with_batch_rescales_every_layer() {
        let net = Network::builder("t", TensorShape::new(64, 3, 8, 8))
            .conv("c", 8, 3, 1, 1, true)
            .build();
        let small = net.with_batch(4);
        assert_eq!(small.layers[0].output.n, 4);
        assert_eq!(small.input.n, 4);
    }

    #[test]
    fn totals_accumulate() {
        let net = Network::builder("t", TensorShape::new(1, 3, 8, 8))
            .conv("c", 8, 3, 1, 1, true)
            .fc("f", 10, false)
            .build();
        assert!(net.params() > 0);
        assert!(net.flops() > 0);
        assert!(net.feature_map_bytes() > 0);
        assert!(net.max_layer_output_bytes() >= net.layers[1].output.bytes());
    }

    #[test]
    #[should_panic(expected = "unclosed branch")]
    fn unclosed_branch_panics() {
        Network::builder("t", TensorShape::new(1, 3, 8, 8))
            .begin_branch()
            .build();
    }

    #[test]
    #[should_panic(expected = "without begin_branch")]
    fn unbalanced_end_branch_panics() {
        Network::builder("t", TensorShape::new(1, 3, 8, 8)).end_branch();
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let shape = TensorShape::new(1, 3, 8, 8);
        assert_eq!(
            Network::builder("t", shape).try_end_branch().err(),
            Some(NetworkBuildError::UnbalancedEndBranch)
        );
        assert_eq!(
            Network::builder("t", shape).try_merge_concat("m").err(),
            Some(NetworkBuildError::MergeWithoutBranches)
        );
        assert_eq!(
            Network::builder("t", shape)
                .begin_branch()
                .try_build()
                .err(),
            Some(NetworkBuildError::UnclosedBranches { open: 1 })
        );
    }

    #[test]
    fn try_build_succeeds_on_balanced_branches() {
        let net = Network::builder("t", TensorShape::new(1, 3, 8, 8))
            .begin_branch()
            .conv("b1", 4, 1, 1, 0, true)
            .try_end_branch()
            .expect("branch was open")
            .try_merge_concat("m")
            .expect("branch was completed")
            .try_build()
            .expect("balanced builder");
        assert_eq!(net.layers.last().map(|l| l.name.as_str()), Some("m"));
    }

    #[test]
    fn build_error_messages_are_stable() {
        // The panicking wrappers surface these via Display; pin them so
        // should_panic substrings above stay honest.
        assert_eq!(
            NetworkBuildError::UnbalancedEndBranch.to_string(),
            "end_branch without begin_branch"
        );
        assert_eq!(
            NetworkBuildError::MergeWithoutBranches.to_string(),
            "merge_concat without completed branches"
        );
        assert_eq!(
            NetworkBuildError::UnclosedBranches { open: 2 }.to_string(),
            "unclosed branch at build time (2 open)"
        );
    }
}
