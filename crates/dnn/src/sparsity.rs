//! Feature-map sparsity models and synthetic activation generation.
//!
//! The paper's inputs were feature-map snapshots from TensorFlow runs on
//! ImageNet/Oxford-flowers (average 53% sparsity, 49–63% per network,
//! Fig. 1(a) per layer). Those snapshots are not available, so this module
//! provides the substitution documented in DESIGN.md: a deterministic
//! per-layer sparsity schedule calibrated to the paper's reported numbers,
//! and a clustered-zero activation generator whose outputs exercise the
//! exact compression code paths.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::layer::{Layer, LayerKind, PoolKind};
use crate::network::Network;

/// The paper's overall average feature-map sparsity (§5.2: "an average
/// 53% sparsity").
pub const PAPER_AVG_SPARSITY: f64 = 0.53;

/// Per-layer sparsity assignment for a network at a training epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityProfile {
    /// Sparsity of each layer's output, aligned with `network.layers`.
    pub per_layer: Vec<f64>,
}

impl SparsityProfile {
    /// Byte-weighted average output sparsity across layers.
    pub fn average(&self, net: &Network) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for (layer, &s) in net.layers.iter().zip(&self.per_layer) {
            let bytes = layer.output.bytes() as f64;
            weighted += s * bytes;
            total += bytes;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }
}

/// Deterministic sparsity model.
///
/// ReLU layers generate sparsity that grows with network depth (Fig. 1:
/// "pooling layers reduce the sparsity available at their inputs, whereas
/// CONV layers mostly enhance it"); carrier layers (pool/LRN/dropout)
/// transform their input sparsity; linear layers are dense.
///
/// # Example
///
/// ```
/// use zcomp_dnn::models::vgg16;
/// use zcomp_dnn::sparsity::SparsityModel;
///
/// let net = vgg16(64);
/// let profile = SparsityModel::default().profile(&net, 30);
/// let avg = profile.average(&net);
/// assert!((0.40..0.70).contains(&avg), "calibrated near the paper's 53%");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityModel {
    /// Sparsity of the shallowest ReLU layer at convergence.
    pub base: f64,
    /// Additional sparsity reached by the deepest layers.
    pub depth_gain: f64,
    /// Factor a max-pool applies to its input sparsity (a pooled window is
    /// zero only when the whole window is zero).
    pub pool_factor: f64,
    /// Epoch time-constant of the warm-up transient (epochs).
    pub epoch_tau: f64,
    /// Sparsity multiplier at epoch 0 relative to convergence.
    pub epoch_start_factor: f64,
    /// Seed for the deterministic per-layer jitter.
    pub seed: u64,
}

impl Default for SparsityModel {
    fn default() -> Self {
        SparsityModel {
            base: 0.42,
            depth_gain: 0.33,
            pool_factor: 0.62,
            epoch_tau: 8.0,
            epoch_start_factor: 0.75,
            seed: 0x5eed_2c09,
        }
    }
}

impl SparsityModel {
    /// Computes the per-layer profile of `net` at `epoch` (0-based).
    pub fn profile(&self, net: &Network, epoch: usize) -> SparsityProfile {
        let _span = zcomp_trace::tracer::span("dnn", "sparsity_profile");
        let depth = net.layers.len().max(1) as f64;
        let epoch_scale =
            1.0 - (1.0 - self.epoch_start_factor) * (-(epoch as f64) / self.epoch_tau).exp();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9E37));
        let mut per_layer = Vec::with_capacity(net.layers.len());
        let mut carried: f64 = 0.0;
        for (i, layer) in net.layers.iter().enumerate() {
            let frac = i as f64 / depth;
            let jitter: f64 = rng.gen_range(-0.04..0.04);
            // A linear convolution feeding a residual add+ReLU is fused by
            // MKL/TensorFlow: its stored output carries the post-ReLU
            // sparsity of the block it closes.
            let fused_residual = matches!(layer.kind, LayerKind::Conv { relu: false, .. })
                && net.layers[i + 1..]
                    .iter()
                    .take(2)
                    .any(|l| matches!(l.kind, LayerKind::Add));
            let s = if fused_residual {
                ((self.base + self.depth_gain * frac) * epoch_scale + jitter).clamp(0.05, 0.92)
            } else {
                self.layer_sparsity(layer, frac, carried, epoch_scale, jitter)
            };
            carried = s;
            per_layer.push(s);
        }
        SparsityProfile { per_layer }
    }

    fn layer_sparsity(
        &self,
        layer: &Layer,
        depth_frac: f64,
        input_sparsity: f64,
        epoch_scale: f64,
        jitter: f64,
    ) -> f64 {
        let relu_level =
            ((self.base + self.depth_gain * depth_frac) * epoch_scale + jitter).clamp(0.05, 0.92);
        match &layer.kind {
            LayerKind::Conv { relu: true, .. } | LayerKind::Fc { relu: true, .. } => relu_level,
            LayerKind::Relu => relu_level.max(input_sparsity),
            LayerKind::Pool { kind, .. } => match kind {
                // Max-pool zeroes a window only when all elements are zero.
                PoolKind::Max => (input_sparsity * self.pool_factor).clamp(0.0, 0.92),
                // Avg-pool preserves zero-regions (clustered zeros).
                PoolKind::Avg => (input_sparsity * 0.9).clamp(0.0, 0.92),
            },
            // LRN carries its input sparsity through unchanged (§2.2).
            LayerKind::Lrn => input_sparsity,
            // Dropout adds zeros on top of whatever arrives (§2.2).
            LayerKind::Dropout { p } => (input_sparsity + (1.0 - input_sparsity) * p).min(0.95),
            // Concatenation preserves the branch sparsity levels.
            LayerKind::Concat => input_sparsity.max(relu_level * 0.9),
            // A residual sum is zero only where both inputs are zero.
            LayerKind::Add => (input_sparsity * input_sparsity * 1.4).clamp(0.0, 0.9),
            // Linear outputs are dense.
            LayerKind::Conv { relu: false, .. }
            | LayerKind::Fc { relu: false, .. }
            | LayerKind::Softmax => 0.02,
        }
    }
}

impl SparsityModel {
    /// Derives the per-tenant drift view of this model for `tenant`.
    ///
    /// See [`TenantDrift`]: all tenants share this model's seed, but each
    /// (tenant, drift-epoch) pair deterministically perturbs the operating
    /// point, so co-resident serving tenants diverge without any shared
    /// mutable state.
    pub fn for_tenant(&self, tenant: u64) -> TenantDrift {
        TenantDrift {
            model: *self,
            tenant,
            spread: 0.08,
        }
    }
}

/// Deterministic per-tenant sparsity drift on top of a shared
/// [`SparsityModel`].
///
/// A serving fleet hosts many tenants whose traffic exercises the same
/// architecture at different operating points — fine-tuned checkpoints,
/// different input domains, different stages of convergence. To the
/// compressor all of that appears as a slowly drifting average sparsity.
/// `TenantDrift` derives, from one shared seed, a per-tenant sequence of
/// models indexed by *drift epoch*: tenants diverge from each other, every
/// `(tenant, epoch)` pair maps to exactly one model, and re-deriving is a
/// pure function of the shared seed (no hidden state, so serving sweeps
/// replay byte-identically).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantDrift {
    /// The shared base model all tenants drift around.
    pub model: SparsityModel,
    /// Tenant index; part of the derivation, not an array offset.
    pub tenant: u64,
    /// Half-width of the uniform band the tenant's base sparsity is drawn
    /// from, per drift epoch.
    pub spread: f64,
}

/// SplitMix64 finalizer over (seed, tenant, epoch); decorrelates nearby
/// tenant/epoch indices so tenant 0 epoch 1 and tenant 1 epoch 0 do not
/// collide.
fn mix_tenant_seed(seed: u64, tenant: u64, epoch: u64) -> u64 {
    let mut z = seed
        ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ epoch.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TenantDrift {
    /// Overrides the drift band half-width.
    pub fn with_spread(mut self, spread: f64) -> Self {
        assert!((0.0..=0.3).contains(&spread), "spread must be in [0, 0.3]");
        self.spread = spread;
        self
    }

    /// The drifted model for this tenant at `epoch`.
    ///
    /// The base sparsity is offset by a uniform draw in `±spread` and the
    /// jitter seed is re-derived, both keyed on `(seed, tenant, epoch)`, so
    /// two tenants (or two epochs) produce different but individually
    /// reproducible profiles.
    pub fn model_at(&self, epoch: usize) -> SparsityModel {
        let offset = if self.spread > 0.0 {
            let mut rng = SmallRng::seed_from_u64(mix_tenant_seed(
                self.model.seed,
                self.tenant,
                epoch as u64,
            ));
            rng.gen_range(-self.spread..self.spread)
        } else {
            0.0
        };
        SparsityModel {
            base: (self.model.base + offset).clamp(0.05, 0.88),
            seed: mix_tenant_seed(self.model.seed ^ 0x007e_4a17, self.tenant, epoch as u64),
            ..self.model
        }
    }

    /// Per-layer profile of `net` for this tenant at drift `epoch`.
    ///
    /// The underlying training-epoch transient is pinned at convergence
    /// (epoch 50): serving traffic hits trained checkpoints, and the drift
    /// epoch — not the warm-up curve — carries the variation.
    pub fn profile(&self, net: &Network, epoch: usize) -> SparsityProfile {
        self.model_at(epoch).profile(net, 50)
    }
}

/// Generates a post-ReLU activation buffer with the target `sparsity` and
/// spatially-clustered zero runs (mean run length `mean_run`).
///
/// Zeros are produced by a two-state Markov chain, matching the clustered
/// structure of real feature maps (zero regions correspond to inactive
/// spatial areas). Non-zero values are positive, as after a ReLU.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]` or `mean_run < 1`.
pub fn generate_activations(elements: usize, sparsity: f64, mean_run: f64, seed: u64) -> Vec<f32> {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    assert!(mean_run >= 1.0, "mean run length must be >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(elements);
    // Two-state Markov chain: exit probability of the zero state sets the
    // mean zero-run length; the entry probability is solved so the
    // stationary zero fraction equals `sparsity`. High sparsity forces a
    // feasibility floor on the run length: the stationary zero fraction
    // is at most mean_run/(mean_run+1), so runs must average at least
    // s/(1-s) — physically, very sparse maps have long zero runs.
    let mean_run = if sparsity < 1.0 {
        mean_run.max(sparsity / (1.0 - sparsity) * 1.05)
    } else {
        mean_run
    };
    let p_exit_zero = 1.0 / mean_run;
    let p_enter_zero = if sparsity >= 1.0 {
        1.0
    } else {
        (sparsity * p_exit_zero / (1.0 - sparsity)).min(1.0)
    };
    let mut in_zero = rng.gen_bool(sparsity.clamp(0.0, 1.0));
    for _ in 0..elements {
        if in_zero {
            out.push(0.0);
            if rng.gen_bool(p_exit_zero.clamp(0.0, 1.0)) {
                in_zero = false;
            }
        } else {
            // Positive activation magnitudes, roughly half-normal.
            let v: f32 = rng.gen_range(0.0f32..1.0).max(1e-3) * rng.gen_range(0.1f32..2.0);
            out.push(v);
            if rng.gen_bool(p_enter_zero.clamp(0.0, 1.0)) {
                in_zero = true;
            }
        }
    }
    out
}

/// Streams the [`generate_activations`] Markov chain directly into
/// per-vector nonzero counts (16 lanes per count) without materializing
/// the `f32` buffer.
///
/// Draw-for-draw identical to `generate_activations` followed by counting
/// nonzero lanes per 16-element vector: the chain makes the same RNG calls
/// in the same order, and a generated value is nonzero exactly when the
/// chain is in the nonzero state (magnitudes are bounded below by 1e-4).
/// A trailing partial vector counts only its real elements, matching the
/// zero-padded tail of the buffer path.
pub fn generate_activation_nnz(
    elements: usize,
    sparsity: f64,
    mean_run: f64,
    seed: u64,
    out: &mut Vec<u8>,
) {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    assert!(mean_run >= 1.0, "mean run length must be >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mean_run = if sparsity < 1.0 {
        mean_run.max(sparsity / (1.0 - sparsity) * 1.05)
    } else {
        mean_run
    };
    let p_exit_zero = 1.0 / mean_run;
    let p_enter_zero = if sparsity >= 1.0 {
        1.0
    } else {
        (sparsity * p_exit_zero / (1.0 - sparsity)).min(1.0)
    };
    let p_exit = p_exit_zero.clamp(0.0, 1.0);
    let p_enter = p_enter_zero.clamp(0.0, 1.0);
    let mut in_zero = rng.gen_bool(sparsity.clamp(0.0, 1.0));
    out.reserve(elements.div_ceil(16));
    let mut produced = 0usize;
    while produced < elements {
        let lanes = 16.min(elements - produced);
        let mut nnz = 0u8;
        for _ in 0..lanes {
            if in_zero {
                if rng.gen_bool(p_exit) {
                    in_zero = false;
                }
            } else {
                // Advance the generator exactly as the buffer path's
                // magnitude draws do; the value itself is discarded.
                let _ = rng.gen_range(0.0f32..1.0).max(1e-3) * rng.gen_range(0.1f32..2.0);
                nnz += 1;
                if rng.gen_bool(p_enter) {
                    in_zero = true;
                }
            }
        }
        out.push(nnz);
        produced += lanes;
    }
}

/// Generates a pre-activation buffer for a ReLU layer: the fraction
/// `negative_fraction` of elements are `<= 0` (they become zeros under the
/// fused `_LTEZ` comparison), clustered like [`generate_activations`].
pub fn generate_preactivations(
    elements: usize,
    negative_fraction: f64,
    mean_run: f64,
    seed: u64,
) -> Vec<f32> {
    let mut buf = generate_activations(elements, negative_fraction, mean_run, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFACE);
    for v in &mut buf {
        if *v == 0.0 {
            // Pre-activation: a negative value the ReLU will clamp.
            *v = -rng.gen_range(1e-3f32..2.0);
        }
    }
    buf
}

/// Measures the zero fraction of a buffer.
pub fn measured_sparsity(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().filter(|&&v| v == 0.0).count() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{vgg16, ModelId};

    #[test]
    fn generated_sparsity_matches_target() {
        for &target in &[0.2, 0.53, 0.8] {
            let buf = generate_activations(200_000, target, 6.0, 42);
            let got = measured_sparsity(&buf);
            assert!((got - target).abs() < 0.03, "target {target} got {got}");
        }
    }

    #[test]
    fn zeros_are_clustered() {
        let buf = generate_activations(100_000, 0.5, 8.0, 7);
        // Count zero runs; mean run length should be near 8.
        let mut runs = 0u64;
        let mut zeros = 0u64;
        let mut prev_zero = false;
        for &v in &buf {
            let z = v == 0.0;
            if z {
                zeros += 1;
                if !prev_zero {
                    runs += 1;
                }
            }
            prev_zero = z;
        }
        let mean = zeros as f64 / runs.max(1) as f64;
        assert!((5.0..12.0).contains(&mean), "mean zero run {mean}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_activations(1024, 0.5, 4.0, 99);
        let b = generate_activations(1024, 0.5, 4.0, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn preactivations_have_no_zeros_and_right_negative_fraction() {
        let buf = generate_preactivations(100_000, 0.53, 6.0, 3);
        assert_eq!(measured_sparsity(&buf), 0.0, "pre-ReLU data is dense");
        let neg = buf.iter().filter(|&&v| v <= 0.0).count() as f64 / buf.len() as f64;
        assert!((neg - 0.53).abs() < 0.03, "negative fraction {neg}");
    }

    #[test]
    fn vgg_profile_average_near_paper() {
        let net = vgg16(64);
        let model = SparsityModel::default();
        let profile = model.profile(&net, 30);
        let avg = profile.average(&net);
        assert!((0.40..0.70).contains(&avg), "got {avg}");
    }

    #[test]
    fn all_networks_average_within_paper_band() {
        // §5.3: feature maps show 49–63% average sparsity across networks.
        let model = SparsityModel::default();
        for id in ModelId::ALL {
            let net = id.build(id.training_batch());
            let avg = model.profile(&net, 50).average(&net);
            assert!(
                (0.35..0.72).contains(&avg),
                "{id}: average sparsity {avg} far from the paper band"
            );
        }
    }

    #[test]
    fn sparsity_grows_with_depth_for_relu_layers() {
        let net = vgg16(1);
        let profile = SparsityModel::default().profile(&net, 50);
        let first_relu = net
            .layers
            .iter()
            .position(|l| l.has_relu())
            .expect("vgg has relu layers");
        let last_relu = net
            .layers
            .iter()
            .rposition(|l| l.has_relu())
            .expect("vgg has relu layers");
        assert!(
            profile.per_layer[last_relu] > profile.per_layer[first_relu],
            "deeper layers should be sparser"
        );
    }

    #[test]
    fn early_epochs_are_less_sparse() {
        let net = vgg16(1);
        let model = SparsityModel::default();
        let e0 = model.profile(&net, 0).average(&net);
        let e50 = model.profile(&net, 50).average(&net);
        assert!(e50 > e0, "epoch 0 {e0} vs epoch 50 {e50}");
    }

    #[test]
    fn tenant_profiles_diverge_deterministically_from_shared_seed() {
        // Satellite: multi-epoch tenant drift. One shared SparsityModel
        // seed; two tenants must diverge from each other at every drift
        // epoch, each tenant must drift across epochs, and re-deriving
        // from the shared seed must be exact.
        let net = crate::models::ModelId::Resnet32.build(1);
        let model = SparsityModel::default();
        let t0 = model.for_tenant(0);
        let t1 = model.for_tenant(1);
        for epoch in 0..4 {
            let p0 = t0.profile(&net, epoch);
            let p1 = t1.profile(&net, epoch);
            assert_ne!(p0, p1, "tenants 0/1 collided at drift epoch {epoch}");
            assert_eq!(p0, t0.profile(&net, epoch), "re-derivation must be pure");
            assert_eq!(p1, t1.profile(&net, epoch), "re-derivation must be pure");
        }
        let e0 = t0.profile(&net, 0);
        let e3 = t0.profile(&net, 3);
        assert_ne!(e0, e3, "a tenant must drift across epochs");
    }

    #[test]
    fn tenant_drift_stays_within_calibrated_band() {
        let net = vgg16(1);
        let model = SparsityModel::default();
        for tenant in 0..6 {
            let drift = model.for_tenant(tenant);
            for epoch in 0..4 {
                let avg = drift.profile(&net, epoch).average(&net);
                assert!(
                    (0.30..0.78).contains(&avg),
                    "tenant {tenant} epoch {epoch}: average {avg} left the band"
                );
            }
        }
    }

    #[test]
    fn drifted_profile_round_trips_through_generated_activations() {
        // The drifted per-layer targets must be what generate_activations
        // actually produces and measured_sparsity reads back — i.e. the
        // drift hook composes with the activation pipeline end to end.
        let net = vgg16(1);
        let drift = SparsityModel::default().for_tenant(3);
        for epoch in [0usize, 2] {
            let profile = drift.profile(&net, epoch);
            let relu_idx = net
                .layers
                .iter()
                .position(|l| l.has_relu())
                .expect("vgg has relu layers");
            let target = profile.per_layer[relu_idx];
            let buf = generate_activations(100_000, target, 6.0, 0xd21f7 ^ epoch as u64);
            let got = measured_sparsity(&buf);
            assert!(
                (got - target).abs() < 0.04,
                "epoch {epoch}: target {target} measured {got}"
            );
        }
    }

    #[test]
    fn zero_spread_pins_tenant_to_base_sparsity() {
        let drift = SparsityModel::default().for_tenant(9).with_spread(0.0);
        for epoch in 0..3 {
            assert_eq!(drift.model_at(epoch).base, SparsityModel::default().base);
        }
    }

    #[test]
    fn pool_layers_reduce_sparsity() {
        let net = vgg16(1);
        let profile = SparsityModel::default().profile(&net, 50);
        let pool_idx = net
            .layers
            .iter()
            .position(|l| l.name == "pool3")
            .expect("pool3");
        assert!(
            profile.per_layer[pool_idx] < profile.per_layer[pool_idx - 1],
            "pooling reduces the sparsity available at its input"
        );
    }
}
