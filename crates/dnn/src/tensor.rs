//! Tensor shapes and footprint accounting.

use serde::{Deserialize, Serialize};

/// Bytes per element; the paper's evaluation uses fp32 throughout.
pub const ELEM_BYTES: usize = 4;

/// A 4-D activation tensor shape in NCHW layout.
///
/// Fully-connected activations use `h = w = 1` with `c` as the feature
/// count.
///
/// # Example
///
/// ```
/// use zcomp_dnn::tensor::TensorShape;
///
/// let fm = TensorShape::new(64, 64, 224, 224); // VGG-16 conv1 output
/// assert_eq!(fm.elements(), 64 * 64 * 224 * 224);
/// assert_eq!(fm.bytes(), fm.elements() * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Batch size.
    pub n: usize,
    /// Channels (or features for FC layers).
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl TensorShape {
    /// Creates a shape.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        TensorShape { n, c, h, w }
    }

    /// A flat feature vector shape (`h = w = 1`).
    pub fn features(n: usize, c: usize) -> Self {
        TensorShape { n, c, h: 1, w: 1 }
    }

    /// Total element count.
    pub fn elements(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Size in bytes at fp32.
    pub fn bytes(&self) -> usize {
        self.elements() * ELEM_BYTES
    }

    /// Elements per batch item.
    pub fn per_item_elements(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Returns the shape with a different batch size.
    pub fn with_batch(&self, n: usize) -> TensorShape {
        TensorShape { n, ..*self }
    }
}

impl std::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_bytes() {
        let s = TensorShape::new(2, 3, 4, 5);
        assert_eq!(s.elements(), 120);
        assert_eq!(s.bytes(), 480);
        assert_eq!(s.per_item_elements(), 60);
    }

    #[test]
    fn features_shape_is_flat() {
        let s = TensorShape::features(64, 4096);
        assert_eq!(s.h, 1);
        assert_eq!(s.w, 1);
        assert_eq!(s.elements(), 64 * 4096);
    }

    #[test]
    fn with_batch_rescales() {
        let s = TensorShape::new(64, 64, 224, 224);
        assert_eq!(s.with_batch(4).elements(), s.elements() / 16);
    }

    #[test]
    fn display() {
        assert_eq!(TensorShape::new(1, 2, 3, 4).to_string(), "1x2x3x4");
    }
}
