//! Training/inference memory-footprint accounting (Figs. 1(b) and 3).

use serde::{Deserialize, Serialize};

use crate::network::Network;

/// Fraction of per-layer activation gradients that stay allocated over a
/// training step. Frameworks free or fuse a share of gradient buffers
/// eagerly during backpropagation, so the gradient-map footprint in Fig. 3
/// is large but smaller than the forward feature maps.
const GRADIENT_RETENTION: f64 = 0.6;

/// Memory consumed by each data-structure class of a DNN (Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Input images for one batch.
    pub inputs_bytes: u64,
    /// Learned weights.
    pub weights_bytes: u64,
    /// Weight gradients (training only).
    pub weight_grads_bytes: u64,
    /// Cross-layer feature maps accumulated over the forward pass.
    pub feature_maps_bytes: u64,
    /// Backward-pass gradient maps (training only).
    pub gradient_maps_bytes: u64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.inputs_bytes
            + self.weights_bytes
            + self.weight_grads_bytes
            + self.feature_maps_bytes
            + self.gradient_maps_bytes
    }

    /// Feature-map share of the total (the paper reports feature maps as
    /// the majority of the footprint in training, 44% on average in
    /// inference).
    pub fn feature_map_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.feature_maps_bytes as f64 / self.total() as f64
        }
    }
}

/// Computes the footprint of one training step: feature maps from all
/// layers stay buffered for the backward pass (§2.3 "long-term reuse"),
/// gradient maps flow backward, and weight gradients mirror the weights.
pub fn training_footprint(net: &Network) -> MemoryFootprint {
    let fm = net.feature_map_bytes() as u64;
    MemoryFootprint {
        inputs_bytes: net.input.bytes() as u64,
        weights_bytes: net.weight_bytes() as u64,
        weight_grads_bytes: net.weight_bytes() as u64,
        feature_maps_bytes: fm,
        gradient_maps_bytes: (fm as f64 * GRADIENT_RETENTION) as u64,
    }
}

/// Computes the footprint of inference: per-layer activation buffers are
/// still allocated, but there are no gradients.
pub fn inference_footprint(net: &Network) -> MemoryFootprint {
    MemoryFootprint {
        inputs_bytes: net.input.bytes() as u64,
        weights_bytes: net.weight_bytes() as u64,
        weight_grads_bytes: 0,
        feature_maps_bytes: net.feature_map_bytes() as u64,
        gradient_maps_bytes: 0,
    }
}

/// Per-layer feature-map vs weight footprint rows — Fig. 1(b).
pub fn layer_footprints(net: &Network) -> Vec<(String, u64, u64)> {
    net.layers
        .iter()
        .map(|l| {
            (
                l.name.clone(),
                l.output.bytes() as u64,
                l.weight_bytes() as u64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{vgg16, ModelId};

    #[test]
    fn training_feature_maps_dominate() {
        // §2.3 / Fig. 3: cross-layer feature maps account for the majority
        // of the training memory footprint.
        for id in [
            ModelId::Vgg16,
            ModelId::Googlenet,
            ModelId::InceptionResnetV2,
        ] {
            let net = id.build(id.training_batch());
            let fp = training_footprint(&net);
            assert!(
                fp.feature_map_fraction() > 0.4,
                "{id}: feature maps are {:.0}%",
                fp.feature_map_fraction() * 100.0
            );
        }
    }

    #[test]
    fn inference_has_no_gradients() {
        let net = vgg16(4);
        let fp = inference_footprint(&net);
        assert_eq!(fp.gradient_maps_bytes, 0);
        assert_eq!(fp.weight_grads_bytes, 0);
        assert!(fp.feature_maps_bytes > 0);
    }

    #[test]
    fn weights_matter_more_in_inference() {
        // §5.3: "in inference, weight transfers also become a major
        // factor" because the batch (and with it the feature maps) shrinks.
        let train = training_footprint(&vgg16(64));
        let infer = inference_footprint(&vgg16(4));
        let train_w = train.weights_bytes as f64 / train.total() as f64;
        let infer_w = infer.weights_bytes as f64 / infer.total() as f64;
        assert!(infer_w > train_w * 2.0);
    }

    #[test]
    fn vgg_early_layers_are_feature_map_heavy() {
        // Fig. 1(b): early layers generate hundreds of MB of feature maps;
        // weights only dominate in the FC layers.
        let net = vgg16(64);
        let rows = layer_footprints(&net);
        let (name, fm, w) = &rows[0];
        assert_eq!(name, "conv1_1");
        assert!(fm > &(100u64 << 20));
        assert!(w < &(1u64 << 20));
        let fc6 = rows.iter().find(|(n, _, _)| n == "fc6").expect("fc6 row");
        assert!(fc6.2 > fc6.1, "fc6 weights exceed its activations");
    }

    #[test]
    fn footprint_total_sums_components() {
        let fp = MemoryFootprint {
            inputs_bytes: 1,
            weights_bytes: 2,
            weight_grads_bytes: 3,
            feature_maps_bytes: 4,
            gradient_maps_bytes: 5,
        };
        assert_eq!(fp.total(), 15);
    }
}
