//! Alignment analysis of compressed streams (§3.3).
//!
//! Compressed vectors have data-dependent sizes, so an interleaved stream
//! walks through memory at irregular offsets: some vectors straddle a
//! 64-byte cache-line boundary (handled "the same way as a regular
//! unaligned store"), and element types whose `gcd(elem, header)` is
//! below the transfer granularity can incur redundant transfer bytes.
//! This module quantifies both effects for a given NNZ sequence.

use serde::{Deserialize, Serialize};

use crate::dtype::ElemType;
use crate::CACHE_LINE_BYTES;

/// Alignment statistics of one compressed stream layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignmentStats {
    /// Vectors in the stream.
    pub vectors: u64,
    /// Vectors whose header+data image crosses a cache-line boundary.
    pub line_crossers: u64,
    /// Total cache lines touched by the stream's writes.
    pub lines_touched: u64,
    /// Total stream bytes.
    pub stream_bytes: u64,
}

impl AlignmentStats {
    /// Fraction of vectors that straddle a line boundary.
    pub fn crossing_fraction(&self) -> f64 {
        if self.vectors == 0 {
            0.0
        } else {
            self.line_crossers as f64 / self.vectors as f64
        }
    }

    /// Bytes moved per stream byte if every touched line moves whole
    /// (≥ 1.0; the overhead of partial-line occupancy).
    pub fn line_transfer_overhead(&self) -> f64 {
        if self.stream_bytes == 0 {
            1.0
        } else {
            (self.lines_touched * CACHE_LINE_BYTES as u64) as f64 / self.stream_bytes as f64
        }
    }
}

/// Walks an interleaved stream layout for the given per-vector kept-lane
/// counts and element type, accumulating alignment statistics.
///
/// # Panics
///
/// Panics if any count exceeds the type's lane count.
pub fn analyze_interleaved(nnz: &[u16], ty: ElemType) -> AlignmentStats {
    let lanes = ty.lanes() as u16;
    let mut stats = AlignmentStats::default();
    let mut offset = 0u64;
    let mut last_line = u64::MAX;
    for &n in nnz {
        assert!(n <= lanes, "nnz {n} exceeds {lanes} lanes");
        let size = (ty.header_bytes() + n as usize * ty.size_bytes()) as u64;
        let first_line = offset / CACHE_LINE_BYTES as u64;
        let end_line = (offset + size - 1) / CACHE_LINE_BYTES as u64;
        if end_line > first_line {
            stats.line_crossers += 1;
        }
        for line in first_line..=end_line {
            if line != last_line {
                stats.lines_touched += 1;
                last_line = line;
            }
        }
        stats.vectors += 1;
        stats.stream_bytes += size;
        offset += size;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_vectors_always_cross() {
        // Incompressible fp32 vectors are 66 bytes: every one crosses a
        // 64-byte boundary — the §3.3 unaligned-store case.
        let stats = analyze_interleaved(&[16; 32], ElemType::F32);
        assert_eq!(stats.line_crossers, 32);
        assert!(stats.line_transfer_overhead() < 1.05);
    }

    #[test]
    fn empty_vectors_pack_into_lines() {
        // 2-byte headers only: 32 per line, no crossings.
        let stats = analyze_interleaved(&[0; 64], ElemType::F32);
        assert_eq!(stats.line_crossers, 0);
        assert_eq!(stats.lines_touched, 2);
        assert_eq!(stats.stream_bytes, 128);
    }

    #[test]
    fn crossing_fraction_grows_with_size_irregularity() {
        let small = analyze_interleaved(&[2; 256], ElemType::F32); // 10 B each
        let large = analyze_interleaved(&[12; 256], ElemType::F32); // 50 B each
        assert!(large.crossing_fraction() > small.crossing_fraction());
    }

    #[test]
    fn sequential_stream_touches_each_line_once() {
        // A contiguous stream revisits no line: lines_touched equals the
        // span in lines.
        let stats = analyze_interleaved(&[8; 100], ElemType::F32);
        let span = stats.stream_bytes.div_ceil(64);
        assert!(stats.lines_touched <= span + 1);
    }

    #[test]
    fn int8_headers_have_no_alignment_guarantee() {
        // §3.3: lower precisions can incur redundant transfers; the
        // overhead factor reflects partially-filled lines.
        let stats = analyze_interleaved(&[1; 8], ElemType::I8); // 9 B each
        assert!(stats.line_transfer_overhead() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overfull_vector_panics() {
        analyze_interleaved(&[17], ElemType::F32);
    }

    #[test]
    fn stats_of_empty_stream() {
        let stats = analyze_interleaved(&[], ElemType::F32);
        assert_eq!(stats.crossing_fraction(), 0.0);
        assert_eq!(stats.line_transfer_overhead(), 1.0);
    }
}
