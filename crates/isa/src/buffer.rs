//! Generic buffer compression for every supported element type.
//!
//! [`compress`](crate::compress) covers the paper's default fp32 path;
//! this module provides the same operations over raw byte buffers for any
//! [`ElemType`] — the "multiple variants to support different data types
//! (e.g. int8, fp16, int, fp32, double)" of §3 — including the smaller
//! headers of wider types and the bigger headers of narrower ones.

use crate::ccf::CompareCond;
use crate::dtype::ElemType;
use crate::error::ZcompError;
use crate::native::{self, CodecBackend};
use crate::stream::{CompressedStream, CompressedWriter, HeaderMode};
use crate::vec512::Vec512;
use crate::VECTOR_BYTES;

/// Compresses a raw little-endian buffer of `ty`-typed elements, using
/// the process-default [`CodecBackend`].
///
/// # Errors
///
/// Returns [`ZcompError::PartialVector`] if the buffer is not a whole
/// number of 64-byte vectors.
pub fn compress_bytes(
    data: &[u8],
    ty: ElemType,
    cond: CompareCond,
    mode: HeaderMode,
) -> Result<CompressedStream, ZcompError> {
    compress_bytes_with_backend(data, ty, cond, mode, CodecBackend::detect())
}

/// Compresses a raw typed buffer through an explicitly chosen backend.
///
/// [`CodecBackend::Native`] silently degrades to the scalar path on hosts
/// with no supported vector extension; both backends produce byte-identical
/// streams.
///
/// # Errors
///
/// Returns [`ZcompError::PartialVector`] if the buffer is not a whole
/// number of 64-byte vectors.
pub fn compress_bytes_with_backend(
    data: &[u8],
    ty: ElemType,
    cond: CompareCond,
    mode: HeaderMode,
    backend: CodecBackend,
) -> Result<CompressedStream, ZcompError> {
    if !data.len().is_multiple_of(VECTOR_BYTES) {
        return Err(ZcompError::PartialVector {
            len: data.len() / ty.size_bytes(),
            lanes: ty.lanes(),
        });
    }
    if backend == CodecBackend::Native {
        if let Some(stream) = native::compress_to_stream(data, ty, cond, mode) {
            return Ok(stream);
        }
    }
    let mut w = CompressedWriter::new(ty, mode);
    for chunk in data.chunks_exact(VECTOR_BYTES) {
        let mut v = Vec512::ZERO;
        v.as_bytes_mut().copy_from_slice(chunk);
        // The writer is unbounded so this cannot overflow, but forward the
        // typed error rather than panicking on a fallible stream operation.
        w.write_vector(&v, cond)?;
    }
    Ok(w.finish())
}

/// Expands a compressed stream back into a raw byte buffer.
///
/// # Errors
///
/// Returns [`ZcompError::Truncated`] for a malformed stream.
pub fn expand_bytes(stream: &CompressedStream) -> Result<Vec<u8>, ZcompError> {
    let mut out = vec![0u8; stream.vectors() * VECTOR_BYTES];
    expand_bytes_into(stream, &mut out)?;
    Ok(out)
}

/// Expands a stream into a caller-provided byte buffer, returning the
/// byte count written — the zero-alloc dual of [`expand_bytes`],
/// mirroring [`expand_f32_into`](crate::compress::expand_f32_into).
///
/// # Errors
///
/// Returns [`ZcompError::DestinationTooSmall`] if `dst` cannot hold the
/// stream's uncompressed bytes, or [`ZcompError::Truncated`] for a
/// malformed stream.
pub fn expand_bytes_into(stream: &CompressedStream, dst: &mut [u8]) -> Result<usize, ZcompError> {
    expand_bytes_into_with_backend(stream, dst, CodecBackend::detect())
}

/// Expands a stream into a caller-provided byte buffer through an
/// explicitly chosen backend, returning the byte count written.
///
/// # Errors
///
/// Returns [`ZcompError::DestinationTooSmall`] if `dst` cannot hold the
/// stream's uncompressed bytes, or [`ZcompError::Truncated`] for a
/// malformed stream.
pub fn expand_bytes_into_with_backend(
    stream: &CompressedStream,
    dst: &mut [u8],
    backend: CodecBackend,
) -> Result<usize, ZcompError> {
    let needed = stream.vectors() * VECTOR_BYTES;
    if dst.len() < needed {
        return Err(ZcompError::DestinationTooSmall {
            needed,
            available: dst.len(),
        });
    }
    if backend == CodecBackend::Native {
        if let Some(result) = native::expand_into(stream, &mut dst[..needed]) {
            result?;
            return Ok(needed);
        }
    }
    let mut r = stream.reader();
    let mut pos = 0;
    while let Some(v) = r.read_vector()? {
        dst[pos..pos + VECTOR_BYTES].copy_from_slice(v.as_bytes());
        pos += VECTOR_BYTES;
    }
    Ok(pos)
}

/// Convenience: compression ratio of a typed buffer at the given
/// condition (interleaved header).
///
/// # Errors
///
/// Returns [`ZcompError::PartialVector`] for partial buffers.
pub fn ratio_of(data: &[u8], ty: ElemType, cond: CompareCond) -> Result<f64, ZcompError> {
    Ok(compress_bytes(data, ty, cond, HeaderMode::Interleaved)?.compression_ratio())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_buffer(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn f64_roundtrip() {
        // 8 lanes per vector; two vectors.
        let values: Vec<f64> = (0..16)
            .map(|i| if i % 3 == 0 { 0.0 } else { i as f64 * 1.5 })
            .collect();
        let data = f64_buffer(&values);
        let stream = compress_bytes(
            &data,
            ElemType::F64,
            CompareCond::Eqz,
            HeaderMode::Interleaved,
        )
        .expect("whole vectors");
        assert_eq!(expand_bytes(&stream).expect("roundtrip"), data);
        // 6 zeros of 8 bytes compressed away, 2 x 1-byte headers added.
        assert_eq!(stream.compressed_bytes(), 128 - 6 * 8 + 2);
    }

    #[test]
    fn i8_roundtrip_with_ltez() {
        let mut data = vec![0u8; 64];
        data[0] = 5;
        data[1] = 0xFB; // -5: compressed away under LTEZ
        data[63] = 100;
        let stream = compress_bytes(&data, ElemType::I8, CompareCond::Ltez, HeaderMode::Separate)
            .expect("whole vector");
        let out = expand_bytes(&stream).expect("roundtrip");
        assert_eq!(out[0], 5);
        assert_eq!(out[1], 0, "negative int8 relu'd to zero");
        assert_eq!(out[63], 100);
        // 8-byte header + 2 kept bytes.
        assert_eq!(stream.compressed_bytes(), 10);
    }

    #[test]
    fn f16_all_zero_hits_max_ratio() {
        let data = vec![0u8; 256]; // 4 vectors of 32 fp16 lanes
        let stream = compress_bytes(
            &data,
            ElemType::F16,
            CompareCond::Eqz,
            HeaderMode::Interleaved,
        )
        .expect("whole vectors");
        // Each vector: 4-byte header only -> ratio 16.
        assert!((stream.compression_ratio() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn header_overhead_ranks_by_lane_count() {
        // For incompressible data, narrower types pay bigger headers.
        let data = vec![0x7Fu8; 128];
        let ratio = |ty| ratio_of(&data, ty, CompareCond::Eqz).expect("whole vectors");
        assert!(ratio(ElemType::F64) > ratio(ElemType::F32));
        assert!(ratio(ElemType::F32) > ratio(ElemType::I8));
    }

    #[test]
    fn partial_buffer_is_rejected() {
        let err = compress_bytes(
            &[0u8; 65],
            ElemType::F32,
            CompareCond::Eqz,
            HeaderMode::Interleaved,
        )
        .unwrap_err();
        assert!(matches!(err, ZcompError::PartialVector { .. }));
    }

    #[test]
    fn i32_roundtrip() {
        let values: Vec<i32> = (-8..8).collect();
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let stream = compress_bytes(
            &data,
            ElemType::I32,
            CompareCond::Eqz,
            HeaderMode::Interleaved,
        )
        .expect("one vector");
        assert_eq!(expand_bytes(&stream).expect("roundtrip"), data);
        // One zero lane compressed: 2-byte header + 15 * 4 bytes.
        assert_eq!(stream.compressed_bytes(), 62);
    }
}
