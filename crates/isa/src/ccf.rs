//! The comparison condition flag (`#CCF`) immediate of `zcomps`.

use serde::{Deserialize, Serialize};

use crate::dtype::ElemType;
use crate::mask::LaneMask;
use crate::vec512::Vec512;

/// The comparison condition of a `zcomps` instruction (§3.1).
///
/// The condition decides which lanes are *compressed away*; the header bit
/// for a lane is set when the lane is **kept**.
///
/// * [`Eqz`](CompareCond::Eqz) compresses lanes equal to zero — the generic
///   sparse-store mode used after any layer.
/// * [`Ltez`](CompareCond::Ltez) compresses lanes less than **or equal to**
///   zero — this *fuses the ReLU activation with the compression* in a
///   single instruction, since ReLU maps all non-positive values to zero.
///
/// # Semantics notes
///
/// * `-0.0` compares equal to `0.0`, so it is compressed and will expand as
///   `+0.0`: the bit pattern is not preserved, exactly as a hardware
///   floating-point compare would behave.
/// * `NaN` lanes never satisfy `== 0` or `<= 0`, so NaNs are always kept.
///
/// # Example
///
/// ```
/// use zcomp_isa::ccf::CompareCond;
///
/// assert!(CompareCond::Eqz.compresses_f32(0.0));
/// assert!(CompareCond::Eqz.compresses_f32(-0.0));
/// assert!(!CompareCond::Eqz.compresses_f32(-1.0));
/// assert!(CompareCond::Ltez.compresses_f32(-1.0)); // fused ReLU
/// assert!(!CompareCond::Ltez.compresses_f32(f32::NAN));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareCond {
    /// `_EQZ` — compress lanes equal to zero.
    Eqz,
    /// `_LTEZ` — compress lanes less than or equal to zero (fused ReLU).
    Ltez,
}

impl CompareCond {
    /// Whether an fp32 lane with this value would be compressed away.
    #[inline]
    pub fn compresses_f32(self, v: f32) -> bool {
        match self {
            CompareCond::Eqz => v == 0.0,
            CompareCond::Ltez => v <= 0.0,
        }
    }

    /// The value a compressed lane represents after the (implied)
    /// activation: always `0.0` — `Ltez` *maps* negative values to zero.
    #[inline]
    pub fn compressed_value_f32(self) -> f32 {
        0.0
    }

    /// Computes the keep-mask for a vector of the given type.
    ///
    /// For non-float element types, `Eqz` compares the raw lane bytes
    /// against zero and `Ltez` interprets the lane as a signed
    /// little-endian integer.
    pub fn keep_mask(self, v: &Vec512, ty: ElemType) -> LaneMask {
        let mut mask = LaneMask::empty(ty);
        for i in 0..ty.lanes() {
            let kept = match ty {
                ElemType::F32 => !self.compresses_f32(v.f32_lane(i)),
                ElemType::F64 => {
                    let b = v.lane_bytes(ty, i);
                    let x = f64::from_le_bytes(b.try_into().expect("8-byte lane"));
                    match self {
                        CompareCond::Eqz => x != 0.0,
                        CompareCond::Ltez => x > 0.0 || x.is_nan(),
                    }
                }
                ElemType::F16 => {
                    // Half floats are modelled by bit pattern: zero iff the
                    // magnitude bits are clear; sign bit decides <= 0.
                    let b = v.lane_bytes(ty, i);
                    let bits = u16::from_le_bytes([b[0], b[1]]);
                    let is_zero = bits & 0x7FFF == 0;
                    let is_nan = (bits & 0x7C00) == 0x7C00 && (bits & 0x03FF) != 0;
                    let is_neg = bits & 0x8000 != 0;
                    match self {
                        CompareCond::Eqz => !is_zero,
                        CompareCond::Ltez => is_nan || (!is_zero && !is_neg),
                    }
                }
                ElemType::I32 => {
                    let b = v.lane_bytes(ty, i);
                    let x = i32::from_le_bytes(b.try_into().expect("4-byte lane"));
                    match self {
                        CompareCond::Eqz => x != 0,
                        CompareCond::Ltez => x > 0,
                    }
                }
                ElemType::I8 => {
                    let x = v.lane_bytes(ty, i)[0] as i8;
                    match self {
                        CompareCond::Eqz => x != 0,
                        CompareCond::Ltez => x > 0,
                    }
                }
            };
            if kept {
                mask.set(i);
            }
        }
        mask
    }
}

impl std::fmt::Display for CompareCond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CompareCond::Eqz => "_EQZ",
            CompareCond::Ltez => "_LTEZ",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqz_keeps_negatives() {
        let mut v = Vec512::new();
        v.set_f32_lane(0, -2.0);
        v.set_f32_lane(1, 0.0);
        v.set_f32_lane(2, 3.0);
        let mask = CompareCond::Eqz.keep_mask(&v, ElemType::F32);
        assert!(mask.is_set(0));
        assert!(!mask.is_set(1));
        assert!(mask.is_set(2));
        // Lanes 3..16 are zero and compressed.
        assert_eq!(mask.popcount(), 2);
    }

    #[test]
    fn ltez_fuses_relu() {
        let mut v = Vec512::new();
        v.set_f32_lane(0, -2.0);
        v.set_f32_lane(1, 0.0);
        v.set_f32_lane(2, 3.0);
        let mask = CompareCond::Ltez.keep_mask(&v, ElemType::F32);
        assert!(!mask.is_set(0), "negative lane must compress under LTEZ");
        assert!(!mask.is_set(1));
        assert!(mask.is_set(2));
    }

    #[test]
    fn negative_zero_compresses() {
        assert!(CompareCond::Eqz.compresses_f32(-0.0));
        assert!(CompareCond::Ltez.compresses_f32(-0.0));
    }

    #[test]
    fn nan_is_kept() {
        let mut v = Vec512::new();
        v.set_f32_lane(5, f32::NAN);
        for cond in [CompareCond::Eqz, CompareCond::Ltez] {
            let mask = cond.keep_mask(&v, ElemType::F32);
            assert!(mask.is_set(5), "{cond}");
        }
    }

    #[test]
    fn i8_lanes() {
        let mut v = Vec512::new();
        v.set_lane_bytes(ElemType::I8, 0, &[0xFF]); // -1
        v.set_lane_bytes(ElemType::I8, 1, &[0x01]); // +1
        let eqz = CompareCond::Eqz.keep_mask(&v, ElemType::I8);
        assert!(eqz.is_set(0));
        assert!(eqz.is_set(1));
        assert_eq!(eqz.popcount(), 2);
        let ltez = CompareCond::Ltez.keep_mask(&v, ElemType::I8);
        assert!(!ltez.is_set(0));
        assert!(ltez.is_set(1));
    }

    #[test]
    fn f16_sign_and_zero() {
        let mut v = Vec512::new();
        // +1.0 in fp16 = 0x3C00; -1.0 = 0xBC00; -0.0 = 0x8000.
        v.set_lane_bytes(ElemType::F16, 0, &0x3C00u16.to_le_bytes());
        v.set_lane_bytes(ElemType::F16, 1, &0xBC00u16.to_le_bytes());
        v.set_lane_bytes(ElemType::F16, 2, &0x8000u16.to_le_bytes());
        let eqz = CompareCond::Eqz.keep_mask(&v, ElemType::F16);
        assert!(eqz.is_set(0));
        assert!(eqz.is_set(1));
        assert!(!eqz.is_set(2), "-0.0 must compress under EQZ");
        let ltez = CompareCond::Ltez.keep_mask(&v, ElemType::F16);
        assert!(ltez.is_set(0));
        assert!(!ltez.is_set(1));
        assert!(!ltez.is_set(2));
    }

    #[test]
    fn display() {
        assert_eq!(CompareCond::Eqz.to_string(), "_EQZ");
        assert_eq!(CompareCond::Ltez.to_string(), "_LTEZ");
    }
}
