//! High-level compress / expand helpers over `f32` slices.
//!
//! These wrap [`CompressedWriter`] / [`CompressedReader`] for the crate's
//! default element type (fp32, as in the paper's evaluation) and collect the
//! summary statistics the experiments need.

use serde::{Deserialize, Serialize};

use crate::ccf::CompareCond;
use crate::dtype::ElemType;
use crate::error::ZcompError;
use crate::native::{self, CodecBackend};
use crate::stream::{CompressedStream, CompressedWriter, HeaderMode};
use crate::vec512::Vec512;

/// Summary statistics of a compressed stream.
///
/// # Example
///
/// ```
/// use zcomp_isa::compress::{compress_f32, CompressedStats};
/// use zcomp_isa::ccf::CompareCond;
///
/// let data = vec![0.0f32; 64]; // four all-zero vectors
/// let stream = compress_f32(&data, CompareCond::Eqz)?;
/// let stats = CompressedStats::of(&stream);
/// assert_eq!(stats.vectors, 4);
/// assert_eq!(stats.compressed_bytes, 8); // four 2-byte headers
/// assert!((stats.sparsity - 1.0).abs() < 1e-12);
/// # Ok::<(), zcomp_isa::error::ZcompError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressedStats {
    /// Number of 512-bit vectors in the stream.
    pub vectors: usize,
    /// Bytes of the uncompressed representation.
    pub uncompressed_bytes: usize,
    /// Bytes stored (data region plus any separate header store).
    pub compressed_bytes: usize,
    /// Fraction of lanes that were compressed away (0.0–1.0).
    pub sparsity: f64,
    /// Compression ratio `uncompressed / compressed`.
    pub ratio: f64,
    /// Whether an interleaved stream fits the original allocation (§4.1).
    pub fits_original: bool,
}

impl CompressedStats {
    /// Computes the statistics of a finished stream.
    pub fn of(stream: &CompressedStream) -> Self {
        let lanes_total = stream.elements() as u64;
        let sparsity = if lanes_total == 0 {
            0.0
        } else {
            1.0 - stream.total_nnz() as f64 / lanes_total as f64
        };
        CompressedStats {
            vectors: stream.vectors(),
            uncompressed_bytes: stream.uncompressed_bytes(),
            compressed_bytes: stream.compressed_bytes(),
            sparsity,
            ratio: stream.compression_ratio(),
            fits_original: stream.fits_original_allocation(),
        }
    }
}

/// Compresses an `f32` slice with an interleaved header.
///
/// # Errors
///
/// Returns [`ZcompError::PartialVector`] if `data.len()` is not a multiple
/// of 16 — ZCOMP operates on whole vectors and the evaluated DNN frameworks
/// allocate feature maps in full vectors; pad the tail if needed.
pub fn compress_f32(data: &[f32], cond: CompareCond) -> Result<CompressedStream, ZcompError> {
    compress_f32_with(data, cond, HeaderMode::Interleaved)
}

/// Compresses an `f32` slice with the chosen header mode, using the
/// process-default [`CodecBackend`].
///
/// # Errors
///
/// Returns [`ZcompError::PartialVector`] if `data.len()` is not a multiple
/// of 16.
pub fn compress_f32_with(
    data: &[f32],
    cond: CompareCond,
    mode: HeaderMode,
) -> Result<CompressedStream, ZcompError> {
    compress_f32_with_backend(data, cond, mode, CodecBackend::detect())
}

/// Compresses an `f32` slice through an explicitly chosen backend.
///
/// [`CodecBackend::Native`] silently degrades to the scalar path on hosts
/// with no supported vector extension; both backends produce byte-identical
/// streams.
///
/// # Errors
///
/// Returns [`ZcompError::PartialVector`] if `data.len()` is not a multiple
/// of 16.
pub fn compress_f32_with_backend(
    data: &[f32],
    cond: CompareCond,
    mode: HeaderMode,
    backend: CodecBackend,
) -> Result<CompressedStream, ZcompError> {
    let _span = zcomp_trace::tracer::span("isa", "compress_f32");
    let lanes = ElemType::F32.lanes();
    if !data.len().is_multiple_of(lanes) {
        return Err(ZcompError::PartialVector {
            len: data.len(),
            lanes,
        });
    }
    let stream = match backend {
        CodecBackend::Native => {
            match native::compress_to_stream(native::f32_as_bytes(data), ElemType::F32, cond, mode)
            {
                Some(stream) => stream,
                None => compress_f32_scalar(data, cond, mode)?,
            }
        }
        CodecBackend::Scalar => compress_f32_scalar(data, cond, mode)?,
    };
    if zcomp_trace::tracer::enabled() {
        zcomp_trace::tracer::counter("isa.compression_ratio", stream.compression_ratio());
        zcomp_trace::tracer::counter("isa.compressed_bytes", stream.compressed_bytes() as f64);
    }
    Ok(stream)
}

/// The reference lane-at-a-time writer loop (the oracle path).
fn compress_f32_scalar(
    data: &[f32],
    cond: CompareCond,
    mode: HeaderMode,
) -> Result<CompressedStream, ZcompError> {
    let lanes = ElemType::F32.lanes();
    let mut w = CompressedWriter::new(ElemType::F32, mode);
    // No sparsity estimate is available here, so reserve the
    // incompressible upper bound — one allocation instead of log2(n)
    // growth doublings.
    w.reserve_vectors(data.len() / lanes, 1.0);
    for chunk in data.chunks_exact(lanes) {
        let v = Vec512::from_f32_lanes(chunk);
        // The writer is unbounded so this cannot overflow, but forward the
        // typed error rather than panicking on a fallible stream operation.
        w.write_vector(&v, cond)?;
    }
    Ok(w.finish())
}

/// Expands a compressed stream back into an `f32` vector.
///
/// Compressed lanes expand to `0.0`. If the stream was written with
/// [`CompareCond::Ltez`], the result is the ReLU of the original input.
///
/// # Errors
///
/// Returns [`ZcompError::Truncated`] if the stream is malformed.
pub fn expand_f32(stream: &CompressedStream) -> Result<Vec<f32>, ZcompError> {
    let _span = zcomp_trace::tracer::span("isa", "expand_f32");
    let mut out = vec![0.0f32; stream.elements()];
    let written = expand_f32_into(stream, &mut out)?;
    debug_assert_eq!(written, out.len());
    Ok(out)
}

/// Expands a stream into a caller-provided buffer, returning the element
/// count written.
///
/// # Errors
///
/// Returns [`ZcompError::DestinationTooSmall`] if `dst` cannot hold the
/// stream's elements, or [`ZcompError::Truncated`] for a malformed stream.
pub fn expand_f32_into(stream: &CompressedStream, dst: &mut [f32]) -> Result<usize, ZcompError> {
    expand_f32_into_with_backend(stream, dst, CodecBackend::detect())
}

/// Expands a stream into a caller-provided buffer through an explicitly
/// chosen backend, returning the element count written.
///
/// # Errors
///
/// Returns [`ZcompError::DestinationTooSmall`] if `dst` cannot hold the
/// stream's elements, or [`ZcompError::Truncated`] for a malformed stream.
pub fn expand_f32_into_with_backend(
    stream: &CompressedStream,
    dst: &mut [f32],
    backend: CodecBackend,
) -> Result<usize, ZcompError> {
    let _span = zcomp_trace::tracer::span("isa", "expand_f32_into");
    let needed = stream.elements();
    if dst.len() < needed {
        return Err(ZcompError::DestinationTooSmall {
            needed,
            available: dst.len(),
        });
    }
    if backend == CodecBackend::Native {
        let bytes = native::f32_as_bytes_mut(&mut dst[..needed]);
        if let Some(result) = native::expand_into(stream, bytes) {
            result?;
            return Ok(needed);
        }
    }
    let mut r = stream.reader();
    let mut pos = 0;
    while let Some(v) = r.read_vector()? {
        dst[pos..pos + 16].copy_from_slice(&v.to_f32_lanes());
        pos += 16;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_eqz_is_lossless() {
        let data: Vec<f32> = (0..64)
            .map(|i| if i % 3 == 0 { 0.0 } else { i as f32 })
            .collect();
        let stream = compress_f32(&data, CompareCond::Eqz).unwrap();
        assert_eq!(expand_f32(&stream).unwrap(), data);
    }

    #[test]
    fn roundtrip_ltez_applies_relu() {
        let data: Vec<f32> = (0..32).map(|i| i as f32 - 16.0).collect();
        let stream = compress_f32(&data, CompareCond::Ltez).unwrap();
        let relu: Vec<f32> = data.iter().map(|&x| x.max(0.0)).collect();
        assert_eq!(expand_f32(&stream).unwrap(), relu);
    }

    #[test]
    fn partial_vector_is_rejected() {
        let err = compress_f32(&[1.0; 17], CompareCond::Eqz).unwrap_err();
        assert_eq!(err, ZcompError::PartialVector { len: 17, lanes: 16 });
    }

    #[test]
    fn stats_track_sparsity() {
        let mut data = vec![0.0f32; 32];
        data[0] = 1.0; // 1 kept lane out of 32
        let stream = compress_f32(&data, CompareCond::Eqz).unwrap();
        let stats = CompressedStats::of(&stream);
        assert!((stats.sparsity - 31.0 / 32.0).abs() < 1e-12);
        assert!(stats.fits_original);
        assert_eq!(stats.compressed_bytes, 2 * 2 + 4);
    }

    #[test]
    fn expand_into_smaller_buffer_fails() {
        let stream = compress_f32(&[0.0; 32], CompareCond::Eqz).unwrap();
        let mut dst = [0.0f32; 16];
        let err = expand_f32_into(&stream, &mut dst).unwrap_err();
        assert_eq!(
            err,
            ZcompError::DestinationTooSmall {
                needed: 32,
                available: 16
            }
        );
    }

    #[test]
    fn expand_into_exact_buffer() {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let stream = compress_f32(&data, CompareCond::Eqz).unwrap();
        let mut dst = [0.0f32; 16];
        assert_eq!(expand_f32_into(&stream, &mut dst).unwrap(), 16);
        assert_eq!(&dst[..], &data[..]);
    }

    #[test]
    fn separate_and_interleaved_store_same_total_bytes() {
        let data: Vec<f32> = (0..256)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.5 })
            .collect();
        let inter = compress_f32_with(&data, CompareCond::Eqz, HeaderMode::Interleaved).unwrap();
        let sep = compress_f32_with(&data, CompareCond::Eqz, HeaderMode::Separate).unwrap();
        assert_eq!(inter.compressed_bytes(), sep.compressed_bytes());
        assert_eq!(expand_f32(&inter).unwrap(), expand_f32(&sep).unwrap());
    }

    #[test]
    fn empty_input_compresses_to_empty_stream() {
        let stream = compress_f32(&[], CompareCond::Eqz).unwrap();
        assert_eq!(stream.vectors(), 0);
        assert_eq!(stream.compressed_bytes(), 0);
        assert_eq!(expand_f32(&stream).unwrap(), Vec::<f32>::new());
        assert_eq!(stream.compression_ratio(), 1.0);
    }
}
