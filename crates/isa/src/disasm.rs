//! Textual disassembly of modelled instructions and compressed streams —
//! debugging and tracing support.
//!
//! The syntax follows the paper's own notation: `zcomps [reg2], reg1,
//! #CCF` and `zcompl reg1, [reg2]` (§3.1), with the separate-header
//! variants carrying `[reg3]` (§3.2). AVX512 baseline instructions use
//! their conventional mnemonics.

use crate::dtype::ElemType;
use crate::error::ZcompError;
use crate::instr::Instr;
use crate::stream::{CompressedStream, HeaderMode};

/// Formats one instruction in assembly-like syntax.
///
/// # Example
///
/// ```
/// use zcomp_isa::disasm::disasm;
/// use zcomp_isa::instr::Instr;
///
/// assert_eq!(disasm(&Instr::VLoad { addr: 0x1000 }), "vmovups zmm, [0x1000]");
/// ```
pub fn disasm(instr: &Instr) -> String {
    match *instr {
        Instr::VLoad { addr } => format!("vmovups zmm, [0x{addr:x}]"),
        Instr::VStore { addr } => format!("vmovups [0x{addr:x}], zmm"),
        Instr::VMaxPs => "vmaxps zmm, zmm, zmm".to_string(),
        Instr::VCmpPsMask => "vcmpps k, zmm, zmm, imm".to_string(),
        Instr::KmovPopcnt => "kmovw r32, k; popcnt r32, r32".to_string(),
        Instr::VCompressStore { addr, bytes } => {
            format!("vcompressstoreu [0x{addr:x}]{{k}}, zmm  ; {bytes} bytes")
        }
        Instr::VExpandLoad { addr, bytes } => {
            format!("vexpandloadu zmm{{k}}, [0x{addr:x}]  ; {bytes} bytes")
        }
        Instr::StoreMask { addr } => format!("mov word [0x{addr:x}], k"),
        Instr::LoadMask { addr } => format!("mov k, word [0x{addr:x}]"),
        Instr::ScalarAdd => "add r64, r64".to_string(),
        Instr::ZcompS {
            variant,
            addr,
            bytes,
            header_addr,
            ..
        } => match variant {
            HeaderMode::Interleaved => {
                format!("zcomps [0x{addr:x}], zmm, #CCF  ; {bytes} bytes, reg2 += {bytes}")
            }
            HeaderMode::Separate => format!(
                "zcomps [0x{addr:x}], zmm, [0x{:x}], #CCF  ; {bytes} bytes",
                header_addr.unwrap_or(0)
            ),
        },
        Instr::ZcompL {
            variant,
            addr,
            bytes,
            header_addr,
            ..
        } => match variant {
            HeaderMode::Interleaved => {
                format!("zcompl zmm, [0x{addr:x}]  ; {bytes} bytes, reg2 += {bytes}")
            }
            HeaderMode::Separate => format!(
                "zcompl zmm, [0x{addr:x}], [0x{:x}]  ; {bytes} bytes",
                header_addr.unwrap_or(0)
            ),
        },
        Instr::LoopOverhead => "add r64, 1; cmp/jne loop".to_string(),
    }
}

/// Formats a sequence of instructions, one per line.
pub fn disasm_block(instrs: &[Instr]) -> String {
    instrs.iter().map(disasm).collect::<Vec<_>>().join("\n")
}

/// Dumps the per-vector structure of a compressed stream: offset, header
/// bits, kept-lane count and payload size — the view Fig. 4 draws.
///
/// # Errors
///
/// Returns [`ZcompError::Truncated`] for a malformed stream.
pub fn dump_stream(stream: &CompressedStream) -> Result<String, ZcompError> {
    let ty = stream.elem_type();
    let mut out = String::new();
    out.push_str(&format!(
        "; {} vectors, {} / {} bytes ({:.2}x), {} {} header\n",
        stream.vectors(),
        stream.compressed_bytes(),
        stream.uncompressed_bytes(),
        stream.compression_ratio(),
        ty,
        stream.header_mode(),
    ));
    let mut r = stream.reader();
    let mut index = 0usize;
    loop {
        let offset = r.data_offset();
        let Some(v) = r.read_vector()? else { break };
        // Recompute the mask from the expanded vector (kept = non-zero
        // byte pattern is not recoverable; use the movement of the
        // cursor to derive the payload size instead).
        let consumed = r.data_offset() - offset;
        let payload = consumed
            - match stream.header_mode() {
                HeaderMode::Interleaved => ty.header_bytes(),
                HeaderMode::Separate => 0,
            };
        let nnz = payload / ty.size_bytes();
        out.push_str(&format!(
            "vec {index:>6} @ +0x{offset:06x}: nnz={nnz:>2} payload={payload:>3}B\n"
        ));
        let _ = v;
        index += 1;
    }
    Ok(out)
}

/// Convenience: the header size line for one element type (useful in
/// debugging output).
pub fn describe_type(ty: ElemType) -> String {
    format!(
        "{ty}: {} lanes, {}-byte header, {}-byte alignment guarantee",
        ty.lanes(),
        ty.header_bytes(),
        ty.compressed_alignment()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccf::CompareCond;
    use crate::compress::compress_f32;

    #[test]
    fn zcomps_disasm_matches_paper_syntax() {
        let i = Instr::ZcompS {
            variant: HeaderMode::Interleaved,
            addr: 0x1000,
            bytes: 26,
            header_addr: None,
            header_bytes: 2,
        };
        let text = disasm(&i);
        assert!(text.starts_with("zcomps [0x1000], zmm, #CCF"));
        assert!(text.contains("reg2 += 26"));
    }

    #[test]
    fn separate_variant_shows_reg3() {
        let i = Instr::ZcompL {
            variant: HeaderMode::Separate,
            addr: 0x2000,
            bytes: 24,
            header_addr: Some(0x8000),
            header_bytes: 2,
        };
        assert_eq!(disasm(&i), "zcompl zmm, [0x2000], [0x8000]  ; 24 bytes");
    }

    #[test]
    fn block_joins_lines() {
        let block = disasm_block(&[Instr::VMaxPs, Instr::LoopOverhead]);
        assert_eq!(block.lines().count(), 2);
    }

    #[test]
    fn stream_dump_walks_every_vector() {
        let mut data = vec![0.0f32; 48];
        data[0] = 1.0;
        data[17] = 2.0;
        data[18] = 3.0;
        let stream = compress_f32(&data, CompareCond::Eqz).expect("whole vectors");
        let dump = dump_stream(&stream).expect("valid stream");
        assert!(dump.contains("3 vectors"));
        assert!(dump.contains("nnz= 1"));
        assert!(dump.contains("nnz= 2"));
        assert!(dump.contains("nnz= 0"));
    }

    #[test]
    fn describe_type_reports_geometry() {
        let d = describe_type(ElemType::F32);
        assert!(d.contains("16 lanes"));
        assert!(d.contains("2-byte header"));
    }
}
