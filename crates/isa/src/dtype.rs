//! Element data types supported by the ZCOMP instruction variants.
//!
//! As is common in x86, each ZCOMP instruction has multiple variants to
//! support different data types (§3 of the paper). The paper's evaluation
//! defaults to 32-bit float; the other types are modelled functionally,
//! including the header-size and alignment consequences discussed in §3.3.

use serde::{Deserialize, Serialize};

use crate::VECTOR_BYTES;

/// An element data type for a ZCOMP / AVX512 vector instruction variant.
///
/// The header of a compressed vector holds one bit per lane, so its size is
/// `lanes / 8` bytes: 2 bytes for fp32 (16 lanes), 4 bytes for fp16
/// (32 lanes), 8 bytes for int8 (64 lanes) and 1 byte for fp64 (8 lanes).
///
/// # Example
///
/// ```
/// use zcomp_isa::dtype::ElemType;
///
/// assert_eq!(ElemType::F32.lanes(), 16);
/// assert_eq!(ElemType::F32.header_bytes(), 2);
/// assert_eq!(ElemType::F16.lanes(), 32);
/// assert_eq!(ElemType::I8.header_bytes(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemType {
    /// 32-bit IEEE-754 float — the paper's default type.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// 16-bit IEEE-754 half float (modelled by bit pattern only).
    F16,
    /// 32-bit signed integer.
    I32,
    /// 8-bit signed integer.
    I8,
}

impl ElemType {
    /// All supported element types.
    pub const ALL: [ElemType; 5] = [
        ElemType::F32,
        ElemType::F64,
        ElemType::F16,
        ElemType::I32,
        ElemType::I8,
    ];

    /// Size of one element in bytes.
    #[inline]
    pub const fn size_bytes(self) -> usize {
        match self {
            ElemType::F32 | ElemType::I32 => 4,
            ElemType::F64 => 8,
            ElemType::F16 => 2,
            ElemType::I8 => 1,
        }
    }

    /// Number of lanes of this type in a 512-bit vector.
    #[inline]
    pub const fn lanes(self) -> usize {
        VECTOR_BYTES / self.size_bytes()
    }

    /// Size in bytes of the per-vector compression header (one bit per lane).
    #[inline]
    pub const fn header_bytes(self) -> usize {
        self.lanes() / 8
    }

    /// Byte alignment guaranteed for every compressed vector of this type.
    ///
    /// §3.3: "4-byte elements with 2-byte headers and 2-byte elements with
    /// 4-byte headers both guarantee 2-byte aligned memory transfers". The
    /// guaranteed alignment is `gcd(elem size, header size)`.
    #[inline]
    pub const fn compressed_alignment(self) -> usize {
        gcd(self.size_bytes(), self.header_bytes())
    }

    /// Worst-case compressed size of one full vector (header + all lanes
    /// uncompressible). This exceeds [`VECTOR_BYTES`] by the header size,
    /// which is why §4.1 discusses allocating `data + metadata` when the
    /// compressibility is unknown.
    #[inline]
    pub const fn max_compressed_bytes(self) -> usize {
        self.header_bytes() + VECTOR_BYTES
    }

    /// Minimum fraction of lanes that must be compressible for the
    /// interleaved stream to fit inside the original allocation.
    ///
    /// §4.1: "considering 512-bit SIMD instructions and fp32 values, only an
    /// overall 3.125% compressibility is sufficient to fully amortize the
    /// metadata".
    #[inline]
    pub fn metadata_breakeven(self) -> f64 {
        self.header_bytes() as f64 / VECTOR_BYTES as f64
    }
}

impl std::fmt::Display for ElemType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ElemType::F32 => "fp32",
            ElemType::F64 => "fp64",
            ElemType::F16 => "fp16",
            ElemType::I32 => "int32",
            ElemType::I8 => "int8",
        };
        f.write_str(name)
    }
}

const fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_match_vector_width() {
        for ty in ElemType::ALL {
            assert_eq!(ty.lanes() * ty.size_bytes(), VECTOR_BYTES, "{ty}");
        }
    }

    #[test]
    fn header_sizes_from_paper() {
        // §3.1: "for 512-bit vector with 32-bit elements, the mask will be
        // 16 bits" (2 bytes).
        assert_eq!(ElemType::F32.header_bytes(), 2);
        assert_eq!(ElemType::F64.header_bytes(), 1);
        assert_eq!(ElemType::F16.header_bytes(), 4);
        assert_eq!(ElemType::I8.header_bytes(), 8);
    }

    #[test]
    fn fp32_breakeven_is_3_125_percent() {
        assert!((ElemType::F32.metadata_breakeven() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn alignment_guarantees() {
        // §3.3: fp32 (4B elems, 2B header) and fp16 (2B elems, 4B header)
        // both guarantee 2-byte alignment.
        assert_eq!(ElemType::F32.compressed_alignment(), 2);
        assert_eq!(ElemType::F16.compressed_alignment(), 2);
        // int8 has no alignment guarantee beyond a byte.
        assert_eq!(ElemType::I8.compressed_alignment(), 1);
        assert_eq!(ElemType::F64.compressed_alignment(), 1);
    }

    #[test]
    fn max_compressed_exceeds_vector() {
        for ty in ElemType::ALL {
            assert!(ty.max_compressed_bytes() > VECTOR_BYTES);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ElemType::F32.to_string(), "fp32");
        assert_eq!(ElemType::I8.to_string(), "int8");
    }
}
