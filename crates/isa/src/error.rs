//! Error type for functional ZCOMP stream operations.

/// Errors produced by compressing to or expanding from a ZCOMP stream.
///
/// In hardware these conditions surface as memory protection violations
/// (§4.1 discusses when an interleaved stream can overflow its original
/// allocation); the functional model reports them as typed errors instead.
///
/// The enum is `#[non_exhaustive]`: corruption-detection variants were added
/// after the initial API and more may follow, so downstream matches must
/// carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ZcompError {
    /// Writing the compressed stream would exceed the destination buffer.
    ///
    /// §4.1: "a memory violation can happen without enough compressibility."
    BufferOverflow {
        /// Bytes the write needed.
        needed: usize,
        /// Bytes remaining in the destination.
        available: usize,
    },
    /// Writing a header would exceed the separate header store.
    HeaderOverflow {
        /// Bytes the header write needed.
        needed: usize,
        /// Bytes remaining in the header store.
        available: usize,
    },
    /// The stream ended in the middle of a header or packed-lane group.
    Truncated {
        /// Byte offset at which the reader ran out of data.
        offset: usize,
    },
    /// The input length is not a whole number of vectors.
    ///
    /// ZCOMP operates vector-by-vector; callers must pad partial tails (the
    /// DNN frameworks in the paper allocate feature maps in full vectors).
    PartialVector {
        /// Number of elements supplied.
        len: usize,
        /// Lane count of the element type.
        lanes: usize,
    },
    /// The expanded destination is smaller than the stream's element count.
    DestinationTooSmall {
        /// Elements the stream expands to.
        needed: usize,
        /// Elements the destination can hold.
        available: usize,
    },
    /// A per-vector header is inconsistent with the stream bounds: its
    /// keep-mask declares a packed payload that runs past the end of the
    /// data region. The in-band header is ZCOMP's only length metadata, so
    /// this is the signature of a corrupted (bit-flipped) header.
    CorruptHeader {
        /// Index of the vector whose header failed the bounds check.
        vector: usize,
        /// Byte offset of that header within its region (the data region
        /// for interleaved streams, the header store for separate ones).
        offset: usize,
    },
    /// The stream walk completed but does not reconcile with the stream's
    /// recorded geometry: leftover or missing region bytes, or a
    /// header-popcount sum that disagrees with the element count. A single
    /// flipped header bit desynchronizes every subsequent vector; this
    /// variant reports that the desynchronization was detected.
    Desynchronized {
        /// Number of vectors decoded before the mismatch was established.
        vector: usize,
        /// Region byte offset at which the walk ended.
        offset: usize,
    },
    /// The stream's contents no longer match its checksum sidecar
    /// ([`StreamChecksum`](crate::integrity::StreamChecksum)) — corruption
    /// that length reconciliation alone cannot see (for example a payload
    /// bit flip, or compensating multi-bit header flips).
    ChecksumMismatch {
        /// Checksum recorded when the stream was written.
        expected: u32,
        /// Checksum of the stream as it is now.
        actual: u32,
    },
    /// A persisted trace file declares a format version this build does
    /// not speak. Versions are bumped on any wire-layout change; readers
    /// never guess.
    TraceVersion {
        /// Version recorded in the file header.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// A persisted trace file is structurally malformed: a field is out
    /// of range, a varint overruns, an opcode is unknown, or a chunk's
    /// record count does not reconcile. Distinct from
    /// [`ZcompError::ChecksumMismatch`], which covers bit-level damage to
    /// an otherwise well-formed chunk.
    TraceCorrupt {
        /// Byte offset (within the file or current chunk) of the defect.
        offset: u64,
        /// Static description of what failed to parse.
        reason: &'static str,
    },
    /// A trace was captured on a differently-configured machine than the
    /// one replaying it; replaying would produce silently wrong stats.
    TraceConfigMismatch {
        /// Configuration fingerprint recorded at capture time.
        expected: u32,
        /// Fingerprint of the replaying machine's configuration.
        found: u32,
    },
}

impl std::fmt::Display for ZcompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZcompError::BufferOverflow { needed, available } => write!(
                f,
                "compressed stream overflows destination: needed {needed} bytes, {available} available"
            ),
            ZcompError::HeaderOverflow { needed, available } => write!(
                f,
                "header store overflow: needed {needed} bytes, {available} available"
            ),
            ZcompError::Truncated { offset } => {
                write!(f, "compressed stream truncated at byte offset {offset}")
            }
            ZcompError::PartialVector { len, lanes } => write!(
                f,
                "input length {len} is not a multiple of the {lanes}-lane vector width"
            ),
            ZcompError::DestinationTooSmall { needed, available } => write!(
                f,
                "expansion destination too small: needed {needed} elements, {available} available"
            ),
            ZcompError::CorruptHeader { vector, offset } => write!(
                f,
                "corrupt header for vector {vector} at region offset {offset}: declared payload exceeds the data region"
            ),
            ZcompError::Desynchronized { vector, offset } => write!(
                f,
                "stream desynchronized after {vector} vectors: walk ended at region offset {offset} but does not reconcile with the stream geometry"
            ),
            ZcompError::ChecksumMismatch { expected, actual } => write!(
                f,
                "stream checksum mismatch: sidecar records {expected:#010x}, contents hash to {actual:#010x}"
            ),
            ZcompError::TraceVersion { found, supported } => write!(
                f,
                "trace format version {found} is not supported (this build speaks version {supported})"
            ),
            ZcompError::TraceCorrupt { offset, reason } => {
                write!(f, "trace corrupt at byte offset {offset}: {reason}")
            }
            ZcompError::TraceConfigMismatch { expected, found } => write!(
                f,
                "trace was captured under machine configuration {expected:#010x} but the replaying machine fingerprints as {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for ZcompError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ZcompError::BufferOverflow {
            needed: 66,
            available: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("66"));
        assert!(msg.contains("64"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_error(ZcompError::Truncated { offset: 3 });
    }
}
