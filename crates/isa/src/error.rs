//! Error type for functional ZCOMP stream operations.

/// Errors produced by compressing to or expanding from a ZCOMP stream.
///
/// In hardware these conditions surface as memory protection violations
/// (§4.1 discusses when an interleaved stream can overflow its original
/// allocation); the functional model reports them as typed errors instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZcompError {
    /// Writing the compressed stream would exceed the destination buffer.
    ///
    /// §4.1: "a memory violation can happen without enough compressibility."
    BufferOverflow {
        /// Bytes the write needed.
        needed: usize,
        /// Bytes remaining in the destination.
        available: usize,
    },
    /// Writing a header would exceed the separate header store.
    HeaderOverflow {
        /// Bytes the header write needed.
        needed: usize,
        /// Bytes remaining in the header store.
        available: usize,
    },
    /// The stream ended in the middle of a header or packed-lane group.
    Truncated {
        /// Byte offset at which the reader ran out of data.
        offset: usize,
    },
    /// The input length is not a whole number of vectors.
    ///
    /// ZCOMP operates vector-by-vector; callers must pad partial tails (the
    /// DNN frameworks in the paper allocate feature maps in full vectors).
    PartialVector {
        /// Number of elements supplied.
        len: usize,
        /// Lane count of the element type.
        lanes: usize,
    },
    /// The expanded destination is smaller than the stream's element count.
    DestinationTooSmall {
        /// Elements the stream expands to.
        needed: usize,
        /// Elements the destination can hold.
        available: usize,
    },
}

impl std::fmt::Display for ZcompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZcompError::BufferOverflow { needed, available } => write!(
                f,
                "compressed stream overflows destination: needed {needed} bytes, {available} available"
            ),
            ZcompError::HeaderOverflow { needed, available } => write!(
                f,
                "header store overflow: needed {needed} bytes, {available} available"
            ),
            ZcompError::Truncated { offset } => {
                write!(f, "compressed stream truncated at byte offset {offset}")
            }
            ZcompError::PartialVector { len, lanes } => write!(
                f,
                "input length {len} is not a multiple of the {lanes}-lane vector width"
            ),
            ZcompError::DestinationTooSmall { needed, available } => write!(
                f,
                "expansion destination too small: needed {needed} elements, {available} available"
            ),
        }
    }
}

impl std::error::Error for ZcompError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ZcompError::BufferOverflow {
            needed: 66,
            available: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("66"));
        assert!(msg.contains("64"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_error(ZcompError::Truncated { offset: 3 });
    }
}
