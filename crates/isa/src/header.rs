//! The per-vector compression header (metadata).

use serde::{Deserialize, Serialize};

use crate::dtype::ElemType;
use crate::mask::LaneMask;

/// A per-vector compression header: one bit per lane, bit set = lane kept.
///
/// The header is the only metadata ZCOMP needs; `zcompl` reads it, popcounts
/// it to learn how many packed elements follow, and uses the bit positions
/// to scatter them back to their lanes (Fig. 5 of the paper).
///
/// On the wire the header is stored little-endian in
/// [`ElemType::header_bytes`] bytes.
///
/// # Example
///
/// ```
/// use zcomp_isa::header::Header;
/// use zcomp_isa::mask::LaneMask;
/// use zcomp_isa::dtype::ElemType;
///
/// let mask = LaneMask::from_bits(0b1001_0001_0001_1100, ElemType::F32);
/// let header = Header::new(mask);
/// assert_eq!(header.nnz(), 6);
/// assert_eq!(header.compressed_data_bytes(ElemType::F32), 24); // 6 * 4
/// assert_eq!(header.total_bytes(ElemType::F32), 26);           // +2 header
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Header {
    mask: LaneMask,
}

impl Header {
    /// Wraps a keep-mask as a header.
    #[inline]
    pub fn new(mask: LaneMask) -> Self {
        Header { mask }
    }

    /// The keep-mask this header encodes.
    #[inline]
    pub fn mask(&self) -> LaneMask {
        self.mask
    }

    /// Number of uncompressed elements following the header (the popcount
    /// of Figs. 4/5).
    #[inline]
    pub fn nnz(&self) -> u32 {
        self.mask.popcount()
    }

    /// Bytes of packed element data following this header.
    #[inline]
    pub fn compressed_data_bytes(&self, ty: ElemType) -> usize {
        self.nnz() as usize * ty.size_bytes()
    }

    /// Total bytes this vector occupies in an interleaved stream
    /// (header + packed data) — the auto-increment amount of `zcomps`.
    #[inline]
    pub fn total_bytes(&self, ty: ElemType) -> usize {
        ty.header_bytes() + self.compressed_data_bytes(ty)
    }

    /// Serializes the header into `dst` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != ty.header_bytes()`.
    pub fn write_to(&self, ty: ElemType, dst: &mut [u8]) {
        assert_eq!(dst.len(), ty.header_bytes(), "header width mismatch");
        let bits = self.mask.bits().to_le_bytes();
        dst.copy_from_slice(&bits[..ty.header_bytes()]);
    }

    /// Deserializes a header from `src` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != ty.header_bytes()`.
    pub fn read_from(ty: ElemType, src: &[u8]) -> Self {
        assert_eq!(src.len(), ty.header_bytes(), "header width mismatch");
        let mut raw = [0u8; 8];
        raw[..src.len()].copy_from_slice(src);
        Header {
            mask: LaneMask::from_bits(u64::from_le_bytes(raw), ty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig4_example_totals_26_bytes() {
        // Fig. 4: 6 non-zero fp32 elements -> 6*4 data + 2 header = 26, so
        // reg2 goes from 0x1000 to 0x101A.
        let header = Header::new(LaneMask::from_bits(0b1001_0001_0001_1100, ElemType::F32));
        assert_eq!(header.total_bytes(ElemType::F32), 26);
        assert_eq!(0x1000 + header.total_bytes(ElemType::F32), 0x101A);
    }

    #[test]
    fn wire_roundtrip_all_types() {
        for ty in ElemType::ALL {
            let mask = LaneMask::from_bits(0xA5A5_A5A5_A5A5_A5A5, ty);
            let header = Header::new(mask);
            let mut buf = vec![0u8; ty.header_bytes()];
            header.write_to(ty, &mut buf);
            let back = Header::read_from(ty, &buf);
            assert_eq!(back, header, "{ty}");
        }
    }

    #[test]
    fn empty_header_is_header_only() {
        let header = Header::new(LaneMask::empty(ElemType::F32));
        assert_eq!(header.total_bytes(ElemType::F32), 2);
        assert_eq!(header.nnz(), 0);
    }

    #[test]
    fn full_header_exceeds_vector_bytes() {
        let header = Header::new(LaneMask::full(ElemType::F32));
        assert_eq!(header.total_bytes(ElemType::F32), 66);
    }
}
