//! Model-level instruction definitions with micro-op decomposition and
//! memory-access extraction.
//!
//! This is the vocabulary the workload kernels speak: each loop iteration of
//! the ReLU implementations in Figs. 8–11 of the paper emits a handful of
//! [`Instr`] values, which the simulator turns into port pressure
//! ([`Instr::add_uops`]) and cache-hierarchy accesses
//! ([`Instr::mem_accesses`]).

use serde::{Deserialize, Serialize};

pub use crate::stream::HeaderMode;
use crate::uops::{UopCounts, UopKind, UopTable};

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand read.
    Read,
    /// A demand write (write-allocate in the modelled hierarchy).
    Write,
}

/// One memory access produced by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Starting byte address.
    pub addr: u64,
    /// Access size in bytes. Accesses may straddle cache lines (§3.3
    /// handles these "the same way as a regular unaligned store").
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Convenience constructor for a read.
    pub fn read(addr: u64, bytes: u32) -> Self {
        MemAccess {
            addr,
            bytes,
            kind: AccessKind::Read,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(addr: u64, bytes: u32) -> Self {
        MemAccess {
            addr,
            bytes,
            kind: AccessKind::Write,
        }
    }
}

/// A modelled instruction.
///
/// Only the instructions appearing in the paper's kernels (Figs. 8–11) are
/// modelled; addresses and dynamic sizes are attached so the memory system
/// can replay them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `vmovups zmm, [mem]` — 64-byte vector load.
    VLoad {
        /// Source address.
        addr: u64,
    },
    /// `vmovups [mem], zmm` — 64-byte vector store.
    VStore {
        /// Destination address.
        addr: u64,
    },
    /// `vmaxps zmm, zmm, zmm` — the reg-reg ReLU of the baseline.
    VMaxPs,
    /// `vcmpps k, zmm, zmm, imm` — produce a lane mask.
    VCmpPsMask,
    /// `kmovw r32, k` followed by `popcnt` — count kept lanes.
    KmovPopcnt,
    /// `vcompressstoreu [mem]{k}, zmm` — masked compress-store of
    /// `bytes = nnz * 4` bytes.
    VCompressStore {
        /// Destination address.
        addr: u64,
        /// Dynamic store size (`nnz * elem_size`).
        bytes: u32,
    },
    /// `vexpandloadu zmm{k}, [mem]` — masked expand-load of `bytes` bytes.
    VExpandLoad {
        /// Source address.
        addr: u64,
        /// Dynamic load size (`nnz * elem_size`).
        bytes: u32,
    },
    /// 2-byte scalar store of a mask header (`headers[i] = mask`).
    StoreMask {
        /// Destination address in the header array.
        addr: u64,
    },
    /// 2-byte scalar load of a mask header (`mask = headers[i]`).
    LoadMask {
        /// Source address in the header array.
        addr: u64,
    },
    /// Scalar integer add (`index += nnz_cnt`).
    ScalarAdd,
    /// `zcomps` — compress-store with automatic header handling (Fig. 4).
    ZcompS {
        /// Header placement variant.
        variant: HeaderMode,
        /// Compressed-data destination (the auto-incremented `reg2`).
        addr: u64,
        /// Bytes written at `addr` (header+data if interleaved, data only
        /// if separate).
        bytes: u32,
        /// Header store address (`reg3`) for the separate variant.
        header_addr: Option<u64>,
        /// Header size in bytes (2 for fp32).
        header_bytes: u32,
    },
    /// `zcompl` — expand-load with automatic header handling (Fig. 5).
    ZcompL {
        /// Header placement variant.
        variant: HeaderMode,
        /// Compressed-data source (the auto-incremented `reg2`).
        addr: u64,
        /// Bytes read from `addr`.
        bytes: u32,
        /// Header store address (`reg3`) for the separate variant.
        header_addr: Option<u64>,
        /// Header size in bytes (2 for fp32).
        header_bytes: u32,
    },
    /// Fused loop increment + compare + predicted branch.
    LoopOverhead,
}

impl Instr {
    /// Accumulates this instruction's micro-ops into `counts`.
    pub fn add_uops(&self, counts: &mut UopCounts) {
        match self {
            Instr::VLoad { .. } => counts.add(UopKind::Load, 1),
            Instr::VStore { .. } => counts.add(UopKind::Store, 1),
            Instr::VMaxPs => counts.add(UopKind::VecAlu, 1),
            Instr::VCmpPsMask => counts.add(UopKind::VecAlu, 1),
            Instr::KmovPopcnt => {
                counts.add(UopKind::ScalarAlu, 1);
                counts.add(UopKind::Popcnt, 1);
            }
            Instr::VCompressStore { .. } => {
                // Agner Fog: VCOMPRESSPS to memory is 4 fused uops on SKX.
                counts.add(UopKind::VecShuffle, 2);
                counts.add(UopKind::Store, 1);
                counts.add(UopKind::ScalarAlu, 1);
            }
            Instr::VExpandLoad { .. } => {
                counts.add(UopKind::Load, 1);
                counts.add(UopKind::VecShuffle, 1);
            }
            Instr::StoreMask { .. } => counts.add(UopKind::Store, 1),
            Instr::LoadMask { .. } => counts.add(UopKind::Load, 1),
            Instr::ScalarAdd => counts.add(UopKind::ScalarAlu, 1),
            Instr::ZcompS { variant, .. } => {
                // §3.3: the logic component (compare + popcount + select +
                // pointer adder tree) is one pipelined unit, plus the store
                // micro-op(s).
                counts.add(UopKind::ZcompLogic, 1);
                counts.add(UopKind::Store, 1);
                if *variant == HeaderMode::Separate {
                    counts.add(UopKind::Store, 1);
                }
            }
            Instr::ZcompL { variant, .. } => {
                counts.add(UopKind::ZcompLogic, 1);
                match variant {
                    // Interleaved: header and packed data are contiguous;
                    // one wide fetch covers both in the common case.
                    HeaderMode::Interleaved => counts.add(UopKind::Load, 1),
                    // Separate: the header store and the data region are
                    // distinct — two load micro-ops.
                    HeaderMode::Separate => counts.add(UopKind::Load, 2),
                }
            }
            Instr::LoopOverhead => {
                counts.add(UopKind::ScalarAlu, 1);
                counts.add(UopKind::Branch, 1);
            }
        }
    }

    /// Micro-op counts of this instruction alone.
    pub fn uop_counts(&self) -> UopCounts {
        let mut c = UopCounts::new();
        self.add_uops(&mut c);
        c
    }

    /// The memory accesses this instruction performs, appended to `out`.
    ///
    /// At most two accesses are produced (data + separate header).
    pub fn mem_accesses(&self, out: &mut Vec<MemAccess>) {
        match *self {
            Instr::VLoad { addr } => out.push(MemAccess::read(addr, 64)),
            Instr::VStore { addr } => out.push(MemAccess::write(addr, 64)),
            Instr::VCompressStore { addr, bytes } => {
                if bytes > 0 {
                    out.push(MemAccess::write(addr, bytes));
                }
            }
            Instr::VExpandLoad { addr, bytes } => {
                if bytes > 0 {
                    out.push(MemAccess::read(addr, bytes));
                }
            }
            Instr::StoreMask { addr } => out.push(MemAccess::write(addr, 2)),
            Instr::LoadMask { addr } => out.push(MemAccess::read(addr, 2)),
            Instr::ZcompS {
                variant,
                addr,
                bytes,
                header_addr,
                header_bytes,
            } => {
                if bytes > 0 {
                    out.push(MemAccess::write(addr, bytes));
                }
                if variant == HeaderMode::Separate {
                    let h = header_addr.expect("separate zcomps carries a header address");
                    out.push(MemAccess::write(h, header_bytes));
                }
            }
            Instr::ZcompL {
                variant,
                addr,
                bytes,
                header_addr,
                header_bytes,
            } => {
                match variant {
                    HeaderMode::Interleaved => {
                        // Header + data are contiguous; a single sequential
                        // region read of `bytes` (which includes the header).
                        if bytes > 0 {
                            out.push(MemAccess::read(addr, bytes));
                        }
                    }
                    HeaderMode::Separate => {
                        let h = header_addr.expect("separate zcompl carries a header address");
                        out.push(MemAccess::read(h, header_bytes));
                        if bytes > 0 {
                            out.push(MemAccess::read(addr, bytes));
                        }
                    }
                }
            }
            Instr::VMaxPs
            | Instr::VCmpPsMask
            | Instr::KmovPopcnt
            | Instr::ScalarAdd
            | Instr::LoopOverhead => {}
        }
    }

    /// Latency of the instruction's internal dependency chain in cycles,
    /// excluding cache-miss time (added by the memory model).
    pub fn chain_latency(&self, table: &UopTable) -> u32 {
        match self {
            Instr::VLoad { .. } => table.latency(UopKind::Load),
            Instr::VStore { .. } | Instr::StoreMask { .. } => table.latency(UopKind::Store),
            Instr::VMaxPs | Instr::VCmpPsMask => table.latency(UopKind::VecAlu),
            Instr::KmovPopcnt => table.latency(UopKind::ScalarAlu) + table.latency(UopKind::Popcnt),
            Instr::VCompressStore { .. } => {
                table.latency(UopKind::VecShuffle) + table.latency(UopKind::Store)
            }
            Instr::VExpandLoad { .. } => {
                table.latency(UopKind::Load) + table.latency(UopKind::VecShuffle)
            }
            Instr::LoadMask { .. } => table.latency(UopKind::Load),
            Instr::ScalarAdd => table.latency(UopKind::ScalarAlu),
            Instr::ZcompS { .. } => table.latency(UopKind::ZcompLogic),
            // zcompl: header load feeds the logic which feeds the data
            // load — the sequentially-dependent chain of §3.3.
            Instr::ZcompL { .. } => {
                table.latency(UopKind::Load)
                    + table.latency(UopKind::ZcompLogic)
                    + table.latency(UopKind::Load)
            }
            Instr::LoopOverhead => table.latency(UopKind::ScalarAlu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcomps_is_two_uops_interleaved() {
        let i = Instr::ZcompS {
            variant: HeaderMode::Interleaved,
            addr: 0x1000,
            bytes: 26,
            header_addr: None,
            header_bytes: 2,
        };
        let c = i.uop_counts();
        assert_eq!(c.total(), 2);
        assert_eq!(c.get(UopKind::ZcompLogic), 1);
        assert_eq!(c.get(UopKind::Store), 1);
    }

    #[test]
    fn avx512_comp_loop_has_more_uops_than_zcomp_loop() {
        // §4.4: AVX512 compress needs 5-6 extra instructions per iteration.
        let zcomp_loop = [
            Instr::VLoad { addr: 0 },
            Instr::ZcompS {
                variant: HeaderMode::Interleaved,
                addr: 0,
                bytes: 26,
                header_addr: None,
                header_bytes: 2,
            },
            Instr::LoopOverhead,
        ];
        let avx_loop = [
            Instr::VLoad { addr: 0 },
            Instr::VCmpPsMask,
            Instr::KmovPopcnt,
            Instr::VCompressStore { addr: 0, bytes: 24 },
            Instr::ScalarAdd,
            Instr::StoreMask { addr: 64 },
            Instr::LoopOverhead,
        ];
        let total = |is: &[Instr]| {
            let mut c = UopCounts::new();
            for i in is {
                i.add_uops(&mut c);
            }
            c.total()
        };
        let (z, a) = (total(&zcomp_loop), total(&avx_loop));
        assert!(a > z + 4, "avx512-comp {a} uops vs zcomp {z} uops");
    }

    #[test]
    fn interleaved_zcomps_emits_single_write() {
        let i = Instr::ZcompS {
            variant: HeaderMode::Interleaved,
            addr: 0x1000,
            bytes: 26,
            header_addr: None,
            header_bytes: 2,
        };
        let mut acc = Vec::new();
        i.mem_accesses(&mut acc);
        assert_eq!(acc, vec![MemAccess::write(0x1000, 26)]);
    }

    #[test]
    fn separate_zcomps_emits_data_and_header_writes() {
        let i = Instr::ZcompS {
            variant: HeaderMode::Separate,
            addr: 0x1000,
            bytes: 24,
            header_addr: Some(0x8000),
            header_bytes: 2,
        };
        let mut acc = Vec::new();
        i.mem_accesses(&mut acc);
        assert_eq!(
            acc,
            vec![MemAccess::write(0x1000, 24), MemAccess::write(0x8000, 2)]
        );
    }

    #[test]
    fn fully_compressed_zcompl_reads_header_only() {
        let i = Instr::ZcompL {
            variant: HeaderMode::Interleaved,
            addr: 0x1000,
            bytes: 2, // empty vector: header only
            header_addr: None,
            header_bytes: 2,
        };
        let mut acc = Vec::new();
        i.mem_accesses(&mut acc);
        assert_eq!(acc, vec![MemAccess::read(0x1000, 2)]);
    }

    #[test]
    fn zcompl_chain_latency_includes_both_loads() {
        let t = UopTable::skylake_x();
        let i = Instr::ZcompL {
            variant: HeaderMode::Interleaved,
            addr: 0,
            bytes: 26,
            header_addr: None,
            header_bytes: 2,
        };
        // load(4) + logic(2) + load(4) = 10.
        assert_eq!(i.chain_latency(&t), 10);
    }

    #[test]
    fn pure_reg_ops_access_no_memory() {
        let mut acc = Vec::new();
        for i in [
            Instr::VMaxPs,
            Instr::VCmpPsMask,
            Instr::KmovPopcnt,
            Instr::ScalarAdd,
            Instr::LoopOverhead,
        ] {
            i.mem_accesses(&mut acc);
        }
        assert!(acc.is_empty());
    }
}
