//! Stream integrity: checksum sidecar and desynchronization analysis.
//!
//! ZCOMP keeps its only length metadata *in-band* — the per-vector bitmask
//! header whose popcount determines how many packed lanes follow. That
//! makes the format uniquely fragile under memory corruption: a single
//! flipped header bit changes the payload length and shifts the read
//! position of **every** subsequent vector (§3.2 of the paper fixes header
//! placement, not header trust). This module provides the two tools the
//! robustness layer builds on:
//!
//! * [`StreamChecksum`] — an optional CRC32 sidecar computed over the
//!   stream's regions and geometry. CRC32 detects *all* single-bit flips
//!   and all burst errors shorter than 32 bits, covering the corruptions
//!   that length reconciliation ([`CompressedStream::validate`]) cannot
//!   see (payload flips, compensating multi-bit header flips).
//! * [`desync_impact`] — static analysis of how far a corrupted byte
//!   propagates: a payload byte poisons one vector, a header byte poisons
//!   every vector after it. The fault-campaign experiment reports this
//!   distribution.

use serde::{Deserialize, Serialize};

use crate::error::ZcompError;
use crate::stream::{CompressedStream, HeaderMode};

/// Which backing region of a [`CompressedStream`] a byte offset refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamRegion {
    /// The data region (packed lanes; also headers when interleaved).
    Data,
    /// The separate header store (empty for interleaved streams).
    Headers,
}

/// What kind of stream byte a corruption landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionSite {
    /// A per-vector bitmask header byte.
    Header,
    /// A packed-lane payload byte.
    Payload,
}

/// Result of [`desync_impact`]: the blast radius of one corrupted byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesyncImpact {
    /// Vector that owns the corrupted byte.
    pub vector: usize,
    /// Whether the byte is part of a header or a packed payload.
    pub site: CorruptionSite,
    /// Number of vectors whose decoded value can change: 1 for a payload
    /// byte (lanes stay aligned), `vectors - vector` for a header byte
    /// (the length chain breaks and everything downstream shifts).
    pub poisoned_vectors: usize,
}

/// CRC32 (IEEE 802.3, reflected) checksum sidecar for a stream.
///
/// Stored *outside* the stream — alongside the feature-map allocation in
/// the layer executor — so corruption of the stream bytes cannot also
/// corrupt the check value. Computed over both regions plus the stream
/// geometry (element type, header mode, vector and element counts), so
/// metadata tampering is caught as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamChecksum {
    /// The CRC32 value.
    pub crc32: u32,
}

const fn make_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = make_crc32_table();

/// Incremental CRC32 (IEEE 802.3, reflected) state.
///
/// Public so other layers that need the same polynomial — notably the
/// `zcomp-replay` trace-chunk framing — share one implementation instead
/// of growing a second table.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ CRC32_TABLE[((self.0 ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finalizes and returns the CRC32 value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

impl StreamChecksum {
    /// Computes the sidecar checksum of a stream.
    pub fn of(stream: &CompressedStream) -> StreamChecksum {
        let mut crc = Crc32::new();
        crc.update(&[stream.elem_type() as u8]);
        crc.update(&[match stream.header_mode() {
            HeaderMode::Interleaved => 0u8,
            HeaderMode::Separate => 1u8,
        }]);
        crc.update(&(stream.vectors() as u64).to_le_bytes());
        crc.update(&stream.total_nnz().to_le_bytes());
        crc.update(&(stream.data().len() as u64).to_le_bytes());
        crc.update(stream.data());
        crc.update(&(stream.headers().len() as u64).to_le_bytes());
        crc.update(stream.headers());
        StreamChecksum {
            crc32: crc.finish(),
        }
    }

    /// Verifies a stream against this sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`ZcompError::ChecksumMismatch`] when the stream's current
    /// contents hash to a different value than the sidecar records.
    pub fn verify(&self, stream: &CompressedStream) -> Result<(), ZcompError> {
        let actual = StreamChecksum::of(stream).crc32;
        if actual == self.crc32 {
            Ok(())
        } else {
            Err(ZcompError::ChecksumMismatch {
                expected: self.crc32,
                actual,
            })
        }
    }
}

/// Computes the blast radius of a corrupted byte at `offset` within
/// `region` of `stream`.
///
/// The analysis walks the *current* headers, so it is meaningful on the
/// clean stream (e.g. "what would a flip here poison?") — after the flip
/// the length chain it describes is exactly the one that breaks. Returns
/// `None` when `offset` lies outside the region or the walk cannot reach
/// it (the stream itself is malformed).
pub fn desync_impact(
    stream: &CompressedStream,
    region: StreamRegion,
    offset: usize,
) -> Option<DesyncImpact> {
    let ty = stream.elem_type();
    let hb = ty.header_bytes();
    let es = ty.size_bytes();
    let vectors = stream.vectors();
    match (stream.header_mode(), region) {
        (HeaderMode::Interleaved, StreamRegion::Headers) => None,
        (HeaderMode::Separate, StreamRegion::Headers) => {
            if offset >= stream.headers().len() {
                return None;
            }
            let vector = offset / hb;
            Some(DesyncImpact {
                vector,
                site: CorruptionSite::Header,
                poisoned_vectors: vectors - vector,
            })
        }
        (mode, StreamRegion::Data) => {
            let mut data_pos = 0usize;
            let mut header_pos = 0usize;
            for vector in 0..vectors {
                let header = match mode {
                    HeaderMode::Interleaved => {
                        if offset < data_pos + hb {
                            // A header byte: the length chain breaks here.
                            return Some(DesyncImpact {
                                vector,
                                site: CorruptionSite::Header,
                                poisoned_vectors: vectors - vector,
                            });
                        }
                        let h = crate::header::Header::read_from(
                            ty,
                            stream.data().get(data_pos..data_pos + hb)?,
                        );
                        data_pos += hb;
                        h
                    }
                    HeaderMode::Separate => {
                        let h = crate::header::Header::read_from(
                            ty,
                            stream.headers().get(header_pos..header_pos + hb)?,
                        );
                        header_pos += hb;
                        h
                    }
                };
                let payload = header.nnz() as usize * es;
                if offset < data_pos + payload {
                    return Some(DesyncImpact {
                        vector,
                        site: CorruptionSite::Payload,
                        poisoned_vectors: 1,
                    });
                }
                data_pos += payload;
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccf::CompareCond;
    use crate::compress::compress_f32_with;

    fn mixed_data(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| if i % 3 == 0 { 0.0 } else { i as f32 * 0.5 })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC32("123456789") = 0xCBF43926 — the canonical check value.
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn checksum_roundtrip_and_single_bit_detection() {
        let stream = compress_f32_with(&mixed_data(256), CompareCond::Eqz, HeaderMode::Interleaved)
            .expect("whole vectors");
        let sidecar = StreamChecksum::of(&stream);
        sidecar.verify(&stream).expect("clean stream verifies");
        // Every single-bit flip in the data region must be detected.
        for byte in 0..stream.data().len() {
            for bit in 0..8 {
                let mut corrupted = stream.clone();
                assert!(corrupted.flip_bit(StreamRegion::Data, byte, bit));
                let err = sidecar.verify(&corrupted).expect_err("flip detected");
                assert!(matches!(err, ZcompError::ChecksumMismatch { .. }));
            }
        }
    }

    #[test]
    fn checksum_covers_separate_header_store() {
        let stream = compress_f32_with(&mixed_data(128), CompareCond::Eqz, HeaderMode::Separate)
            .expect("whole vectors");
        let sidecar = StreamChecksum::of(&stream);
        let mut corrupted = stream.clone();
        assert!(corrupted.flip_bit(StreamRegion::Headers, 0, 3));
        assert!(sidecar.verify(&corrupted).is_err());
    }

    #[test]
    fn header_bytes_poison_the_remainder() {
        let stream = compress_f32_with(&mixed_data(160), CompareCond::Eqz, HeaderMode::Interleaved)
            .expect("whole vectors");
        // Offset 0 is the first vector's header.
        let impact = desync_impact(&stream, StreamRegion::Data, 0).expect("in range");
        assert_eq!(impact.vector, 0);
        assert_eq!(impact.site, CorruptionSite::Header);
        assert_eq!(impact.poisoned_vectors, stream.vectors());
    }

    #[test]
    fn payload_bytes_poison_one_vector() {
        let data = vec![1.0f32; 16]; // one fully dense vector
        let stream = compress_f32_with(&data, CompareCond::Eqz, HeaderMode::Interleaved)
            .expect("whole vectors");
        // Bytes 0-1 are the header; byte 2 starts the payload.
        let impact = desync_impact(&stream, StreamRegion::Data, 2).expect("in range");
        assert_eq!(impact.site, CorruptionSite::Payload);
        assert_eq!(impact.poisoned_vectors, 1);
    }

    #[test]
    fn separate_mode_header_store_analysis() {
        let stream = compress_f32_with(&mixed_data(160), CompareCond::Eqz, HeaderMode::Separate)
            .expect("whole vectors");
        let vectors = stream.vectors();
        // Header store byte for the 3rd vector (2 bytes per fp32 header).
        let impact = desync_impact(&stream, StreamRegion::Headers, 2 * 2).expect("in range");
        assert_eq!(impact.vector, 2);
        assert_eq!(impact.site, CorruptionSite::Header);
        assert_eq!(impact.poisoned_vectors, vectors - 2);
        // Data-region bytes in separate mode are always payload.
        if !stream.data().is_empty() {
            let impact = desync_impact(&stream, StreamRegion::Data, 0).expect("in range");
            assert_eq!(impact.site, CorruptionSite::Payload);
            assert_eq!(impact.poisoned_vectors, 1);
        }
    }

    #[test]
    fn out_of_range_offsets_yield_none() {
        let stream = compress_f32_with(&mixed_data(64), CompareCond::Eqz, HeaderMode::Interleaved)
            .expect("whole vectors");
        assert_eq!(
            desync_impact(&stream, StreamRegion::Data, stream.data().len()),
            None
        );
        assert_eq!(desync_impact(&stream, StreamRegion::Headers, 0), None);
    }
}
