//! The software API of §4.2 (Fig. 6): intrinsic-style functions.
//!
//! The paper proposes intrinsics mirroring the AVX512 convention, e.g.
//!
//! ```c
//! void  _mm512_zcomps_i_ps(float **dst, __m512 src, int ccf);
//! __m512 _mm512_zcompl_i_ps(float **src);
//! void  _mm512_zcomps_s_ps(float **dst, __m512 src, uint16_t **hdr, int ccf);
//! __m512 _mm512_zcompl_s_ps(float **src, uint16_t **hdr);
//! ```
//!
//! "Input and output pointers use a pass-by-reference construct to allow
//! them to be auto-incremented to point to the next vector." This module
//! reproduces that interface against a simulated byte-addressable memory
//! ([`SimMemory`]): the pointer arguments are cursors that the intrinsic
//! advances, exactly like the architectural `reg2`/`reg3` auto-increment.

use crate::ccf::CompareCond;
use crate::dtype::ElemType;
use crate::error::ZcompError;
use crate::header::Header;
use crate::mask::LaneMask;
use crate::vec512::Vec512;

/// A flat, byte-addressable simulated memory for the intrinsic API.
///
/// # Example
///
/// ```
/// use zcomp_isa::intrinsics::{SimMemory, Ptr};
///
/// let mut mem = SimMemory::new(4096);
/// let p = Ptr::new(0x100);
/// mem.store_f32(p.addr(), 1.5);
/// assert_eq!(mem.load_f32(p.addr()), 1.5);
/// ```
#[derive(Debug, Clone)]
pub struct SimMemory {
    bytes: Vec<u8>,
}

impl SimMemory {
    /// Allocates a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        SimMemory {
            bytes: vec![0; size],
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, ZcompError> {
        let start = addr as usize;
        if start + len > self.bytes.len() {
            Err(ZcompError::BufferOverflow {
                needed: len,
                available: self.bytes.len().saturating_sub(start),
            })
        } else {
            Ok(start)
        }
    }

    /// Stores one f32 (little-endian).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds addresses.
    pub fn store_f32(&mut self, addr: u64, v: f32) {
        let start = self.check(addr, 4).expect("store within bounds");
        self.bytes[start..start + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Loads one f32 (little-endian).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds addresses.
    pub fn load_f32(&self, addr: u64) -> f32 {
        let start = self.check(addr, 4).expect("load within bounds");
        f32::from_le_bytes(self.bytes[start..start + 4].try_into().expect("4 bytes"))
    }

    /// Copies a full 512-bit vector into memory (`_mm512_store_ps`).
    pub fn store_vec(&mut self, addr: u64, v: &Vec512) -> Result<(), ZcompError> {
        let start = self.check(addr, 64)?;
        self.bytes[start..start + 64].copy_from_slice(v.as_bytes());
        Ok(())
    }

    /// Reads a full 512-bit vector from memory (`_mm512_load_ps`).
    pub fn load_vec(&self, addr: u64) -> Result<Vec512, ZcompError> {
        let start = self.check(addr, 64)?;
        let mut out = Vec512::ZERO;
        out.as_bytes_mut()
            .copy_from_slice(&self.bytes[start..start + 64]);
        Ok(out)
    }

    fn write_bytes(&mut self, addr: u64, src: &[u8]) -> Result<(), ZcompError> {
        let start = self.check(addr, src.len())?;
        self.bytes[start..start + src.len()].copy_from_slice(src);
        Ok(())
    }

    fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], ZcompError> {
        let start = self.check(addr, len)?;
        Ok(&self.bytes[start..start + len])
    }
}

/// An auto-incremented pointer cursor (the `float **` of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ptr {
    addr: u64,
}

impl Ptr {
    /// Creates a pointer at a byte address.
    pub fn new(addr: u64) -> Self {
        Ptr { addr }
    }

    /// Current byte address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    fn advance(&mut self, bytes: u64) {
        self.addr += bytes;
    }
}

/// `_mm512_zcomps_i_ps` — interleaved-header compress-store of one fp32
/// vector; `dst` auto-increments past the header and packed lanes.
///
/// # Errors
///
/// Returns [`ZcompError::BufferOverflow`] if the compressed vector would
/// exceed the memory — the §4.1 memory-violation case.
pub fn mm512_zcomps_i_ps(
    mem: &mut SimMemory,
    dst: &mut Ptr,
    src: Vec512,
    ccf: CompareCond,
) -> Result<(), ZcompError> {
    let mask = ccf.keep_mask(&src, ElemType::F32);
    let header = Header::new(mask);
    let mut header_bytes = [0u8; 2];
    header.write_to(ElemType::F32, &mut header_bytes);
    // Fail atomically before any byte is written.
    mem.check(dst.addr(), header.total_bytes(ElemType::F32))?;
    mem.write_bytes(dst.addr(), &header_bytes)?;
    let mut cursor = dst.addr() + 2;
    for lane in mask.iter_set() {
        mem.write_bytes(cursor, src.lane_bytes(ElemType::F32, lane))?;
        cursor += 4;
    }
    dst.advance(header.total_bytes(ElemType::F32) as u64);
    Ok(())
}

/// `_mm512_zcompl_i_ps` — interleaved-header expand-load of one fp32
/// vector; `src` auto-increments past the header and packed lanes.
///
/// # Errors
///
/// Returns [`ZcompError::Truncated`] via bounds checking if the stream is
/// cut short.
pub fn mm512_zcompl_i_ps(mem: &SimMemory, src: &mut Ptr) -> Result<Vec512, ZcompError> {
    let header = Header::read_from(ElemType::F32, mem.read_bytes(src.addr(), 2)?);
    let mut out = Vec512::ZERO;
    let mut cursor = src.addr() + 2;
    for lane in header.mask().iter_set() {
        let raw = mem.read_bytes(cursor, 4)?;
        out.set_lane_bytes(ElemType::F32, lane, raw);
        cursor += 4;
    }
    src.advance(header.total_bytes(ElemType::F32) as u64);
    Ok(out)
}

/// `_mm512_zcomps_s_ps` — separate-header compress-store: packed lanes go
/// through `dst`, the 16-bit header through `hdr`; both auto-increment.
///
/// # Errors
///
/// Returns [`ZcompError::BufferOverflow`] if either region overflows.
pub fn mm512_zcomps_s_ps(
    mem: &mut SimMemory,
    dst: &mut Ptr,
    hdr: &mut Ptr,
    src: Vec512,
    ccf: CompareCond,
) -> Result<(), ZcompError> {
    let mask = ccf.keep_mask(&src, ElemType::F32);
    let header = Header::new(mask);
    let payload = header.compressed_data_bytes(ElemType::F32);
    mem.check(dst.addr(), payload)?;
    mem.check(hdr.addr(), 2)?;
    let mut header_bytes = [0u8; 2];
    header.write_to(ElemType::F32, &mut header_bytes);
    mem.write_bytes(hdr.addr(), &header_bytes)?;
    let mut cursor = dst.addr();
    for lane in mask.iter_set() {
        mem.write_bytes(cursor, src.lane_bytes(ElemType::F32, lane))?;
        cursor += 4;
    }
    dst.advance(payload as u64);
    hdr.advance(2);
    Ok(())
}

/// `_mm512_zcompl_s_ps` — separate-header expand-load.
///
/// # Errors
///
/// Returns a bounds error if either region is exhausted.
pub fn mm512_zcompl_s_ps(
    mem: &SimMemory,
    src: &mut Ptr,
    hdr: &mut Ptr,
) -> Result<Vec512, ZcompError> {
    let header = Header::read_from(ElemType::F32, mem.read_bytes(hdr.addr(), 2)?);
    let mut out = Vec512::ZERO;
    let mut cursor = src.addr();
    for lane in header.mask().iter_set() {
        out.set_lane_bytes(ElemType::F32, lane, mem.read_bytes(cursor, 4)?);
        cursor += 4;
    }
    src.advance(header.compressed_data_bytes(ElemType::F32) as u64);
    hdr.advance(2);
    Ok(out)
}

/// `_mm512_cmp_ps_mask`-style helper: the keep-mask of a vector (used by
/// the avx512-comp baseline of Fig. 10).
pub fn mm512_cmp_ps_mask(v: &Vec512, ccf: CompareCond) -> LaneMask {
    ccf.keep_mask(v, ElemType::F32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Fig. 8 + Fig. 9 loop pair on simulated memory: a
    /// ReLU-compressed store pass followed by a retrieval pass.
    #[test]
    fn fig8_fig9_store_then_retrieve() {
        let mut mem = SimMemory::new(1 << 16);
        let x_base = 0u64;
        let y_base = 0x8000u64;
        // Input: 8 vectors of pre-activations, half negative.
        let n = 8 * 16;
        for i in 0..n {
            mem.store_f32(
                x_base + i as u64 * 4,
                if i % 2 == 0 {
                    -(i as f32) - 1.0
                } else {
                    i as f32
                },
            );
        }
        // Fig. 8: zcomps _LTEZ loop.
        let mut y_ptr = Ptr::new(y_base);
        for v in 0..8 {
            let tvec = mem.load_vec(x_base + v * 64).expect("in bounds");
            mm512_zcomps_i_ps(&mut mem, &mut y_ptr, tvec, CompareCond::Ltez).expect("fits");
        }
        let compressed_end = y_ptr.addr();
        assert!(compressed_end - y_base < 8 * 64, "stream is compressed");
        // Fig. 9: zcompl loop retrieves the ReLU output.
        let mut read_ptr = Ptr::new(y_base);
        for v in 0..8u64 {
            let tvec = mm512_zcompl_i_ps(&mem, &mut read_ptr).expect("valid stream");
            for lane in 0..16 {
                let idx = v * 16 + lane as u64;
                let expect = mem.load_f32(x_base + idx * 4).max(0.0);
                assert_eq!(tvec.f32_lane(lane), expect);
            }
        }
        assert_eq!(
            read_ptr.addr(),
            compressed_end,
            "reader consumed the stream"
        );
    }

    #[test]
    fn separate_header_variant_roundtrip() {
        let mut mem = SimMemory::new(1 << 12);
        let mut v = Vec512::ZERO;
        v.set_f32_lane(3, 7.0);
        v.set_f32_lane(9, -2.0);
        let (mut dst, mut hdr) = (Ptr::new(0x100), Ptr::new(0x800));
        mm512_zcomps_s_ps(&mut mem, &mut dst, &mut hdr, v, CompareCond::Eqz).expect("fits");
        assert_eq!(dst.addr(), 0x100 + 8, "two kept lanes");
        assert_eq!(hdr.addr(), 0x800 + 2);
        let (mut rdst, mut rhdr) = (Ptr::new(0x100), Ptr::new(0x800));
        let out = mm512_zcompl_s_ps(&mem, &mut rdst, &mut rhdr).expect("valid");
        assert_eq!(out, v);
    }

    #[test]
    fn overflow_is_detected_before_writing() {
        let mut mem = SimMemory::new(64);
        let mut dst = Ptr::new(32);
        let v = Vec512::from_f32_lanes(&[1.0; 16]); // needs 66 bytes
        let err = mm512_zcomps_i_ps(&mut mem, &mut dst, v, CompareCond::Eqz).unwrap_err();
        assert!(matches!(err, ZcompError::BufferOverflow { .. }));
        assert_eq!(dst.addr(), 32, "pointer unchanged on fault");
    }

    #[test]
    fn cmp_mask_matches_ccf() {
        let mut v = Vec512::ZERO;
        v.set_f32_lane(0, -1.0);
        v.set_f32_lane(1, 1.0);
        let m = mm512_cmp_ps_mask(&v, CompareCond::Ltez);
        assert!(!m.is_set(0));
        assert!(m.is_set(1));
    }
}
