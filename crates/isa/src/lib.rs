//! Functional and micro-architectural model of the **ZCOMP** vector ISA
//! extension from *"ZCOMP: Reducing DNN Cross-Layer Memory Footprint Using
//! Vector Extensions"* (MICRO-52, 2019), together with the AVX512 baseline
//! instructions the paper compares against.
//!
//! ZCOMP adds two instructions to an AVX512-class CPU:
//!
//! * [`zcomps`](instr::Instr::ZcompS) — compare each lane of a 512-bit vector
//!   against a [condition](ccf::CompareCond), pack the surviving lanes,
//!   prepend/emit a per-vector bitmask *header*, store the result to memory
//!   and auto-increment the compressed-data pointer.
//! * [`zcompl`](instr::Instr::ZcompL) — the dual: read the header, read the
//!   packed lanes, expand them back into a full vector (zero-filling the
//!   compressed lanes) and auto-increment the pointer.
//!
//! Both come in an *interleaved-header* variant (header stored in front of
//! the packed data, §3.1 of the paper) and a *separate-header* variant
//! (header stored through an independent auto-incremented pointer, §3.2).
//!
//! The crate has two faces:
//!
//! 1. **Functional**: byte-exact compressed stream layout via
//!    [`stream::CompressedWriter`] / [`stream::CompressedReader`] and the
//!    high-level helpers in [`compress`]. These are real, testable
//!    implementations — what a softwar​e-visible ZCOMP stream would contain.
//! 2. **Micro-architectural**: every modelled instruction decomposes into
//!    micro-ops ([`instr::Instr::uops`]) with latencies and throughputs in
//!    the style of Agner Fog's instruction tables ([`uops`]), which the
//!    `zcomp-sim` core models consume for timing.
//!
//! # Example
//!
//! ```
//! use zcomp_isa::compress::{compress_f32, expand_f32};
//! use zcomp_isa::ccf::CompareCond;
//!
//! let data = vec![1.0, 0.0, 0.0, 2.5, 0.0, -3.0, 0.0, 0.0,
//!                 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.5];
//! let stream = compress_f32(&data, CompareCond::Eqz)?;
//! assert!(stream.compressed_bytes() < data.len() * 4);
//! let round = expand_f32(&stream)?;
//! assert_eq!(round, data);
//! # Ok::<(), zcomp_isa::error::ZcompError>(())
//! ```

pub mod alignment;
pub mod buffer;
pub mod ccf;
pub mod compress;
pub mod disasm;
pub mod dtype;
pub mod error;
pub mod header;
pub mod instr;
pub mod integrity;
pub mod intrinsics;
pub mod mask;
pub mod native;
pub mod program;
pub mod stream;
pub mod uops;
pub mod vec512;

pub use ccf::CompareCond;
pub use compress::{compress_f32, expand_f32, CompressedStats};
pub use dtype::ElemType;
pub use error::ZcompError;
pub use header::Header;
pub use instr::{AccessKind, Instr, MemAccess};
pub use integrity::{desync_impact, CorruptionSite, DesyncImpact, StreamChecksum, StreamRegion};
pub use mask::LaneMask;
pub use native::{detect_backend, native_isa, CodecBackend};
pub use program::{BatchLane, Cursors, InstrProgram, ProgramOp, Reg};
pub use stream::{CompressedReader, CompressedStream, CompressedWriter, HeaderMode};
pub use uops::{Uop, UopCounts, UopKind, UopTable};
pub use vec512::Vec512;

/// Width of the modelled SIMD vector in bits (AVX512-class).
pub const VECTOR_BITS: usize = 512;

/// Width of the modelled SIMD vector in bytes.
pub const VECTOR_BYTES: usize = VECTOR_BITS / 8;

/// Size of a cache line in bytes on the modelled machine.
pub const CACHE_LINE_BYTES: usize = 64;
