//! Per-lane bitmasks (the AVX512 `k` registers and ZCOMP headers).

use serde::{Deserialize, Serialize};

use crate::dtype::ElemType;

/// A per-lane bitmask over a 512-bit vector.
///
/// Bit `i` set means lane `i` is *kept* (uncompressed / active). At most 64
/// lanes exist (int8), so a `u64` backs every variant; the valid width is
/// carried alongside so equality and display are width-aware.
///
/// # Example
///
/// ```
/// use zcomp_isa::mask::LaneMask;
/// use zcomp_isa::dtype::ElemType;
///
/// // The worked example in Fig. 4 of the paper: 6 non-zero lanes out of 16
/// // with pattern 1001000100011100 (lane 0 = LSB) = 0x911C... but note the
/// // paper writes the mask MSB-first; functionally we store lane i at bit i.
/// let mask = LaneMask::from_bits(0b1001_0001_0001_1100, ElemType::F32);
/// assert_eq!(mask.popcount(), 6);
/// assert!(mask.is_set(2));
/// assert!(!mask.is_set(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaneMask {
    bits: u64,
    lanes: u8,
}

impl LaneMask {
    /// Creates a mask from raw bits for the given element type.
    ///
    /// Bits above the lane count are cleared.
    #[inline]
    pub fn from_bits(bits: u64, ty: ElemType) -> Self {
        let lanes = ty.lanes() as u8;
        let keep = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        LaneMask {
            bits: bits & keep,
            lanes,
        }
    }

    /// The empty mask (everything compressed) for an element type.
    #[inline]
    pub fn empty(ty: ElemType) -> Self {
        LaneMask::from_bits(0, ty)
    }

    /// The full mask (nothing compressible) for an element type.
    #[inline]
    pub fn full(ty: ElemType) -> Self {
        LaneMask::from_bits(u64::MAX, ty)
    }

    /// Raw bit representation (lane `i` at bit `i`).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of lanes this mask covers.
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes as usize
    }

    /// Whether lane `i` is kept (uncompressed).
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the mask's lane count.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        assert!(i < self.lanes as usize, "lane {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Sets lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the mask's lane count.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.lanes as usize, "lane {i} out of range");
        self.bits |= 1 << i;
    }

    /// Number of kept lanes — the `popcount` micro-op in Figs. 4 and 5.
    #[inline]
    pub fn popcount(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Number of compressed-away lanes.
    #[inline]
    pub fn zeros(&self) -> u32 {
        self.lanes as u32 - self.popcount()
    }

    /// Iterator over the indices of kept lanes, in lane order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.bits;
        (0..self.lanes as usize).filter(move |i| (bits >> i) & 1 == 1)
    }
}

impl std::fmt::Display for LaneMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..self.lanes as usize).rev() {
            f.write_str(if (self.bits >> i) & 1 == 1 { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popcount_matches_paper_example() {
        let mask = LaneMask::from_bits(0b1001_0001_0001_1100, ElemType::F32);
        assert_eq!(mask.popcount(), 6);
        assert_eq!(mask.zeros(), 10);
    }

    #[test]
    fn bits_above_lane_count_are_masked() {
        let mask = LaneMask::from_bits(u64::MAX, ElemType::F32);
        assert_eq!(mask.bits(), 0xFFFF);
        assert_eq!(mask.popcount(), 16);
    }

    #[test]
    fn i8_uses_all_64_bits() {
        let mask = LaneMask::full(ElemType::I8);
        assert_eq!(mask.popcount(), 64);
    }

    #[test]
    fn iter_set_yields_lane_indices_in_order() {
        let mask = LaneMask::from_bits(0b1010, ElemType::F32);
        let lanes: Vec<usize> = mask.iter_set().collect();
        assert_eq!(lanes, vec![1, 3]);
    }

    #[test]
    fn set_and_is_set() {
        let mut mask = LaneMask::empty(ElemType::F64);
        mask.set(7);
        assert!(mask.is_set(7));
        assert_eq!(mask.popcount(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn is_set_out_of_range_panics() {
        let mask = LaneMask::empty(ElemType::F64);
        let _ = mask.is_set(8);
    }

    #[test]
    fn display_msb_first() {
        let mask = LaneMask::from_bits(0b1, ElemType::F64);
        assert_eq!(mask.to_string(), "00000001");
    }
}
