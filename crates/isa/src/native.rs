//! Runtime-dispatched native SIMD backend for the stream codec.
//!
//! The scalar codec in [`stream`](crate::stream) is the *specification*:
//! lane-at-a-time, portable, and the differential oracle every other path
//! is tested against. This module is the *implementation for speed*: the
//! same byte-exact stream layout produced with real `std::arch`
//! intrinsics — the software realization of what `zcomps`/`zcompl` do in
//! hardware (§3 of the paper):
//!
//! * **compress** — one vector compare produces the keep-mask header
//!   (`vcmpps`/`vptestmb` → `k` register), one compress-store packs the
//!   surviving lanes (`vcompressps` and friends).
//! * **expand** — the header drives a mask expand-load
//!   (`vexpandps`), zero-filling compressed lanes.
//!
//! # Dispatch ladder
//!
//! Capability is probed once per process with
//! [`is_x86_feature_detected!`] and memoized in a [`OnceLock`], so the
//! hot path pays a single atomic load:
//!
//! 1. **AVX-512 + VBMI2** — native `vpcompressw`/`vpcompressb` for
//!    F16/I8; mask compares for every dtype.
//! 2. **AVX-512 (F+BW)** — F16/I8 compaction emulated by widening
//!    16-lane groups to 32-bit (`vpmovzx`), compressing with
//!    `vpcompressd`, and narrowing back (`vpmov`).
//! 3. **AVX2** — movemask compares; F32 compaction/expansion via an
//!    8-bit-mask `vpermps` LUT; narrower dtypes keep SIMD mask
//!    computation and fall back to run-based byte copies for packing.
//! 4. **Scalar** — the reference writer/reader (always available; the
//!    only path on non-x86 targets).
//!
//! The `ZCOMP_CODEC_BACKEND` environment variable overrides the choice
//! for A/B runs and CI: `scalar`, `native`, or a specific ladder rung
//! (`avx2`, `avx512`, `avx512vbmi2`). Unsupported requests fall back
//! down the ladder with a logged warning, never an abort.
//!
//! # Oracle policy
//!
//! Every native path must be **byte-identical** to the scalar codec:
//! same stream bytes, same headers, same `total_nnz`, same expansion,
//! same error offsets on malformed streams. This is enforced three ways:
//! differential proptests (`tests/differential_native.rs`) across all
//! dtypes and every ladder rung the host supports, the `bench_codec
//! --smoke` CI gate, and debug assertions in the dispatch layer.

use std::sync::OnceLock;

use crate::ccf::CompareCond;
use crate::dtype::ElemType;
use crate::error::ZcompError;
use crate::stream::{CompressedStream, HeaderMode};
use crate::VECTOR_BYTES;

/// Which codec implementation executes a compress/expand call.
///
/// Mirrors the `ExecPath` pattern of the simulator: every entry point has
/// a `*_with_backend` variant taking this enum explicitly, and the plain
/// variants use [`CodecBackend::detect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecBackend {
    /// The portable lane-at-a-time reference codec (the oracle).
    Scalar,
    /// The best runtime-detected SIMD path; falls back to scalar on
    /// hosts with no supported vector extension.
    Native,
}

impl CodecBackend {
    /// The process-wide default backend: native when the host supports
    /// it, honoring the `ZCOMP_CODEC_BACKEND` override (`scalar`,
    /// `native`, `avx2`, `avx512`, `avx512vbmi2`).
    ///
    /// Detection and the environment lookup run once; subsequent calls
    /// are a single memoized load.
    #[inline]
    pub fn detect() -> CodecBackend {
        dispatch().backend
    }

    /// Short stable name used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CodecBackend::Scalar => "scalar",
            CodecBackend::Native => "native",
        }
    }
}

impl std::fmt::Display for CodecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Memoized process-wide backend choice — see [`CodecBackend::detect`].
#[inline]
pub fn detect_backend() -> CodecBackend {
    CodecBackend::detect()
}

/// The instruction-set rung the native backend would use on this host
/// (`"avx512vbmi2"`, `"avx512"`, `"avx2"`), or `None` when only the
/// scalar path exists. Ignores the environment override.
pub fn native_isa() -> Option<&'static str> {
    best_level().map(NativeLevel::label)
}

/// One rung of the native dispatch ladder.
///
/// Exposed (hidden) so differential tests and the codec benchmark can
/// exercise every rung the host supports, not just the best one.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeLevel {
    /// 256-bit: movemask compares + `vpermps` LUT compaction for F32.
    Avx2,
    /// 512-bit F+BW: mask compares, `vcompressps/d/q`, widening
    /// emulation for F16/I8 byte compaction.
    Avx512,
    /// 512-bit F+BW+VBMI2: adds native `vpcompressw`/`vpcompressb`.
    Avx512Vbmi2,
}

impl NativeLevel {
    /// Short stable name used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            NativeLevel::Avx2 => "avx2",
            NativeLevel::Avx512 => "avx512",
            NativeLevel::Avx512Vbmi2 => "avx512vbmi2",
        }
    }
}

impl std::fmt::Display for NativeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Every ladder rung this host supports, best first. Empty on non-x86
/// targets (and on x86 hosts without AVX2).
#[doc(hidden)]
pub fn available_levels() -> &'static [NativeLevel] {
    static LEVELS: OnceLock<Vec<NativeLevel>> = OnceLock::new();
    LEVELS.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            x86::all_supported()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Vec::new()
        }
    })
}

/// The best supported rung, ignoring the environment override.
fn best_level() -> Option<NativeLevel> {
    available_levels().first().copied()
}

/// The memoized (backend, forced-level) decision.
struct Dispatch {
    backend: CodecBackend,
    /// `Some` only when `ZCOMP_CODEC_BACKEND` names a specific rung.
    forced_level: Option<NativeLevel>,
}

fn dispatch() -> &'static Dispatch {
    static DISPATCH: OnceLock<Dispatch> = OnceLock::new();
    DISPATCH.get_or_init(|| {
        let native_default = || Dispatch {
            backend: if best_level().is_some() {
                CodecBackend::Native
            } else {
                CodecBackend::Scalar
            },
            forced_level: None,
        };
        let request = std::env::var("ZCOMP_CODEC_BACKEND").ok();
        match request.as_deref() {
            None | Some("") | Some("auto") | Some("native") => native_default(),
            Some("scalar") => Dispatch {
                backend: CodecBackend::Scalar,
                forced_level: None,
            },
            Some(rung @ ("avx2" | "avx512" | "avx512vbmi2")) => {
                let want = match rung {
                    "avx2" => NativeLevel::Avx2,
                    "avx512" => NativeLevel::Avx512,
                    _ => NativeLevel::Avx512Vbmi2,
                };
                if available_levels().contains(&want) {
                    Dispatch {
                        backend: CodecBackend::Native,
                        forced_level: Some(want),
                    }
                } else {
                    zcomp_trace::log_warn!(
                        "ZCOMP_CODEC_BACKEND={rung} is not supported on this host; \
                         falling back to auto detection"
                    );
                    native_default()
                }
            }
            Some(other) => {
                zcomp_trace::log_warn!(
                    "unknown ZCOMP_CODEC_BACKEND value `{other}` \
                     (expected scalar|native|avx2|avx512|avx512vbmi2); using auto"
                );
                native_default()
            }
        }
    })
}

/// The rung a [`CodecBackend::Native`] call should run at: the forced
/// rung when the environment pinned one, else the best available.
fn level_for_native() -> Option<NativeLevel> {
    dispatch().forced_level.or_else(best_level)
}

// ---------------------------------------------------------------------
// crate-internal entry points (used by `compress` and `buffer`)
// ---------------------------------------------------------------------

/// Compresses whole-vector `data` natively, or returns `None` when no
/// native rung exists (caller falls back to the scalar writer).
///
/// `data.len()` must be a multiple of [`VECTOR_BYTES`] (callers have
/// already rejected partial vectors).
pub(crate) fn compress_to_stream(
    data: &[u8],
    ty: ElemType,
    cond: CompareCond,
    mode: HeaderMode,
) -> Option<CompressedStream> {
    let level = level_for_native()?;
    Some(compress_at_level(level, data, ty, cond, mode))
}

/// Expands `stream` into `dst` natively, or returns `None` when no
/// native rung exists. `dst` must be exactly
/// `stream.vectors() * VECTOR_BYTES` long.
pub(crate) fn expand_into(
    stream: &CompressedStream,
    dst: &mut [u8],
) -> Option<Result<(), ZcompError>> {
    let level = level_for_native()?;
    Some(expand_at_level(level, stream, dst))
}

/// Reinterprets an `f32` slice as little-endian bytes (zero-copy).
pub(crate) fn f32_as_bytes(data: &[f32]) -> &[u8] {
    // Sound: f32 has no padding and every byte pattern is observable.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// Reinterprets a mutable `f32` slice as bytes (zero-copy).
pub(crate) fn f32_as_bytes_mut(data: &mut [f32]) -> &mut [u8] {
    // Sound: both views are plain-old-data; the callee only writes.
    unsafe {
        std::slice::from_raw_parts_mut(data.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(data))
    }
}

// ---------------------------------------------------------------------
// per-rung entry points (hidden: for differential tests and bench_codec)
// ---------------------------------------------------------------------

/// Compresses at a specific ladder rung.
///
/// # Panics
///
/// Panics if `level` is not in [`available_levels`] or `data` is not a
/// whole number of vectors — both indicate test-harness bugs, not user
/// input.
#[doc(hidden)]
pub fn compress_at_level(
    level: NativeLevel,
    data: &[u8],
    ty: ElemType,
    cond: CompareCond,
    mode: HeaderMode,
) -> CompressedStream {
    assert!(
        available_levels().contains(&level),
        "native level {level} not supported on this host"
    );
    assert!(
        data.len().is_multiple_of(VECTOR_BYTES),
        "native compress requires whole vectors"
    );
    let vectors = data.len() / VECTOR_BYTES;
    let mut out_data = Vec::new();
    let mut out_headers = Vec::new();
    #[cfg(target_arch = "x86_64")]
    let nnz = x86::compress(level, data, ty, cond, mode, &mut out_data, &mut out_headers);
    #[cfg(not(target_arch = "x86_64"))]
    let nnz = unreachable!("no native levels exist off x86_64");
    CompressedStream::from_raw_parts(ty, mode, out_data, out_headers, vectors, nnz)
}

/// Expands at a specific ladder rung into an exactly-sized byte buffer.
///
/// # Panics
///
/// Panics if `level` is unsupported or `dst` is not exactly the
/// stream's uncompressed size.
#[doc(hidden)]
pub fn expand_at_level(
    level: NativeLevel,
    stream: &CompressedStream,
    dst: &mut [u8],
) -> Result<(), ZcompError> {
    assert!(
        available_levels().contains(&level),
        "native level {level} not supported on this host"
    );
    assert_eq!(
        dst.len(),
        stream.vectors() * VECTOR_BYTES,
        "native expand requires an exactly-sized destination"
    );
    #[cfg(target_arch = "x86_64")]
    {
        x86::expand(
            level,
            stream.elem_type(),
            stream.header_mode(),
            stream.data(),
            stream.headers(),
            stream.vectors(),
            dst,
        )
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        unreachable!("no native levels exist off x86_64")
    }
}

// ---------------------------------------------------------------------
// x86_64 kernels
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;
    use std::ptr;

    use super::NativeLevel;
    use crate::ccf::CompareCond;
    use crate::dtype::ElemType;
    use crate::error::ZcompError;
    use crate::stream::HeaderMode;
    use crate::VECTOR_BYTES;

    pub(super) fn all_supported() -> Vec<NativeLevel> {
        let mut levels = Vec::new();
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            if is_x86_feature_detected!("avx512vbmi2") {
                levels.push(NativeLevel::Avx512Vbmi2);
            }
            levels.push(NativeLevel::Avx512);
        }
        if is_x86_feature_detected!("avx2") {
            levels.push(NativeLevel::Avx2);
        }
        levels
    }

    /// Dispatches one bulk compress. Caller guarantees `level` is
    /// supported (checked in [`super::compress_at_level`]).
    pub(super) fn compress(
        level: NativeLevel,
        data: &[u8],
        ty: ElemType,
        cond: CompareCond,
        mode: HeaderMode,
        out_data: &mut Vec<u8>,
        out_headers: &mut Vec<u8>,
    ) -> u64 {
        unsafe {
            match level {
                NativeLevel::Avx512Vbmi2 => {
                    compress_bulk_512_vbmi2(data, ty, cond, mode, out_data, out_headers)
                }
                NativeLevel::Avx512 => {
                    compress_bulk_512(data, ty, cond, mode, out_data, out_headers)
                }
                NativeLevel::Avx2 => {
                    compress_bulk_avx2(data, ty, cond, mode, out_data, out_headers)
                }
            }
        }
    }

    /// Dispatches one bulk expand. Caller guarantees `level` support and
    /// an exactly-sized `dst`.
    pub(super) fn expand(
        level: NativeLevel,
        ty: ElemType,
        mode: HeaderMode,
        data: &[u8],
        headers: &[u8],
        vectors: usize,
        dst: &mut [u8],
    ) -> Result<(), ZcompError> {
        unsafe {
            match level {
                NativeLevel::Avx512Vbmi2 => {
                    expand_bulk_512_vbmi2(ty, mode, data, headers, vectors, dst)
                }
                NativeLevel::Avx512 => expand_bulk_512(ty, mode, data, headers, vectors, dst),
                NativeLevel::Avx2 => expand_bulk_avx2(ty, mode, data, headers, vectors, dst),
            }
        }
    }

    // -- shared helpers ------------------------------------------------

    /// Reserves worst-case output capacity: every full-width packed
    /// store needs up to `VECTOR_BYTES` of slack beyond the bytes it
    /// logically appends, and the incompressible upper bound per vector
    /// is exactly `header + VECTOR_BYTES`, so the worst-case reserve
    /// also covers the store slack of the final vector.
    fn reserve_outputs(
        vectors: usize,
        hb: usize,
        mode: HeaderMode,
        out_data: &mut Vec<u8>,
        out_headers: &mut Vec<u8>,
    ) {
        match mode {
            HeaderMode::Interleaved => out_data.reserve(vectors * (hb + VECTOR_BYTES)),
            HeaderMode::Separate => {
                out_data.reserve(vectors * VECTOR_BYTES);
                out_headers.reserve(vectors * hb);
            }
        }
    }

    /// Little-endian header load (headers are `lanes / 8` bytes, so the
    /// mask always fits the lane count exactly).
    #[inline(always)]
    fn read_mask_le(src: &[u8]) -> u64 {
        let mut raw = [0u8; 8];
        raw[..src.len()].copy_from_slice(src);
        u64::from_le_bytes(raw)
    }

    /// Writer-identical run-based compaction (AVX2 path for non-F32
    /// dtypes): each run of set mask bits is one contiguous copy.
    ///
    /// # Safety
    ///
    /// `src` must be readable for 64 bytes and `dst` writable for the
    /// packed size.
    #[inline(always)]
    unsafe fn pack_runs(src: *const u8, mut bits: u64, es: usize, dst: *mut u8) {
        let mut off = 0usize;
        while bits != 0 {
            let start = bits.trailing_zeros() as usize;
            let run = (bits >> start).trailing_ones() as usize;
            let nb = run * es;
            ptr::copy_nonoverlapping(src.add(start * es), dst.add(off), nb);
            off += nb;
            if start + run >= 64 {
                break;
            }
            bits &= !(((1u64 << run) - 1) << start);
        }
    }

    /// Reader-identical run-based scatter into a pre-zeroed 64-byte
    /// vector slot.
    ///
    /// # Safety
    ///
    /// `src` must be readable for the packed size and `dst` writable
    /// for 64 bytes.
    #[inline(always)]
    unsafe fn scatter_runs(src: *const u8, mut bits: u64, es: usize, dst: *mut u8) {
        let mut off = 0usize;
        while bits != 0 {
            let start = bits.trailing_zeros() as usize;
            let run = (bits >> start).trailing_ones() as usize;
            let nb = run * es;
            ptr::copy_nonoverlapping(src.add(off), dst.add(start * es), nb);
            off += nb;
            if start + run >= 64 {
                break;
            }
            bits &= !(((1u64 << run) - 1) << start);
        }
    }

    /// Extracts the even bits of `x` (AVX2 `movemask_epi8` yields two
    /// identical bits per 16-bit lane; this folds them to one per lane).
    #[inline(always)]
    fn pack_even_bits(x: u32) -> u64 {
        let mut x = (x & 0x5555_5555) as u64;
        x = (x | (x >> 1)) & 0x3333_3333;
        x = (x | (x >> 2)) & 0x0F0F_0F0F;
        x = (x | (x >> 4)) & 0x00FF_00FF;
        x = (x | (x >> 8)) & 0x0000_FFFF;
        x
    }

    // -- AVX-512 kernels ----------------------------------------------

    #[inline(always)]
    unsafe fn load512(ptr: *const u8) -> __m512i {
        _mm512_loadu_si512(ptr as *const __m512i)
    }

    #[inline(always)]
    unsafe fn store512(ptr: *mut u8, v: __m512i) {
        _mm512_storeu_si512(ptr as *mut __m512i, v)
    }

    /// Keep-mask of one 64-byte vector — the `vcmpps`/`vptestm` half of
    /// `zcomps`. Bit `i` set = lane `i` kept, matching
    /// [`CompareCond::keep_mask`] exactly (NaN kept, `-0.0` compressed,
    /// F16 judged by bit pattern).
    #[inline(always)]
    unsafe fn mask512(src: *const u8, ty: ElemType, cond: CompareCond) -> u64 {
        match ty {
            ElemType::F32 => {
                let v = _mm512_loadu_ps(src as *const f32);
                let z = _mm512_setzero_ps();
                let m = match cond {
                    // NEQ_UQ: unordered (NaN) compares true, +/-0 false.
                    CompareCond::Eqz => _mm512_cmp_ps_mask::<_CMP_NEQ_UQ>(v, z),
                    // NLE_UQ: !(x <= 0), NaN true — keep positives + NaN.
                    CompareCond::Ltez => _mm512_cmp_ps_mask::<_CMP_NLE_UQ>(v, z),
                };
                u64::from(m)
            }
            ElemType::F64 => {
                let v = _mm512_loadu_pd(src as *const f64);
                let z = _mm512_setzero_pd();
                let m = match cond {
                    CompareCond::Eqz => _mm512_cmp_pd_mask::<_CMP_NEQ_UQ>(v, z),
                    CompareCond::Ltez => _mm512_cmp_pd_mask::<_CMP_NLE_UQ>(v, z),
                };
                u64::from(m)
            }
            ElemType::F16 => {
                // Bit-pattern semantics (no fp16 arithmetic): zero iff
                // magnitude bits clear; NaN iff exponent all-ones and
                // mantissa nonzero; sign bit decides <= 0.
                let v = load512(src);
                let mag = _mm512_and_si512(v, _mm512_set1_epi16(0x7FFF));
                let nonzero = _mm512_test_epi16_mask(mag, mag);
                match cond {
                    CompareCond::Eqz => u64::from(nonzero),
                    CompareCond::Ltez => {
                        let exp = _mm512_and_si512(v, _mm512_set1_epi16(0x7C00));
                        let man = _mm512_and_si512(v, _mm512_set1_epi16(0x03FF));
                        let nan = _mm512_cmpeq_epi16_mask(exp, _mm512_set1_epi16(0x7C00))
                            & _mm512_test_epi16_mask(man, man);
                        let neg = _mm512_test_epi16_mask(v, _mm512_set1_epi16(i16::MIN));
                        u64::from(nan | (nonzero & !neg))
                    }
                }
            }
            ElemType::I32 => {
                let v = load512(src);
                let m = match cond {
                    CompareCond::Eqz => _mm512_test_epi32_mask(v, v),
                    CompareCond::Ltez => _mm512_cmpgt_epi32_mask(v, _mm512_setzero_si512()),
                };
                u64::from(m)
            }
            ElemType::I8 => {
                let v = load512(src);
                match cond {
                    CompareCond::Eqz => _mm512_test_epi8_mask(v, v),
                    CompareCond::Ltez => _mm512_cmpgt_epi8_mask(v, _mm512_setzero_si512()),
                }
            }
        }
    }

    /// Compress-store of one vector's kept lanes at `dst` — the
    /// `vcompressps` half of `zcomps`. Writes full registers (callers
    /// reserve `VECTOR_BYTES` of slack); logically appends
    /// `popcount * es` bytes.
    #[inline(always)]
    unsafe fn pack512<const VBMI2: bool>(src: *const u8, mask: u64, ty: ElemType, dst: *mut u8) {
        match ty {
            ElemType::F32 => {
                let v = _mm512_loadu_ps(src as *const f32);
                let c = _mm512_maskz_compress_ps(mask as __mmask16, v);
                _mm512_storeu_ps(dst as *mut f32, c);
            }
            ElemType::F64 => {
                let v = _mm512_loadu_pd(src as *const f64);
                let c = _mm512_maskz_compress_pd(mask as __mmask8, v);
                _mm512_storeu_pd(dst as *mut f64, c);
            }
            ElemType::I32 => {
                let v = load512(src);
                let c = _mm512_maskz_compress_epi32(mask as __mmask16, v);
                store512(dst, c);
            }
            ElemType::F16 => {
                if VBMI2 {
                    let v = load512(src);
                    let c = _mm512_maskz_compress_epi16(mask as __mmask32, v);
                    store512(dst, c);
                } else {
                    // No vpcompressw: widen each 16-lane half to 32-bit,
                    // compress as dwords, narrow back.
                    let mut off = 0usize;
                    for h in 0..2 {
                        let m16 = ((mask >> (16 * h)) & 0xFFFF) as __mmask16;
                        let half = _mm256_loadu_si256(src.add(32 * h) as *const __m256i);
                        let wide = _mm512_cvtepu16_epi32(half);
                        let comp = _mm512_maskz_compress_epi32(m16, wide);
                        let narrow = _mm512_cvtepi32_epi16(comp);
                        _mm256_storeu_si256(dst.add(off) as *mut __m256i, narrow);
                        off += m16.count_ones() as usize * 2;
                    }
                }
            }
            ElemType::I8 => {
                if VBMI2 {
                    let v = load512(src);
                    let c = _mm512_maskz_compress_epi8(mask, v);
                    store512(dst, c);
                } else {
                    // No vpcompressb: widen each 16-lane quarter to
                    // 32-bit, compress as dwords, narrow back.
                    let mut off = 0usize;
                    for q in 0..4 {
                        let m16 = ((mask >> (16 * q)) & 0xFFFF) as __mmask16;
                        let quarter = _mm_loadu_si128(src.add(16 * q) as *const __m128i);
                        let wide = _mm512_cvtepu8_epi32(quarter);
                        let comp = _mm512_maskz_compress_epi32(m16, wide);
                        let narrow = _mm512_cvtepi32_epi8(comp);
                        _mm_storeu_si128(dst.add(off) as *mut __m128i, narrow);
                        off += m16.count_ones() as usize;
                    }
                }
            }
        }
    }

    /// Mask expand of one vector — the `vexpandps` half of `zcompl`.
    /// Reads up to 64 bytes from `src` (callers guarantee the slack) and
    /// writes the full 64-byte vector at `dst`, zero-filling compressed
    /// lanes.
    #[inline(always)]
    unsafe fn scatter512<const VBMI2: bool>(src: *const u8, mask: u64, ty: ElemType, dst: *mut u8) {
        match ty {
            ElemType::F32 => {
                let packed = _mm512_loadu_ps(src as *const f32);
                let e = _mm512_maskz_expand_ps(mask as __mmask16, packed);
                _mm512_storeu_ps(dst as *mut f32, e);
            }
            ElemType::F64 => {
                let packed = _mm512_loadu_pd(src as *const f64);
                let e = _mm512_maskz_expand_pd(mask as __mmask8, packed);
                _mm512_storeu_pd(dst as *mut f64, e);
            }
            ElemType::I32 => {
                let packed = load512(src);
                let e = _mm512_maskz_expand_epi32(mask as __mmask16, packed);
                store512(dst, e);
            }
            ElemType::F16 => {
                if VBMI2 {
                    let packed = load512(src);
                    let e = _mm512_maskz_expand_epi16(mask as __mmask32, packed);
                    store512(dst, e);
                } else {
                    let mut off = 0usize;
                    for h in 0..2 {
                        let m16 = ((mask >> (16 * h)) & 0xFFFF) as __mmask16;
                        let packed = _mm256_loadu_si256(src.add(off) as *const __m256i);
                        let wide = _mm512_cvtepu16_epi32(packed);
                        let e = _mm512_maskz_expand_epi32(m16, wide);
                        let narrow = _mm512_cvtepi32_epi16(e);
                        _mm256_storeu_si256(dst.add(32 * h) as *mut __m256i, narrow);
                        off += m16.count_ones() as usize * 2;
                    }
                }
            }
            ElemType::I8 => {
                if VBMI2 {
                    let packed = load512(src);
                    let e = _mm512_maskz_expand_epi8(mask, packed);
                    store512(dst, e);
                } else {
                    let mut off = 0usize;
                    for q in 0..4 {
                        let m16 = ((mask >> (16 * q)) & 0xFFFF) as __mmask16;
                        let packed = _mm_loadu_si128(src.add(off) as *const __m128i);
                        let wide = _mm512_cvtepu8_epi32(packed);
                        let e = _mm512_maskz_expand_epi32(m16, wide);
                        let narrow = _mm512_cvtepi32_epi8(e);
                        _mm_storeu_si128(dst.add(16 * q) as *mut __m128i, narrow);
                        off += m16.count_ones() as usize;
                    }
                }
            }
        }
    }

    /// The full compress loop, shared by both AVX-512 rungs.
    #[inline(always)]
    unsafe fn compress_bulk_512_impl<const VBMI2: bool>(
        data: &[u8],
        ty: ElemType,
        cond: CompareCond,
        mode: HeaderMode,
        out_data: &mut Vec<u8>,
        out_headers: &mut Vec<u8>,
    ) -> u64 {
        let vectors = data.len() / VECTOR_BYTES;
        let hb = ty.header_bytes();
        let es = ty.size_bytes();
        reserve_outputs(vectors, hb, mode, out_data, out_headers);
        let dbase = out_data.as_mut_ptr();
        let hbase = out_headers.as_mut_ptr();
        let mut dlen = out_data.len();
        let mut hlen = out_headers.len();
        let mut nnz = 0u64;
        for v in 0..vectors {
            let src = data.as_ptr().add(v * VECTOR_BYTES);
            let mask = mask512(src, ty, cond);
            let hdr = mask.to_le_bytes();
            match mode {
                HeaderMode::Interleaved => {
                    ptr::copy_nonoverlapping(hdr.as_ptr(), dbase.add(dlen), hb);
                    dlen += hb;
                }
                HeaderMode::Separate => {
                    ptr::copy_nonoverlapping(hdr.as_ptr(), hbase.add(hlen), hb);
                    hlen += hb;
                }
            }
            pack512::<VBMI2>(src, mask, ty, dbase.add(dlen));
            let n = mask.count_ones() as usize;
            dlen += n * es;
            nnz += n as u64;
        }
        out_data.set_len(dlen);
        out_headers.set_len(hlen);
        nnz
    }

    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn compress_bulk_512(
        data: &[u8],
        ty: ElemType,
        cond: CompareCond,
        mode: HeaderMode,
        out_data: &mut Vec<u8>,
        out_headers: &mut Vec<u8>,
    ) -> u64 {
        compress_bulk_512_impl::<false>(data, ty, cond, mode, out_data, out_headers)
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512vbmi2")]
    unsafe fn compress_bulk_512_vbmi2(
        data: &[u8],
        ty: ElemType,
        cond: CompareCond,
        mode: HeaderMode,
        out_data: &mut Vec<u8>,
        out_headers: &mut Vec<u8>,
    ) -> u64 {
        compress_bulk_512_impl::<true>(data, ty, cond, mode, out_data, out_headers)
    }

    /// The full expand loop, shared by both AVX-512 rungs. Mirrors
    /// [`CompressedReader::read_vector`] exactly, including error
    /// offsets on malformed streams.
    #[inline(always)]
    unsafe fn expand_bulk_512_impl<const VBMI2: bool>(
        ty: ElemType,
        mode: HeaderMode,
        data: &[u8],
        headers: &[u8],
        vectors: usize,
        dst: &mut [u8],
    ) -> Result<(), ZcompError> {
        let hb = ty.header_bytes();
        let es = ty.size_bytes();
        let out = dst.as_mut_ptr();
        let mut data_pos = 0usize;
        let mut header_pos = 0usize;
        for v in 0..vectors {
            let mask = match mode {
                HeaderMode::Interleaved => {
                    if data_pos + hb > data.len() {
                        return Err(ZcompError::Truncated { offset: data_pos });
                    }
                    let m = read_mask_le(&data[data_pos..data_pos + hb]);
                    data_pos += hb;
                    m
                }
                HeaderMode::Separate => {
                    if header_pos + hb > headers.len() {
                        return Err(ZcompError::Truncated { offset: header_pos });
                    }
                    let m = read_mask_le(&headers[header_pos..header_pos + hb]);
                    header_pos += hb;
                    m
                }
            };
            let payload = mask.count_ones() as usize * es;
            if data_pos + payload > data.len() {
                return Err(ZcompError::Truncated { offset: data_pos });
            }
            // Full-register loads read up to 64 bytes; fall back to a
            // zero-padded copy when the payload sits too close to the
            // end of the data region.
            let mut tail = [0u8; VECTOR_BYTES];
            let src = if data_pos + VECTOR_BYTES <= data.len() {
                data.as_ptr().add(data_pos)
            } else {
                ptr::copy_nonoverlapping(data.as_ptr().add(data_pos), tail.as_mut_ptr(), payload);
                tail.as_ptr()
            };
            scatter512::<VBMI2>(src, mask, ty, out.add(v * VECTOR_BYTES));
            data_pos += payload;
        }
        Ok(())
    }

    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn expand_bulk_512(
        ty: ElemType,
        mode: HeaderMode,
        data: &[u8],
        headers: &[u8],
        vectors: usize,
        dst: &mut [u8],
    ) -> Result<(), ZcompError> {
        expand_bulk_512_impl::<false>(ty, mode, data, headers, vectors, dst)
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512vbmi2")]
    unsafe fn expand_bulk_512_vbmi2(
        ty: ElemType,
        mode: HeaderMode,
        data: &[u8],
        headers: &[u8],
        vectors: usize,
        dst: &mut [u8],
    ) -> Result<(), ZcompError> {
        expand_bulk_512_impl::<true>(ty, mode, data, headers, vectors, dst)
    }

    // -- AVX2 kernels --------------------------------------------------

    /// `vpermps` index LUT: entry `m` lists the set-bit positions of the
    /// 8-bit mask `m` in ascending order (compaction shuffle).
    static COMPRESS_IDX: [[u32; 8]; 256] = build_compress_idx();

    /// Inverse LUT: entry `m` maps lane `i` to the prefix popcount of
    /// `m` below bit `i` (expansion shuffle; unset lanes are zeroed by a
    /// mask AND afterwards).
    static EXPAND_IDX: [[u32; 8]; 256] = build_expand_idx();

    const fn build_compress_idx() -> [[u32; 8]; 256] {
        let mut t = [[0u32; 8]; 256];
        let mut m = 0usize;
        while m < 256 {
            let mut k = 0usize;
            let mut i = 0usize;
            while i < 8 {
                if m & (1 << i) != 0 {
                    t[m][k] = i as u32;
                    k += 1;
                }
                i += 1;
            }
            m += 1;
        }
        t
    }

    const fn build_expand_idx() -> [[u32; 8]; 256] {
        let mut t = [[0u32; 8]; 256];
        let mut m = 0usize;
        while m < 256 {
            let mut pc = 0u32;
            let mut i = 0usize;
            while i < 8 {
                if m & (1 << i) != 0 {
                    t[m][i] = pc;
                    pc += 1;
                }
                i += 1;
            }
            m += 1;
        }
        t
    }

    /// Keep-mask of one 64-byte vector using 256-bit compares +
    /// movemask. Bit-identical to [`mask512`].
    #[inline(always)]
    unsafe fn mask256(src: *const u8, ty: ElemType, cond: CompareCond) -> u64 {
        let mut mask = 0u64;
        match ty {
            ElemType::F32 => {
                let z = _mm256_setzero_ps();
                for h in 0..2 {
                    let v = _mm256_loadu_ps(src.add(32 * h) as *const f32);
                    let c = match cond {
                        CompareCond::Eqz => _mm256_cmp_ps::<_CMP_NEQ_UQ>(v, z),
                        CompareCond::Ltez => _mm256_cmp_ps::<_CMP_NLE_UQ>(v, z),
                    };
                    mask |= ((_mm256_movemask_ps(c) as u64) & 0xFF) << (8 * h);
                }
            }
            ElemType::F64 => {
                let z = _mm256_setzero_pd();
                for h in 0..2 {
                    let v = _mm256_loadu_pd(src.add(32 * h) as *const f64);
                    let c = match cond {
                        CompareCond::Eqz => _mm256_cmp_pd::<_CMP_NEQ_UQ>(v, z),
                        CompareCond::Ltez => _mm256_cmp_pd::<_CMP_NLE_UQ>(v, z),
                    };
                    mask |= ((_mm256_movemask_pd(c) as u64) & 0xF) << (4 * h);
                }
            }
            ElemType::F16 => {
                let z = _mm256_setzero_si256();
                for h in 0..2 {
                    let v = _mm256_loadu_si256(src.add(32 * h) as *const __m256i);
                    let mag = _mm256_and_si256(v, _mm256_set1_epi16(0x7FFF));
                    let zero_m = _mm256_cmpeq_epi16(mag, z);
                    let bits = match cond {
                        CompareCond::Eqz => !(_mm256_movemask_epi8(zero_m) as u32),
                        CompareCond::Ltez => {
                            let exp_eq = _mm256_cmpeq_epi16(
                                _mm256_and_si256(v, _mm256_set1_epi16(0x7C00)),
                                _mm256_set1_epi16(0x7C00),
                            );
                            let man_zero = _mm256_cmpeq_epi16(
                                _mm256_and_si256(v, _mm256_set1_epi16(0x03FF)),
                                z,
                            );
                            let nan_v = _mm256_andnot_si256(man_zero, exp_eq);
                            let nonneg = _mm256_cmpeq_epi16(
                                _mm256_and_si256(v, _mm256_set1_epi16(i16::MIN)),
                                z,
                            );
                            let pos_v = _mm256_andnot_si256(zero_m, nonneg);
                            _mm256_movemask_epi8(_mm256_or_si256(nan_v, pos_v)) as u32
                        }
                    };
                    mask |= pack_even_bits(bits) << (16 * h);
                }
            }
            ElemType::I32 => {
                let z = _mm256_setzero_si256();
                for h in 0..2 {
                    let v = _mm256_loadu_si256(src.add(32 * h) as *const __m256i);
                    let bits = match cond {
                        CompareCond::Eqz => {
                            let eq = _mm256_cmpeq_epi32(v, z);
                            !(_mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u64) & 0xFF
                        }
                        CompareCond::Ltez => {
                            let gt = _mm256_cmpgt_epi32(v, z);
                            (_mm256_movemask_ps(_mm256_castsi256_ps(gt)) as u64) & 0xFF
                        }
                    };
                    mask |= bits << (8 * h);
                }
            }
            ElemType::I8 => {
                let z = _mm256_setzero_si256();
                for h in 0..2 {
                    let v = _mm256_loadu_si256(src.add(32 * h) as *const __m256i);
                    let bits = match cond {
                        CompareCond::Eqz => !(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, z)) as u32),
                        CompareCond::Ltez => _mm256_movemask_epi8(_mm256_cmpgt_epi8(v, z)) as u32,
                    };
                    mask |= u64::from(bits) << (32 * h);
                }
            }
        }
        mask
    }

    #[target_feature(enable = "avx,avx2")]
    unsafe fn compress_bulk_avx2(
        data: &[u8],
        ty: ElemType,
        cond: CompareCond,
        mode: HeaderMode,
        out_data: &mut Vec<u8>,
        out_headers: &mut Vec<u8>,
    ) -> u64 {
        let vectors = data.len() / VECTOR_BYTES;
        let hb = ty.header_bytes();
        let es = ty.size_bytes();
        reserve_outputs(vectors, hb, mode, out_data, out_headers);
        let dbase = out_data.as_mut_ptr();
        let hbase = out_headers.as_mut_ptr();
        let mut dlen = out_data.len();
        let mut hlen = out_headers.len();
        let mut nnz = 0u64;
        for v in 0..vectors {
            let src = data.as_ptr().add(v * VECTOR_BYTES);
            let mask = mask256(src, ty, cond);
            let hdr = mask.to_le_bytes();
            match mode {
                HeaderMode::Interleaved => {
                    ptr::copy_nonoverlapping(hdr.as_ptr(), dbase.add(dlen), hb);
                    dlen += hb;
                }
                HeaderMode::Separate => {
                    ptr::copy_nonoverlapping(hdr.as_ptr(), hbase.add(hlen), hb);
                    hlen += hb;
                }
            }
            match ty {
                ElemType::F32 => {
                    // LUT-driven vpermps compaction, one 8-lane half at
                    // a time. Stores write full 32-byte registers into
                    // the reserved slack.
                    let mut off = 0usize;
                    for h in 0..2 {
                        let m8 = ((mask >> (8 * h)) & 0xFF) as usize;
                        let half = _mm256_loadu_ps(src.add(32 * h) as *const f32);
                        let idx = _mm256_loadu_si256(COMPRESS_IDX[m8].as_ptr() as *const __m256i);
                        let packed = _mm256_permutevar8x32_ps(half, idx);
                        _mm256_storeu_ps(dbase.add(dlen + off) as *mut f32, packed);
                        off += (m8.count_ones() as usize) * 4;
                    }
                }
                _ => pack_runs(src, mask, es, dbase.add(dlen)),
            }
            let n = mask.count_ones() as usize;
            dlen += n * es;
            nnz += n as u64;
        }
        out_data.set_len(dlen);
        out_headers.set_len(hlen);
        nnz
    }

    #[target_feature(enable = "avx,avx2")]
    unsafe fn expand_bulk_avx2(
        ty: ElemType,
        mode: HeaderMode,
        data: &[u8],
        headers: &[u8],
        vectors: usize,
        dst: &mut [u8],
    ) -> Result<(), ZcompError> {
        let hb = ty.header_bytes();
        let es = ty.size_bytes();
        let out = dst.as_mut_ptr();
        let lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
        let mut data_pos = 0usize;
        let mut header_pos = 0usize;
        for v in 0..vectors {
            let mask = match mode {
                HeaderMode::Interleaved => {
                    if data_pos + hb > data.len() {
                        return Err(ZcompError::Truncated { offset: data_pos });
                    }
                    let m = read_mask_le(&data[data_pos..data_pos + hb]);
                    data_pos += hb;
                    m
                }
                HeaderMode::Separate => {
                    if header_pos + hb > headers.len() {
                        return Err(ZcompError::Truncated { offset: header_pos });
                    }
                    let m = read_mask_le(&headers[header_pos..header_pos + hb]);
                    header_pos += hb;
                    m
                }
            };
            let payload = mask.count_ones() as usize * es;
            if data_pos + payload > data.len() {
                return Err(ZcompError::Truncated { offset: data_pos });
            }
            let chunk = out.add(v * VECTOR_BYTES);
            match ty {
                ElemType::F32 => {
                    let mut tail = [0u8; VECTOR_BYTES];
                    let src = if data_pos + VECTOR_BYTES <= data.len() {
                        data.as_ptr().add(data_pos)
                    } else {
                        ptr::copy_nonoverlapping(
                            data.as_ptr().add(data_pos),
                            tail.as_mut_ptr(),
                            payload,
                        );
                        tail.as_ptr()
                    };
                    let mut off = 0usize;
                    for h in 0..2 {
                        let m8 = ((mask >> (8 * h)) & 0xFF) as usize;
                        let packed = _mm256_loadu_ps(src.add(off) as *const f32);
                        let idx = _mm256_loadu_si256(EXPAND_IDX[m8].as_ptr() as *const __m256i);
                        let perm = _mm256_permutevar8x32_ps(packed, idx);
                        let sel = _mm256_cmpeq_epi32(
                            _mm256_and_si256(_mm256_set1_epi32(m8 as i32), lane_bits),
                            lane_bits,
                        );
                        let res = _mm256_and_ps(perm, _mm256_castsi256_ps(sel));
                        _mm256_storeu_ps(chunk.add(32 * h) as *mut f32, res);
                        off += (m8.count_ones() as usize) * 4;
                    }
                }
                _ => {
                    // Zero the slot, then run-scatter the payload.
                    let z = _mm256_setzero_si256();
                    _mm256_storeu_si256(chunk as *mut __m256i, z);
                    _mm256_storeu_si256(chunk.add(32) as *mut __m256i, z);
                    scatter_runs(data.as_ptr().add(data_pos), mask, es, chunk);
                }
            }
            data_pos += payload;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_memoized_and_consistent() {
        let first = CodecBackend::detect();
        for _ in 0..3 {
            assert_eq!(CodecBackend::detect(), first);
        }
        // Native is only reported when a ladder rung exists.
        if first == CodecBackend::Native {
            assert!(!available_levels().is_empty());
            assert!(native_isa().is_some());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CodecBackend::Scalar.label(), "scalar");
        assert_eq!(CodecBackend::Native.to_string(), "native");
    }

    #[test]
    fn best_level_is_first_listed() {
        assert_eq!(best_level(), available_levels().first().copied());
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn non_x86_is_scalar_only() {
        // The scalar-only build must compile and dispatch cleanly with
        // no native rungs — the portable-fallback guarantee.
        assert!(available_levels().is_empty());
        assert_eq!(CodecBackend::detect(), CodecBackend::Scalar);
        assert_eq!(native_isa(), None);
    }
}
