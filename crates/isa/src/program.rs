//! Decoded instruction programs for batched kernel execution.
//!
//! The ReLU kernels emit the same short instruction sequence for every
//! vector of the tensor; only the addresses (strided cursors) and the
//! dynamic sizes (per-vector NNZ) change between iterations. A
//! [`InstrProgram`] captures that loop body once — a flat buffer of
//! decoded [`ProgramOp`]s plus precomputed per-iteration micro-op counts —
//! so the simulator's batch executor can replay it across a whole tensor
//! without re-constructing an [`Instr`] and re-decoding its micro-ops per
//! operation.
//!
//! The equivalence invariant: for every op, materializing the [`Instr`]
//! via [`ProgramOp::instr`] and extracting its accesses with
//! [`Instr::mem_accesses`] yields exactly the accesses
//! [`ProgramOp::accesses`] produces, and [`ProgramOp::advance`] moves the
//! cursors exactly as the reference kernel's pointer arithmetic does. The
//! unit tests below check this exhaustively over the op vocabulary.

use serde::{Deserialize, Serialize};

use crate::instr::{Instr, MemAccess};
use crate::stream::HeaderMode;
use crate::uops::UopCounts;

/// Per-lane address cursors a program reads and advances: the input
/// pointer `x`, the (possibly compressed) output pointer `y` and the
/// header pointer `h`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cursors {
    /// Input tensor pointer (advances 64 bytes per vector).
    pub x: u64,
    /// Output data pointer (stride depends on the scheme and NNZ).
    pub y: u64,
    /// Header pointer (2 bytes per vector where used).
    pub h: u64,
}

/// Which cursor a full-width vector access uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reg {
    /// The input cursor `x`.
    X,
    /// The output cursor `y`.
    Y,
}

/// One decoded operation of an instruction program.
///
/// Each op is an [`Instr`] with its address operands replaced by a cursor
/// selector and its dynamic size replaced by the iteration's NNZ — the
/// "stride descriptor" form the batch executor consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProgramOp {
    /// 64-byte vector load through the selected cursor (advances it 64).
    VLoad(Reg),
    /// 64-byte vector store through the selected cursor (advances it 64).
    VStore(Reg),
    /// Reg-reg ReLU; no memory.
    VMaxPs,
    /// Mask compare; no memory.
    VCmpPsMask,
    /// Mask move + popcount; no memory.
    KmovPopcnt,
    /// Scalar index add; no memory.
    ScalarAdd,
    /// Masked compress-store of `nnz * 4` bytes at `y` (advances `y`).
    VCompressStore,
    /// Masked expand-load of `nnz * 4` bytes at `y` (advances `y`).
    VExpandLoad,
    /// 2-byte header store at `h` (advances `h`).
    StoreMask,
    /// 2-byte header load at `h` (advances `h`).
    LoadMask,
    /// `zcomps` with the given header placement (advances `y` and, for
    /// the separate variant, `h`).
    ZcompS(HeaderMode),
    /// `zcompl` with the given header placement (advances `y` and, for
    /// the separate variant, `h`).
    ZcompL(HeaderMode),
}

impl ProgramOp {
    /// ZCOMP data bytes for this iteration: header + payload when
    /// interleaved, payload only when separate.
    #[inline(always)]
    fn zcomp_bytes(mode: HeaderMode, nnz: u32) -> u32 {
        match mode {
            HeaderMode::Interleaved => 2 + nnz * 4,
            HeaderMode::Separate => nnz * 4,
        }
    }

    /// Materializes the [`Instr`] this op stands for at the current cursor
    /// positions (without advancing them) — the observed fallback path.
    pub fn instr(&self, cur: &Cursors, nnz: u32) -> Instr {
        match *self {
            ProgramOp::VLoad(r) => Instr::VLoad {
                addr: match r {
                    Reg::X => cur.x,
                    Reg::Y => cur.y,
                },
            },
            ProgramOp::VStore(r) => Instr::VStore {
                addr: match r {
                    Reg::X => cur.x,
                    Reg::Y => cur.y,
                },
            },
            ProgramOp::VMaxPs => Instr::VMaxPs,
            ProgramOp::VCmpPsMask => Instr::VCmpPsMask,
            ProgramOp::KmovPopcnt => Instr::KmovPopcnt,
            ProgramOp::ScalarAdd => Instr::ScalarAdd,
            ProgramOp::VCompressStore => Instr::VCompressStore {
                addr: cur.y,
                bytes: nnz * 4,
            },
            ProgramOp::VExpandLoad => Instr::VExpandLoad {
                addr: cur.y,
                bytes: nnz * 4,
            },
            ProgramOp::StoreMask => Instr::StoreMask { addr: cur.h },
            ProgramOp::LoadMask => Instr::LoadMask { addr: cur.h },
            ProgramOp::ZcompS(mode) => Instr::ZcompS {
                variant: mode,
                addr: cur.y,
                bytes: Self::zcomp_bytes(mode, nnz),
                header_addr: match mode {
                    HeaderMode::Interleaved => None,
                    HeaderMode::Separate => Some(cur.h),
                },
                header_bytes: 2,
            },
            ProgramOp::ZcompL(mode) => Instr::ZcompL {
                variant: mode,
                addr: cur.y,
                bytes: Self::zcomp_bytes(mode, nnz),
                header_addr: match mode {
                    HeaderMode::Interleaved => None,
                    HeaderMode::Separate => Some(cur.h),
                },
                header_bytes: 2,
            },
        }
    }

    /// Advances the cursors past this op, mirroring the reference
    /// kernel's pointer arithmetic.
    #[inline(always)]
    pub fn advance(&self, cur: &mut Cursors, nnz: u32) {
        match *self {
            ProgramOp::VLoad(Reg::X) | ProgramOp::VStore(Reg::X) => cur.x += 64,
            ProgramOp::VLoad(Reg::Y) | ProgramOp::VStore(Reg::Y) => cur.y += 64,
            ProgramOp::VMaxPs
            | ProgramOp::VCmpPsMask
            | ProgramOp::KmovPopcnt
            | ProgramOp::ScalarAdd => {}
            ProgramOp::VCompressStore | ProgramOp::VExpandLoad => cur.y += u64::from(nnz) * 4,
            ProgramOp::StoreMask | ProgramOp::LoadMask => cur.h += 2,
            ProgramOp::ZcompS(mode) | ProgramOp::ZcompL(mode) => {
                cur.y += u64::from(Self::zcomp_bytes(mode, nnz));
                if mode == HeaderMode::Separate {
                    cur.h += 2;
                }
            }
        }
    }

    /// Fast path: the op's memory accesses at the current cursors (in
    /// issue order; at most two), advancing the cursors. Equivalent to
    /// `self.instr(cur, nnz).mem_accesses(..)` followed by
    /// [`advance`](Self::advance), without constructing the [`Instr`].
    #[inline(always)]
    pub fn accesses(&self, cur: &mut Cursors, nnz: u32) -> (Option<MemAccess>, Option<MemAccess>) {
        match *self {
            ProgramOp::VLoad(r) => {
                let p = match r {
                    Reg::X => &mut cur.x,
                    Reg::Y => &mut cur.y,
                };
                let a = MemAccess::read(*p, 64);
                *p += 64;
                (Some(a), None)
            }
            ProgramOp::VStore(r) => {
                let p = match r {
                    Reg::X => &mut cur.x,
                    Reg::Y => &mut cur.y,
                };
                let a = MemAccess::write(*p, 64);
                *p += 64;
                (Some(a), None)
            }
            ProgramOp::VMaxPs
            | ProgramOp::VCmpPsMask
            | ProgramOp::KmovPopcnt
            | ProgramOp::ScalarAdd => (None, None),
            ProgramOp::VCompressStore => {
                let bytes = nnz * 4;
                let a = (bytes > 0).then(|| MemAccess::write(cur.y, bytes));
                cur.y += u64::from(bytes);
                (a, None)
            }
            ProgramOp::VExpandLoad => {
                let bytes = nnz * 4;
                let a = (bytes > 0).then(|| MemAccess::read(cur.y, bytes));
                cur.y += u64::from(bytes);
                (a, None)
            }
            ProgramOp::StoreMask => {
                let a = MemAccess::write(cur.h, 2);
                cur.h += 2;
                (Some(a), None)
            }
            ProgramOp::LoadMask => {
                let a = MemAccess::read(cur.h, 2);
                cur.h += 2;
                (Some(a), None)
            }
            ProgramOp::ZcompS(mode) => {
                let bytes = Self::zcomp_bytes(mode, nnz);
                // Data store first, then the separate header store —
                // matching `Instr::mem_accesses`.
                let data = (bytes > 0).then(|| MemAccess::write(cur.y, bytes));
                cur.y += u64::from(bytes);
                match mode {
                    HeaderMode::Interleaved => (data, None),
                    HeaderMode::Separate => {
                        let h = MemAccess::write(cur.h, 2);
                        cur.h += 2;
                        (data, Some(h))
                    }
                }
            }
            ProgramOp::ZcompL(mode) => {
                let bytes = Self::zcomp_bytes(mode, nnz);
                match mode {
                    HeaderMode::Interleaved => {
                        let a = (bytes > 0).then(|| MemAccess::read(cur.y, bytes));
                        cur.y += u64::from(bytes);
                        (a, None)
                    }
                    HeaderMode::Separate => {
                        // Header read first, then the data read.
                        let h = MemAccess::read(cur.h, 2);
                        cur.h += 2;
                        let data = (bytes > 0).then(|| MemAccess::read(cur.y, bytes));
                        cur.y += u64::from(bytes);
                        (Some(h), data)
                    }
                }
            }
        }
    }
}

/// A pre-decoded loop body: the ops of one iteration (excluding the loop
/// overhead, which the executor appends every `unroll`-th iteration) plus
/// the per-iteration micro-op totals, precomputed so batch accounting is
/// a closed-form multiply instead of a per-op table walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrProgram {
    ops: Vec<ProgramOp>,
    unroll: usize,
    body_uops: UopCounts,
    overhead_uops: UopCounts,
}

impl InstrProgram {
    /// Decodes a loop body. `unroll` is the kernel's unroll factor: the
    /// loop overhead fires on iterations where `step % unroll == 0`
    /// (0 is treated as 1, matching the kernels).
    pub fn new(ops: Vec<ProgramOp>, unroll: usize) -> Self {
        let mut body_uops = UopCounts::new();
        for op in &ops {
            // Uop decomposition depends only on the op kind and variant,
            // never on addresses or NNZ.
            op.instr(&Cursors::default(), 0).add_uops(&mut body_uops);
        }
        let mut overhead_uops = UopCounts::new();
        Instr::LoopOverhead.add_uops(&mut overhead_uops);
        InstrProgram {
            ops,
            unroll: unroll.max(1),
            body_uops,
            overhead_uops,
        }
    }

    /// The decoded loop body in issue order.
    pub fn ops(&self) -> &[ProgramOp] {
        &self.ops
    }

    /// Effective unroll factor (>= 1).
    pub fn unroll(&self) -> usize {
        self.unroll
    }

    /// Micro-ops of one loop-body iteration.
    pub fn body_uops(&self) -> &UopCounts {
        &self.body_uops
    }

    /// Micro-ops of one loop-overhead instruction.
    pub fn overhead_uops(&self) -> &UopCounts {
        &self.overhead_uops
    }

    /// Instructions per loop-body iteration (excluding loop overhead).
    pub fn body_instructions(&self) -> u64 {
        self.ops.len() as u64
    }

    /// How many times the loop overhead fires over `vectors` iterations
    /// (iterations `0, unroll, 2*unroll, ...`).
    pub fn overhead_fires(&self, vectors: usize) -> u64 {
        (vectors as u64).div_ceil(self.unroll as u64)
    }
}

/// Per-lane (per-thread-chunk) state for one batched pass: which thread
/// issues the ops, the lane's slice of the NNZ sequence, and its cursors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchLane {
    /// Issuing hardware thread.
    pub thread: usize,
    /// First vector index of this lane's chunk in the global NNZ slice.
    pub first_vec: usize,
    /// Vectors this lane processes.
    pub vectors: usize,
    /// The lane's address cursors.
    pub cursors: Cursors,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<ProgramOp> {
        vec![
            ProgramOp::VLoad(Reg::X),
            ProgramOp::VLoad(Reg::Y),
            ProgramOp::VStore(Reg::X),
            ProgramOp::VStore(Reg::Y),
            ProgramOp::VMaxPs,
            ProgramOp::VCmpPsMask,
            ProgramOp::KmovPopcnt,
            ProgramOp::ScalarAdd,
            ProgramOp::VCompressStore,
            ProgramOp::VExpandLoad,
            ProgramOp::StoreMask,
            ProgramOp::LoadMask,
            ProgramOp::ZcompS(HeaderMode::Interleaved),
            ProgramOp::ZcompS(HeaderMode::Separate),
            ProgramOp::ZcompL(HeaderMode::Interleaved),
            ProgramOp::ZcompL(HeaderMode::Separate),
        ]
    }

    /// The equivalence invariant: `accesses` must equal materializing the
    /// `Instr`, extracting its accesses, then advancing — for every op and
    /// every NNZ, including the zero-payload edge.
    #[test]
    fn accesses_match_materialized_instr() {
        for op in all_ops() {
            for nnz in [0u32, 1, 7, 16] {
                let start = Cursors {
                    x: 0x1000,
                    y: 0x2000,
                    h: 0x3000,
                };
                let mut ref_acc = Vec::new();
                op.instr(&start, nnz).mem_accesses(&mut ref_acc);
                let mut ref_cur = start;
                op.advance(&mut ref_cur, nnz);

                let mut fast_cur = start;
                let (a, b) = op.accesses(&mut fast_cur, nnz);
                let fast_acc: Vec<MemAccess> = [a, b].into_iter().flatten().collect();

                assert_eq!(fast_acc, ref_acc, "{op:?} nnz={nnz}: accesses");
                assert_eq!(fast_cur, ref_cur, "{op:?} nnz={nnz}: cursors");
            }
        }
    }

    #[test]
    fn body_uops_match_per_op_decode() {
        let ops = vec![
            ProgramOp::VLoad(Reg::X),
            ProgramOp::VCmpPsMask,
            ProgramOp::KmovPopcnt,
            ProgramOp::VCompressStore,
            ProgramOp::ScalarAdd,
            ProgramOp::StoreMask,
        ];
        let p = InstrProgram::new(ops.clone(), 1);
        let mut expect = UopCounts::new();
        for op in &ops {
            op.instr(&Cursors::default(), 9).add_uops(&mut expect);
        }
        assert_eq!(*p.body_uops(), expect);
        assert_eq!(p.body_instructions(), 6);
        let mut overhead = UopCounts::new();
        Instr::LoopOverhead.add_uops(&mut overhead);
        assert_eq!(*p.overhead_uops(), overhead);
    }

    #[test]
    fn overhead_fires_matches_step_modulo() {
        for unroll in [0usize, 1, 2, 3, 4, 7] {
            let p = InstrProgram::new(vec![ProgramOp::VMaxPs], unroll);
            for vectors in 0..40usize {
                let expect = (0..vectors).filter(|s| s % unroll.max(1) == 0).count() as u64;
                assert_eq!(
                    p.overhead_fires(vectors),
                    expect,
                    "unroll={unroll} vectors={vectors}"
                );
            }
        }
    }

    #[test]
    fn zcomp_separate_orders_header_after_store_before_load() {
        let mut cur = Cursors::default();
        let (a, b) = ProgramOp::ZcompS(HeaderMode::Separate).accesses(&mut cur, 4);
        assert_eq!(a.unwrap().kind, crate::instr::AccessKind::Write);
        assert_eq!(b.unwrap().bytes, 2, "header write second");
        let mut cur = Cursors::default();
        let (a, b) = ProgramOp::ZcompL(HeaderMode::Separate).accesses(&mut cur, 4);
        assert_eq!(a.unwrap().bytes, 2, "header read first");
        assert_eq!(b.unwrap().bytes, 16, "data read second");
    }
}
