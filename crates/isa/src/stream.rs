//! Byte-exact compressed stream layout: writer and reader.
//!
//! A ZCOMP stream is the sequence of bytes `zcomps` produces in memory. In
//! *interleaved* mode every vector contributes `header ++ packed lanes`; in
//! *separate* mode the headers go to an independent header store (§3.2) and
//! the data region holds only packed lanes.

use serde::{Deserialize, Serialize};

use crate::ccf::CompareCond;
use crate::dtype::ElemType;
use crate::error::ZcompError;
use crate::header::Header;
use crate::vec512::Vec512;
use crate::VECTOR_BYTES;

/// Where compression headers are stored (§3.1 vs §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderMode {
    /// Header precedes each vector's packed data in the same region.
    Interleaved,
    /// Headers live in a separately allocated, separately pointed store.
    Separate,
}

impl std::fmt::Display for HeaderMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HeaderMode::Interleaved => "interleaved",
            HeaderMode::Separate => "separate",
        })
    }
}

/// An owned, finished compressed stream.
///
/// Produced by [`CompressedWriter::finish`]; consumed by
/// [`CompressedReader`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedStream {
    ty: ElemType,
    mode: HeaderMode,
    data: Vec<u8>,
    headers: Vec<u8>,
    vectors: usize,
    total_nnz: u64,
}

impl CompressedStream {
    /// Assembles a stream directly from its parts — the native SIMD
    /// backend's exit point, bypassing [`CompressedWriter`].
    ///
    /// The caller is responsible for layout correctness (the native
    /// backend is differentially tested against the writer for
    /// byte-identity; see [`native`](crate::native)).
    pub(crate) fn from_raw_parts(
        ty: ElemType,
        mode: HeaderMode,
        data: Vec<u8>,
        headers: Vec<u8>,
        vectors: usize,
        total_nnz: u64,
    ) -> Self {
        CompressedStream {
            ty,
            mode,
            data,
            headers,
            vectors,
            total_nnz,
        }
    }

    /// Element type of the stream.
    pub fn elem_type(&self) -> ElemType {
        self.ty
    }

    /// Header placement mode of the stream.
    pub fn header_mode(&self) -> HeaderMode {
        self.mode
    }

    /// Number of vectors in the stream.
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// Number of elements the stream expands to.
    pub fn elements(&self) -> usize {
        self.vectors * self.ty.lanes()
    }

    /// Total kept (uncompressed) elements across the stream.
    pub fn total_nnz(&self) -> u64 {
        self.total_nnz
    }

    /// Bytes in the data region (includes headers when interleaved).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes in the separate header store (zero when interleaved).
    pub fn header_bytes(&self) -> usize {
        self.headers.len()
    }

    /// Total stored bytes: data region plus separate header store.
    pub fn compressed_bytes(&self) -> usize {
        self.data.len() + self.headers.len()
    }

    /// Bytes the uncompressed representation occupies.
    pub fn uncompressed_bytes(&self) -> usize {
        self.vectors * VECTOR_BYTES
    }

    /// Compression ratio `uncompressed / compressed` (higher is better).
    ///
    /// Returns 1.0 for an empty stream.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes() == 0 {
            1.0
        } else {
            self.uncompressed_bytes() as f64 / self.compressed_bytes() as f64
        }
    }

    /// Whether the interleaved stream fits inside the original
    /// (uncompressed) allocation — the §4.1 condition for reusing the
    /// original virtual memory allocation unchanged.
    pub fn fits_original_allocation(&self) -> bool {
        match self.mode {
            HeaderMode::Interleaved => self.data.len() <= self.uncompressed_bytes(),
            // Separate mode keeps the data region within the original
            // allocation by construction; headers are a new allocation.
            HeaderMode::Separate => true,
        }
    }

    /// Raw data-region bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Raw separate-header bytes.
    pub fn headers(&self) -> &[u8] {
        &self.headers
    }

    /// Creates a reader positioned at the start of the stream.
    pub fn reader(&self) -> CompressedReader<'_> {
        CompressedReader {
            stream: self,
            data_pos: 0,
            header_pos: 0,
            vectors_read: 0,
        }
    }

    /// Validates the structural integrity of the stream without decoding
    /// lane data: every header must be readable, every declared payload
    /// must lie inside the data region, and at the end of the walk the
    /// regions and the header-popcount sum must reconcile exactly with the
    /// recorded geometry (`vectors`, `total_nnz`, region lengths).
    ///
    /// This is the software analogue of the integrity check a hardware
    /// `zcompl` prefetcher could perform: it costs a header walk, not a
    /// full expansion. It detects every corruption that changes the
    /// stream's length chain — in particular, every single-bit header flip
    /// in [`HeaderMode::Separate`] mode, where header positions are fixed
    /// and a popcount change always breaks length reconciliation. In
    /// [`HeaderMode::Interleaved`] mode a flipped header shifts where
    /// subsequent headers are read from, and the garbage walk can in rare
    /// cases re-reconcile coincidentally; pair with a
    /// [`StreamChecksum`](crate::integrity::StreamChecksum) sidecar for
    /// guaranteed detection.
    ///
    /// # Errors
    ///
    /// * [`ZcompError::Truncated`] — a header read would cross the end of
    ///   its region (the stream ends inside a vector).
    /// * [`ZcompError::CorruptHeader`] — a header declares a packed
    ///   payload that runs past the end of the data region.
    /// * [`ZcompError::Desynchronized`] — the walk completes but leaves
    ///   trailing bytes, consumes a region short, or produces a popcount
    ///   sum that disagrees with the recorded element count.
    pub fn validate(&self) -> Result<(), ZcompError> {
        let ty = self.ty;
        let hb = ty.header_bytes();
        let es = ty.size_bytes();
        let mut data_pos = 0usize;
        let mut header_pos = 0usize;
        let mut nnz_sum = 0u64;
        for vector in 0..self.vectors {
            let header = match self.mode {
                HeaderMode::Interleaved => {
                    if data_pos + hb > self.data.len() {
                        return Err(ZcompError::Truncated { offset: data_pos });
                    }
                    let h = Header::read_from(ty, &self.data[data_pos..data_pos + hb]);
                    data_pos += hb;
                    h
                }
                HeaderMode::Separate => {
                    if header_pos + hb > self.headers.len() {
                        return Err(ZcompError::Truncated { offset: header_pos });
                    }
                    let h = Header::read_from(ty, &self.headers[header_pos..header_pos + hb]);
                    header_pos += hb;
                    h
                }
            };
            let payload = header.nnz() as usize * es;
            if data_pos + payload > self.data.len() {
                let header_start = match self.mode {
                    HeaderMode::Interleaved => data_pos - hb,
                    HeaderMode::Separate => header_pos - hb,
                };
                return Err(ZcompError::CorruptHeader {
                    vector,
                    offset: header_start,
                });
            }
            nnz_sum += u64::from(header.nnz());
            data_pos += payload;
        }
        if data_pos != self.data.len() {
            return Err(ZcompError::Desynchronized {
                vector: self.vectors,
                offset: data_pos,
            });
        }
        if header_pos != self.headers.len() {
            return Err(ZcompError::Desynchronized {
                vector: self.vectors,
                offset: header_pos,
            });
        }
        if nnz_sum != self.total_nnz {
            return Err(ZcompError::Desynchronized {
                vector: self.vectors,
                offset: data_pos,
            });
        }
        Ok(())
    }

    /// Flips one bit of the stream in place: `region`/`byte` select the
    /// byte, `bit` (taken modulo 8) selects the bit within it.
    ///
    /// This is the fault-injection entry point: the simulator reports
    /// corruption events as (region, byte, bit) triples and the kernel
    /// layer applies them here so that faults land in the actual modeled
    /// stream bytes. Returns `false` (stream unchanged) when `byte` is out
    /// of range for the region.
    pub fn flip_bit(
        &mut self,
        region: crate::integrity::StreamRegion,
        byte: usize,
        bit: u8,
    ) -> bool {
        let target = match region {
            crate::integrity::StreamRegion::Data => self.data.get_mut(byte),
            crate::integrity::StreamRegion::Headers => self.headers.get_mut(byte),
        };
        match target {
            Some(b) => {
                *b ^= 1 << (bit & 7);
                true
            }
            None => false,
        }
    }
}

/// Incremental stream writer — the software-visible effect of executing
/// `zcomps` in a loop with an auto-incrementing compressed-data pointer.
///
/// # Example
///
/// ```
/// use zcomp_isa::stream::{CompressedWriter, HeaderMode};
/// use zcomp_isa::ccf::CompareCond;
/// use zcomp_isa::dtype::ElemType;
/// use zcomp_isa::vec512::Vec512;
///
/// let mut w = CompressedWriter::new(ElemType::F32, HeaderMode::Interleaved);
/// let mut v = Vec512::new();
/// v.set_f32_lane(0, 1.0);
/// let header = w.write_vector(&v, CompareCond::Eqz)?;
/// assert_eq!(header.nnz(), 1);
/// let stream = w.finish();
/// assert_eq!(stream.compressed_bytes(), 2 + 4); // header + one fp32
/// # Ok::<(), zcomp_isa::error::ZcompError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompressedWriter {
    ty: ElemType,
    mode: HeaderMode,
    data: Vec<u8>,
    headers: Vec<u8>,
    vectors: usize,
    total_nnz: u64,
    data_limit: Option<usize>,
    header_limit: Option<usize>,
}

impl CompressedWriter {
    /// Creates a writer with unbounded destination buffers.
    pub fn new(ty: ElemType, mode: HeaderMode) -> Self {
        CompressedWriter {
            ty,
            mode,
            data: Vec::new(),
            headers: Vec::new(),
            vectors: 0,
            total_nnz: 0,
            data_limit: None,
            header_limit: None,
        }
    }

    /// Creates a writer that enforces destination capacities, modelling the
    /// §4.1 memory-violation hazard: a write that would exceed `data_limit`
    /// bytes (or `header_limit` bytes for the separate store) fails.
    pub fn with_limits(
        ty: ElemType,
        mode: HeaderMode,
        data_limit: Option<usize>,
        header_limit: Option<usize>,
    ) -> Self {
        CompressedWriter {
            data_limit,
            header_limit,
            ..CompressedWriter::new(ty, mode)
        }
    }

    /// Element type being written.
    pub fn elem_type(&self) -> ElemType {
        self.ty
    }

    /// Preallocates the destination buffers for `vectors` more vectors
    /// whose expected kept-lane fraction is `density` (1.0 =
    /// incompressible).
    ///
    /// Purely an allocation hint — stream contents and error behaviour are
    /// unaffected. An inaccurate hint costs at most one extra growth
    /// doubling, so callers round `density` up rather than down.
    pub fn reserve_vectors(&mut self, vectors: usize, density: f64) {
        let hb = self.ty.header_bytes();
        let lane_bytes = self.ty.lanes() * self.ty.size_bytes();
        let payload = (lane_bytes as f64 * density.clamp(0.0, 1.0)).ceil() as usize;
        match self.mode {
            HeaderMode::Interleaved => self.data.reserve(vectors * (hb + payload)),
            HeaderMode::Separate => {
                self.data.reserve(vectors * payload);
                self.headers.reserve(vectors * hb);
            }
        }
    }

    /// Current data-region write offset — the value the auto-incremented
    /// `reg2` pointer would hold.
    pub fn data_offset(&self) -> usize {
        self.data.len()
    }

    /// Current header-store write offset (`reg3` in separate mode).
    pub fn header_offset(&self) -> usize {
        self.headers.len()
    }

    /// Compresses and appends one vector; returns the header it produced.
    ///
    /// This is the functional semantics of one `zcomps` execution: compare
    /// lanes against `cond`, emit the keep-mask header, append packed kept
    /// lanes, advance the pointer(s).
    ///
    /// # Errors
    ///
    /// Returns [`ZcompError::BufferOverflow`] / [`ZcompError::HeaderOverflow`]
    /// when a capacity limit configured via [`with_limits`](Self::with_limits)
    /// would be exceeded. The stream is left unchanged on error.
    pub fn write_vector(&mut self, v: &Vec512, cond: CompareCond) -> Result<Header, ZcompError> {
        let mask = cond.keep_mask(v, self.ty);
        let header = Header::new(mask);
        let data_bytes = match self.mode {
            HeaderMode::Interleaved => header.total_bytes(self.ty),
            HeaderMode::Separate => header.compressed_data_bytes(self.ty),
        };
        if let Some(limit) = self.data_limit {
            if self.data.len() + data_bytes > limit {
                return Err(ZcompError::BufferOverflow {
                    needed: data_bytes,
                    available: limit - self.data.len(),
                });
            }
        }
        if self.mode == HeaderMode::Separate {
            if let Some(limit) = self.header_limit {
                if self.headers.len() + self.ty.header_bytes() > limit {
                    return Err(ZcompError::HeaderOverflow {
                        needed: self.ty.header_bytes(),
                        available: limit - self.headers.len(),
                    });
                }
            }
        }

        let mut header_buf = [0u8; 8];
        let hb = self.ty.header_bytes();
        header.write_to(self.ty, &mut header_buf[..hb]);
        match self.mode {
            HeaderMode::Interleaved => self.data.extend_from_slice(&header_buf[..hb]),
            HeaderMode::Separate => self.headers.extend_from_slice(&header_buf[..hb]),
        }
        // Word-level compaction: kept lanes are contiguous in the source
        // register wherever the mask has a run of set bits, so each run
        // becomes one bulk copy instead of a per-lane append. Packed order
        // is identical to the lane-at-a-time loop (runs are visited low
        // lane first).
        let es = self.ty.size_bytes();
        let src = v.as_bytes();
        let mut bits = mask.bits();
        while bits != 0 {
            let start = bits.trailing_zeros() as usize;
            let run = (bits >> start).trailing_ones() as usize;
            self.data
                .extend_from_slice(&src[start * es..(start + run) * es]);
            if start + run >= 64 {
                break; // run reached the top bit; nothing left to clear
            }
            bits &= !(((1u64 << run) - 1) << start);
        }
        self.vectors += 1;
        self.total_nnz += u64::from(header.nnz());
        Ok(header)
    }

    /// Finalizes the writer into an immutable [`CompressedStream`].
    pub fn finish(self) -> CompressedStream {
        CompressedStream {
            ty: self.ty,
            mode: self.mode,
            data: self.data,
            headers: self.headers,
            vectors: self.vectors,
            total_nnz: self.total_nnz,
        }
    }
}

/// Sequential stream reader — the functional semantics of `zcompl` in a
/// loop.
///
/// Reads are strictly sequential: the size of vector *n+1* is only known
/// after vector *n*'s header has been decoded. This is the property that
/// motivates the paper's partitioned parallelization (§4.3): random element
/// retrieval is traded away.
#[derive(Debug, Clone)]
pub struct CompressedReader<'a> {
    stream: &'a CompressedStream,
    data_pos: usize,
    header_pos: usize,
    vectors_read: usize,
}

impl<'a> CompressedReader<'a> {
    /// Number of vectors decoded so far.
    pub fn vectors_read(&self) -> usize {
        self.vectors_read
    }

    /// Current data-region read offset (auto-incremented `reg2`).
    pub fn data_offset(&self) -> usize {
        self.data_pos
    }

    /// Decodes the next vector, or returns `Ok(None)` at end of stream.
    ///
    /// Compressed lanes expand to zero; kept lanes are scattered back to the
    /// lane positions recorded in the header (Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`ZcompError::Truncated`] if the stream ends inside a header
    /// or packed-lane group.
    pub fn read_vector(&mut self) -> Result<Option<Vec512>, ZcompError> {
        if self.vectors_read == self.stream.vectors {
            return Ok(None);
        }
        let ty = self.stream.ty;
        let hb = ty.header_bytes();
        let header = match self.stream.mode {
            HeaderMode::Interleaved => {
                if self.data_pos + hb > self.stream.data.len() {
                    return Err(ZcompError::Truncated {
                        offset: self.data_pos,
                    });
                }
                let h = Header::read_from(ty, &self.stream.data[self.data_pos..self.data_pos + hb]);
                self.data_pos += hb;
                h
            }
            HeaderMode::Separate => {
                if self.header_pos + hb > self.stream.headers.len() {
                    return Err(ZcompError::Truncated {
                        offset: self.header_pos,
                    });
                }
                let h = Header::read_from(
                    ty,
                    &self.stream.headers[self.header_pos..self.header_pos + hb],
                );
                self.header_pos += hb;
                h
            }
        };
        let payload = header.compressed_data_bytes(ty);
        if self.data_pos + payload > self.stream.data.len() {
            return Err(ZcompError::Truncated {
                offset: self.data_pos,
            });
        }
        let mut v = Vec512::ZERO;
        let es = ty.size_bytes();
        // Run-based scatter, mirroring the writer's compaction: each run
        // of set header bits is one contiguous copy from the packed
        // payload into the destination lanes.
        let out = v.as_bytes_mut();
        let mut bits = header.mask().bits();
        let mut src = self.data_pos;
        while bits != 0 {
            let start = bits.trailing_zeros() as usize;
            let run = (bits >> start).trailing_ones() as usize;
            let n = run * es;
            out[start * es..start * es + n].copy_from_slice(&self.stream.data[src..src + n]);
            src += n;
            if start + run >= 64 {
                break;
            }
            bits &= !(((1u64 << run) - 1) << start);
        }
        self.data_pos += payload;
        self.vectors_read += 1;
        Ok(Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_with(lanes: &[(usize, f32)]) -> Vec512 {
        let mut v = Vec512::ZERO;
        for &(i, x) in lanes {
            v.set_f32_lane(i, x);
        }
        v
    }

    #[test]
    fn interleaved_roundtrip() {
        let mut w = CompressedWriter::new(ElemType::F32, HeaderMode::Interleaved);
        let v0 = vec_with(&[(0, 1.0), (5, -2.0), (15, 3.0)]);
        let v1 = Vec512::ZERO;
        let v2 = vec_with(&[(7, 9.0)]);
        for v in [&v0, &v1, &v2] {
            w.write_vector(v, CompareCond::Eqz).unwrap();
        }
        let s = w.finish();
        assert_eq!(s.vectors(), 3);
        assert_eq!(s.total_nnz(), 4);
        // 3 headers (2B each) + 4 elements (4B each) = 22 bytes.
        assert_eq!(s.compressed_bytes(), 22);
        let mut r = s.reader();
        assert_eq!(r.read_vector().unwrap(), Some(v0));
        assert_eq!(r.read_vector().unwrap(), Some(v1));
        assert_eq!(r.read_vector().unwrap(), Some(v2));
        assert_eq!(r.read_vector().unwrap(), None);
    }

    #[test]
    fn separate_header_roundtrip() {
        let mut w = CompressedWriter::new(ElemType::F32, HeaderMode::Separate);
        let v0 = vec_with(&[(2, 4.0)]);
        w.write_vector(&v0, CompareCond::Eqz).unwrap();
        let s = w.finish();
        assert_eq!(s.data_bytes(), 4);
        assert_eq!(s.header_bytes(), 2);
        let mut r = s.reader();
        assert_eq!(r.read_vector().unwrap(), Some(v0));
    }

    #[test]
    fn ltez_applies_relu_on_expand() {
        let mut w = CompressedWriter::new(ElemType::F32, HeaderMode::Interleaved);
        let v = vec_with(&[(0, -5.0), (1, 5.0)]);
        w.write_vector(&v, CompareCond::Ltez).unwrap();
        let s = w.finish();
        let got = s.reader().read_vector().unwrap().unwrap();
        assert_eq!(got.f32_lane(0), 0.0, "negative lane becomes 0 (ReLU)");
        assert_eq!(got.f32_lane(1), 5.0);
    }

    #[test]
    fn data_limit_models_memory_violation() {
        // One full vector (all lanes kept) needs 66 bytes interleaved; a
        // 64-byte original allocation overflows (§4.1).
        let mut w =
            CompressedWriter::with_limits(ElemType::F32, HeaderMode::Interleaved, Some(64), None);
        let v = Vec512::from_f32_lanes(&[1.0; 16]);
        let err = w.write_vector(&v, CompareCond::Eqz).unwrap_err();
        assert_eq!(
            err,
            ZcompError::BufferOverflow {
                needed: 66,
                available: 64
            }
        );
        // The stream must be unchanged after the failed write.
        assert_eq!(w.data_offset(), 0);
    }

    #[test]
    fn header_limit_in_separate_mode() {
        let mut w =
            CompressedWriter::with_limits(ElemType::F32, HeaderMode::Separate, None, Some(1));
        let err = w.write_vector(&Vec512::ZERO, CompareCond::Eqz).unwrap_err();
        assert!(matches!(err, ZcompError::HeaderOverflow { .. }));
    }

    #[test]
    fn separate_mode_never_overflows_original_data_allocation() {
        let mut w = CompressedWriter::with_limits(
            ElemType::F32,
            HeaderMode::Separate,
            Some(VECTOR_BYTES),
            None,
        );
        let v = Vec512::from_f32_lanes(&[1.0; 16]);
        w.write_vector(&v, CompareCond::Eqz).unwrap();
        let s = w.finish();
        assert!(s.fits_original_allocation());
        assert_eq!(s.data_bytes(), VECTOR_BYTES);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let mut w = CompressedWriter::new(ElemType::F32, HeaderMode::Interleaved);
        let v = vec_with(&[(0, 1.0)]);
        w.write_vector(&v, CompareCond::Eqz).unwrap();
        let mut s = w.finish();
        s.data.truncate(3); // header (2) + 1 byte of a 4-byte element
        let err = s.reader().read_vector().unwrap_err();
        assert!(matches!(err, ZcompError::Truncated { .. }));
    }

    #[test]
    fn compression_ratio_all_zero_is_32x() {
        // All-zero fp32 vector: 64 bytes compress to a 2-byte header.
        let mut w = CompressedWriter::new(ElemType::F32, HeaderMode::Interleaved);
        for _ in 0..100 {
            w.write_vector(&Vec512::ZERO, CompareCond::Eqz).unwrap();
        }
        let s = w.finish();
        assert!((s.compression_ratio() - 32.0).abs() < 1e-9);
        assert!(s.fits_original_allocation());
    }

    #[test]
    fn incompressible_interleaved_stream_does_not_fit_original() {
        let mut w = CompressedWriter::new(ElemType::F32, HeaderMode::Interleaved);
        let v = Vec512::from_f32_lanes(&[1.0; 16]);
        w.write_vector(&v, CompareCond::Eqz).unwrap();
        let s = w.finish();
        assert!(!s.fits_original_allocation());
        assert!(s.compression_ratio() < 1.0);
    }

    #[test]
    fn i8_roundtrip() {
        let mut w = CompressedWriter::new(ElemType::I8, HeaderMode::Interleaved);
        let mut v = Vec512::ZERO;
        v.set_lane_bytes(ElemType::I8, 0, &[5]);
        v.set_lane_bytes(ElemType::I8, 63, &[0xFB]); // -5
        w.write_vector(&v, CompareCond::Eqz).unwrap();
        let s = w.finish();
        // 8-byte header + 2 bytes of data.
        assert_eq!(s.compressed_bytes(), 10);
        let got = s.reader().read_vector().unwrap().unwrap();
        assert_eq!(got, v);
    }
}
