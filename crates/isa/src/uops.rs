//! Micro-op classes, latencies and throughputs.
//!
//! Every modelled instruction decomposes into micro-ops (§3.3 "logic
//! micro-ops and memory micro-ops"). Latency/throughput values follow the
//! style of Agner Fog's instruction tables for Skylake-X, which the paper
//! cites for its 2-cycle ZCOMP logic pipeline.
//!
//! The timing model is *port-pressure based*: each micro-op occupies one
//! slot of an execution-port class with a fixed per-cycle throughput, and
//! the whole machine issues at most four micro-ops per cycle (Table 1:
//! "4-issue"). Latencies matter for dependency chains — notably the
//! sequentially-dependent `zcompl` header → data → next-header chain.

use serde::{Deserialize, Serialize};

/// Execution-port classes of the modelled core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum UopKind {
    /// Vector ALU op (compare, max, blend) — ports 0/1 on SKX.
    VecAlu = 0,
    /// Vector shuffle / lane-crossing network (compress, expand) — port 5.
    VecShuffle = 1,
    /// Scalar integer ALU op (index arithmetic, popcnt consume).
    ScalarAlu = 2,
    /// `popcnt` — single scalar port on SKX.
    Popcnt = 3,
    /// Load micro-op (address generation + L1 access).
    Load = 4,
    /// Store micro-op (address + data).
    Store = 5,
    /// Predicted loop branch.
    Branch = 6,
    /// The fused ZCOMP logic component: CCF compare + popcount + lane
    /// select + pointer-update adder tree (Figs. 4/5; §3.3 pipelines this
    /// into two cycles at one-instruction-per-cycle throughput).
    ZcompLogic = 7,
}

impl UopKind {
    /// Number of distinct micro-op kinds.
    pub const COUNT: usize = 8;

    /// All kinds, indexable by `kind as usize`.
    pub const ALL: [UopKind; UopKind::COUNT] = [
        UopKind::VecAlu,
        UopKind::VecShuffle,
        UopKind::ScalarAlu,
        UopKind::Popcnt,
        UopKind::Load,
        UopKind::Store,
        UopKind::Branch,
        UopKind::ZcompLogic,
    ];
}

impl std::fmt::Display for UopKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UopKind::VecAlu => "vec-alu",
            UopKind::VecShuffle => "vec-shuffle",
            UopKind::ScalarAlu => "scalar-alu",
            UopKind::Popcnt => "popcnt",
            UopKind::Load => "load",
            UopKind::Store => "store",
            UopKind::Branch => "branch",
            UopKind::ZcompLogic => "zcomp-logic",
        };
        f.write_str(s)
    }
}

/// A single micro-op instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Uop {
    /// Port class the micro-op executes on.
    pub kind: UopKind,
}

/// Per-kind micro-op counts, cheap to accumulate across millions of
/// instructions without allocation.
///
/// # Example
///
/// ```
/// use zcomp_isa::uops::{UopCounts, UopKind};
///
/// let mut c = UopCounts::default();
/// c.add(UopKind::Load, 2);
/// c.add(UopKind::VecAlu, 1);
/// assert_eq!(c.get(UopKind::Load), 2);
/// assert_eq!(c.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UopCounts {
    counts: [u64; UopKind::COUNT],
}

impl UopCounts {
    /// Creates an empty count set.
    pub fn new() -> Self {
        UopCounts::default()
    }

    /// Adds `n` micro-ops of `kind`.
    #[inline]
    pub fn add(&mut self, kind: UopKind, n: u64) {
        self.counts[kind as usize] += n;
    }

    /// Count for a kind.
    #[inline]
    pub fn get(&self, kind: UopKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total micro-ops across all kinds.
    #[inline]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another count set into this one.
    #[inline]
    pub fn merge(&mut self, other: &UopCounts) {
        for i in 0..UopKind::COUNT {
            self.counts[i] += other.counts[i];
        }
    }

    /// Scales every count by an integer factor (e.g. loop trip count).
    #[inline]
    pub fn scaled(&self, factor: u64) -> UopCounts {
        let mut out = *self;
        for c in &mut out.counts {
            *c *= factor;
        }
        out
    }
}

impl std::ops::Add for UopCounts {
    type Output = UopCounts;
    fn add(self, rhs: UopCounts) -> UopCounts {
        let mut out = self;
        out.merge(&rhs);
        out
    }
}

/// Latency/throughput table for the modelled micro-architecture.
///
/// `zcomp_logic_latency` is the ablation knob of §3.3: the paper reports
/// that a 3-cycle logic variant performs almost identically to the 2-cycle
/// one because operation is throughput-bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UopTable {
    /// Latency in cycles of the ZCOMP logic component (paper default: 2).
    pub zcomp_logic_latency: u32,
}

impl UopTable {
    /// The paper's default configuration (2-cycle ZCOMP logic).
    pub fn skylake_x() -> Self {
        UopTable {
            zcomp_logic_latency: 2,
        }
    }

    /// Result latency of a micro-op kind in cycles (L1-hit latency for
    /// memory kinds; cache misses add on top in the memory model).
    pub fn latency(&self, kind: UopKind) -> u32 {
        match kind {
            UopKind::VecAlu => 4,     // vcmpps / vmaxps on SKX
            UopKind::VecShuffle => 3, // vcompressps / vexpandps lane network
            UopKind::ScalarAlu => 1,
            UopKind::Popcnt => 3,
            UopKind::Load => 4,  // L1-D hit
            UopKind::Store => 1, // store completes into the store buffer
            UopKind::Branch => 1,
            UopKind::ZcompLogic => self.zcomp_logic_latency,
        }
    }

    /// Sustained throughput of a kind in micro-ops per cycle.
    pub fn throughput(&self, kind: UopKind) -> f64 {
        match kind {
            UopKind::VecAlu => 2.0,     // ports 0+1
            UopKind::VecShuffle => 1.0, // port 5 only
            UopKind::ScalarAlu => 3.0,
            UopKind::Popcnt => 1.0,
            UopKind::Load => 2.0,  // two load ports
            UopKind::Store => 1.0, // one store-data port
            UopKind::Branch => 1.0,
            UopKind::ZcompLogic => 1.0, // §3.3: "1 instruction per cycle"
        }
    }

    /// Machine issue width in micro-ops per cycle (Table 1: 4-issue).
    pub const ISSUE_WIDTH: f64 = 4.0;

    /// Minimum cycles to execute a batch of micro-ops assuming perfect
    /// scheduling: the max of issue-width pressure and every per-port
    /// pressure. This is the core of the throughput-bound timing model.
    pub fn min_cycles(&self, counts: &UopCounts) -> f64 {
        let mut cycles = counts.total() as f64 / Self::ISSUE_WIDTH;
        for kind in UopKind::ALL {
            let c = counts.get(kind) as f64 / self.throughput(kind);
            if c > cycles {
                cycles = c;
            }
        }
        cycles
    }
}

impl Default for UopTable {
    fn default() -> Self {
        UopTable::skylake_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_logic_latency_is_two_cycles() {
        let t = UopTable::skylake_x();
        assert_eq!(t.latency(UopKind::ZcompLogic), 2);
        assert_eq!(t.throughput(UopKind::ZcompLogic), 1.0);
    }

    #[test]
    fn three_cycle_ablation_keeps_throughput() {
        let t = UopTable {
            zcomp_logic_latency: 3,
        };
        assert_eq!(t.latency(UopKind::ZcompLogic), 3);
        // Throughput is unchanged: the pipeline accepts one per cycle.
        assert_eq!(t.throughput(UopKind::ZcompLogic), 1.0);
    }

    #[test]
    fn min_cycles_is_port_bound_for_shuffles() {
        let mut c = UopCounts::new();
        c.add(UopKind::VecShuffle, 8);
        let t = UopTable::skylake_x();
        // 8 shuffles on a 1/cycle port: 8 cycles even though issue width
        // would allow 2.
        assert_eq!(t.min_cycles(&c), 8.0);
    }

    #[test]
    fn min_cycles_is_issue_bound_for_mixed_ops() {
        let mut c = UopCounts::new();
        c.add(UopKind::ScalarAlu, 4);
        c.add(UopKind::VecAlu, 4);
        c.add(UopKind::Load, 4);
        let t = UopTable::skylake_x();
        // 12 uops / 4-wide = 3 cycles; no port exceeds 2 uops/cycle need.
        assert_eq!(t.min_cycles(&c), 3.0);
    }

    #[test]
    fn counts_merge_and_scale() {
        let mut a = UopCounts::new();
        a.add(UopKind::Load, 1);
        let b = a.scaled(10);
        assert_eq!(b.get(UopKind::Load), 10);
        let c = a + b;
        assert_eq!(c.get(UopKind::Load), 11);
        assert_eq!(c.total(), 11);
    }

    #[test]
    fn all_kinds_have_positive_latency_and_throughput() {
        let t = UopTable::skylake_x();
        for kind in UopKind::ALL {
            assert!(t.latency(kind) >= 1, "{kind}");
            assert!(t.throughput(kind) > 0.0, "{kind}");
        }
    }
}
